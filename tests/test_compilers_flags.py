"""Tests for compiler flag validation (Table I)."""

import pytest

from repro.compilers.flags import TABLE_I, FlagError, FlagSet


class TestTableI:
    def test_row_count(self):
        assert len(TABLE_I) == 10

    def test_compilers(self):
        assert {info.compiler for info in TABLE_I} == {"PGI", "CUDA C", "CAPS"}


class TestFlagSet:
    def test_valid_pgi(self):
        flags = FlagSet("PGI", ("-O4", "-fast", "-Munroll"))
        assert flags.unroll_requested and flags.fast_math

    def test_valid_cuda(self):
        flags = FlagSet("CUDA C", ("-fastmath", "-arch=compute_35"))
        assert flags.fast_math

    def test_gridify_flag_parsed(self):
        flags = FlagSet("CAPS", ("-Xhmppcg -grid-block-size,64x2",))
        assert flags.gridify_blocksize == (64, 2)

    def test_gridify_flag_wrong_compiler(self):
        with pytest.raises(FlagError):
            FlagSet("PGI", ("-Xhmppcg -grid-block-size,32x4",))

    def test_unknown_flag(self):
        with pytest.raises(FlagError):
            FlagSet("PGI", ("-O9",))

    def test_pgi_flag_on_cuda(self):
        with pytest.raises(FlagError):
            FlagSet("CUDA C", ("-Munroll",))

    def test_has(self):
        assert FlagSet("PGI", ("-Mvect",)).has("-Mvect")
        assert not FlagSet("PGI").has("-Mvect")
