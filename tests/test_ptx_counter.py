"""Tests for static PTX instruction counting."""

from repro.ptx.counter import InstructionProfile, compare_profiles, format_comparison
from repro.ptx.isa import Category, PtxInst, PtxKernel


def kernel_with(*opcodes):
    k = PtxKernel("k")
    for op in opcodes:
        k.instructions.append(PtxInst(op, ""))
    return k


class TestProfile:
    def test_counts(self):
        p = InstructionProfile.of(kernel_with("add", "add", "mov", "ld.global"))
        assert p.count("add") == 2 and p.total == 4

    def test_categories(self):
        p = InstructionProfile.of(
            kernel_with("add", "setp", "bra", "mov", "ld.global", "st.shared")
        )
        counts = p.category_counts()
        assert counts[Category.ARITHMETIC] == 1
        assert counts[Category.FLOW_CONTROL] == 2
        assert counts[Category.DATA_MOVEMENT] == 1
        assert counts[Category.GLOBAL_MEMORY] == 1
        assert counts[Category.SHARED_MEMORY] == 1

    def test_multiple_kernels_aggregate(self):
        p = InstructionProfile.of(kernel_with("add"), kernel_with("add", "sub"))
        assert p.total == 3

    def test_uses_shared_memory(self):
        assert InstructionProfile.of(kernel_with("st.shared")).uses_shared_memory
        assert not InstructionProfile.of(kernel_with("add")).uses_shared_memory

    def test_diff(self):
        a = InstructionProfile.of(kernel_with("add", "add"))
        b = InstructionProfile.of(kernel_with("add"))
        assert (a - b)[Category.ARITHMETIC] == 1

    def test_as_row_keys(self):
        row = InstructionProfile.of(kernel_with("add")).as_row()
        assert set(row) == {
            "arithmetic", "flow_control", "logical_shift", "data_movement",
            "global_memory", "shared_memory", "total",
        }


class TestComparison:
    def test_compare_and_format(self):
        profiles = {
            "a": InstructionProfile.of(kernel_with("add")),
            "b": InstructionProfile.of(kernel_with("mov", "mov")),
        }
        rows = compare_profiles(profiles)
        assert rows[0]["version"] == "a" and rows[1]["data_movement"] == 2
        text = format_comparison(profiles)
        assert "version" in text and "a" in text

    def test_empty(self):
        assert format_comparison({}) == "(no profiles)"
