"""Tests for OpenACC 2.0 atomic support (paper section II-B, feature 3)."""

import numpy as np
import pytest

from repro.analysis.dependence import (
    Verdict,
    analyze_loop,
    has_opaque_or_invariant_writes,
)
from repro.compilers import CapsCompiler, PgiCompiler
from repro.devices import K40
from repro.frontend import parse_kernel, parse_module
from repro.ir import print_kernel
from repro.ptx.counter import InstructionProfile
from repro.runtime import Accelerator
from repro.runtime.executor import ExecMode, LoopSemantics, execute_kernel

HISTOGRAM = """
#pragma acc kernels
void histogram(int *h, const int *bins, int n) {
  int i;
  #pragma acc loop independent
  for (i = 0; i < n; i++) {
    #pragma acc atomic
    h[bins[i]] += 1;
  }
}
"""

HISTOGRAM_RACY = HISTOGRAM.replace("    #pragma acc atomic\n", "")


class TestParsing:
    def test_atomic_flag_set(self):
        k = parse_kernel(HISTOGRAM)
        from repro.ir import Assign
        assigns = [s for s in k.body.walk() if isinstance(s, Assign)]
        assert assigns[0].atomic

    def test_round_trip(self):
        k = parse_kernel(HISTOGRAM)
        text = print_kernel(k)
        assert "#pragma acc atomic update" in text
        assert print_kernel(parse_kernel(text)) == text


class TestAnalysis:
    def test_atomic_indirect_write_is_parallelizable(self):
        loop = parse_kernel(HISTOGRAM).loops()[0]
        assert analyze_loop(loop).verdict is Verdict.INDEPENDENT
        assert not has_opaque_or_invariant_writes(loop)

    def test_non_atomic_version_is_not(self):
        loop = parse_kernel(HISTOGRAM_RACY).loops()[0]
        assert analyze_loop(loop).verdict is Verdict.DEPENDENT
        assert has_opaque_or_invariant_writes(loop)


class TestExecution:
    def _run(self, source, parallel):
        k = parse_kernel(source)
        n = 64
        rng = np.random.default_rng(0)
        bins = rng.integers(0, 4, size=n)  # heavy collisions
        h = np.zeros(4, dtype=np.int64)
        semantics = {}
        if parallel:
            semantics = {
                k.loops()[0].loop_id:
                LoopSemantics(ExecMode.PARALLEL_SNAPSHOT)
            }
        execute_kernel(k, {"h": h, "bins": bins, "n": n}, semantics)
        return h, np.bincount(bins, minlength=4)

    def test_atomic_parallel_is_correct(self):
        got, want = self._run(HISTOGRAM, parallel=True)
        assert np.array_equal(got, want)

    def test_racy_parallel_loses_updates(self):
        got, want = self._run(HISTOGRAM_RACY, parallel=True)
        assert not np.array_equal(got, want)  # the race is real

    def test_racy_sequential_is_fine(self):
        got, want = self._run(HISTOGRAM_RACY, parallel=False)
        assert np.array_equal(got, want)


class TestCompilers:
    def test_pgi_accepts_independent_with_atomic(self):
        compiled = PgiCompiler().compile(parse_module(HISTOGRAM, "m"), "cuda")
        kernel = compiled.kernels[0]
        assert kernel.parallel_loop_ids and not kernel.elided

    def test_pgi_refuses_racy_version(self):
        compiled = PgiCompiler().compile(
            parse_module(HISTOGRAM_RACY, "m"), "cuda"
        )
        assert compiled.kernels[0].sequential or compiled.kernels[0].elided

    def test_ptx_uses_red_instruction(self):
        compiled = CapsCompiler().compile(parse_module(HISTOGRAM, "m"), "cuda")
        profile = InstructionProfile.of(compiled.kernels[0].ptx)
        assert profile.count("red") == 1
        assert profile.count("st.global") == 0  # the store became atomic

    def test_end_to_end_on_device(self):
        compiled = CapsCompiler().compile(parse_module(HISTOGRAM, "m"), "cuda")
        accelerator = Accelerator(K40)
        n = 128
        rng = np.random.default_rng(1)
        bins = rng.integers(0, 8, size=n)
        accelerator.to_device(h=np.zeros(8, dtype=np.int64), bins=bins)
        accelerator.launch(compiled.kernels[0], n=n)
        got = accelerator.from_device("h")["h"]
        assert np.array_equal(got, np.bincount(bins, minlength=8))
