"""Trace export: JSONL and Chrome trace-event round-trips, text report."""

import json

import pytest

from repro.telemetry.export import (
    chrome_trace_events,
    load_trace,
    text_report,
    timeline_coverage,
    write_trace,
)
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.spans import Tracer


def sample_tracer() -> Tracer:
    tracer = Tracer()
    with tracer.span("outer", category="test", label="run") as outer:
        outer.event("milestone", step=1)
        with tracer.span("inner"):
            pass
        tracer.record_span("runtime.launch", 0.25, category="modeled",
                           label="k0")
    return tracer


class TestChromeTrace:
    def test_round_trip_is_valid_json_with_lanes(self, tmp_path):
        tracer = sample_tracer()
        reg = MetricsRegistry()
        reg.counter("ops").inc(3)
        path = str(tmp_path / "trace.json")
        count = write_trace(path, "chrome", tracer, reg)
        assert count == 3

        data = json.loads(open(path).read())  # must parse as plain JSON
        events = data["traceEvents"]
        xs = [e for e in events if e["ph"] == "X"]
        metas = [e for e in events if e["ph"] == "M"]
        assert len(xs) == 3
        assert all(set(e) >= {"name", "ts", "dur", "pid", "tid"} for e in xs)
        # pid/tid lanes: one process, thread lane named after the thread
        assert all(e["pid"] == 1 for e in xs)
        lane_names = [e["args"]["name"] for e in metas
                      if e["name"] == "thread_name"]
        assert "MainThread" in lane_names
        snapshots = [e["args"] for e in metas
                     if e["name"] == "metrics_snapshot"]
        assert snapshots and snapshots[0]["counters"]["ops"] == 3

    def test_ts_monotonic(self, tmp_path):
        xs = [e for e in chrome_trace_events(sample_tracer().spans())
              if e["ph"] == "X"]
        tss = [e["ts"] for e in xs]
        assert tss == sorted(tss)
        assert all(e["ts"] >= 0 and e["dur"] >= 0 for e in xs)

    def test_parent_ids_preserved_in_args(self):
        events = chrome_trace_events(sample_tracer().spans())
        by_name = {e["name"]: e for e in events if e["ph"] == "X"}
        outer = by_name["outer"]["args"]["span_id"]
        assert by_name["inner"]["args"]["parent_id"] == outer
        assert by_name["runtime.launch"]["args"]["parent_id"] == outer

    def test_span_events_become_instants(self):
        events = chrome_trace_events(sample_tracer().spans())
        instants = [e for e in events if e["ph"] == "i"]
        assert instants and instants[0]["name"] == "milestone"

    def test_load_trace_reconstructs_spans(self, tmp_path):
        tracer = sample_tracer()
        path = str(tmp_path / "trace.json")
        write_trace(path, "chrome", tracer)
        spans, metrics = load_trace(path)
        assert {s.name for s in spans} == {"outer", "inner", "runtime.launch"}
        launch, = (s for s in spans if s.name == "runtime.launch")
        assert launch.duration_s == pytest.approx(0.25, rel=1e-6)
        assert launch.category == "modeled"


class TestJsonl:
    def test_round_trip(self, tmp_path):
        tracer = sample_tracer()
        reg = MetricsRegistry()
        reg.gauge("depth").set(2.0)
        path = str(tmp_path / "trace.jsonl")
        count = write_trace(path, "jsonl", tracer, reg)
        assert count == 3

        lines = [json.loads(line) for line in open(path)]
        assert [r["type"] for r in lines] == ["span"] * 3 + ["metrics"]
        starts = [r["start_s"] for r in lines if r["type"] == "span"]
        assert starts == sorted(starts)

        spans, metrics = load_trace(path)
        assert len(spans) == 3
        assert metrics["gauges"]["depth"] == 2.0
        outer, = (s for s in spans if s.name == "outer")
        assert outer.attributes["label"] == "run"
        assert outer.events[0].name == "milestone"

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_trace(str(tmp_path / "t"), "xml", sample_tracer())


class TestCoverageAndReport:
    def test_full_coverage_for_single_root(self):
        assert timeline_coverage(sample_tracer().spans()) == pytest.approx(1.0)

    def test_modeled_spans_do_not_stretch_the_extent(self):
        """A modeled span's simulated duration can exceed the real run;
        coverage is measured against wall-clock spans only."""
        tracer = Tracer()
        with tracer.span("root"):
            tracer.record_span("runtime.launch", 100.0, category="modeled")
        assert timeline_coverage(tracer.spans()) == pytest.approx(1.0)

    def test_gap_between_roots_lowers_coverage(self):
        tracer = Tracer()
        spans = []
        with tracer.span("a") as a:
            pass
        # synthesize a second root far in the future to create a gap
        spans = tracer.spans()
        b = tracer.record_span("b", 0.0, parent=None)
        b.start_s = spans[0].end_s + 1.0
        b.end_s = b.start_s + 1.0
        cov = timeline_coverage(tracer.spans())
        assert 0.0 < cov < 1.0

    def test_empty_trace(self):
        assert timeline_coverage([]) == 0.0

    def test_text_report_sections(self):
        tracer = sample_tracer()
        reg = MetricsRegistry()
        reg.counter("ops").inc(2)
        report = text_report(tracer.spans(), reg.snapshot())
        assert "covered by root spans" in report
        assert "where the time went" in report
        assert "outer" in report and "inner" in report
        assert "ops = 2" in report

    def test_text_report_tree_indents_children(self):
        report = text_report(sample_tracer().spans())
        lines = report.splitlines()
        tree = lines[lines.index("-- timeline (hierarchical) --"):]
        outer_line = next(l for l in tree if l.lstrip().startswith("outer"))
        inner_line = next(l for l in tree if l.lstrip().startswith("inner"))
        indent = lambda l: len(l) - len(l.lstrip())
        assert indent(inner_line) > indent(outer_line)

    def test_text_report_truncates_tree(self):
        tracer = Tracer()
        for _ in range(30):
            with tracer.span("leaf"):
                pass
        report = text_report(tracer.spans(), max_tree_lines=10)
        assert "tree truncated" in report
