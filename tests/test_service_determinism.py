"""Determinism guard (ISSUE satellite): the cache and the worker pool are
*invisible* optimizations — cold vs. cache-hit and serial vs. parallel
sweeps must be byte-identical."""

from repro.core.search import lud_heatmap
from repro.devices import K40
from repro.experiments import ALL_EXPERIMENTS
from repro.kernels import get_benchmark
from repro.ptx.counter import InstructionProfile
from repro.service import CompileService

SMALL = dict(n=512, gangs=(1, 64, 256), workers=(1, 16), samples=2)


class TestColdVsCacheHit:
    def test_byte_identical_ptx_and_counters(self):
        service = CompileService()
        bench = get_benchmark("lud")
        module = bench.module()

        cold = service.compile(module, "caps", "cuda")
        assert service.metrics.compiles == 1
        warm = service.compile(module, "caps", "cuda")
        assert service.metrics.compiles == 1  # no recompilation
        assert service.metrics.cache_hits == 1

        for kernel_cold, kernel_warm in zip(cold.kernels, warm.kernels):
            assert kernel_cold.ptx.render() == kernel_warm.ptx.render()
            assert (InstructionProfile.of(kernel_cold.ptx).as_row()
                    == InstructionProfile.of(kernel_warm.ptx).as_row())
        assert cold.log == warm.log

    def test_heatmap_cold_vs_warm(self):
        service = CompileService()
        bench = get_benchmark("lud")
        cold = lud_heatmap(bench, K40, "caps", service=service, **SMALL)
        compiles_after_cold = service.metrics.compiles
        warm = lud_heatmap(bench, K40, "caps", service=service, **SMALL)
        assert service.metrics.compiles == compiles_after_cold
        assert warm.times == cold.times
        assert warm.render() == cold.render()


class TestSerialVsParallel:
    def test_heatmap_jobs4_byte_identical(self):
        bench = get_benchmark("lud")
        serial = lud_heatmap(bench, K40, "caps", jobs=1, **SMALL)
        parallel = lud_heatmap(bench, K40, "caps", jobs=4, **SMALL)
        assert parallel.times == serial.times
        assert parallel.render() == serial.render()

    def test_parallel_compiled_ptx_identical(self):
        from repro.core.search import distribution_requests

        bench = get_benchmark("lud")
        requests = distribution_requests(bench, "caps", "cuda",
                                         (1, 128), (1, 32))
        serial = CompileService(jobs=1).compile_many(requests)
        pooled = CompileService(jobs=4).compile_many(requests)
        for a, b in zip(serial, pooled):
            for ka, kb in zip(a.kernels, b.kernels):
                assert ka.ptx.render() == kb.ptx.render()


class TestExperimentRows:
    def test_fig4_rows_identical_across_runs(self):
        """fig4 shares the process-default service: a re-run is fully
        cache-hit and must produce identical rows."""
        first = ALL_EXPERIMENTS["fig4"]()
        second = ALL_EXPERIMENTS["fig4"]()
        assert first.rows == second.rows
        assert first.rendered == second.rendered
        assert [c.passed for c in first.claims] == [
            c.passed for c in second.claims
        ]
