"""Tests for the C printer, including parse -> print -> parse round trips."""

import pytest

from repro.frontend import parse_expr, parse_kernel
from repro.ir import format_expr, print_kernel, print_module, print_stmt
from repro.ir.stmt import Module


class TestFormatExpr:
    @pytest.mark.parametrize(
        "source",
        [
            "a + b * c",
            "(a + b) * c",
            "a / b / c",
            "a - (b - c)",
            "a < b && c >= d",
            "sqrt(x * x + y * y)",
            "q[1][i] + q[0][i]",
            "a[i * n + j]",
            "p ? x + 1 : y",
            "-x * 2",
        ],
    )
    def test_round_trip(self, source):
        expr = parse_expr(source)
        assert parse_expr(format_expr(expr)) == expr

    def test_minimal_parens(self):
        assert format_expr(parse_expr("a + b * c")) == "a + b * c"
        assert format_expr(parse_expr("(a + b) * c")) == "(a + b) * c"

    def test_float_suffixes(self):
        assert format_expr(parse_expr("2.5f")).endswith("f")
        assert "f" not in format_expr(parse_expr("2.5"))


KERNELS = [
    """
void saxpy(float *y, const float *x, float alpha, int n) {
    int i;
    #pragma acc loop independent gang(8) worker(32)
    for (i = 0; i < n; i++) {
        y[i] = y[i] + alpha * x[i];
    }
}
""",
    """
void nested(float *a, int n) {
    int i, j;
    for (i = 0; i < n; i++) {
        for (j = i; j < n; j++) {
            float s = a[i * n + j];
            if (s > 0.0f) {
                a[i * n + j] = sqrt(s);
            } else {
                a[i * n + j] = 0.0f;
            }
        }
    }
}
""",
]


class TestKernelRoundTrip:
    @pytest.mark.parametrize("source", KERNELS)
    def test_fixpoint(self, source):
        once = print_kernel(parse_kernel(source))
        twice = print_kernel(parse_kernel(once))
        assert once == twice

    def test_directives_survive(self):
        text = print_kernel(parse_kernel(KERNELS[0]))
        assert "#pragma acc loop independent gang(8) worker(32)" in text

    def test_module_printer(self):
        mod = Module("m", [parse_kernel(k) for k in KERNELS])
        text = print_module(mod)
        assert "void saxpy" in text and "void nested" in text

    def test_print_stmt(self):
        k = parse_kernel(KERNELS[0])
        assert "for (i = 0; i < n; i++) {" in print_stmt(k.body)
