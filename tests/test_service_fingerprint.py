"""Fingerprint hygiene: every semantic input perturbs the digest, no
insignificant detail does (ISSUE satellite: fingerprint hygiene)."""

import pytest

from repro.compilers.flags import FlagSet
from repro.devices import K40, PHI_5110P
from repro.frontend import parse_module
from repro.service import (
    COMPILER_VERSIONS,
    CompileRequest,
    canonical_flags,
    fingerprint_request,
)

SOURCE = """
#pragma acc kernels
void demo(float *a, const float *b, int n) {
  int i;
  #pragma acc loop independent
  for (i = 0; i < n; i++) {
    a[i] = b[i] * 2.0f;
  }
}
"""

OTHER_SOURCE = SOURCE.replace("2.0f", "3.0f")


@pytest.fixture
def module():
    return parse_module(SOURCE, "demo")


class TestStability:
    def test_same_inputs_same_fingerprint(self, module):
        assert (fingerprint_request(module, "caps", "cuda")
                == fingerprint_request(module, "caps", "cuda"))

    def test_reparse_same_source_same_fingerprint(self, module):
        """Two IR instances of the same source are the same request,
        even though their loop ids differ."""
        reparsed = parse_module(SOURCE, "demo")
        assert (fingerprint_request(module, "caps", "cuda")
                == fingerprint_request(reparsed, "caps", "cuda"))

    def test_request_memoizes(self, module):
        request = CompileRequest(module, "caps", "cuda")
        assert request.fingerprint == request.fingerprint
        assert request.fingerprint == fingerprint_request(
            module, "caps", "cuda"
        )

    def test_compiler_case_insensitive(self, module):
        assert (fingerprint_request(module, "CAPS", "cuda")
                == fingerprint_request(module, "caps", "cuda"))


class TestEverySemanticInputPerturbs:
    def test_source_text(self, module):
        other = parse_module(OTHER_SOURCE, "demo")
        assert (fingerprint_request(module, "caps", "cuda")
                != fingerprint_request(other, "caps", "cuda"))

    def test_module_name(self, module):
        renamed = parse_module(SOURCE, "demo2")
        assert (fingerprint_request(module, "caps", "cuda")
                != fingerprint_request(renamed, "caps", "cuda"))

    def test_compiler(self, module):
        assert (fingerprint_request(module, "caps", "cuda")
                != fingerprint_request(module, "pgi", "cuda"))

    def test_target(self, module):
        assert (fingerprint_request(module, "caps", "cuda")
                != fingerprint_request(module, "caps", "opencl"))

    def test_single_flag(self, module):
        base = FlagSet("PGI", ("-O4", "-fast"))
        more = FlagSet("PGI", ("-O4", "-fast", "-Munroll"))
        assert (fingerprint_request(module, "pgi", "cuda", base)
                != fingerprint_request(module, "pgi", "cuda", more))

    def test_no_flags_vs_empty_flagset(self, module):
        """Compiler defaults and an explicit empty flag set are distinct
        requests (the empty set still names a compiler)."""
        assert (fingerprint_request(module, "pgi", "cuda", None)
                != fingerprint_request(module, "pgi", "cuda",
                                       FlagSet("PGI", ())))

    def test_device_spec(self, module):
        assert (fingerprint_request(module, "caps", "cuda", device=K40)
                != fingerprint_request(module, "caps", "cuda",
                                       device=PHI_5110P))
        assert (fingerprint_request(module, "caps", "cuda", device=K40)
                != fingerprint_request(module, "caps", "cuda", device=None))


class TestInsignificantDetailDoesNot:
    def test_flag_order(self, module):
        ab = FlagSet("PGI", ("-O4", "-fast"))
        ba = FlagSet("PGI", ("-fast", "-O4"))
        assert (fingerprint_request(module, "pgi", "cuda", ab)
                == fingerprint_request(module, "pgi", "cuda", ba))

    def test_duplicate_flags(self, module):
        once = FlagSet("PGI", ("-O4",))
        twice = FlagSet("PGI", ("-O4", "-O4"))
        assert (fingerprint_request(module, "pgi", "cuda", once)
                == fingerprint_request(module, "pgi", "cuda", twice))

    def test_gridify_flag_spellings_collapse(self, module):
        """The -Xhmppcg flag spelling and the parsed blocksize are the
        same request."""
        spelled = FlagSet("CAPS", ("-Xhmppcg -grid-block-size,32x4",))
        parsed = FlagSet("CAPS", (), gridify_blocksize=(32, 4))
        assert (fingerprint_request(module, "caps", "cuda", spelled)
                == fingerprint_request(module, "caps", "cuda", parsed))
        other = FlagSet("CAPS", (), gridify_blocksize=(64, 2))
        assert (fingerprint_request(module, "caps", "cuda", spelled)
                != fingerprint_request(module, "caps", "cuda", other))


class TestCanonicalFlags:
    def test_none_is_tagged(self):
        assert canonical_flags(None) == ("<default-flags>",)

    def test_sorted_and_deduped(self):
        flags = FlagSet("PGI", ("-fast", "-O4", "-fast"))
        assert canonical_flags(flags) == ("compiler=PGI", "-O4", "-fast")


def test_versions_cover_modeled_compilers():
    """The paper's tool-chain versions are pinned into the fingerprint."""
    assert COMPILER_VERSIONS["caps"] == "3.4.1"
    assert COMPILER_VERSIONS["pgi"] == "14.9"
