"""Metrics registry: instruments, dedup of percentile(), Reportable."""

import threading

import pytest

from repro.frontend import parse_module
from repro.runtime.profiler import Profiler
from repro.service import CompileService
from repro.service import metrics as service_metrics
from repro.telemetry import registry as telemetry_registry
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Reportable,
    percentile,
)

SOURCE = """
#pragma acc kernels
void demo(float *a, const float *b, int n) {
  int i;
  #pragma acc loop independent
  for (i = 0; i < n; i++) {
    a[i] = b[i] * 2.0f;
  }
}
"""


class TestInstruments:
    def test_counter(self):
        c = Counter("requests")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("requests").inc(-1)

    def test_gauge(self):
        g = Gauge("depth")
        g.set(3.0)
        g.add(-1.0)
        assert g.value == 2.0

    def test_histogram_summary(self):
        h = Histogram("latency")
        h.observe_many([1.0, 2.0, 3.0, 4.0])
        s = h.summary()
        assert s["count"] == 4.0
        assert s["sum"] == pytest.approx(10.0)
        assert s["min"] == 1.0
        assert s["max"] == 4.0
        assert h.quantile(0.5) == pytest.approx(percentile([1, 2, 3, 4], 0.5))

    def test_empty_histogram_summary_is_zeroes(self):
        s = Histogram("empty").summary()
        assert s["count"] == 0.0
        assert s["p95"] == 0.0


class TestPercentileDedup:
    def test_single_implementation(self):
        """Satellite: percentile() lives in telemetry; service.metrics
        re-exports the same object."""
        assert service_metrics.percentile is telemetry_registry.percentile

    def test_reexport_in_service_all(self):
        assert "percentile" in service_metrics.__all__

    def test_values(self):
        assert percentile([], 0.5) == 0.0
        assert percentile([5.0], 0.95) == 5.0
        assert percentile([1.0, 2.0, 3.0, 4.0], 0.0) == 1.0
        assert percentile([1.0, 2.0, 3.0, 4.0], 1.0) == 4.0


class TestReportable:
    def test_registry_is_reportable(self):
        assert isinstance(MetricsRegistry(), Reportable)

    def test_service_components_are_reportable(self):
        service = CompileService()
        assert isinstance(service, Reportable)
        assert isinstance(service.metrics, Reportable)

    def test_plain_object_is_not(self):
        assert not isinstance(object(), Reportable)

    def test_profiler_attach_uses_protocol(self):
        class FakeService:
            def report_lines(self):
                return ["-- fake --"]

        prof = Profiler()
        prof.attach_service(FakeService())
        assert "-- fake --" in prof.report()

    def test_profiler_attach_rejects_non_reportable(self):
        with pytest.raises(TypeError, match="report_lines"):
            Profiler().attach_service(object())


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_name_unique_across_kinds(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")
        with pytest.raises(ValueError):
            reg.histogram("x")

    def test_snapshot_sorted_and_complete(self):
        reg = MetricsRegistry()
        reg.counter("b.count").inc(2)
        reg.counter("a.count").inc(1)
        reg.gauge("z.depth").set(1.5)
        reg.histogram("m.lat").observe(0.25)
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["a.count", "b.count"]
        assert snap["counters"]["b.count"] == 2
        assert snap["gauges"]["z.depth"] == 1.5
        assert snap["histograms"]["m.lat"]["count"] == 1.0

    def test_report_lines_mention_every_instrument(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc(3)
        reg.histogram("lat").observe(0.5)
        text = "\n".join(reg.report_lines())
        assert "hits = 3" in text
        assert "lat: n=1" in text

    def test_snapshot_deterministic_under_concurrent_increments(self):
        """Two registries fed identical totals through different thread
        interleavings serialize identically."""
        def hammer(reg, nthreads=4, per_thread=250):
            def work():
                for _ in range(per_thread):
                    reg.counter("ops").inc()
                    reg.gauge("level").set(7.0)
            threads = [threading.Thread(target=work) for _ in range(nthreads)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

        a, b = MetricsRegistry(), MetricsRegistry()
        hammer(a)
        hammer(b)
        assert a.snapshot() == b.snapshot()
        assert a.snapshot()["counters"]["ops"] == 1000


class TestPublishing:
    def test_service_metrics_publish(self):
        service = CompileService()
        module = parse_module(SOURCE, "demo")
        service.compile(module, "caps", "cuda")
        service.compile(module, "caps", "cuda")  # cache hit

        reg = MetricsRegistry()
        service.publish(reg)
        snap = reg.snapshot()
        assert snap["gauges"]["service.requests"] == 2
        assert snap["gauges"]["service.cache_hits"] == 1
        assert snap["gauges"]["cache.misses"] == 1
        assert snap["histograms"]["service.compile_seconds"]["count"] == 1.0

    def test_publish_is_idempotent(self):
        service = CompileService()
        module = parse_module(SOURCE, "demo")
        service.compile(module, "caps", "cuda")

        reg = MetricsRegistry()
        service.publish(reg)
        first = reg.snapshot()
        service.publish(reg)
        assert reg.snapshot() == first

    def test_profiler_publish(self):
        prof = Profiler()
        prof.record("h2d", "a", 0.001, nbytes=4096)
        prof.record("launch", "demo", 0.002)
        reg = MetricsRegistry()
        prof.publish(reg)
        snap = reg.snapshot()
        assert snap["gauges"]["runtime.launch.events"] == 1
        assert snap["gauges"]["runtime.h2d.seconds"] == pytest.approx(0.001)
        assert snap["gauges"]["runtime.transfer_bytes"] == 4096
