"""Tests for the vectorizing executor backend (docs/EXECUTOR.md).

The design invariant under test is *bit*-compatibility: every kernel the
vectorizer accepts must produce byte-identical buffers to the scalar
interpreter, including NEP-50 weak-scalar promotion, C integer division,
masked stores, snapshot semantics, and left-to-right reductions.
"""

import numpy as np
import pytest

from repro.frontend import parse_kernel
from repro.runtime.executor import (
    ExecMode,
    LoopSemantics,
    clear_kernel_cache,
    compile_kernel_fn,
    execute_kernel,
    kernel_python_source,
)
from repro.telemetry import get_registry, reset_registry


def _fresh(args):
    return {
        k: (v.copy() if isinstance(v, np.ndarray) else v)
        for k, v in args.items()
    }


def run_both(kernel, args, semantics=None):
    """Execute on both backends; assert byte-identical arrays."""
    scalar, vector = _fresh(args), _fresh(args)
    execute_kernel(kernel, scalar, semantics, backend="scalar")
    execute_kernel(kernel, vector, semantics, backend="vector")
    for name, ref in scalar.items():
        if isinstance(ref, np.ndarray):
            assert ref.tobytes() == vector[name].tobytes(), name
    return scalar


def _vector_loop_count(kernel, semantics=None):
    from repro.runtime.vectorize import _VectorCodeGen

    gen = _VectorCodeGen(kernel, semantics)
    gen.source()
    return gen.vectorized_loops, gen.fallback_loops


class TestBitCompat:
    def test_stream(self):
        k = parse_kernel(
            "void f(float *a, const float *b, int n) { int i; "
            "for (i = 0; i < n; i++) a[i] = b[i] * 2.0f + 1.0f; }"
        )
        args = {"a": np.zeros(64), "b": np.linspace(-3, 3, 64), "n": 64}
        run_both(k, args)
        assert _vector_loop_count(k) == (1, 0)

    def test_float32_promotion_chain(self):
        # float32 buffers + weak Python literals: the promotion path
        # where a wrong cast placement shows up immediately
        k = parse_kernel(
            "void f(float *a, const float *b, float x, int n) { int i; "
            "for (i = 0; i < n; i++) a[i] = b[i] * x + 0.25f - a[i] / 3.0f; }"
        )
        rng = np.random.default_rng(0)
        args = {
            "a": rng.normal(size=33).astype(np.float32),
            "b": rng.normal(size=33).astype(np.float32),
            "x": 1.7,
            "n": 33,
        }
        run_both(k, args)

    def test_masked_guard(self):
        k = parse_kernel(
            "void f(float *a, const float *b, int n) { int i; "
            "for (i = 0; i < n; i++) { "
            "if (b[i] > 0.0f) a[i] = b[i]; else a[i] = -b[i]; } }"
        )
        args = {"a": np.zeros(32), "b": np.linspace(-1, 1, 32), "n": 32}
        run_both(k, args)
        assert _vector_loop_count(k) == (1, 0)

    def test_gather_offset_snapshot(self):
        # a[i] reads a[i-1]: under snapshot semantics the read hits the
        # loop-entry copy, which the vector backend must reproduce
        k = parse_kernel(
            "void f(float *a, int n) { int i; "
            "for (i = 1; i < n; i++) a[i] = a[i - 1] + 1.0f; }"
        )
        lid = k.loops()[0].loop_id
        sem = {lid: LoopSemantics(ExecMode.PARALLEL_SNAPSHOT)}
        args = {"a": np.arange(16, dtype=np.float64), "n": 16}
        run_both(k, args, sem)
        assert _vector_loop_count(k, sem) == (1, 0)

    def test_scalar_reduction(self):
        k = parse_kernel(
            "void f(const float *a, float *out, int n) { int i; "
            "float s = 0.0f; for (i = 0; i < n; i++) s += a[i] * a[i];\n"
            "out[0] = s; }"
        )
        rng = np.random.default_rng(1)
        args = {"a": rng.normal(size=100), "out": np.zeros(1), "n": 100}
        run_both(k, args)
        assert _vector_loop_count(k) == (1, 0)

    def test_product_reduction(self):
        k = parse_kernel(
            "void f(const float *a, float *out, int n) { int i; "
            "float p = 1.0f; for (i = 0; i < n; i++) p *= a[i];\n"
            "out[0] = p; }"
        )
        rng = np.random.default_rng(2)
        args = {
            "a": 1.0 + 0.01 * rng.normal(size=40),
            "out": np.zeros(1), "n": 40,
        }
        run_both(k, args)

    def test_c_integer_division(self):
        k = parse_kernel(
            "void f(int *q, int *r, const int *a, int d, int n) { int i; "
            "for (i = 0; i < n; i++) { q[i] = a[i] / d; r[i] = a[i] % d; } }"
        )
        a = np.array([-9, -7, -1, 0, 1, 7, 9, 11], dtype=np.int32)
        args = {
            "q": np.zeros(8, dtype=np.int32),
            "r": np.zeros(8, dtype=np.int32),
            "a": a, "d": 2, "n": 8,
        }
        run_both(k, args)
        assert _vector_loop_count(k) == (1, 0)

    def test_ternary_and_cast(self):
        k = parse_kernel(
            "void f(float *a, const int *b, int n) { int i; "
            "for (i = 0; i < n; i++) "
            "a[i] = b[i] > 2 ? (float) b[i] : 0.5f; }"
        )
        args = {
            "a": np.zeros(10),
            "b": np.arange(10, dtype=np.int32), "n": 10,
        }
        run_both(k, args)

    def test_sqrt_vector(self):
        k = parse_kernel(
            "void f(float *a, const float *b, int n) { int i; "
            "for (i = 0; i < n; i++) a[i] = sqrt(b[i] + 2.0f); }"
        )
        args = {"a": np.zeros(20), "b": np.linspace(0, 5, 20), "n": 20}
        run_both(k, args)

    def test_loop_var_leaks_final_value(self):
        # C/Python both leak the loop variable; code after the loop may
        # read it, so the vector lowering must restore it
        k = parse_kernel(
            "void f(float *a, int n) { int i; "
            "for (i = 0; i < n; i++) a[i] = 1.0f;\n"
            "a[0] = (float) i; }"
        )
        args = {"a": np.zeros(8), "n": 8}
        out = run_both(k, args)
        assert out["a"][0] == 7.0

    def test_empty_trip_count(self):
        k = parse_kernel(
            "void f(float *a, int n) { int i; "
            "for (i = 0; i < n; i++) a[i] = 1.0f; }"
        )
        args = {"a": np.full(4, 9.0), "n": 0}
        out = run_both(k, args)
        assert out["a"].tolist() == [9.0] * 4


class TestWriteOrdering:
    def test_multi_writer_snapshot_interleaves(self):
        # two statements write overlapping cells of 'a': the final value
        # depends on the scalar loop's iteration-major write order, which
        # the deferred _vstore_multi scatter must reproduce
        k = parse_kernel(
            "void f(float *a, const float *b, int k, int n) { int j; "
            "for (j = 0; j < n; j++) { "
            "if (j != 3) { a[k] = a[k + 1] * 0.75f; } "
            "a[j] = a[j] + b[j]; } }"
        )
        lid = k.loops()[0].loop_id
        sem = {lid: LoopSemantics(ExecMode.PARALLEL_SNAPSHOT)}
        rng = np.random.default_rng(3)
        for cell in range(4):
            args = {
                "a": rng.normal(size=8), "b": rng.normal(size=8),
                "k": cell, "n": 4,
            }
            run_both(k, args, sem)
        assert _vector_loop_count(k, sem) == (1, 0)

    def test_single_writer_stays_direct(self):
        k = parse_kernel(
            "void f(float *a, float *b, int n) { int j; "
            "for (j = 0; j < n; j++) { a[j] = b[j] * 2.0f; "
            "b[j] = b[j] + 1.0f; } }"
        )
        lid = k.loops()[0].loop_id
        sem = {lid: LoopSemantics(ExecMode.PARALLEL_SNAPSHOT)}
        args = {"a": np.zeros(8), "b": np.arange(8, dtype=np.float64),
                "n": 8}
        run_both(k, args, sem)
        source = kernel_python_source(k, sem, backend="vector")
        assert "_vstore_multi" not in source


class TestFallbacks:
    def test_atomic_compound_never_vectorizes(self):
        # analyze_loop excludes atomics from its write set, so the
        # INDEPENDENT verdict cannot vouch for them: c[k] *= x applies
        # once per iteration even though k is loop-invariant
        k = parse_kernel(
            "void f(float *c, int k, int n) { int j; "
            "for (j = 0; j < n; j++) {\n"
            "#pragma acc atomic\n"
            "c[k] = c[k] * 0.75f; } }"
        )
        args = {"c": np.full(4, 16.0), "k": 1, "n": 4}
        out = run_both(k, args)
        assert out["c"][1] == pytest.approx(16.0 * 0.75**4)
        assert _vector_loop_count(k) == (0, 1)

    def test_dependent_sequential_falls_back(self):
        k = parse_kernel(
            "void f(float *a, int n) { int i; "
            "for (i = 1; i < n; i++) a[i] = a[i - 1] + 1.0f; }"
        )
        args = {"a": np.zeros(16), "n": 16}
        run_both(k, args)  # recurrence: must run scalar
        assert _vector_loop_count(k) == (0, 1)

    def test_last_chunk_falls_back(self):
        k = parse_kernel(
            "void f(const float *a, float *out, int n) { int i; "
            "float s = 0.0f; for (i = 0; i < n; i++) s += a[i];\n"
            "out[0] = s; }"
        )
        lid = k.loops()[0].loop_id
        sem = {lid: LoopSemantics(ExecMode.REDUCTION_LAST_CHUNK, chunks=4)}
        args = {"a": np.ones(16), "out": np.zeros(1), "n": 16}
        out = run_both(k, args, sem)
        assert out["out"][0] == 4.0
        assert _vector_loop_count(k, sem) == (0, 1)

    def test_nested_loop_outer_falls_back_inner_vectorizes(self):
        k = parse_kernel(
            "void f(float *a, int n) { int i; int j; "
            "for (i = 0; i < n; i++) { "
            "for (j = 0; j < n; j++) a[i * n + j] = a[i * n + j] * 2.0f; } }"
        )
        args = {"a": np.arange(16, dtype=np.float64), "n": 4}
        run_both(k, args)
        assert _vector_loop_count(k) == (1, 1)


class TestCheckBackendAndTelemetry:
    def test_check_backend_runs_and_matches(self):
        k = parse_kernel(
            "void f(float *a, const float *b, int n) { int i; "
            "for (i = 0; i < n; i++) a[i] = b[i] * 2.0f; }"
        )
        a = np.zeros(8)
        execute_kernel(
            k, {"a": a, "b": np.arange(8, dtype=np.float64), "n": 8},
            backend="check",
        )
        assert a[3] == 6.0

    def test_vectorized_counter_increments(self):
        k = parse_kernel(
            "void f(float *a, int n) { int i; "
            "for (i = 0; i < n; i++) a[i] = 1.0f; }"
        )
        clear_kernel_cache()
        reset_registry()
        execute_kernel(k, {"a": np.zeros(4), "n": 4}, backend="vector")
        assert get_registry().counter("executor.vectorized").value == 1
        assert get_registry().counter("executor.fallback").value == 0

    def test_fallback_counter_increments(self):
        k = parse_kernel(
            "void f(float *a, int n) { int i; "
            "for (i = 1; i < n; i++) a[i] = a[i - 1] + 1.0f; }"
        )
        clear_kernel_cache()
        reset_registry()
        execute_kernel(k, {"a": np.zeros(4), "n": 4}, backend="vector")
        assert get_registry().counter("executor.fallback").value == 1

    def test_vector_source_uses_arrays(self):
        k = parse_kernel(
            "void f(float *a, int n) { int i; "
            "for (i = 0; i < n; i++) a[i] = 2.0f; }"
        )
        source = kernel_python_source(k, backend="vector")
        assert "np.arange" in source
        compile(source, "<test>", "exec")

    def test_backends_cache_separately(self):
        k = parse_kernel(
            "void f(float *a, int n) { int i; "
            "for (i = 0; i < n; i++) a[i] = 1.0f; }"
        )
        clear_kernel_cache()
        reset_registry()
        compile_kernel_fn(k, backend="scalar")
        compile_kernel_fn(k, backend="vector")
        assert get_registry().counter("executor.cache_hit").value == 0
        compile_kernel_fn(k, backend="vector")
        assert get_registry().counter("executor.cache_hit").value == 1


def _ground_truth_corpus_check(seeds):
    """Scalar-vs-vector over generated cases' ground-truth executions."""
    from repro.difftest.generator import generate_case, make_inputs

    checked = 0
    for seed in seeds:
        case = generate_case(seed)
        for kernel in case.module.kernels:
            args = make_inputs(
                kernel, case.extents[kernel.name], f"vec{seed}:{kernel.name}"
            )
            run_both(kernel, args)
            checked += 1
    assert checked > 0


class TestCorpusEquivalence:
    def test_ground_truth_subset(self):
        # fast tier-1 slice of the corpus, no compilation involved
        _ground_truth_corpus_check(range(10))

    def test_compiled_plan_regressions(self):
        # seeds whose *compiled* execution plans historically exposed
        # vectorizer legality holes (multi-writer snapshot ordering;
        # atomic updates invisible to the dependence analyzer)
        from repro.difftest.generator import generate_case, make_inputs
        from repro.difftest.harness import PAIRS
        from repro.ir.visitors import clone_kernel
        from repro.service import CompileRequest, CompileService, JobError

        service = CompileService()
        checked = 0
        for seed in (2, 47):
            case = generate_case(seed)
            requests = [
                CompileRequest(case.module, c, t, label=f"vec{seed}")
                for c, t, _d in PAIRS
            ]
            for (c, t, device), result in zip(PAIRS, service.sweep(requests)):
                if isinstance(result, JobError):
                    continue
                for kernel in case.module.kernels:
                    try:
                        compiled = result.kernel(kernel.name)
                    except KeyError:
                        continue
                    sem = (
                        {} if compiled.elided
                        else compiled.executor_semantics(device)
                    )
                    args = make_inputs(
                        kernel, case.extents[kernel.name],
                        f"vec{seed}:{kernel.name}",
                    )
                    run_both(clone_kernel(compiled.ir), args, sem)
                    checked += 1
        assert checked > 0

    @pytest.mark.slow
    def test_full_corpus_under_check_backend(self):
        # acceptance gate: the whole 50-seed differential sweep with
        # every execution running both backends and asserting bit-equal
        from repro.difftest import run_difftest
        from repro.service import CompileService

        report = run_difftest(
            range(50), service=CompileService(), exec_backend="check"
        )
        assert report.unexplained == [], [
            detail
            for case in report.unexplained
            for detail in case.unexplained_details()
        ]


class TestLoopLocals:
    """ISSUE-9 lift: top-level loop locals vectorize via np.where masking
    instead of rejecting the whole loop."""

    def test_guarded_local_masked_update(self):
        k = parse_kernel(
            "void f(float *a, const float *b, int n) { int i; "
            "for (i = 0; i < n; i++) { float t = b[i] * 2.0f; "
            "if (b[i] > 0.0f) { t = t + 1.0f; } a[i] = t; } }"
        )
        args = {"a": np.zeros(32), "b": np.linspace(-2, 2, 32), "n": 32}
        run_both(k, args)
        assert _vector_loop_count(k) == (1, 0)

    def test_local_without_initializer(self):
        k = parse_kernel(
            "void f(float *a, const float *b, int n) { int i; "
            "for (i = 0; i < n; i++) { float t; t = b[i] * 0.5f; "
            "a[i] = t + t; } }"
        )
        args = {"a": np.zeros(16), "b": np.linspace(0, 3, 16), "n": 16}
        run_both(k, args)
        assert _vector_loop_count(k) == (1, 0)

    def test_int_local_masked(self):
        k = parse_kernel(
            "void f(float *a, const float *b, int n) { int i; "
            "for (i = 0; i < n; i++) { int t = 0; "
            "if (b[i] > 0.5f) { t = 1; } a[i] = b[i] + t; } }"
        )
        args = {"a": np.zeros(16), "b": np.linspace(0, 1, 16), "n": 16}
        run_both(k, args)
        assert _vector_loop_count(k) == (1, 0)

    def test_compound_update_on_local(self):
        k = parse_kernel(
            "void f(float *a, const float *b, int n) { int i; "
            "for (i = 0; i < n; i++) { float t = b[i]; t += 1.0f; "
            "t *= 2.0f; a[i] = t; } }"
        )
        args = {"a": np.zeros(16), "b": np.linspace(-1, 1, 16), "n": 16}
        run_both(k, args)
        assert _vector_loop_count(k) == (1, 0)

    def test_empty_loop_does_not_clobber(self):
        # the vectorized body is wrapped in `if iv.size:` when locals
        # exist, so an empty range must not define or clobber names
        k = parse_kernel(
            "void f(float *a, const float *b, int n) { int i; "
            "for (i = 0; i < n; i++) { float t = b[i]; a[i] = t; } }"
        )
        args = {"a": np.ones(4), "b": np.zeros(4), "n": 0}
        run_both(k, args)

    def test_division_compound_falls_back(self):
        # scalar `t /= x` is Python true division on a float local, not
        # the C-truncation helper: reject rather than approximate
        k = parse_kernel(
            "void f(float *a, const float *b, int n) { int i; "
            "for (i = 0; i < n; i++) { float t = b[i]; t /= 2.0f; "
            "a[i] = t; } }"
        )
        args = {"a": np.zeros(8), "b": np.linspace(1, 2, 8), "n": 8}
        run_both(k, args)
        assert _vector_loop_count(k) == (0, 1)

    def test_decl_under_if_falls_back_with_reason(self):
        k = parse_kernel(
            "void f(float *a, const float *b, int n) { int i; "
            "for (i = 0; i < n; i++) { "
            "if (b[i] > 0.0f) { float t = 1.0f; a[i] = t; } } }"
        )
        args = {"a": np.zeros(8), "b": np.linspace(-1, 1, 8), "n": 8}
        run_both(k, args)
        from repro.runtime.vectorize import _VectorCodeGen

        gen = _VectorCodeGen(k, None)
        gen.source()
        assert gen.fallback_reasons == {"guarded-loop": 1}


class TestMultiDimVector:
    """ISSUE-9 lift: rank-N element stores and gathers via fancy
    indexing instead of rejecting multi-dim subscripts."""

    def test_rank2_store_and_gather(self):
        k = parse_kernel(
            "void f(float a[8][8], const float b[8][8], int n) { int i; "
            "for (i = 0; i < n; i++) a[i][3] = b[i][2] * 2.0f + b[0][1]; }"
        )
        b = np.arange(64, dtype=np.float32).reshape(8, 8)
        args = {"a": np.zeros((8, 8), dtype=np.float32), "b": b, "n": 8}
        run_both(k, args)
        assert _vector_loop_count(k) == (1, 0)

    def test_rank2_guarded_store(self):
        k = parse_kernel(
            "void f(float a[8][8], const float b[8][8], int n) { int i; "
            "for (i = 0; i < n; i++) { "
            "if (b[i][0] > 8.0f) { a[i][1] = b[i][0]; } } }"
        )
        b = np.arange(64, dtype=np.float32).reshape(8, 8)
        args = {"a": np.zeros((8, 8), dtype=np.float32), "b": b, "n": 8}
        run_both(k, args)
        assert _vector_loop_count(k) == (1, 0)

    def test_rank2_affine_row_offset(self):
        k = parse_kernel(
            "void f(float a[8][8], const float b[8][8], int n) { int i; "
            "for (i = 1; i < n; i++) a[i][2] = b[i - 1][2] + 1.0f; }"
        )
        b = np.arange(64, dtype=np.float32).reshape(8, 8)
        args = {"a": np.zeros((8, 8), dtype=np.float32), "b": b, "n": 8}
        run_both(k, args)
        assert _vector_loop_count(k) == (1, 0)


class TestFallbackReasonHistogram:
    """Every executor.fallback increment carries a reason tag; the
    histogram drives which rejection classes get lifted next."""

    def _reasons(self, kernel, semantics=None):
        from repro.runtime.vectorize import _VectorCodeGen

        gen = _VectorCodeGen(kernel, semantics)
        gen.source()
        return gen.fallback_reasons

    def test_nested_loop_reason(self):
        k = parse_kernel(
            "void f(float *a, int n) { int i; int j; "
            "for (i = 0; i < n; i++) { "
            "for (j = 0; j < n; j++) a[i * n + j] = a[i * n + j] * 2.0f; } }"
        )
        assert self._reasons(k) == {"nested-loop": 1}

    def test_atomics_reason(self):
        k = parse_kernel(
            "void f(float *c, int k, int n) { int j; "
            "for (j = 0; j < n; j++) {\n"
            "#pragma acc atomic\n"
            "c[k] = c[k] * 0.75f; } }"
        )
        assert self._reasons(k) == {"atomics": 1}

    def test_dependence_reason(self):
        k = parse_kernel(
            "void f(float *a, int n) { int i; "
            "for (i = 1; i < n; i++) a[i] = a[i - 1] + 1.0f; }"
        )
        assert self._reasons(k) == {"dependence": 1}

    def test_reduction_last_chunk_reason(self):
        k = parse_kernel(
            "void f(const float *a, float *out, int n) { int i; "
            "float s = 0.0f; for (i = 0; i < n; i++) s += a[i];\n"
            "out[0] = s; }"
        )
        lid = k.loops()[0].loop_id
        sem = {lid: LoopSemantics(ExecMode.REDUCTION_LAST_CHUNK, chunks=4)}
        assert self._reasons(k, sem) == {"reduction-last-chunk": 1}

    def test_reason_counters_surface_in_registry(self):
        clear_kernel_cache()
        reset_registry()
        k = parse_kernel(
            "void f(float *a, int n) { int i; "
            "for (i = 1; i < n; i++) a[i] = a[i - 1] + 1.0f; }"
        )
        compile_kernel_fn(k, None, "vector")
        counters = get_registry().snapshot()["counters"]
        assert counters["executor.fallback"] == 1
        assert counters["executor.fallback.dependence"] == 1
