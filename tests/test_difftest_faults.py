"""Difftest under injected faults: transients fully healed by retries,
classification byte-identical to a fault-free run.

The fast 5-seed subset runs in tier 1; the full 25-seed CI corpus runs
under the ``slow`` marker (deselected by default ``-m 'not slow'``).
"""

import pytest

from repro.difftest import run_difftest
from repro.faults import parse_fault_spec
from repro.service import CompileService, RetryPolicy, SimClock

# seed 11 is verified (by running the pure hash over the corpus's
# fingerprints) to heal every point of the 25-seed corpus within 3
# retries at p=0.3 — the plan is deterministic, so this is a stable
# property of the seed, not luck
FAULT_SPEC = "transient:p=0.3,seed=11;cache:p=0.1"


def classification(report):
    """The full observable classification of a difftest report."""
    return [
        (
            case.seed,
            case.error,
            tuple(
                (pair.compiler, pair.target, pair.status, pair.degraded,
                 tuple((k.kernel, k.status, k.mismatched) for k in pair.kernels))
                for pair in case.pairs
            ),
        )
        for case in report.cases
    ]


def faulted_service(retries=3):
    return CompileService(
        fault_plan=parse_fault_spec(FAULT_SPEC),
        retry=RetryPolicy(max_retries=retries),
        clock=SimClock(),
    )


def run_corpus(seeds, service=None):
    return run_difftest(range(seeds), service=service)


def assert_healed(seeds):
    baseline = run_corpus(seeds)
    service = faulted_service()
    faulted = run_corpus(seeds, service=service)
    assert service.metrics.faults_injected > 0  # the plan actually fired
    assert service.metrics.retries > 0
    assert classification(faulted) == classification(baseline)
    assert "\n".join(faulted.summary_lines()) == "\n".join(
        baseline.summary_lines()
    )
    # fully healed: no job-error pairs anywhere
    assert not any(
        pair.status == "job-error"
        for case in faulted.cases
        for pair in case.pairs
    )


class TestDifftestUnderFaults:
    def test_fast_subset_heals_byte_identically(self):
        assert_healed(5)

    def test_without_retries_faults_surface(self):
        """The control experiment: the same plan with no retry policy
        must leave visible job errors (otherwise the healing test above
        would be vacuous)."""
        service = CompileService(
            fault_plan=parse_fault_spec(FAULT_SPEC), clock=SimClock()
        )
        report = run_corpus(5, service=service)
        assert any(
            pair.status == "job-error"
            for case in report.cases
            for pair in case.pairs
        )

    @pytest.mark.slow
    def test_full_corpus_heals_byte_identically(self):
        assert_healed(25)
