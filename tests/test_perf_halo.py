"""Halo cost-model unit tests: breakdown arithmetic, the overlap proof
per kernel family, and the telemetry lane plumbing."""

import pytest

from repro.devices import K40, DeviceTopology
from repro.kernels import BENCHMARKS, get_benchmark
from repro.perf.halo import (
    PACK_EFFICIENCY,
    HaloBreakdown,
    emit_halo_spans,
    halo_cost,
    overlap_provable,
    pack_seconds,
)
from repro.telemetry import Tracer


class TestBreakdownArithmetic:
    def test_pack_free_on_single_device(self):
        assert pack_seconds(DeviceTopology(K40, 1), 1 << 20) == 0.0

    def test_pack_is_two_passes_at_strided_efficiency(self):
        topo = DeviceTopology(K40, 2)
        nbytes = 1 << 20
        expected = 2.0 * nbytes / (K40.peak_bw_gbps * 1e9 * PACK_EFFICIENCY)
        assert pack_seconds(topo, nbytes) == pytest.approx(expected)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            pack_seconds(DeviceTopology(K40, 2), -1)

    def test_exposed_equals_total_without_overlap(self):
        bd = halo_cost(DeviceTopology(K40, 2), 1 << 20, overlap=False)
        assert not bd.overlapped
        assert bd.exposed_s == pytest.approx(bd.total_s)

    def test_overlap_hides_transfer_under_compute(self):
        topo = DeviceTopology(K40, 2)
        transfer = topo.exchange_seconds(1 << 20)
        bd = halo_cost(topo, 1 << 20, compute_s=transfer * 10, overlap=True)
        assert bd.overlapped
        assert bd.exposed_transfer_s == 0.0
        assert bd.exposed_s == pytest.approx(bd.pack_s + bd.unpack_s)

    def test_partial_overlap_exposes_the_remainder(self):
        topo = DeviceTopology(K40, 2)
        transfer = topo.exchange_seconds(1 << 20)
        bd = halo_cost(topo, 1 << 20, compute_s=transfer / 2, overlap=True)
        assert bd.exposed_transfer_s == pytest.approx(transfer / 2)

    def test_single_device_overlap_flag_is_moot(self):
        bd = halo_cost(DeviceTopology(K40, 1), 1 << 20, overlap=True)
        assert not bd.overlapped
        assert bd.total_s == 0.0

    def test_pack_and_unpack_never_overlap(self):
        # pack/unpack touch the kernel's own arrays: always exposed
        bd = HaloBreakdown(pack_s=1.0, transfer_s=5.0, unpack_s=1.0,
                           overlapped=True, compute_s=100.0)
        assert bd.exposed_s == pytest.approx(2.0)


class TestOverlapProof:
    """The schedule proof that discriminates the families."""

    def test_stencil_overlaps(self):
        # double-buffered Jacobi: writes unew, reads u
        assert overlap_provable(get_benchmark("stencil").module())

    def test_lbm_overlaps(self):
        # collide/stream alternate f and ftmp — also double-buffered
        assert overlap_provable(get_benchmark("lbm").module())

    def test_pic_stays_exposed(self):
        # atomic scatter merges into cells an unpack may touch
        assert not overlap_provable(get_benchmark("pic").module())

    @pytest.mark.parametrize("name", ["lud", "ge", "bfs", "bp", "hydro"])
    def test_legacy_families_not_provable(self, name):
        assert not overlap_provable(get_benchmark(name).module())

    def test_every_family_has_a_verdict(self):
        # the proof must terminate on every registered module
        for name in sorted(BENCHMARKS):
            assert overlap_provable(get_benchmark(name).module()) in (
                True, False,
            )


class TestHaloSpans:
    def test_spans_carry_device_lane(self):
        tracer = Tracer()
        bd = halo_cost(DeviceTopology(K40, 2), 1 << 20)
        emit_halo_spans(tracer, 1, bd, step=3)
        spans = tracer.spans()
        names = [span.name for span in spans]
        assert names == ["halo.pack", "halo.transfer", "halo.unpack"]
        assert all(span.attributes["lane"] == "device:1" for span in spans)
        assert all(span.attributes["step"] == 3 for span in spans)
        transfer = next(s for s in spans if s.name == "halo.transfer")
        assert transfer.attributes["seconds"] == pytest.approx(bd.transfer_s)
