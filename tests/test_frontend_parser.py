"""Tests for the mini-C parser."""

import pytest

from repro.frontend import ParseError, parse_expr, parse_kernel, parse_module
from repro.ir import (
    ArrayRef,
    ArrayType,
    BinOp,
    Call,
    Cast,
    DType,
    For,
    If,
    IntLit,
    Ternary,
    Var,
    While,
)


class TestExpressions:
    def test_precedence(self):
        expr = parse_expr("a + b * c")
        assert isinstance(expr, BinOp) and expr.op == "+"
        assert isinstance(expr.rhs, BinOp) and expr.rhs.op == "*"

    def test_parentheses(self):
        expr = parse_expr("(a + b) * c")
        assert expr.op == "*" and expr.lhs.op == "+"

    def test_comparison_chain(self):
        expr = parse_expr("a < b && c >= d")
        assert expr.op == "&&"

    def test_ternary(self):
        expr = parse_expr("a < b ? x : y")
        assert isinstance(expr, Ternary)

    def test_unary_minus_folds_literals(self):
        assert parse_expr("-5") == IntLit(-5)

    def test_float_suffix(self):
        expr = parse_expr("2.5f")
        assert expr.dtype is DType.FLOAT32
        assert parse_expr("2.5").dtype is DType.FLOAT64

    def test_hex_literal(self):
        assert parse_expr("0xFF") == IntLit(255)

    def test_intrinsic_call(self):
        expr = parse_expr("sqrt(x * x)")
        assert isinstance(expr, Call) and expr.func == "sqrt"

    def test_unknown_function(self):
        with pytest.raises(ParseError):
            parse_expr("frobnicate(x)")

    def test_multi_dim_index(self):
        expr = parse_expr("q[1][i]")
        assert isinstance(expr, ArrayRef) and len(expr.indices) == 2

    def test_cast(self):
        expr = parse_expr("(float)i")
        assert isinstance(expr, Cast) and expr.dtype is DType.FLOAT32


class TestKernels:
    def test_params(self):
        k = parse_kernel(
            "void f(const float *a, double **q, int n, unsigned int m) {}"
        )
        assert k.param("a").intent == "in"
        assert isinstance(k.param("q").type, ArrayType)
        assert k.param("q").type.rank == 2
        assert not k.param("n").is_array

    def test_restrict_qualifier(self):
        k = parse_kernel("void f(float * restrict a, int n) {}")
        assert k.param("a").is_array

    def test_canonical_for(self):
        k = parse_kernel(
            "void f(float *a, int n) { int i; for (i = 0; i < n; i++) a[i] = 0.0f; }"
        )
        loop = k.loops()[0]
        assert loop.var == "i" and loop.step == 1

    def test_le_condition_normalized(self):
        k = parse_kernel(
            "void f(float *a, int n) { int i; for (i = 0; i <= n; i++) a[i] = 0.0f; }"
        )
        # i <= n becomes i < n + 1
        loop = k.loops()[0]
        assert isinstance(loop.upper, BinOp) and loop.upper.op == "+"

    def test_step(self):
        k = parse_kernel(
            "void f(float *a, int n) { int i; for (i = 0; i < n; i += 4) a[i] = 0.0f; }"
        )
        assert k.loops()[0].step == 4

    def test_inline_declaration_in_for(self):
        k = parse_kernel(
            "void f(float *a, int n) { for (int i = 0; i < n; i++) a[i] = 0.0f; }"
        )
        assert k.loops()[0].var == "i"

    def test_non_canonical_condition_rejected(self):
        with pytest.raises(ParseError):
            parse_kernel(
                "void f(float *a, int n) { int i, j; for (i = 0; j < n; i++) a[i] = 0.0f; }"
            )

    def test_downward_loop_rejected(self):
        with pytest.raises(ParseError):
            parse_kernel(
                "void f(float *a, int n) { int i; for (i = n; i > 0; i--) a[i] = 0.0f; }"
            )

    def test_if_else(self):
        k = parse_kernel(
            """
            void f(float *a, int n) {
              int i;
              for (i = 0; i < n; i++) {
                if (i > 2) a[i] = 1.0f; else a[i] = 2.0f;
              }
            }
            """
        )
        body = k.loops()[0].body.stmts
        assert isinstance(body[0], If) and body[0].else_body is not None

    def test_while(self):
        k = parse_kernel(
            "void f(float *s) { while (s[0] > 0.0f) { s[0] -= 1.0f; } }"
        )
        assert isinstance(k.body.stmts[0], While)

    def test_compound_assignments(self):
        k = parse_kernel(
            """
            void f(float *a) {
              a[0] += 1.0f;
              a[1] -= 1.0f;
              a[2] *= 2.0f;
              a[3] /= 2.0f;
            }
            """
        )
        ops = [s.op for s in k.body.stmts]
        assert ops == ["+", "-", "*", "/"]

    def test_increment_statement(self):
        k = parse_kernel("void f(int *c) { c[0]++; }")
        assert k.body.stmts[0].op == "+"

    def test_multi_declarator(self):
        k = parse_kernel("void f(int n) { int i, j, k; float x = 1.0f, y; }")
        names = [s.name for s in k.body.walk() if hasattr(s, "name")]
        assert set(names) >= {"i", "j", "k", "x", "y"}

    def test_pragma_attaches_to_loop(self):
        k = parse_kernel(
            """
            void f(float *a, int n) {
              int i;
              #pragma acc loop independent
              for (i = 0; i < n; i++) a[i] = 0.0f;
            }
            """
        )
        assert len(k.loops()[0].directives) == 1

    def test_pragma_without_loop_rejected(self):
        with pytest.raises(ParseError):
            parse_kernel(
                """
                void f(float *a) {
                  #pragma acc loop independent
                  a[0] = 1.0f;
                }
                """
            )

    def test_module_with_multiple_kernels(self):
        mod = parse_module(
            "void f(int n) {}\nvoid g(int n) {}", "two"
        )
        assert [k.name for k in mod.kernels] == ["f", "g"]

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_kernel("void f(int n) {} extra")

    def test_unterminated_block(self):
        with pytest.raises(ParseError):
            parse_kernel("void f(int n) { int i;")
