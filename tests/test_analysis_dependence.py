"""Tests for loop dependence analysis (paper Table II and beyond)."""

import pytest

from repro.analysis.dependence import (
    PairClass,
    Verdict,
    analyze_kernel,
    analyze_loop,
    has_opaque_or_invariant_writes,
    loop_pair_classes,
    parallelizable_loops,
)
from repro.frontend import parse_kernel


def loop_of(source, var=None):
    k = parse_kernel(source)
    return k.loop_by_var(var) if var else k.loops()[0]


class TestTableII:
    def test_dependent_example(self):
        loop = loop_of(
            "void f(float *A) { int i; for (i = 2; i < 5; i++) A[i] = A[i-1] + 1.0f; }"
        )
        report = analyze_loop(loop)
        assert report.verdict is Verdict.DEPENDENT
        assert any("distance" in r for r in report.reasons)

    def test_independent_example(self):
        loop = loop_of(
            "void f(float *A) { int i; for (i = 2; i < 5; i++) A[i] = A[i] + 1.0f; }"
        )
        assert analyze_loop(loop).verdict is Verdict.INDEPENDENT


class TestVerdicts:
    def test_disjoint_arrays(self):
        loop = loop_of(
            "void f(float *a, const float *b, int n) { int i; "
            "for (i = 0; i < n; i++) a[i] = b[i] * 2.0f; }"
        )
        assert analyze_loop(loop).verdict is Verdict.INDEPENDENT

    def test_reduction_recognized(self):
        loop = loop_of(
            "void f(const float *a, float *out, int n) { int i; float s = 0.0f; "
            "for (i = 0; i < n; i++) s += a[i]; out[0] = s; }"
        )
        report = analyze_loop(loop)
        assert report.verdict is Verdict.REDUCTION
        assert report.reductions[0].var == "s"
        assert report.reductions[0].op == "+"
        assert report.parallelizable

    def test_subtraction_is_plus_reduction(self):
        loop = loop_of(
            "void f(const float *a, float *out, int n) { int i; float s = 0.0f; "
            "for (i = 0; i < n; i++) s -= a[i]; out[0] = s; }"
        )
        assert analyze_loop(loop).reductions[0].op == "+"

    def test_private_scalar_ok(self):
        loop = loop_of(
            "void f(float *a, int n) { int i; for (i = 0; i < n; i++) "
            "{ float t = a[i] * 2.0f; a[i] = t; } }"
        )
        assert analyze_loop(loop).verdict is Verdict.INDEPENDENT

    def test_cross_iteration_scalar(self):
        loop = loop_of(
            "void f(float *a, int n) { int i; float last = 0.0f; "
            "for (i = 0; i < n; i++) { a[i] = last; last = a[i] + 1.0f; } }"
        )
        report = analyze_loop(loop)
        assert report.verdict is Verdict.DEPENDENT
        assert any("scalar" in r for r in report.reasons)

    def test_invariant_write(self):
        loop = loop_of(
            "void f(int *stop, int n) { int i; for (i = 0; i < n; i++) stop[0] = 1; }"
        )
        report = analyze_loop(loop)
        assert report.verdict is Verdict.DEPENDENT
        assert any("invariant" in r for r in report.reasons)

    def test_indirect_write(self):
        loop = loop_of(
            "void f(int *c, const int *e, int n) { int i; "
            "for (i = 0; i < n; i++) c[e[i]] = 1; }"
        )
        report = analyze_loop(loop)
        assert report.verdict is Verdict.DEPENDENT
        assert any("unanalyzable" in r for r in report.reasons)

    def test_strided_disjoint(self):
        loop = loop_of(
            "void f(float *a, int n) { int i; for (i = 0; i < n; i++) "
            "a[2 * i] = a[2 * i] + 1.0f; }"
        )
        assert analyze_loop(loop).verdict is Verdict.INDEPENDENT

    def test_data_variant_scalar_subscript(self):
        loop = loop_of(
            "void f(int *c, const int *e, int n) { int i; "
            "for (i = 0; i < n; i++) { int id = e[i]; c[id] = 1; } }"
        )
        report = analyze_loop(loop)
        assert any("unanalyzable" in r for r in report.reasons)


class TestPairClasses:
    def test_broadcast_read(self):
        loop = loop_of(
            "void f(float *a, int n, int t) { int i; for (i = 0; i < n; i++) "
            "a[i + t + 1] = a[t] * 2.0f; }"
        )
        classes = {c for _, c in loop_pair_classes(loop)}
        assert PairClass.BROADCAST in classes

    def test_symbolic_distance(self):
        loop = loop_of(
            "void f(float *a, int n, int t) { int i; for (i = 0; i < n; i++) "
            "a[i + t] = a[i] + 1.0f; }"
        )
        classes = {c for _, c in loop_pair_classes(loop)}
        assert PairClass.DISTANCE_SYMBOLIC in classes

    def test_constant_distance(self):
        loop = loop_of(
            "void f(float *a, int n) { int i; for (i = 1; i < n; i++) "
            "a[i] = a[i - 1]; }"
        )
        classes = {c for _, c in loop_pair_classes(loop)}
        assert PairClass.DISTANCE_CONST in classes

    def test_mismatch(self):
        loop = loop_of(
            "void f(float *a, int n) { int i; for (i = 0; i < n; i++) "
            "a[i] = a[2 * i]; }"
        )
        classes = {c for _, c in loop_pair_classes(loop)}
        assert PairClass.MISMATCH in classes

    def test_same(self):
        loop = loop_of(
            "void f(float *a, int n) { int i; for (i = 0; i < n; i++) "
            "a[i] = a[i] * 2.0f; }"
        )
        assert {c for _, c in loop_pair_classes(loop)} == {PairClass.SAME}

    def test_variant_stride(self):
        loop = loop_of(
            "void f(float *a, int n) { int i, j; for (i = 0; i < n; i++) "
            "for (j = 0; j < n; j++) a[i * j] = a[i * j] + 1.0f; }", "i"
        )
        classes = {c for _, c in loop_pair_classes(loop)}
        assert PairClass.VARIANT_STRIDE in classes


class TestOpaqueWrites:
    def test_affine_writes_ok(self):
        loop = loop_of(
            "void f(int *c, const int *e, int n) { int i; "
            "for (i = 0; i < n; i++) c[i] = e[i] + 1; }"
        )
        assert not has_opaque_or_invariant_writes(loop)

    def test_indirect_write_flagged(self):
        loop = loop_of(
            "void f(int *c, const int *e, int n) { int i; "
            "for (i = 0; i < n; i++) c[e[i]] = 1; }"
        )
        assert has_opaque_or_invariant_writes(loop)

    def test_invariant_write_flagged(self):
        loop = loop_of(
            "void f(int *s, int n) { int i; for (i = 0; i < n; i++) s[0] = 1; }"
        )
        assert has_opaque_or_invariant_writes(loop)

    def test_indirect_read_only_ok(self):
        loop = loop_of(
            "void f(int *c, const int *e, const int *x, int n) { int i; "
            "for (i = 0; i < n; i++) c[i] = x[e[i]]; }"
        )
        assert not has_opaque_or_invariant_writes(loop)


class TestKernelLevel:
    def test_analyze_kernel_covers_all_loops(self):
        k = parse_kernel(
            "void f(float *a, int n) { int i, j; for (i = 0; i < n; i++) "
            "for (j = 0; j < n; j++) a[i * n + j] = 0.0f; }"
        )
        assert len(analyze_kernel(k)) == 2

    def test_parallelizable_loops(self):
        k = parse_kernel(
            "void f(float *a, int n) { int i; for (i = 0; i < n; i++) "
            "a[i] = a[i] + 1.0f; }"
        )
        assert len(parallelizable_loops(k)) == 1
