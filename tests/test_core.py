"""Tests for the core package: method pipeline, heat maps, PPR."""

import math

import pytest

from repro.core.method import (
    compile_stage,
    format_rows,
    ptx_profile,
    run_opencl,
    run_stage,
)
from repro.core.ppr import PprEntry, format_ppr_table, ppr
from repro.core.search import lud_heatmap
from repro.devices import K40, PHI_5110P
from repro.kernels import get_benchmark


class TestPpr:
    def test_equation_one(self):
        assert ppr(10.0, 5.0) == 2.0

    def test_lower_is_better_portability(self):
        assert ppr(1.1, 1.0) < ppr(9.0, 1.0)

    def test_zero_gpu_time(self):
        assert math.isinf(ppr(1.0, 0.0))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ppr(-1.0, 1.0)

    def test_entry_and_table(self):
        entry = PprEntry("x", "ge", "openacc", 2.0, 1.0)
        assert entry.ppr == 2.0
        text = format_ppr_table([entry])
        assert "ge" in text and "2.00" in text


class TestMethodPipeline:
    def test_run_stage_records_profile(self):
        bench = get_benchmark("lud")
        row = run_stage(bench, bench.stages()["base"], "base", "caps", "cuda",
                        K40, 64)
        assert row.elapsed_s > 0
        assert row.thread_config == "1x1"
        assert row.kernel_launches == 2 * 64

    def test_run_stage_compilation_failure_recorded(self):
        bench = get_benchmark("hydro")
        row = run_stage(bench, bench.stages()["base"], "base", "pgi", "cuda",
                        K40, 16, steps=1)
        assert row.failed and "pointer" in row.error

    def test_run_stage_validation(self):
        bench = get_benchmark("bp")
        inputs = bench.inputs(bench.meta.test_size)
        row = run_stage(bench, bench.stages()["reduction"], "reduction",
                        "caps", "opencl", PHI_5110P, 256,
                        validate_inputs=inputs)
        assert row.correct is False  # the paper's broken reduction

    def test_unknown_compiler(self):
        bench = get_benchmark("lud")
        with pytest.raises(ValueError):
            compile_stage(bench.stages()["base"], "icc", "cuda")

    def test_run_opencl_requires_program(self):
        bench = get_benchmark("lud")
        with pytest.raises(ValueError):
            run_opencl(bench, "opencl", K40, 64)

    def test_format_rows(self):
        bench = get_benchmark("lud")
        row = run_stage(bench, bench.stages()["base"], "base", "caps", "cuda",
                        K40, 32)
        text = format_rows([row])
        assert "base" in text and "caps" in text

    def test_ptx_profile_none_for_opencl(self):
        bench = get_benchmark("lud")
        compiled = compile_stage(bench.stages()["base"], "caps", "opencl")
        assert ptx_profile(compiled) is None


class TestHeatMap:
    @pytest.fixture(scope="class")
    def heatmap(self):
        return lud_heatmap(get_benchmark("lud"), K40, "caps", n=512,
                           gangs=(1, 64, 256), workers=(1, 16, 64))

    def test_shape(self, heatmap):
        assert len(heatmap.times) == 3 and len(heatmap.times[0]) == 3

    def test_best_is_minimum(self, heatmap):
        gang, worker, seconds = heatmap.best()
        assert seconds == min(t for row in heatmap.times for t in row)
        assert heatmap.time(gang, worker) == seconds

    def test_corner_is_worst(self, heatmap):
        assert heatmap.time(1, 1) == max(t for row in heatmap.times for t in row)

    def test_render(self, heatmap):
        text = heatmap.render()
        assert "gang\\worker" in text and "best:" in text

    def test_best_worker_for(self, heatmap):
        assert heatmap.best_worker_for(256) in (1, 16, 64)
