"""Tests for the pragma sub-parser."""

import pytest

from repro.frontend.pragmas import PragmaError, parse_pragma
from repro.ir import (
    AccAtomic,
    AccData,
    AccKernels,
    AccLoop,
    AccParallel,
    AccRoutine,
    HmppBlocksize,
    HmppTile,
    HmppUnroll,
)


class TestAccLoop:
    def test_independent(self):
        d = parse_pragma("#pragma acc loop independent")
        assert isinstance(d, AccLoop) and d.independent

    def test_gang_worker_vector(self):
        d = parse_pragma("#pragma acc loop gang(192) worker(256) vector(32)")
        assert (d.gang, d.worker, d.vector) == (192, 256, 32)

    def test_bare_gang_worker(self):
        d = parse_pragma("#pragma acc loop gang worker")
        assert d.gang is None and d.gang_auto
        assert d.worker is None and d.worker_auto

    def test_collapse(self):
        assert parse_pragma("#pragma acc loop collapse(2)").collapse == 2

    def test_tile_clause(self):
        assert parse_pragma("#pragma acc loop tile(8, 4)").tile == (8, 4)

    def test_caps_acc_tile_extension(self):
        d = parse_pragma("#pragma acc tile(16)")
        assert isinstance(d, AccLoop) and d.tile == (16,)

    def test_reduction(self):
        d = parse_pragma("#pragma acc loop reduction(+:sum)")
        assert d.reduction.op == "+" and d.reduction.var == "sum"

    def test_bad_reduction(self):
        with pytest.raises(PragmaError):
            parse_pragma("#pragma acc loop reduction(sum)")

    def test_unknown_clause(self):
        with pytest.raises(PragmaError):
            parse_pragma("#pragma acc loop quantum(3)")


class TestAccOthers:
    def test_parallel(self):
        d = parse_pragma(
            "#pragma acc parallel num_gangs(4) num_workers(8) vector_length(32)"
        )
        assert isinstance(d, AccParallel)
        assert (d.num_gangs, d.num_workers, d.vector_length) == (4, 8, 32)

    def test_parallel_reduction(self):
        d = parse_pragma("#pragma acc parallel reduction(max:m)")
        assert d.reduction.op == "max"

    def test_kernels(self):
        assert isinstance(parse_pragma("#pragma acc kernels"), AccKernels)

    def test_data(self):
        d = parse_pragma("#pragma acc data copyin(a, b) copyout(c) create(t)")
        assert isinstance(d, AccData)
        assert d.copyin == ("a", "b") and d.copyout == ("c",)

    def test_routine(self):
        d = parse_pragma("#pragma acc routine vector")
        assert isinstance(d, AccRoutine) and d.level == "vector"

    def test_atomic(self):
        d = parse_pragma("#pragma acc atomic update")
        assert isinstance(d, AccAtomic) and d.kind == "update"

    def test_unknown_construct(self):
        with pytest.raises(PragmaError):
            parse_pragma("#pragma acc teleport")


class TestHmpp:
    def test_blocksize(self):
        d = parse_pragma("#pragma hmppcg blocksize 32x4")
        assert isinstance(d, HmppBlocksize) and (d.x, d.y) == (32, 4)

    def test_tile(self):
        d = parse_pragma("#pragma hmppcg tile i:8")
        assert isinstance(d, HmppTile) and d.var == "i" and d.factor == 8

    def test_unroll(self):
        d = parse_pragma("#pragma hmppcg unroll(8)")
        assert isinstance(d, HmppUnroll) and d.factor == 8 and not d.jam

    def test_unroll_jam(self):
        d = parse_pragma("#pragma hmppcg unroll(4), jam")
        assert d.jam

    def test_target_specific(self):
        d = parse_pragma("#pragma hmppcg(cuda) unroll(8), jam")
        assert d.target == "cuda"
        d = parse_pragma("#pragma hmppcg(opencl) unroll(2)")
        assert d.target == "opencl"

    def test_bad_hmpp(self):
        with pytest.raises(PragmaError):
            parse_pragma("#pragma hmppcg frobnicate 3")

    def test_not_a_pragma(self):
        with pytest.raises(PragmaError):
            parse_pragma("int x = 3;")

    def test_unsupported_family(self):
        with pytest.raises(PragmaError):
            parse_pragma("#pragma omp parallel for")


class TestDirectiveStr:
    def test_round_trip_through_str(self):
        originals = [
            "#pragma acc loop independent gang(8) worker(4)",
            "#pragma acc parallel num_gangs(240)",
            "#pragma hmppcg blocksize 32x4",
            "#pragma hmppcg tile i:8",
        ]
        for text in originals:
            directive = parse_pragma(text)
            assert parse_pragma(str(directive)) == directive
