"""Process-pool executor determinism (docs/EXECUTOR.md).

The ISSUE-9 contract: ``--exec-jobs 1`` and ``--exec-jobs 4`` produce
byte-identical sweep results and identical counter totals, cold and
warm-persistent, including under injected compile faults with retries.
"""

import multiprocessing

import numpy as np
import pytest

from repro.frontend import parse_kernel
from repro.runtime.executor import (
    clear_kernel_cache,
    configure_plan_cache,
)
from repro.runtime.parallel import (
    ExecTask,
    run_exec_sweep,
    run_tasks,
    sweep_digest,
)
from repro.telemetry import get_registry, reset_registry
from repro.telemetry.spans import configure_tracer, reset_tracer

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

SIZES = {"ge": 48, "lud": 64, "hydro": 48}


@pytest.fixture(autouse=True)
def _clean_state():
    clear_kernel_cache()
    configure_plan_cache(None)
    reset_registry()
    reset_tracer()
    yield
    clear_kernel_cache()
    configure_plan_cache(None)
    reset_registry()
    reset_tracer()


def _cold_run(jobs: int) -> tuple[str, dict[str, int]]:
    clear_kernel_cache()
    reset_registry()
    result = run_exec_sweep(jobs=jobs, sizes=SIZES)
    counters = dict(get_registry().snapshot()["counters"])
    return result["digest"], counters


class TestRunTasks:
    def _tasks(self, count: int = 3) -> list[ExecTask]:
        kernel = parse_kernel(
            "void f(float *a, const float *b, int n) { int i; "
            "for (i = 0; i < n; i++) a[i] = b[i] * 2.0f + 1.0f; }"
        )
        tasks = []
        for t in range(count):
            b = np.arange(16, dtype=np.float64) + t
            tasks.append(ExecTask(label=f"t{t}", kernel=kernel,
                                  args={"a": np.zeros(16), "b": b, "n": 16}))
        return tasks

    def test_inline_results_correct(self):
        results = run_tasks(self._tasks(), jobs=1, backend="vector")
        for t, buffers in enumerate(results):
            expected = (np.arange(16, dtype=np.float64) + t) * 2 + 1
            assert np.array_equal(buffers["a"], expected)

    @pytest.mark.skipif(not HAS_FORK, reason="needs fork start method")
    def test_pool_matches_inline_bytewise(self):
        inline = run_tasks(self._tasks(), jobs=1, backend="vector")
        pooled = run_tasks(self._tasks(), jobs=2, backend="vector")
        assert sweep_digest(inline) == sweep_digest(pooled)

    @pytest.mark.skipif(not HAS_FORK, reason="needs fork start method")
    def test_task_arguments_not_mutated_in_parent(self):
        tasks = self._tasks(1)
        before = tasks[0].args["a"].copy()
        run_tasks(tasks, jobs=2, backend="vector")
        # workers run on shared-memory *copies*: the caller's buffers
        # only change through the returned result views
        assert np.array_equal(tasks[0].args["a"], before)

    @pytest.mark.skipif(not HAS_FORK, reason="needs fork start method")
    def test_worker_error_propagates_with_label(self):
        tasks = self._tasks(2)
        del tasks[1].args["b"]  # surfaces in the worker, not at pre-warm
        from repro.runtime.executor import ExecutionError

        with pytest.raises(ExecutionError, match="t1"):
            run_tasks(tasks, jobs=2, backend="vector")


class TestSweepDeterminism:
    def test_exec_jobs_1_vs_4_cold(self):
        digest1, counters1 = _cold_run(jobs=1)
        digest4, counters4 = _cold_run(jobs=4)
        assert digest1 == digest4
        assert counters1 == counters4, "counter drift between jobs=1 and 4"

    @pytest.mark.skipif(not HAS_FORK, reason="needs fork start method")
    def test_exec_jobs_1_vs_4_warm_persistent(self, tmp_path):
        configure_plan_cache(tmp_path / "plans")
        cold_digest, _ = _cold_run(jobs=1)  # populates the disk tier

        digests, spans_seen = [], []
        for jobs in (1, 4):
            clear_kernel_cache(memory_only=True)
            reset_registry()
            reset_tracer()
            tracer = configure_tracer(enabled=True)
            result = run_exec_sweep(jobs=jobs, sizes=SIZES)
            digests.append(result["digest"])
            spans_seen.append(len(tracer.spans_named("execute.vectorize")))
            counters = get_registry().snapshot()["counters"]
            assert counters["executor.plan_disk_hit"] > 0
        assert digests == [cold_digest, cold_digest]
        assert spans_seen == [0, 0], "warm-persistent run ran the vectorizer"

    def test_deterministic_under_faults_and_retries(self):
        from repro.faults import parse_fault_spec
        from repro.service import CompileService, RetryPolicy

        baseline, _ = _cold_run(jobs=1)
        for jobs in (1, 4):
            clear_kernel_cache()
            reset_registry()
            service = CompileService(
                fault_plan=parse_fault_spec("transient:p=0.3,seed=11"),
                retry=RetryPolicy(max_retries=3),
            )
            result = run_exec_sweep(service=service, jobs=jobs, sizes=SIZES)
            assert result["digest"] == baseline

    @pytest.mark.skipif(not HAS_FORK, reason="needs fork start method")
    def test_worker_lanes_in_trace(self):
        tracer = configure_tracer(enabled=True)
        run_exec_sweep(jobs=2, sizes=SIZES)
        lanes = {span.attributes.get("lane")
                 for span in tracer.spans_named("exec.task")}
        assert lanes == {"worker:0", "worker:1"}

    def test_repeats_extend_task_list(self):
        result = run_exec_sweep(jobs=1, sizes=SIZES, repeats=2)
        labels = result["tasks"]
        assert len(labels) == 12
        assert "ge_fan1#0" in labels and "ge_fan1#1" in labels
