"""Tests for the CAPS compiler model and its documented quirks."""

import pytest

from repro.compilers import CapsCompiler, CompilationError, FlagSet
from repro.compilers.framework import DistStrategy
from repro.frontend import parse_module
from repro.ptx.counter import InstructionProfile


def compile_src(source, target="cuda", flags=None):
    return CapsCompiler(flags).compile(parse_module(source, "m"), target)


BASE = """
#pragma acc kernels
void k(float *a, int n) {
  int i;
  for (i = 0; i < n; i++) {
    a[i] = a[i] * 2.0f;
  }
}
"""

INDEP = BASE.replace("for (i", "#pragma acc loop independent\n  for (i")


class TestDefaultBug:
    def test_advertises_but_runs_sequential(self):
        kernel = compile_src(BASE).kernels[0]
        assert kernel.distribution.strategy is DistStrategy.SEQUENTIAL
        assert any("gangs(192)" in m and "workers(256)" in m
                   for m in kernel.messages)

    def test_launch_is_1x1(self):
        kernel = compile_src(BASE).kernels[0]
        assert kernel.launch_config({"n": 1024}).sequential


class TestGangMode:
    def test_explicit_sizes_honored(self):
        src = BASE.replace(
            "for (i", "#pragma acc loop gang(64) worker(8)\n  for (i"
        )
        kernel = compile_src(src).kernels[0]
        assert kernel.distribution.strategy is DistStrategy.GANG_MODE
        config = kernel.launch_config({"n": 1024})
        assert config.grid[0] == 64 and config.block_threads == 8


class TestGridify:
    def test_independent_triggers_gridify(self):
        kernel = compile_src(INDEP).kernels[0]
        assert kernel.distribution.strategy is DistStrategy.GRIDIFY_1D
        config = kernel.launch_config({"n": 1024})
        assert config.block[:2] == (32, 4)
        assert config.grid[0] == 8  # ceil(1024 / 128)

    def test_flag_overrides_blocksize(self):
        flags = FlagSet("CAPS", ("-Xhmppcg -grid-block-size,64x2",))
        kernel = compile_src(INDEP, flags=flags).kernels[0]
        assert kernel.launch_config({"n": 1024}).block[:2] == (64, 2)

    def test_2d_for_nested_independent(self):
        src = """
#pragma acc kernels
void k(float *a, int n) {
  int i, j;
  #pragma acc loop independent
  for (i = 0; i < n; i++) {
    #pragma acc loop independent
    for (j = 0; j < n; j++) {
      a[i * n + j] = 0.0f;
    }
  }
}
"""
        kernel = compile_src(src).kernels[0]
        assert kernel.distribution.strategy is DistStrategy.GRIDIFY_2D
        assert len(kernel.parallel_loop_ids) == 2


class TestUnrollQuirk:
    NESTED = """
#pragma acc kernels
void k(float *a, const float *b, int n, int m) {
  int i, j;
  #pragma acc loop independent
  #pragma hmppcg unroll(4), jam
  for (i = 0; i < n; i++) {
    for (j = 0; j < m; j++) {
      a[i * m + j] += b[j];
    }
  }
}
"""

    def test_cuda_fake_success_on_jam(self):
        result = compile_src(self.NESTED, "cuda")
        kernel = result.kernels[0]
        assert any("unrolled" in m for m in kernel.messages)  # the lie
        assert kernel.ir.loop_by_var("i").step == 1  # nothing happened

    def test_opencl_applies_jam(self):
        result = compile_src(self.NESTED, "opencl")
        assert result.kernels[0].ir.loop_by_var("i").step == 4

    def test_cuda_applies_plain_innermost_unroll(self):
        src = INDEP.replace(
            "#pragma acc loop independent",
            "#pragma acc loop independent\n  #pragma hmppcg unroll(4)",
        )
        result = compile_src(src, "cuda")
        assert result.kernels[0].ir.loops()[0].step == 4


class TestTileQuirk:
    def test_tile_requires_independent(self):
        src = BASE.replace("for (i", "#pragma acc tile(8)\n  for (i")
        kernel = compile_src(src).kernels[0]
        assert len(kernel.ir.loops()) == 1  # accepted, not applied

    def test_tile_applies_with_independent(self):
        src = BASE.replace(
            "for (i", "#pragma acc loop independent tile(8)\n  for (i"
        )
        kernel = compile_src(src).kernels[0]
        assert len(kernel.ir.loops()) == 2  # strip-mined

    def test_tiled_code_has_no_shared_memory(self):
        src = BASE.replace(
            "for (i", "#pragma acc loop independent tile(8)\n  for (i"
        )
        kernel = compile_src(src).kernels[0]
        assert not InstructionProfile.of(kernel.ptx).uses_shared_memory


class TestReductionQuirk:
    RED = """
#pragma acc kernels
void k(const float *a, float *out, int n) {
  int i;
  float s = 0.0f;
  #pragma acc loop reduction(+:s)
  for (i = 0; i < n; i++) {
    s += a[i];
  }
  out[0] = s;
}
"""

    def test_cuda_emits_shared_but_correct(self):
        kernel = compile_src(self.RED, "cuda").kernels[0]
        assert InstructionProfile.of(kernel.ptx).uses_shared_memory
        assert not kernel.broken_reduction_loops

    def test_opencl_breaks_on_mic_only(self):
        kernel = compile_src(self.RED, "opencl").kernels[0]
        assert kernel.broken_reduction_loops
        assert kernel.broken_reduction_device == "mic"
        assert kernel.executor_semantics("gpu") == {}
        assert kernel.executor_semantics("mic")


class TestBackends:
    def test_ptx_only_for_cuda(self):
        assert compile_src(BASE, "cuda").kernels[0].ptx is not None
        assert compile_src(BASE, "opencl").kernels[0].ptx is None

    def test_unknown_target(self):
        with pytest.raises(CompilationError):
            compile_src(BASE, "vulkan")

    def test_descriptor_only_on_first_kernel(self):
        two = BASE + BASE.replace("void k", "void k2")
        result = compile_src(two)
        first = InstructionProfile.of(result.kernels[0].ptx)
        second = InstructionProfile.of(result.kernels[1].ptx)
        assert first.count("ld.param") - second.count("ld.param") == 5

    def test_dispatch_overhead_set(self):
        assert compile_src(BASE).kernels[0].dispatch_overhead_us > 0

    def test_ptx_identical_across_launch_configs(self):
        # thread distribution is runtime configuration; the codelet PTX
        # does not change (paper V-A3)
        base = compile_src(BASE).kernels[0]
        gang = compile_src(
            BASE.replace("for (i", "#pragma acc loop gang(64) worker(8)\n  for (i")
        ).kernels[0]
        assert (InstructionProfile.of(base.ptx).by_opcode
                == InstructionProfile.of(gang.ptx).by_opcode)
