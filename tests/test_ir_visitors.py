"""Tests for IR traversal/cloning/rewriting."""

from repro.frontend import parse_kernel
from repro.ir import (
    Assign,
    Block,
    For,
    IntLit,
    Var,
    clone_kernel,
    clone_stmt,
    const,
    print_kernel,
    rewrite_exprs,
    scalar_writes,
    stmt_arrays,
    stmt_free_vars,
    substitute_in_stmt,
    writes_and_reads,
)

SRC = """
void k(float *a, float *b, int n) {
    int i, j;
    for (i = 0; i < n; i++) {
        float s = b[i];
        for (j = 0; j < i; j++) {
            s += a[i * n + j] * b[j];
        }
        a[i * n + i] = s;
    }
}
"""


class TestClone:
    def test_deep_copy_independent(self):
        k = parse_kernel(SRC)
        k2 = clone_kernel(k)
        k2.loops()[0].body.stmts.clear()
        assert len(k.loops()[0].body.stmts) == 3

    def test_loop_ids_preserved(self):
        k = parse_kernel(SRC)
        k2 = clone_kernel(k)
        assert [l.loop_id for l in k.loops()] == [l.loop_id for l in k2.loops()]

    def test_text_identical(self):
        k = parse_kernel(SRC)
        assert print_kernel(clone_kernel(k)) == print_kernel(k)


class TestRewrite:
    def test_substitute_in_stmt(self):
        k = parse_kernel(SRC)
        body = substitute_in_stmt(k.body, {"n": const(8)})
        assert "n" not in stmt_free_vars(body)

    def test_rewrite_exprs_constant_fold(self):
        k = parse_kernel("void f(float *a) { a[2 + 3] = 1.0f; }")

        def fold(e):
            from repro.ir import BinOp
            if (isinstance(e, BinOp) and e.op == "+"
                    and isinstance(e.lhs, IntLit) and isinstance(e.rhs, IntLit)):
                return IntLit(e.lhs.value + e.rhs.value)
            return e

        body = rewrite_exprs(k.body, fold)
        assign = body.stmts[0]
        assert assign.target.indices[0] == IntLit(5)


class TestCollectors:
    def test_stmt_arrays(self):
        k = parse_kernel(SRC)
        assert stmt_arrays(k.body) == {"a", "b"}

    def test_scalar_writes(self):
        k = parse_kernel(SRC)
        assert "s" in scalar_writes(k.body)

    def test_writes_and_reads(self):
        k = parse_kernel(SRC)
        writes, reads = writes_and_reads(k.body)
        assert {w.name for w in writes} == {"a"}
        assert {r.name for r in reads} == {"a", "b"}

    def test_compound_assign_counts_as_read(self):
        k = parse_kernel("void f(float *a) { a[0] += 1.0f; }")
        writes, reads = writes_and_reads(k.body)
        assert len(writes) == 1 and any(r.name == "a" for r in reads)

    def test_index_arrays_are_reads(self):
        k = parse_kernel(
            "void f(int *c, const int *e, int n) { int i; "
            "for (i = 0; i < n; i++) c[e[i]] = 1; }"
        )
        writes, reads = writes_and_reads(k.body)
        assert any(r.name == "e" for r in reads)
