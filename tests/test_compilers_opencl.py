"""Tests for the hand-written OpenCL path."""

import pytest

from repro.compilers import (
    CompilationError,
    IntelOpenCLCompiler,
    NvidiaOpenCLCompiler,
    OpenCLKernelSpec,
    OpenCLProgram,
    compile_opencl,
)
from repro.compilers.framework import DistStrategy
from repro.frontend import parse_kernel
from repro.ptx.counter import InstructionProfile

SRC = """
void ocl_scale(float *a, int n) {
  int i;
  for (i = 0; i < n; i++) {
    a[i] = a[i] * 2.0f;
  }
}
"""


def program(**kw):
    k = parse_kernel(SRC)
    spec = OpenCLKernelSpec(
        kernel=k, parallel_loop_ids=[k.loops()[0].loop_id], **kw
    )
    return OpenCLProgram("p", [spec])


class TestNvidia:
    def test_generates_ptx(self):
        result = NvidiaOpenCLCompiler().compile(program())
        assert result.kernels[0].ptx is not None

    def test_fixed_global_size(self):
        result = NvidiaOpenCLCompiler().compile(
            program(local_size=(128, 1), global_size=(8192, 1))
        )
        config = result.kernels[0].launch_config({"n": 123})
        assert config.total_threads == 8192  # constant, ignores n

    def test_auto_size_follows_extent(self):
        result = NvidiaOpenCLCompiler().compile(program(local_size=(128, 1)))
        config = result.kernels[0].launch_config({"n": 1024})
        assert config.grid[0] == 8

    def test_shared_staging_emits_local_memory(self):
        result = NvidiaOpenCLCompiler().compile(
            program(shared_staged=("a",), traffic_reuse=0.5)
        )
        profile = InstructionProfile.of(result.kernels[0].ptx)
        assert profile.uses_shared_memory
        assert result.kernels[0].traffic_reuse == 0.5

    def test_advanced_distribution(self):
        result = NvidiaOpenCLCompiler().compile(
            program(advanced_distribution=True)
        )
        assert (result.kernels[0].distribution.strategy
                is DistStrategy.GRIDIFY_2D)


class TestIntel:
    def test_no_ptx_on_mic(self):
        result = IntelOpenCLCompiler().compile(program())
        assert result.kernels[0].ptx is None

    def test_local_staging_is_dram_on_mic(self):
        result = IntelOpenCLCompiler().compile(
            program(shared_staged=("a",), traffic_reuse=0.5)
        )
        assert result.kernels[0].traffic_reuse == 1.0


class TestDispatch:
    def test_by_device_kind(self):
        assert compile_opencl(program(), "gpu").compiler == "OpenCL"
        assert compile_opencl(program(), "mic").compiler == "Intel OpenCL"
        with pytest.raises(CompilationError):
            compile_opencl(program(), "fpga")

    def test_single_work_item_task(self):
        k = parse_kernel(SRC)
        prog = OpenCLProgram("p", [OpenCLKernelSpec(kernel=k)])
        result = compile_opencl(prog, "gpu")
        assert result.kernels[0].sequential
