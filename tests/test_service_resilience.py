"""Resilient scheduling: retries, breakers, hedging, journal resume.

Everything here runs on a :class:`SimClock` (no real sleeping) except
the timeout-discard regression test, which needs genuine wall-clock
stragglers.
"""

import pickle

import pytest

from repro.compilers.framework import CompilationError
from repro.faults import FaultPlan, FaultRule, TransientCompileFault
from repro.frontend import parse_module
from repro.service import (
    ArtifactCache,
    CircuitBreaker,
    CompileRequest,
    CompileService,
    JobError,
    RetryPolicy,
    SimClock,
    SweepJournal,
)

SOURCE = """
#pragma acc kernels
void demo(float *a, const float *b, int n) {
  int i;
  #pragma acc loop independent
  for (i = 0; i < n; i++) {
    a[i] = b[i] * %sf;
  }
}
"""


@pytest.fixture
def module():
    return parse_module(SOURCE % "2.0", "demo")


def variant_modules(count):
    """Distinct modules (distinct fingerprints), deterministic order."""
    return [parse_module(SOURCE % f"{k}.0", "demo") for k in range(count)]


def sweep_requests(count, compiler="caps", target="cuda"):
    return [
        CompileRequest(m, compiler, target, label=f"v{k}")
        for k, m in enumerate(variant_modules(count))
    ]


def artifact_key(result):
    """A byte-comparable identity for one sweep slot."""
    if isinstance(result, JobError):
        return ("error", result.kind, result.label, result.message)
    if isinstance(result, str):  # stub compile_fns return strings
        return ("ok", result)
    renders = tuple(
        kernel.ptx.render() if kernel.ptx is not None else ""
        for kernel in result.kernels
    )
    return ("ok", pickle.dumps(renders), result.compiler, result.target,
            getattr(result, "degraded_to", ""))


class TestRetry:
    def test_transient_fault_healed(self, module):
        clock = SimClock()
        # the first clean attempt for this fingerprint is found
        # empirically — the plan is a pure function, so the test adapts
        # to its draws instead of hard-coding them
        plan = FaultPlan(seed=0, rules=(FaultRule("transient", 0.6),))
        fingerprint = CompileRequest(module, "caps", "cuda").fingerprint
        first_ok = next(
            k for k in range(16)
            if plan.compile_fault(fingerprint, k) is None
        )
        service = CompileService(
            retry=RetryPolicy(max_retries=first_ok, base_s=0.01),
            fault_plan=plan, clock=clock,
        )
        artifact = service.compile(module, "caps", "cuda")
        assert artifact.kernels[0].ptx is not None
        assert service.metrics.retries == first_ok
        assert service.metrics.faults_injected == first_ok
        assert len(clock.sleeps) == first_ok  # slept on the sim clock only

    def test_backoff_is_exponential_with_jitter(self):
        policy = RetryPolicy(max_retries=5, base_s=0.02, multiplier=2.0,
                             jitter=0.5, seed=0)
        fp = "f" * 64
        backoffs = [policy.backoff_s(fp, k) for k in range(4)]
        for k, backoff in enumerate(backoffs):
            base = 0.02 * 2.0 ** k
            assert base * 0.5 <= backoff <= base * 1.5
        # deterministic: same (seed, fp, attempt) -> same jitter
        assert backoffs == [policy.backoff_s(fp, k) for k in range(4)]
        # de-synchronized across fingerprints
        assert backoffs != [policy.backoff_s("e" * 64, k) for k in range(4)]

    def test_retries_exhausted_surfaces_fault(self, module):
        plan = FaultPlan(seed=0, rules=(FaultRule("transient", 1.0),))
        service = CompileService(
            retry=RetryPolicy(max_retries=2), fault_plan=plan,
            clock=SimClock(),
        )
        with pytest.raises(TransientCompileFault):
            service.compile(module, "caps", "cuda")
        assert service.metrics.retries == 2
        assert service.metrics.faults_injected == 3  # initial + 2 retries

    def test_injected_fault_never_cached(self, module):
        """A transient fault must not poison the failure cache: the next
        request (without the fault) compiles cleanly."""
        plan = FaultPlan(seed=0, rules=(FaultRule("transient", 1.0),))
        cache = ArtifactCache()
        faulty = CompileService(cache=cache, fault_plan=plan,
                                clock=SimClock())
        with pytest.raises(TransientCompileFault):
            faulty.compile(module, "caps", "cuda")
        assert len(cache) == 0  # nothing cached for the injected fault
        clean = CompileService(cache=cache)
        artifact = clean.compile(module, "caps", "cuda")
        assert artifact.kernels[0].ptx is not None

    def test_deterministic_compile_error_still_cached(self, module):
        calls = []

        def failing(request):
            calls.append(request.fingerprint)
            raise CompilationError("nope")

        service = CompileService(
            compile_fn=failing, retry=RetryPolicy(max_retries=3),
            clock=SimClock(),
        )
        for _ in range(2):
            with pytest.raises(CompilationError):
                service.compile(module, "caps", "cuda")
        # not transient: no retries, and the failure replays from cache
        assert len(calls) == 1
        assert service.metrics.retries == 0

    def test_no_retry_policy_means_no_retries(self, module):
        plan = FaultPlan(seed=0, rules=(FaultRule("transient", 1.0),))
        service = CompileService(fault_plan=plan, clock=SimClock())
        with pytest.raises(TransientCompileFault):
            service.compile(module, "caps", "cuda")
        assert service.metrics.retries == 0


class TestFlakyCache:
    def test_flaky_read_degrades_to_miss(self, module):
        plan = FaultPlan(seed=0, rules=(FaultRule("cache-read", 1.0),))
        service = CompileService(fault_plan=plan, clock=SimClock())
        a = service.compile(module, "caps", "cuda")
        b = service.compile(module, "caps", "cuda")
        # every read flakes -> every request recompiles; results identical
        assert service.metrics.compiles == 2
        assert service.metrics.cache_io_errors == 2
        assert a.kernels[0].ptx.render() == b.kernels[0].ptx.render()

    def test_flaky_write_skips_store(self, module):
        plan = FaultPlan(seed=0, rules=(FaultRule("cache-write", 1.0),))
        cache = ArtifactCache()
        service = CompileService(cache=cache, fault_plan=plan,
                                 clock=SimClock())
        service.compile(module, "caps", "cuda")
        assert len(cache) == 0
        assert service.metrics.cache_io_errors == 1


class TestCircuitBreaker:
    def test_trips_after_threshold_and_degrades(self):
        """Persistent faults on caps-opencl open the breaker; once open,
        failing points degrade to caps-cuda, marked, never silent."""
        # drive the breaker with a compile_fn that fails the opencl route
        # with an *injected* fault (only kind="fault" counts for the
        # breaker) and no retry policy
        def failing_opencl(request):
            if request.target == "opencl":
                raise TransientCompileFault(
                    "injected", site="compile",
                    fingerprint=request.fingerprint,
                )
            from repro.core.method import compile_stage

            return compile_stage(request.module, request.compiler,
                                 request.target, request.flags)

        breaker = CircuitBreaker(failure_threshold=3)
        service = CompileService(compile_fn=failing_opencl, breaker=breaker,
                                 clock=SimClock())
        results = service.sweep(sweep_requests(6, target="opencl"))
        # first 2 failures: breaker counting; 3rd trips it; 3rd..6th degrade
        assert isinstance(results[0], JobError)
        assert isinstance(results[1], JobError)
        for slot in results[2:]:
            assert not isinstance(slot, JobError)
            assert slot.degraded is True
            assert slot.degraded_from == "caps-opencl"
            assert slot.degraded_to == "caps-cuda"
            assert slot.target == "cuda"
        assert service.metrics.degraded == 4
        assert breaker.snapshot()["trips"] == 1

    def test_success_closes_breaker(self, module):
        breaker = CircuitBreaker(failure_threshold=1)
        key = breaker.key_for("caps", "opencl")
        assert breaker.on_result(key, failed=True) == "tripped"
        assert breaker.is_open(key)
        assert breaker.on_result(key, failed=False) == "closed"
        assert not breaker.is_open(key)
        assert breaker.snapshot() == {"open": [], "trips": 1, "closes": 1}

    def test_compile_errors_do_not_trip(self):
        """Deterministic refusals (PGI has no OpenCL backend) are data,
        not infrastructure failure — the breaker must not re-route
        them."""
        breaker = CircuitBreaker(failure_threshold=2)
        service = CompileService(breaker=breaker, clock=SimClock())
        results = service.sweep(
            sweep_requests(5, compiler="pgi", target="opencl")
        )
        for slot in results:
            assert isinstance(slot, JobError)
            assert slot.kind == "compile-error"
        assert breaker.snapshot()["trips"] == 0
        assert service.metrics.degraded == 0


class TestHedging:
    def test_hedge_duplicates_straggler(self, module):
        import time as _time

        def slow_compile(request):
            _time.sleep(0.2)
            from repro.core.method import compile_stage

            return compile_stage(request.module, request.compiler,
                                 request.target, request.flags)

        service = CompileService(compile_fn=slow_compile, jobs=2,
                                 hedge_after_s=0.01)
        try:
            results = service.sweep(sweep_requests(1))
        finally:
            service.close()
        assert not isinstance(results[0], JobError)
        assert service.metrics.hedges == 1
        # identical artifacts either way, so winning is timing, not
        # correctness; the counter just has to be consistent
        assert service.metrics.hedge_wins in (0, 1)

    def test_hedge_disabled_serially(self, module):
        service = CompileService(jobs=1, hedge_after_s=0.0)
        results = service.sweep(sweep_requests(2))
        assert service.metrics.hedges == 0
        assert all(not isinstance(r, JobError) for r in results)


class TestTimeoutDiscard:
    def test_discarded_result_is_idempotent(self):
        """Regression: a timed-out worker finishes later and stores its
        result anyway; the store must not double-count and re-publishing
        metrics must not double-report."""
        import time as _time

        from repro.telemetry import MetricsRegistry

        plan = FaultPlan(seed=0, rules=(FaultRule("slow", 1.0, seconds=0.2),))

        def slow_compile(request):
            _time.sleep(plan.slow_penalty_s(request.fingerprint, 0))
            return f"artifact:{request.fingerprint[:8]}"

        cache = ArtifactCache()
        service = CompileService(
            cache=cache, compile_fn=slow_compile, jobs=2, timeout_s=0.05,
        )
        requests = sweep_requests(2)
        results = service.sweep(requests)
        assert all(isinstance(r, JobError) and r.kind == "timeout"
                   for r in results)
        # join the abandoned workers: their late results land in the cache
        service.close()
        assert cache.stats.stores == 2
        # the timed-out-but-completed artifacts are reused on re-sweep
        again = CompileService(cache=cache, compile_fn=slow_compile)
        warm = again.sweep(requests)
        assert [r for r in warm] == [f"artifact:{r.fingerprint[:8]}"
                                     for r in requests]
        assert again.metrics.compiles == 0
        # double-store is a counted no-op
        cache.put(requests[0].fingerprint, "anything")
        assert cache.stats.stores == 2
        assert cache.stats.redundant_stores == 1
        # double-publish is idempotent (gauges, not counters)
        registry = MetricsRegistry()
        again.publish(registry)
        again.publish(registry)
        assert registry.gauge("cache.stores").value == 2.0


class TestJournalResume:
    def test_resume_equals_uninterrupted(self, tmp_path):
        """Kill a sweep halfway (simulated: journal written for a prefix),
        resume it, and compare byte-for-byte with an uninterrupted run."""
        requests = sweep_requests(6)
        plain = CompileService()
        expected = [artifact_key(r) for r in plain.sweep(requests)]

        path = tmp_path / "journal.jsonl"
        cache = ArtifactCache()  # the shared tier a --cache-dir would give
        first = CompileService(cache=cache)
        with SweepJournal(path) as journal:
            first._sweep(requests[:3], journal)  # "killed" after 3 points
        assert len(path.read_text().splitlines()) == 3

        resumed_service = CompileService(cache=cache)
        with SweepJournal(path) as journal:
            assert len(journal) == 3
            resumed = resumed_service._sweep(requests, journal)
        assert [artifact_key(r) for r in resumed] == expected
        # only the un-journaled half compiled; journaled points
        # re-materialized through the shared cache
        assert resumed_service.metrics.compiles == 3
        assert resumed_service.metrics.cache_hits == 3

    def test_journal_replays_errors_field_for_field(self, tmp_path, module):
        def failing(request):
            raise CompilationError("deterministic refusal")

        requests = [CompileRequest(module, "caps", "cuda", label="bad")]
        path = tmp_path / "journal.jsonl"
        first = CompileService(compile_fn=failing,
                               journal=SweepJournal(path))
        errors = first.sweep(requests)
        first.close()
        assert isinstance(errors[0], JobError)

        second = CompileService(compile_fn=failing,
                                journal=SweepJournal(path))
        replayed = second.sweep(requests)
        second.close()
        assert isinstance(replayed[0], JobError)
        assert (replayed[0].label, replayed[0].kind, replayed[0].message) == (
            errors[0].label, errors[0].kind, errors[0].message
        )
        assert second.metrics.requests == 0  # never resubmitted

    def test_torn_final_line_tolerated(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text('{"fp": "x", "status": "ok"}\n{"fp": "y", "sta')
        journal = SweepJournal(path)
        assert len(journal) == 1
        assert journal.lookup("x") == {"fp": "x", "status": "ok"}
        assert journal.lookup("y") is None
        journal.close()


class TestDeterminismUnderFaults:
    @pytest.mark.parametrize("jobs", [1, 4])
    def test_jobs_invariant_under_faults(self, jobs):
        """Same seed + same plan => byte-identical sweep, serial or
        pooled, with retries healing a 30% transient rate."""
        requests = sweep_requests(12)
        # seed 0 heals within 3 retries for these 12 fingerprints (the
        # plan is a pure function, so this is a stable property, not luck)
        plan = FaultPlan(seed=0, rules=(FaultRule("transient", 0.3),
                                        FaultRule("cache", 0.1)))
        service = CompileService(
            jobs=jobs, fault_plan=plan,
            retry=RetryPolicy(max_retries=3), clock=SimClock(),
        )
        try:
            keys = [artifact_key(r) for r in service.sweep(requests)]
        finally:
            service.close()
        baseline = [artifact_key(r)
                    for r in CompileService().sweep(sweep_requests(12))]
        assert keys == baseline  # faults fully healed, order preserved
        assert service.metrics.faults_injected > 0  # the plan actually fired

    def test_faulted_run_repeats_itself(self):
        def run():
            plan = FaultPlan(seed=3, rules=(FaultRule("transient", 0.5),
                                            FaultRule("persistent", 0.2)))
            service = CompileService(
                fault_plan=plan, retry=RetryPolicy(max_retries=2),
                clock=SimClock(),
            )
            keys = [artifact_key(r) for r in service.sweep(sweep_requests(8))]
            return keys, service.metrics.snapshot()

        keys_a, metrics_a = run()
        keys_b, metrics_b = run()
        assert keys_a == keys_b
        assert metrics_a == metrics_b
        # with p=0.2 persistent over 8 fingerprints something stays broken
        assert any(k[0] == "error" for k in keys_a)
