"""``repro.jit`` frontend units: typed template holes, shape classes,
specialization plans, and the two-level cache (ISSUE 8 tentpole)."""

import pytest

from repro.frontend import parse_kernel, parse_module, template_holes
from repro.ir.printer import print_kernel
from repro.jit import (
    ALIGNMENT,
    SMALL_LIMIT,
    KernelTemplate,
    ShapeClass,
    SpecializationCache,
    SpecializationPlan,
    TemplateError,
    classify_extent,
    plan_for,
)

SAXPY = """
void saxpy(float* y, const float* x, float a, int n) {
  #pragma acc loop independent
  for (i = 0; i < $n; i++) {
    y[i] = a * x[i] + y[i];
  }
}
"""

RELAX = """
void relax(float* a, int n) {
  for (i = 0; i < $n; i++) {
    a[i] = a[i] * $omega:float + $bias:double;
  }
}
"""


class TestTemplateHoles:
    def test_lex_only_scan(self):
        holes = template_holes(SAXPY)
        assert holes == {"n": "int"}

    def test_typed_holes(self):
        holes = template_holes(RELAX)
        assert holes == {"n": "int", "omega": "float", "bias": "double"}

    def test_conflicting_redeclaration_rejected(self):
        src = "void k(float* a) { a[0] = $w:float + $w:double; }"
        with pytest.raises(Exception, match="w"):
            template_holes(src)

    def test_parse_with_bindings_substitutes_literals(self):
        kernel = parse_kernel(SAXPY, bindings={"n": 256})
        text = print_kernel(kernel)
        assert "i < 256" in text and "$" not in text

    def test_parse_without_bindings_rejects_holes(self):
        with pytest.raises(Exception, match="n"):
            parse_kernel(SAXPY)

    def test_float_hole_binds_float_literal(self):
        kernel = parse_kernel(RELAX, bindings={"n": 8, "omega": 1.5,
                                               "bias": 0.25})
        text = print_kernel(kernel)
        assert "1.5f" in text

    def test_module_parse_with_bindings(self):
        module = parse_module(SAXPY, "m", bindings={"n": 64})
        assert module.kernels[0].name == "saxpy"


class TestKernelTemplate:
    def test_from_source_infers_name_and_holes(self):
        t = KernelTemplate.from_source(SAXPY)
        assert t.name == "saxpy"
        assert t.holes == {"n": "int"}
        assert len(t.template_id) == 64

    def test_template_id_is_content_addressed(self):
        assert (KernelTemplate.from_source(SAXPY).template_id
                == KernelTemplate.from_source(SAXPY).template_id)
        assert (KernelTemplate.from_source(SAXPY).template_id
                != KernelTemplate.from_source(RELAX).template_id)

    def test_canonical_bindings_sorted_and_typed(self):
        t = KernelTemplate.from_source(RELAX)
        canonical = t.canonical_bindings(
            {"omega": 2, "n": 32, "bias": 1.0}
        )
        assert canonical == (
            ("bias", "double", 1.0),
            ("n", "int", 32),
            ("omega", "float", 2.0),
        )
        assert t.int_extents(canonical) == {"n": 32}

    def test_unknown_hole_rejected(self):
        t = KernelTemplate.from_source(SAXPY)
        with pytest.raises(TemplateError, match="ghost"):
            t.canonical_bindings({"n": 1, "ghost": 2})

    def test_missing_hole_rejected(self):
        t = KernelTemplate.from_source(SAXPY)
        with pytest.raises(TemplateError, match="unbound"):
            t.canonical_bindings({})

    def test_int_hole_rejects_float(self):
        t = KernelTemplate.from_source(SAXPY)
        with pytest.raises(TemplateError, match="int"):
            t.canonical_bindings({"n": 1.5})

    def test_module_name_distinguishes_bindings(self):
        t = KernelTemplate.from_source(SAXPY)
        a = t.module_name(t.canonical_bindings({"n": 128}))
        b = t.module_name(t.canonical_bindings({"n": 256}))
        assert a != b and a.startswith("saxpy__")

    def test_no_kernel_in_source(self):
        with pytest.raises(TemplateError, match="void"):
            KernelTemplate.from_source("int x;")


class TestShapeClasses:
    def test_strata_boundaries(self):
        assert classify_extent(SMALL_LIMIT) == "small"
        assert classify_extent(SMALL_LIMIT + 1) == "large"
        assert classify_extent(ALIGNMENT * 4) == "aligned"
        assert classify_extent(1000) == "large"

    def test_class_of_bindings(self):
        sc = ShapeClass.of({"rows": 128, "cols": 100})
        assert sc.describe() == "cols=large,rows=aligned"
        assert sc.stratum_set() == frozenset({"aligned", "large"})

    def test_scalar_class(self):
        assert ShapeClass.of({}).describe() == "scalar"

    def test_plans_are_pure_functions_of_class(self):
        sc = ShapeClass.of({"n": 128})
        assert plan_for(sc) == plan_for(ShapeClass.of({"n": 4096}))
        assert plan_for(sc).unroll == 4

    def test_small_shapes_stay_plain(self):
        plan = plan_for(ShapeClass.of({"n": 16}))
        assert plan == SpecializationPlan()
        assert plan.describe() == "independent"

    def test_two_aligned_axes_get_tile(self):
        plan = plan_for(ShapeClass.of({"rows": 64 * 2, "cols": 32 * 5}))
        assert plan.tile == (ALIGNMENT, 4)

    def test_large_gets_conservative_unroll(self):
        assert plan_for(ShapeClass.of({"n": 1000})).unroll == 2


class TestSpecializationCache:
    def test_levels_and_stats(self):
        from repro.jit.specializer import specialize

        cache = SpecializationCache()
        t = KernelTemplate.from_source(SAXPY)

        cold = specialize(t, {"n": 128}, cache=cache)
        s = cache.stats()
        assert s["specializations"] == 1 and s["misses"] == 1

        warm = specialize(t, {"n": 128}, cache=cache)
        assert warm is cold  # L1: the very same object, compile-free
        assert cache.stats()["exact_hits"] == 1

        # a new shape in the same class reuses the plan (L2)
        sibling = specialize(t, {"n": 256}, cache=cache)
        s = cache.stats()
        assert s["class_hits"] == 1 and s["shape_classes"] == 1
        assert sibling.plan == cold.plan
        assert sibling.fingerprint != cold.fingerprint

    def test_clear(self):
        cache = SpecializationCache()
        t = KernelTemplate.from_source(SAXPY)
        canonical = t.canonical_bindings({"n": 128})
        from repro.jit.specializer import specialize

        specialize(t, {"n": 128}, cache=cache)
        cache.clear()
        assert cache.lookup(t, "caps", "cuda", canonical) is None
        assert cache.stats()["specializations"] == 0
