"""Tests for the optimization-method transformation passes."""

import numpy as np
import pytest

from repro.frontend import parse_kernel
from repro.ir import AccLoop, HmppBlocksize, loop_nest_depth
from repro.runtime.executor import execute_kernel
from repro.transforms import (
    DistributionError,
    ReductionError,
    TileError,
    UnrollError,
    add_independent,
    add_reduction,
    clear_distribution,
    fuse_adjacent_loops,
    fuse_kernels,
    is_independent,
    set_gang_worker,
    set_gridify_blocksize,
    split_loop,
    tile_in_kernel,
    unroll_in_kernel,
)

STREAM = """
void stream(float *a, const float *b, int n) {
    int i;
    for (i = 0; i < n; i++) {
        a[i] = b[i] * 2.0f + 1.0f;
    }
}
"""

TRIANGULAR = """
void tri(float *a, int size, int piv) {
    int j, k;
    for (j = piv; j < size; j++) {
        float sum = a[piv * size + j];
        for (k = 0; k < piv; k++) {
            sum -= a[piv * size + k] * a[k * size + j];
        }
        a[piv * size + j] = sum;
    }
}
"""


def run(kernel, **args):
    execute_kernel(kernel, args)
    return args


class TestAddIndependent:
    def test_annotates_provable(self):
        k = parse_kernel(STREAM)
        result = add_independent(k)
        assert result.annotated and not result.forced
        assert is_independent(result.kernel.loops()[0])

    def test_refuses_dependent(self):
        k = parse_kernel(
            "void f(float *A, int n) { int i; for (i = 1; i < n; i++) "
            "A[i] = A[i - 1]; }"
        )
        result = add_independent(k)
        assert not result.annotated and result.refused

    def test_force_overrides(self):
        k = parse_kernel(
            "void f(float *A, int n) { int i; for (i = 1; i < n; i++) "
            "A[i] = A[i - 1]; }"
        )
        result = add_independent(k, force_vars={"i"})
        assert result.forced and is_independent(result.kernel.loops()[0])

    def test_original_untouched(self):
        k = parse_kernel(STREAM)
        add_independent(k)
        assert not is_independent(k.loops()[0])


class TestDistribute:
    def test_gang_worker(self):
        k = parse_kernel(STREAM)
        out = set_gang_worker(k, k.loops()[0].loop_id, 256, 16)
        acc = out.loops()[0].directives.first(AccLoop)
        assert acc.gang == 256 and acc.worker == 16

    def test_invalid_sizes(self):
        k = parse_kernel(STREAM)
        with pytest.raises(DistributionError):
            set_gang_worker(k, k.loops()[0].loop_id, 0, 1)

    def test_gridify_requires_independent(self):
        k = parse_kernel(STREAM)
        with pytest.raises(DistributionError):
            set_gridify_blocksize(k, k.loops()[0].loop_id)
        k2 = add_independent(k).kernel
        out = set_gridify_blocksize(k2, k2.loops()[0].loop_id, 64, 2)
        hint = out.loops()[0].directives.first(HmppBlocksize)
        assert (hint.x, hint.y) == (64, 2)

    def test_clear(self):
        k = parse_kernel(STREAM)
        out = set_gang_worker(k, k.loops()[0].loop_id, 8, 8)
        cleared = clear_distribution(out, out.loops()[0].loop_id)
        acc = cleared.loops()[0].directives.first(AccLoop)
        assert acc.gang is None and acc.worker is None


class TestUnroll:
    @pytest.mark.parametrize("n", [0, 1, 7, 8, 13])
    @pytest.mark.parametrize("factor", [2, 4, 8])
    def test_semantics_preserved_any_trip_count(self, n, factor):
        k = parse_kernel(STREAM)
        unrolled = unroll_in_kernel(k, k.loops()[0].loop_id, factor)
        b = np.arange(max(n, 1), dtype=np.float64)
        a1 = np.zeros(max(n, 1))
        a2 = np.zeros(max(n, 1))
        run(k, a=a1, b=b, n=n)
        run(unrolled, a=a2, b=b, n=n)
        assert np.allclose(a1, a2)

    def test_inner_unroll_triangular(self):
        k = parse_kernel(TRIANGULAR)
        unrolled = unroll_in_kernel(k, k.loop_by_var("k").loop_id, 4)
        n = 12
        rng = np.random.default_rng(0)
        m = rng.random((n, n)) + n * np.eye(n)
        a1, a2 = m.flatten().copy(), m.flatten().copy()
        run(k, a=a1, size=n, piv=n // 2)
        run(unrolled, a=a2, size=n, piv=n // 2)
        assert np.allclose(a1, a2)

    def test_factor_validation(self):
        k = parse_kernel(STREAM)
        with pytest.raises(UnrollError):
            unroll_in_kernel(k, k.loops()[0].loop_id, 1)

    def test_jam_fuses_inner(self):
        src = """
void f(float *a, const float *b, int n, int m) {
    int i, j;
    for (i = 0; i < n; i++) {
        for (j = 0; j < m; j++) {
            a[i * m + j] += b[j];
        }
    }
}
"""
        k = parse_kernel(src)
        jammed = unroll_in_kernel(k, k.loop_by_var("i").loop_id, 2, jam=True)
        # jam keeps a single inner loop
        outer = jammed.loop_by_var("i")
        inner_loops = [s for s in outer.body.stmts if hasattr(s, "var")]
        assert len(inner_loops) == 1
        n, m = 5, 6
        b = np.arange(m, dtype=np.float64)
        a1, a2 = np.zeros(n * m), np.zeros(n * m)
        run(k, a=a1, b=b, n=n, m=m)
        run(jammed, a=a2, b=b, n=n, m=m)
        assert np.allclose(a1, a2)

    def test_step_multiplied(self):
        k = parse_kernel(STREAM)
        unrolled = unroll_in_kernel(k, k.loops()[0].loop_id, 4)
        assert unrolled.loops()[0].step == 4


class TestTile:
    @pytest.mark.parametrize("n", [1, 7, 16, 33])
    def test_strip_mine_semantics(self, n):
        k = parse_kernel(STREAM)
        tiled = tile_in_kernel(k, k.loops()[0].loop_id, 8)
        b = np.arange(n, dtype=np.float64)
        a1, a2 = np.zeros(n), np.zeros(n)
        run(k, a=a1, b=b, n=n)
        run(tiled, a=a2, b=b, n=n)
        assert np.allclose(a1, a2)

    def test_strip_mine_creates_nest(self):
        k = parse_kernel(STREAM)
        tiled = tile_in_kernel(k, k.loops()[0].loop_id, 8)
        assert loop_nest_depth(tiled.top_level_loops()[0]) == 2

    def test_2d_tile_semantics(self):
        src = """
void f(float *a, int n, int m) {
    int i, j;
    for (i = 0; i < n; i++) {
        for (j = 0; j < m; j++) {
            a[i * m + j] = a[i * m + j] + 1.0f;
        }
    }
}
"""
        k = parse_kernel(src)
        tiled = tile_in_kernel(k, k.loop_by_var("i").loop_id, (4, 4))
        n, m = 10, 13
        a1, a2 = np.zeros(n * m), np.zeros(n * m)
        run(k, a=a1, n=n, m=m)
        run(tiled, a=a2, n=n, m=m)
        assert np.allclose(a1, a2)
        assert loop_nest_depth(tiled.top_level_loops()[0]) == 4

    def test_size_validation(self):
        k = parse_kernel(STREAM)
        with pytest.raises(TileError):
            tile_in_kernel(k, k.loops()[0].loop_id, 1)


class TestReorganize:
    def test_fuse_adjacent(self):
        src = """
void f(float *a, float *b, int n) {
    int i;
    for (i = 0; i < n; i++) { a[i] = 1.0f; }
    for (i = 0; i < n; i++) { b[i] = 2.0f; }
}
"""
        k = parse_kernel(src)
        fused = fuse_adjacent_loops(k)
        assert len(fused.top_level_loops()) == 1
        n = 5
        a, b = np.zeros(n), np.zeros(n)
        run(fused, a=a, b=b, n=n)
        assert np.all(a == 1.0) and np.all(b == 2.0)

    def test_fuse_kernels_unions_params(self):
        from repro.frontend import parse_module
        mod = parse_module(
            "void f(float *a, int n) { int i; for (i = 0; i < n; i++) a[i] = 1.0f; }"
            "void g(float *a, float *b, int n) { int i; "
            "for (i = 0; i < n; i++) b[i] = a[i]; }",
            "m",
        )
        fused_mod = fuse_kernels(mod, ["f", "g"], "fg")
        assert [k.name for k in fused_mod.kernels] == ["fg"]
        fused = fused_mod.kernel("fg")
        assert {p.name for p in fused.params} == {"a", "b", "n"}
        assert len(fused.top_level_loops()) == 1  # headers matched -> fused

    def test_split_loop(self):
        src = """
void f(float *a, float *b, int n) {
    int i;
    for (i = 0; i < n; i++) {
        a[i] = 1.0f;
        b[i] = 2.0f;
    }
}
"""
        k = parse_kernel(src)
        fissioned = split_loop(k, k.loops()[0].loop_id)
        assert len(fissioned.top_level_loops()) == 2


class TestReduction:
    def test_annotates(self):
        k = parse_kernel(
            "void f(const float *a, float *out, int n) { int i; float s = 0.0f; "
            "for (i = 0; i < n; i++) s += a[i]; out[0] = s; }"
        )
        out = add_reduction(k, k.loops()[0].loop_id)
        acc = out.loops()[0].directives.first(AccLoop)
        assert acc.reduction.var == "s"

    def test_wrong_var(self):
        k = parse_kernel(
            "void f(const float *a, float *out, int n) { int i; float s = 0.0f; "
            "for (i = 0; i < n; i++) s += a[i]; out[0] = s; }"
        )
        with pytest.raises(ReductionError):
            add_reduction(k, k.loops()[0].loop_id, "zz")

    def test_not_a_reduction(self):
        k = parse_kernel(STREAM)
        with pytest.raises(ReductionError):
            add_reduction(k, k.loops()[0].loop_id)
