"""Tests for repro.ir.stmt and the builder."""

import pytest

from repro.ir import (
    Assign,
    Block,
    Decl,
    DType,
    For,
    If,
    KernelBuilder,
    Module,
    Param,
    ScalarType,
    Var,
    add,
    const,
    idx,
    loop_nest_depth,
    mul,
    perfect_nest,
)


def _loop(var="i", body=None):
    return For(var=var, lower=const(0), upper=Var("n"), body=body or Block())


class TestFor:
    def test_unique_loop_ids(self):
        a, b = _loop(), _loop()
        assert a.loop_id != b.loop_id

    def test_children(self):
        loop = _loop(body=Block([Assign(Var("x"), const(1))]))
        assert len(list(loop.walk())) == 3  # for, block, assign

    def test_nest_depth_single(self):
        assert loop_nest_depth(_loop()) == 1

    def test_nest_depth_nested(self):
        inner = _loop("j")
        outer = _loop("i", Block([inner]))
        assert loop_nest_depth(outer) == 2
        assert [l.var for l in perfect_nest(outer)] == ["i", "j"]

    def test_imperfect_nest(self):
        inner = _loop("j")
        outer = _loop("i", Block([Assign(Var("s"), const(0)), inner]))
        assert loop_nest_depth(outer) == 1


class TestKernelFunction:
    def _kernel(self):
        return (
            KernelBuilder("k")
            .array("a", DType.FLOAT32)
            .scalar("n")
            .loop("i", 0, "n")
            .assign(idx("a", "i"), mul(idx("a", "i"), 2.0))
            .end()
            .build()
        )

    def test_params_split(self):
        k = self._kernel()
        assert [p.name for p in k.array_params] == ["a"]
        assert [p.name for p in k.scalar_params] == ["n"]

    def test_param_lookup(self):
        k = self._kernel()
        assert k.param("a").is_array
        with pytest.raises(KeyError):
            k.param("zzz")

    def test_loops_and_find(self):
        k = self._kernel()
        loop = k.loops()[0]
        assert k.find_loop(loop.loop_id) is loop
        assert k.loop_by_var("i") is loop
        with pytest.raises(KeyError):
            k.find_loop(999999)
        with pytest.raises(KeyError):
            k.loop_by_var("zz")

    def test_top_level_loops(self):
        k = self._kernel()
        assert len(k.top_level_loops()) == 1


class TestModule:
    def test_kernel_lookup(self):
        k = KernelBuilder("f").scalar("n").build()
        mod = Module("m", [k])
        assert mod.kernel("f") is k
        with pytest.raises(KeyError):
            mod.kernel("g")
        assert len(mod) == 1 and list(mod) == [k]


class TestParam:
    def test_bad_intent(self):
        with pytest.raises(ValueError):
            Param("x", ScalarType(DType.INT32), intent="out-of-band")


class TestBuilder:
    def test_unclosed_loop_raises(self):
        builder = KernelBuilder("k").scalar("n").loop("i", 0, "n")
        with pytest.raises(ValueError):
            builder.build()

    def test_end_without_open(self):
        with pytest.raises(ValueError):
            KernelBuilder("k").end()

    def test_if_else(self):
        k = (
            KernelBuilder("k")
            .array("a")
            .scalar("n")
            .loop("i", 0, "n")
            .if_(add("i", 1))
            .assign(idx("a", "i"), 1.0)
            .else_()
            .assign(idx("a", "i"), 2.0)
            .end()
            .end()
            .build()
        )
        body = k.loops()[0].body.stmts
        assert isinstance(body[0], If) and body[0].else_body is not None

    def test_else_needs_if(self):
        builder = KernelBuilder("k").loop("i", 0, 4)
        with pytest.raises(ValueError):
            builder.assign("x", 1).else_()

    def test_loop_directives(self):
        k = (
            KernelBuilder("k").array("a").scalar("n")
            .loop("i", 0, "n", independent=True, gang=8, worker=4)
            .assign(idx("a", "i"), 0.0).end().build()
        )
        from repro.ir import AccLoop
        acc = k.loops()[0].directives.first(AccLoop)
        assert acc.independent and acc.gang == 8 and acc.worker == 4

    def test_decl(self):
        k = (
            KernelBuilder("k").scalar("n")
            .decl("s", DType.FLOAT32, 0.0).build()
        )
        assert isinstance(k.body.stmts[0], Decl)
