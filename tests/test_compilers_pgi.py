"""Tests for the PGI compiler model and its documented quirks."""

import pytest

from repro.compilers import CompilationError, FlagSet, PgiCompiler
from repro.compilers.framework import DistStrategy
from repro.frontend import parse_module
from repro.ptx.counter import InstructionProfile


def compile_src(source, flags=None):
    return PgiCompiler(flags).compile(parse_module(source, "m"), "cuda")


SIMPLE = """
#pragma acc kernels
void k(float *a, int n) {
  int i;
  for (i = 0; i < n; i++) {
    a[i] = a[i] * 2.0f;
  }
}
"""


class TestAutoParallelization:
    def test_clean_loop_auto_parallel(self):
        kernel = compile_src(SIMPLE).kernels[0]
        assert kernel.distribution.strategy is DistStrategy.AUTO_1D
        config = kernel.launch_config({"n": 1024})
        assert config.block == (128, 1, 1) and config.grid[0] == 8

    def test_aliasing_blocks(self):
        src = """
#pragma acc kernels
void k(float *a, float *m, int n) {
  int i;
  for (i = 0; i < n; i++) {
    a[i] = m[i] * 2.0f;
  }
}
"""
        kernel = compile_src(src).kernels[0]
        assert kernel.sequential  # m may alias a

    def test_const_disarms_aliasing(self):
        src = """
#pragma acc kernels
void k(float *a, const float *m, int n) {
  int i;
  for (i = 0; i < n; i++) {
    a[i] = m[i] * 2.0f;
  }
}
"""
        assert not compile_src(src).kernels[0].sequential

    def test_constant_distance_blocks(self):
        src = """
#pragma acc kernels
void k(float *a, int n) {
  int i;
  for (i = 1; i < n; i++) {
    a[i] = a[i - 1] + 1.0f;
  }
}
"""
        assert compile_src(src).kernels[0].sequential

    def test_bare_reduction_stays_sequential(self):
        src = """
#pragma acc kernels
void k(const float *a, float *out, int n) {
  int i;
  float s = 0.0f;
  for (i = 0; i < n; i++) {
    s += a[i];
  }
  out[0] = s;
}
"""
        assert compile_src(src).kernels[0].sequential

    def test_nested_clean_inner_collapsed(self):
        src = """
#pragma acc kernels
void k(float *a, int n, int m) {
  int i, j;
  for (i = 0; i < n; i++) {
    for (j = 0; j < m; j++) {
      a[i * m + j] = a[i * m + j] + 1.0f;
    }
  }
}
"""
        kernel = compile_src(src).kernels[0]
        assert len(kernel.parallel_loop_ids) == 2


class TestIndependentHandling:
    COMPLEX = """
#pragma acc kernels
void k(int *c, const int *e, int n) {
  int i;
  #pragma acc loop independent
  for (i = 0; i < n; i++) {
    c[e[i]] = 1;
  }
}
"""

    def test_independent_ignored_on_complex_loop(self):
        kernel = compile_src(self.COMPLEX).kernels[0]
        assert kernel.sequential
        assert any("ignored" in m for m in kernel.messages)

    def test_independent_overrides_aliasing(self):
        src = """
#pragma acc kernels
void k(float *a, float *m, int n) {
  int i;
  #pragma acc loop independent
  for (i = 0; i < n; i++) {
    a[i] = m[i] * 2.0f;
  }
}
"""
        assert not compile_src(src).kernels[0].sequential


class TestElision:
    def test_all_complex_kernel_runs_on_host(self):
        src = """
#pragma acc kernels
void k(int *c, const int *e, int n) {
  int i;
  for (i = 0; i < n; i++) {
    c[e[i]] = 1;
  }
}
"""
        kernel = compile_src(src).kernels[0]
        assert kernel.elided
        assert InstructionProfile.of(kernel.ptx).total <= 2


class TestMunroll:
    TRIPLE = """
#pragma acc kernels
void k(float *a, const float *b, int n, int t) {
  int i;
  #pragma acc loop independent
  for (i = 0; i < n - t; i++) {
    a[i + t] = b[i] * 2.0f;
  }
}
"""

    def test_unrolls_invariant_bound_loop(self):
        flags = FlagSet("PGI", ("-Munroll",))
        kernel = compile_src(self.TRIPLE, flags).kernels[0]
        assert kernel.ir.loops()[0].step == 2

    def test_skips_reduction_loop(self):
        src = """
#pragma acc kernels
void k(const float *a, float *out, int n) {
  int i;
  float s = 0.0f;
  for (i = 0; i < n; i++) {
    s += a[i];
  }
  out[0] = s;
}
"""
        flags = FlagSet("PGI", ("-Munroll",))
        kernel = compile_src(src, flags).kernels[0]
        assert kernel.ir.loops()[0].step == 1

    def test_skips_loop_variant_bound(self):
        src = """
#pragma acc kernels
void k(float *a, int n) {
  int i, j;
  for (i = 0; i < n; i++) {
    for (j = 0; j < i; j++) {
      a[i * n + j] = 0.0f;
    }
  }
}
"""
        flags = FlagSet("PGI", ("-Munroll",))
        kernel = compile_src(src, flags).kernels[0]
        assert kernel.ir.loop_by_var("j").step == 1


class TestReductionClause:
    def test_reduction_clause_parallelizes_with_shared_memory(self):
        src = """
#pragma acc kernels
void k(const float *a, float *out, int n, int m) {
  int i, j;
  #pragma acc loop independent
  for (i = 0; i < m; i++) {
    float s = 0.0f;
    #pragma acc loop reduction(+:s)
    for (j = 0; j < n; j++) {
      s += a[i * n + j];
    }
    out[i] = s;
  }
}
"""
        kernel = compile_src(src).kernels[0]
        profile = InstructionProfile.of(kernel.ptx)
        assert profile.uses_shared_memory
        assert len(kernel.parallel_loop_ids) == 2


class TestRestrictions:
    def test_no_mic_backend(self):
        with pytest.raises(CompilationError):
            PgiCompiler().compile(parse_module(SIMPLE, "m"), "opencl")

    def test_multi_level_pointers_rejected(self):
        src = """
#pragma acc kernels
void k(double **q, int n) {
  int i;
  for (i = 0; i < n; i++) {
    q[0][i] = 1.0;
  }
}
"""
        with pytest.raises(CompilationError, match="pointer"):
            compile_src(src)

    def test_explicit_gang_worker_without_independent_honored(self):
        src = """
#pragma acc kernels
void k(float *a, int n) {
  int i;
  #pragma acc loop gang(64) worker(16)
  for (i = 0; i < n; i++) {
    a[i] = 0.0f;
  }
}
"""
        kernel = compile_src(src).kernels[0]
        config = kernel.launch_config({"n": 1024})
        assert config.grid[0] == 64 and config.block_threads == 16
