"""CompileService: caching, dedup, pool scheduling, structured errors."""

import threading
import time

import pytest

from repro.compilers.framework import CompilationError
from repro.frontend import parse_module
from repro.service import (
    ArtifactCache,
    CompileRequest,
    CompileService,
    JobError,
    get_default_service,
    reset_default_service,
)

SOURCE = """
#pragma acc kernels
void demo(float *a, const float *b, int n) {
  int i;
  #pragma acc loop independent
  for (i = 0; i < n; i++) {
    a[i] = b[i] * 2.0f;
  }
}
"""


@pytest.fixture
def module():
    return parse_module(SOURCE, "demo")


class TestCompile:
    def test_hit_avoids_recompile(self, module):
        service = CompileService()
        first = service.compile(module, "caps", "cuda")
        second = service.compile(module, "caps", "cuda")
        assert service.metrics.compiles == 1
        assert service.metrics.cache_hits == 1
        # invisible: both artifacts identical, neither aliased
        assert first is not second
        assert first.kernels[0].ptx.render() == second.kernels[0].ptx.render()

    def test_reparsed_module_hits(self, module):
        service = CompileService()
        service.compile(module, "caps", "cuda")
        service.compile(parse_module(SOURCE, "demo"), "caps", "cuda")
        assert service.metrics.compiles == 1

    def test_compiler_error_cached_and_replayed(self, module):
        calls = []

        def failing(request):
            calls.append(request.fingerprint)
            raise CompilationError("nope")

        service = CompileService(compile_fn=failing)
        with pytest.raises(CompilationError):
            service.compile(module, "caps", "cuda")
        with pytest.raises(CompilationError):
            service.compile(module, "caps", "cuda")
        assert len(calls) == 1  # the failure replayed from cache
        assert service.metrics.errors == 1
        assert service.metrics.cache_hits == 1

    def test_unknown_compiler_raises(self, module):
        with pytest.raises(ValueError):
            CompileService().compile(module, "gcc", "cuda")


class TestBatch:
    def test_compile_many_preserves_order(self, module):
        other = parse_module(SOURCE.replace("2.0f", "3.0f"), "demo")
        requests = [
            CompileRequest(module, "caps", "cuda"),
            CompileRequest(other, "caps", "cuda"),
            CompileRequest(module, "pgi", "cuda"),
        ]
        serial = CompileService().compile_many(requests)
        pooled = CompileService(jobs=4).compile_many(requests)
        assert [r.compiler for r in serial] == ["CAPS", "CAPS", "PGI"]
        for a, b in zip(serial, pooled):
            assert a.kernels[0].ptx.render() == b.kernels[0].ptx.render()

    def test_sweep_captures_errors_in_slot(self, module):
        requests = [
            CompileRequest(module, "caps", "cuda", label="good"),
            CompileRequest(module, "gcc", "cuda", label="bad"),
            CompileRequest(module, "pgi", "cuda", label="also good"),
        ]
        results = CompileService().sweep(requests)
        assert results[0].compiler == "CAPS"
        assert isinstance(results[1], JobError)
        assert results[1].kind == "compile-error"
        assert results[1].label == "bad"
        assert results[2].compiler == "PGI"

    def test_identical_requests_batch(self, module):
        service = CompileService()
        requests = [CompileRequest(module, "caps", "cuda")] * 3
        results = service.compile_many(requests)
        assert service.metrics.compiles == 1
        assert len(results) == 3


class TestPool:
    def test_inflight_dedup_shares_one_future(self, module):
        release = threading.Event()
        started = threading.Event()

        def slow(request):
            started.set()
            assert release.wait(5.0)
            return "artifact"

        service = CompileService(jobs=2, compile_fn=slow)
        request = CompileRequest(module, "caps", "cuda")
        first = service.submit(request)
        assert started.wait(5.0)
        second = service.submit(request)  # identical while in flight
        assert second is first
        assert service.metrics.dedup_hits == 1
        release.set()
        assert first.result(5.0) == "artifact"
        assert service.metrics.compiles == 1
        service.close()

    def test_timeout_becomes_joberror(self, module):
        def sleepy(request):
            time.sleep(0.5)
            return "artifact"

        service = CompileService(jobs=2, timeout_s=0.05, compile_fn=sleepy)
        results = service.sweep([CompileRequest(module, "caps", "cuda",
                                                label="slowpoke")])
        assert isinstance(results[0], JobError)
        assert results[0].kind == "timeout"
        assert service.metrics.timeouts == 1
        service.close()

    def test_compile_many_raises_on_timeout(self, module):
        def sleepy(request):
            time.sleep(0.5)
            return "artifact"

        service = CompileService(jobs=2, timeout_s=0.05, compile_fn=sleepy)
        with pytest.raises(JobError):
            service.compile_many([CompileRequest(module, "caps", "cuda")])
        service.close()

    def test_context_manager_closes_pool(self, module):
        with CompileService(jobs=2) as service:
            service.compile_many([CompileRequest(module, "caps", "cuda")])
        assert service._pool is None


class TestDefaultService:
    def test_singleton(self):
        reset_default_service()
        try:
            assert get_default_service() is get_default_service()
        finally:
            reset_default_service()

    def test_report_lines_include_cache_section(self, module):
        service = CompileService(cache=ArtifactCache(max_entries=8))
        service.compile(module, "caps", "cuda")
        service.compile(module, "caps", "cuda")
        text = "\n".join(service.report_lines())
        assert "compile service" in text
        assert "1 cache hits" in text
        assert "1 memory hits" in text


class TestJobErrorPickle:
    """JobError must survive the disk cache tier: the default
    Exception.__reduce__ would replay only ``args`` (the message) and
    crash the 5-argument constructor on load."""

    def test_round_trip_preserves_all_fields(self):
        import pickle

        err = JobError("lbl", "fp123", "timeout", "took too long", 1.5)
        clone = pickle.loads(pickle.dumps(err))
        assert clone.label == "lbl"
        assert clone.fingerprint == "fp123"
        assert clone.kind == "timeout"
        assert clone.message == "took too long"
        assert clone.seconds == 1.5
        assert str(clone) == str(err)


class TestFailureCaching:
    """Harness requirement (ISSUE 2): a failing fingerprint must replay
    the same error from the warm cache without recompiling, and must not
    poison successful artifacts cached beside it."""

    @pytest.fixture()
    def module(self):
        return parse_module(SOURCE, "demo")

    def test_failure_replays_without_recompiling(self, module):
        compiles = []

        def failing(request):
            compiles.append(request.fingerprint)
            raise CompilationError("boom")

        service = CompileService(compile_fn=failing)
        req = CompileRequest(module, "caps", "cuda", label="bad")
        (first,) = service.sweep([req])
        (second,) = service.sweep([req])
        assert isinstance(first, JobError) and first.kind == "compile-error"
        assert isinstance(second, JobError)
        assert second.message == first.message
        assert len(compiles) == 1  # second sweep hit the cached failure
        assert service.metrics.cache_hits == 1

    def test_failure_does_not_poison_good_entries(self, module):
        calls = []

        def sometimes(request):
            calls.append(request.target)
            if request.target == "opencl":
                raise CompilationError("no backend")
            return f"artifact-{request.target}"

        service = CompileService(compile_fn=sometimes)
        good = CompileRequest(module, "caps", "cuda")
        bad = CompileRequest(module, "caps", "opencl")
        results = service.sweep([good, bad])
        assert results[0] == "artifact-cuda"
        assert isinstance(results[1], JobError)
        # the good artifact still replays from cache, the failure too
        results2 = service.sweep([good, bad])
        assert results2[0] == "artifact-cuda"
        assert isinstance(results2[1], JobError)
        assert calls == ["cuda", "opencl"]  # nothing recompiled

    def test_cleared_cache_recompiles(self, module):
        compiles = []

        def failing(request):
            compiles.append(1)
            raise CompilationError("boom")

        service = CompileService(compile_fn=failing)
        req = CompileRequest(module, "caps", "cuda")
        service.sweep([req])
        service.cache.clear(memory_only=False)
        service.sweep([req])
        assert len(compiles) == 2

    def test_failure_replays_across_services_via_disk_tier(
        self, module, tmp_path
    ):
        def failing(request):
            raise JobError(request.label, request.fingerprint,
                           "compile-error", "structured boom")

        cache_dir = str(tmp_path / "cache")
        first = CompileService(
            cache=ArtifactCache(cache_dir=cache_dir), compile_fn=failing
        )
        req = CompileRequest(module, "caps", "cuda", label="persist")
        (err,) = first.sweep([req])
        assert isinstance(err, JobError)

        # a new service over the same disk tier must replay the pickled
        # JobError (exercises JobError.__reduce__) without compiling
        def never(request):
            raise AssertionError("should not compile")

        second = CompileService(
            cache=ArtifactCache(cache_dir=cache_dir), compile_fn=never
        )
        (replayed,) = second.sweep([req])
        assert isinstance(replayed, JobError)
        assert replayed.kind == "compile-error"
        assert replayed.message == "structured boom"
        assert replayed.fingerprint == req.fingerprint
