"""The static race checker: lint warnings + the exact symbolic oracle."""

import numpy as np
import pytest

from repro.difftest.generator import generate_case, make_inputs
from repro.difftest.racecheck import (
    OracleUnsupported,
    lint_kernel,
    predict,
    symbolic_state,
)
from repro.frontend import parse_kernel
from repro.runtime.executor import ExecMode, LoopSemantics, execute_kernel


def _sem(kernel, mode, chunks=4):
    return {
        loop.loop_id: LoopSemantics(mode, chunks=chunks)
        for loop in kernel.loops()
    }


class TestLint:
    def test_flow_dependence_under_independent_is_flagged(self):
        k = parse_kernel(
            "void f(float *a) { int i;\n"
            "#pragma acc loop independent\n"
            "for (i = 1; i < 8; i++) a[i] = a[i - 1] + 1.0f; }"
        )
        warnings = lint_kernel(k)
        assert any(w.kind == "independent-dependence" for w in warnings)

    def test_clean_independent_loop_is_silent(self):
        k = parse_kernel(
            "void f(float *a, const float *b) { int i;\n"
            "#pragma acc loop independent\n"
            "for (i = 0; i < 8; i++) a[i] = b[i] + 1.0f; }"
        )
        assert lint_kernel(k) == []

    def test_reduction_clause_without_reduction_is_flagged(self):
        k = parse_kernel(
            "void f(float *a, float s) { int i;\n"
            "#pragma acc loop reduction(+:s)\n"
            "for (i = 0; i < 8; i++) a[i] = a[i] * 2.0f; }"
        )
        warnings = lint_kernel(k)
        assert any(w.kind == "reduction-mismatch" for w in warnings)

    def test_matching_reduction_clause_is_silent(self):
        k = parse_kernel(
            "void f(const float *a, float *out) { int i; float s = 0.0f;\n"
            "#pragma acc loop reduction(+:s)\n"
            "for (i = 0; i < 8; i++) s += a[i];\n"
            "out[0] = s; }"
        )
        assert not [w for w in lint_kernel(k) if w.kind == "reduction-mismatch"]


class TestOracleBasics:
    def test_flow_dependence_breaks_under_snapshot(self):
        k = parse_kernel(
            "void f(float *a) { int i;\n"
            "for (i = 1; i < 8; i++) a[i] = a[i - 1] + 1.0f; }"
        )
        pred = predict(k, k, _sem(k, ExecMode.PARALLEL_SNAPSHOT), {"a": 8})
        assert pred.supported and pred.wrong_answer and pred.race_broken
        assert not pred.transform_broken

    def test_anti_dependence_is_benign_sequentially_ordered(self):
        # a[i] = a[i+1]: snapshot reads the *original* right neighbor,
        # sequential also reads the not-yet-overwritten right neighbor —
        # identical dataflow, no wrong answer
        k = parse_kernel(
            "void f(float *a) { int i;\n"
            "for (i = 0; i < 7; i++) a[i] = a[i + 1]; }"
        )
        pred = predict(k, k, _sem(k, ExecMode.PARALLEL_SNAPSHOT), {"a": 8})
        assert pred.supported and not pred.wrong_answer

    def test_scalar_accumulation_survives_snapshot(self):
        # snapshotting only applies to *arrays*; the scalar sum is live
        k = parse_kernel(
            "void f(const float *a, float *out) { int i; float s = 0.0f;\n"
            "for (i = 0; i < 8; i++) s += a[i];\n"
            "out[0] = s; }"
        )
        pred = predict(k, k, _sem(k, ExecMode.PARALLEL_SNAPSHOT),
                       {"a": 8, "out": 4})
        assert pred.supported and not pred.wrong_answer

    def test_last_chunk_drops_partial_sums(self):
        k = parse_kernel(
            "void f(const float *a, float *out) { int i; float s = 0.0f;\n"
            "for (i = 0; i < 8; i++) s += a[i];\n"
            "out[0] = s; }"
        )
        pred = predict(k, k, _sem(k, ExecMode.REDUCTION_LAST_CHUNK),
                       {"a": 8, "out": 4})
        assert pred.supported and pred.wrong_answer

    def test_single_iteration_last_chunk_is_exact(self):
        k = parse_kernel(
            "void f(const float *a, float *out) { int i; float s = 0.0f;\n"
            "for (i = 0; i < 1; i++) s += a[i];\n"
            "out[0] = s; }"
        )
        pred = predict(k, k, _sem(k, ExecMode.REDUCTION_LAST_CHUNK),
                       {"a": 4, "out": 4})
        assert pred.supported and not pred.wrong_answer

    def test_transform_bug_detected_sequentially(self):
        orig = parse_kernel(
            "void f(const float *a, float *b) { int i;\n"
            "for (i = 0; i < 4; i++) b[i] = a[i] + 1.0f; }"
        )
        mutated = parse_kernel(
            "void f(const float *a, float *b) { int i;\n"
            "for (i = 0; i < 4; i++) b[i] = a[i] + 2.0f; }"
        )
        pred = predict(orig, mutated, {}, {"a": 4, "b": 4})
        assert pred.supported and pred.transform_broken and pred.wrong_answer
        assert not pred.race_broken

    def test_fabs_of_positive_input_is_identity(self):
        # inputs are drawn from [0.75, 1.3): fabs(x) folds to x, so the
        # two kernels have *equal* symbolic states
        plain = parse_kernel(
            "void f(const float *a, float *b) { int i;\n"
            "for (i = 0; i < 4; i++) b[i] = a[i]; }"
        )
        wrapped = parse_kernel(
            "void f(const float *a, float *b) { int i;\n"
            "for (i = 0; i < 4; i++) b[i] = fabs(fabs(a[i])); }"
        )
        ext = {"a": 4, "b": 4}
        assert symbolic_state(plain, {}, ext) == symbolic_state(wrapped, {}, ext)


class TestOracleRefusals:
    def test_symbolic_loop_bound_unsupported(self):
        k = parse_kernel(
            "void f(float *a, float t) { int i;\n"
            "for (i = 0; i < t; i++) a[i] = 1.0f; }"
        )
        pred = predict(k, k, {}, {"a": 8})
        assert not pred.supported

    def test_symbolic_branch_unsupported(self):
        k = parse_kernel(
            "void f(float *a, float t) { int i;\n"
            "for (i = 0; i < 4; i++) if (t > 1.0f) a[i] = 1.0f; }"
        )
        pred = predict(k, k, {}, {"a": 8})
        assert not pred.supported

    def test_out_of_bounds_subscript_unsupported(self):
        k = parse_kernel(
            "void f(float *a) { int i;\n"
            "for (i = 0; i < 8; i++) a[i] = 1.0f; }"
        )
        with pytest.raises(OracleUnsupported):
            symbolic_state(k, {}, {"a": 4})

    def test_int_scalar_params_can_bind_concrete(self):
        k = parse_kernel(
            "void f(float *a, int n) { int i;\n"
            "for (i = 0; i < n; i++) a[i] = 1.0f; }"
        )
        state = symbolic_state(k, {}, {"a": 8}, int_scalars={"n": 4})
        assert state["a"][:4] == (1.0,) * 4
        assert state["a"][4] == ("in", "a", 4)


class TestMirrorFidelity:
    """The oracle must track the executor bit for bit: run both on the
    same kernels under the same stress semantics and require that tree
    equality predicts numeric equality, kernel by kernel."""

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize(
        "mode", [ExecMode.PARALLEL_SNAPSHOT, ExecMode.REDUCTION_LAST_CHUNK]
    )
    def test_agreement_with_executor(self, seed, mode):
        case = generate_case(seed)
        for kernel in case.module.kernels:
            extents = case.extents[kernel.name]
            args = make_inputs(kernel, extents, f"mf:{seed}:{kernel.name}")
            ints = {k: v for k, v in args.items() if isinstance(v, int)}
            int_arrays = {
                k: [int(x) for x in v]
                for k, v in args.items()
                if isinstance(v, np.ndarray) and v.dtype.kind == "i"
            }
            sem = _sem(kernel, mode)
            pred = predict(kernel, kernel, sem, extents, ints, int_arrays)
            assert pred.supported, pred.detail

            def run(semantics):
                copies = {
                    k: (v.copy() if isinstance(v, np.ndarray) else v)
                    for k, v in args.items()
                }
                execute_kernel(kernel, copies, semantics)
                return {
                    k: v for k, v in copies.items()
                    if isinstance(v, np.ndarray)
                }

            ref, got = run(None), run(sem)
            observed = any(
                not np.array_equal(ref[name], got[name]) for name in ref
            )
            assert observed == pred.wrong_answer


class TestPicDeposit:
    """The PIC scatter deposit (ISSUE 10): ``rho[cell[p]] += ...`` is
    exactly the race the ``#pragma acc atomic`` guards — the oracle must
    clear the atomic form and flag the stripped form."""

    def _deposit(self):
        from repro.ir.visitors import clone_kernel
        from repro.kernels import get_benchmark

        module = get_benchmark("pic").module()
        kernel = next(k for k in module.kernels if k.name == "pic_deposit")
        return clone_kernel(kernel)

    #: every particle maps to a cell, several share one — the racing pair
    _CELL = [0, 1, 2, 0, 1, 2, 0, 1]
    _EXTENTS = {"rho": 4, "cell": 8, "qw": 8, "frac": 8}

    def _predict(self, kernel):
        from repro.difftest.racecheck import predict

        sem = _sem(kernel, ExecMode.PARALLEL_SNAPSHOT)
        return predict(kernel, kernel, sem, self._EXTENTS,
                       int_scalars={"np": 8},
                       int_arrays={"cell": self._CELL})

    def test_atomic_deposit_is_race_free(self):
        kernel = self._deposit()
        pred = self._predict(kernel)
        assert pred.supported, pred.detail
        assert not pred.wrong_answer
        assert not pred.race_broken

    def test_stripped_atomic_races(self):
        from repro.ir.stmt import Assign

        kernel = self._deposit()
        stripped = 0
        for stmt in kernel.body.walk():
            if isinstance(stmt, Assign) and stmt.atomic:
                stmt.atomic = False
                stripped += 1
        assert stripped == 2  # both deposit halves were guarded
        pred = self._predict(kernel)
        assert pred.supported, pred.detail
        assert pred.race_broken
        assert pred.wrong_answer
