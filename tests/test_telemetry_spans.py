"""Tracing spans: nesting, cross-thread propagation, disabled path."""

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.telemetry.spans import (
    NOOP_SPAN,
    Tracer,
    configure_tracer,
    get_tracer,
    reset_tracer,
    traced,
)


@pytest.fixture(autouse=True)
def _reset_global_tracer():
    yield
    reset_tracer()


class TestNesting:
    def test_child_parented_to_ambient_span(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner"):
                pass
        inner, = tracer.spans_named("inner")
        assert inner.parent_id == outer.span.span_id

    def test_sibling_spans_share_parent(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        a, = tracer.spans_named("a")
        b, = tracer.spans_named("b")
        assert a.parent_id == b.parent_id == outer.span.span_id

    def test_root_span_has_no_parent(self):
        tracer = Tracer()
        with tracer.span("root"):
            pass
        span, = tracer.spans()
        assert span.parent_id is None

    def test_ambient_restored_after_block(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner"):
                pass
            assert tracer.capture() is outer.span
        assert tracer.capture() is None

    def test_durations_nest(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.spans()  # completion order: inner first
        assert inner.name == "inner"
        assert outer.start_s <= inner.start_s
        assert inner.end_s <= outer.end_s

    def test_attributes_and_events(self):
        tracer = Tracer()
        with tracer.span("work", category="test", label="x") as handle:
            handle.set(extra=3)
            handle.event("checkpoint", step=1)
        span, = tracer.spans()
        assert span.category == "test"
        assert span.attributes == {"label": "x", "extra": 3}
        assert span.events[0].name == "checkpoint"
        assert span.events[0].attributes == {"step": 1}

    def test_exception_recorded_and_propagated(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("bad"):
                raise ValueError("boom")
        span, = tracer.spans()
        assert span.finished
        assert span.error == "ValueError: boom"


class TestCrossThread:
    def test_capture_reparents_worker_spans(self):
        """The scheduler pattern: capture on the caller, pass as parent=
        on the pool thread; contextvars alone would not flow there."""
        tracer = Tracer()
        with tracer.span("sweep") as sweep:
            parent = tracer.capture()
            with ThreadPoolExecutor(max_workers=2,
                                    thread_name_prefix="pool") as pool:
                def job(i):
                    with tracer.span("job", parent=parent, index=i):
                        pass
                list(pool.map(job, range(4)))
        jobs = tracer.spans_named("job")
        assert len(jobs) == 4
        assert all(j.parent_id == sweep.span.span_id for j in jobs)
        assert all(j.thread_name.startswith("pool") for j in jobs)

    def test_worker_children_nest_under_reparented_span(self):
        tracer = Tracer()
        with tracer.span("sweep"):
            parent = tracer.capture()

            def job():
                with tracer.span("job", parent=parent) as j:
                    with tracer.span("compile"):
                        pass
                return j.span.span_id

            with ThreadPoolExecutor(max_workers=1) as pool:
                job_id = pool.submit(job).result()
        compile_span, = tracer.spans_named("compile")
        assert compile_span.parent_id == job_id

    def test_spans_record_thread_identity(self):
        tracer = Tracer()
        done = threading.Event()

        def work():
            with tracer.span("threaded"):
                done.set()

        t = threading.Thread(target=work, name="my-worker")
        t.start()
        t.join()
        assert done.wait(1)
        span, = tracer.spans()
        assert span.thread_name == "my-worker"
        assert span.thread_id != 0

    def test_concurrent_span_recording_is_complete(self):
        tracer = Tracer()

        def burst(i):
            for k in range(50):
                with tracer.span(f"s{i}"):
                    pass

        threads = [threading.Thread(target=burst, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(tracer.spans()) == 200
        ids = [s.span_id for s in tracer.spans()]
        assert len(set(ids)) == 200


class TestDisabledPath:
    def test_disabled_span_is_the_noop_singleton(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("x") is NOOP_SPAN
        assert tracer.span("y", category="c", attr=1) is NOOP_SPAN

    def test_noop_span_supports_full_surface(self):
        with Tracer(enabled=False).span("x") as handle:
            assert handle is NOOP_SPAN
            assert handle.set(a=1) is NOOP_SPAN
            handle.event("e", b=2)

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("x"):
            pass
        tracer.record_span("y", 0.5)
        assert tracer.spans() == []
        assert tracer.capture() is None

    def test_no_allocation_beyond_guard(self):
        """Every disabled span() call returns the identical object —
        no Span, no context manager, no contextvar write."""
        tracer = Tracer(enabled=False)
        handles = {id(tracer.span(f"n{i}")) for i in range(100)}
        assert handles == {id(NOOP_SPAN)}

    def test_global_tracer_starts_disabled(self):
        reset_tracer()
        assert get_tracer().enabled is False
        assert get_tracer().span("x") is NOOP_SPAN


class TestModeledSpans:
    def test_record_span_is_placed_at_clock_with_modeled_duration(self):
        tracer = Tracer()
        before = tracer.now_s()
        span = tracer.record_span("runtime.launch", 1.5, category="modeled",
                                  label="k0")
        assert span is not None
        assert span.start_s >= before
        assert span.duration_s == pytest.approx(1.5)
        assert span.category == "modeled"

    def test_record_span_nests_under_ambient(self):
        tracer = Tracer()
        with tracer.span("stage") as stage:
            tracer.record_span("runtime.h2d", 0.1)
        modeled, = tracer.spans_named("runtime.h2d")
        assert modeled.parent_id == stage.span.span_id

    def test_negative_seconds_clamped(self):
        tracer = Tracer()
        span = tracer.record_span("x", -1.0)
        assert span.duration_s == 0.0


class TestDecorator:
    def test_traced_resolves_global_tracer_per_call(self):
        @traced("deco.work", category="test")
        def work(x):
            return x * 2

        reset_tracer()
        assert work(2) == 4          # disabled: runs bare
        tracer = configure_tracer(enabled=True)
        assert work(3) == 6
        span, = tracer.spans_named("deco.work")
        assert span.category == "test"

    def test_traced_preserves_function_identity(self):
        @traced("deco.named")
        def documented():
            """docs."""

        assert documented.__name__ == "documented"
        assert documented.__doc__ == "docs."
