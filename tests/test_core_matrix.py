"""The portability matrix end-to-end, and its determinism battery:
byte-identical digests at jobs 1 vs 4, cold vs journal-resumed, and
under a seeded transient fault plan with retries."""

import json

import pytest

from repro.core import run_matrix
from repro.core.matrix import MATRIX_PAIRS, device_for_target, matrix_requests
from repro.devices import K40, NVLINK_LINK, PHI_5110P
from repro.faults.plan import parse_fault_spec
from repro.kernels import MATRIX_FAMILIES
from repro.service import CompileService, RetryPolicy, SweepJournal
from repro.telemetry import Tracer, configure_tracer, reset_tracer

SMALL = dict(families=("stencil", "pic"), n=8, device_counts=(1, 2))


def small_matrix(**overrides):
    kwargs = dict(SMALL)
    kwargs.update(overrides)
    return run_matrix(**kwargs)


class TestMatrixShape:
    def test_full_matrix_covers_every_cell(self):
        report = run_matrix(n=8, device_counts=(1, 2, 4))
        assert len(report.cells) == len(MATRIX_FAMILIES) * len(MATRIX_PAIRS) * 3
        for family in MATRIX_FAMILIES:
            for compiler, target in MATRIX_PAIRS:
                for devices in (1, 2, 4):
                    assert report.cell(family, compiler, target,
                                       devices) is not None

    def test_pgi_opencl_is_unsupported_not_an_exception(self):
        report = small_matrix()
        for family in SMALL["families"]:
            for devices in SMALL["device_counts"]:
                cell = report.cell(family, "pgi", "opencl", devices)
                assert cell.status == "unsupported"
                assert cell.detail  # the refusal text survives

    def test_supported_cells_are_ok(self):
        report = small_matrix()
        for family in SMALL["families"]:
            for compiler, target in MATRIX_PAIRS:
                if (compiler, target) == ("pgi", "opencl"):
                    continue
                for devices in SMALL["device_counts"]:
                    cell = report.cell(family, compiler, target, devices)
                    assert cell.status == "ok"
                    assert cell.elapsed_s > 0

    def test_device_for_target(self):
        assert device_for_target("cuda") is K40
        assert device_for_target("opencl") is PHI_5110P

    def test_one_request_per_family_pair(self):
        requests = matrix_requests(("stencil",), MATRIX_PAIRS)
        assert len(requests) == len(MATRIX_PAIRS)
        assert requests[0].label == "stencil/caps-cuda"


class TestCostModel:
    def test_single_device_pays_no_exchange(self):
        report = small_matrix()
        cell = report.cell("stencil", "caps", "cuda", 1)
        assert cell.exchange_s == 0.0
        assert cell.elapsed_s == pytest.approx(cell.single_device_s)

    def test_scaling_is_sublinear(self):
        report = small_matrix()
        cell = report.cell("stencil", "caps", "cuda", 2)
        assert 1.0 < cell.speedup < 2.0

    def test_overlap_flag_tracks_the_proof(self):
        report = small_matrix()
        assert report.cell("stencil", "caps", "cuda", 2).overlap
        assert not report.cell("pic", "caps", "cuda", 2).overlap
        # x1 never overlaps: there is nothing to hide
        assert not report.cell("stencil", "caps", "cuda", 1).overlap

    def test_pic_exposed_exchange_slows_it_down(self):
        report = run_matrix(families=("stencil", "pic"), n=8,
                            device_counts=(1, 4))
        stencil = report.cell("stencil", "caps", "cuda", 4)
        pic = report.cell("pic", "caps", "cuda", 4)
        assert pic.speedup < stencil.speedup

    def test_peer_link_helps_wide_nodes(self):
        flat = run_matrix(families=("stencil",), n=8, device_counts=(4,))
        peered = run_matrix(families=("stencil",), n=8, device_counts=(4,),
                            peer=NVLINK_LINK)
        assert (peered.cell("stencil", "caps", "cuda", 4).elapsed_s
                <= flat.cell("stencil", "caps", "cuda", 4).elapsed_s)

    def test_ppr_entries_cover_each_family_and_width(self):
        report = small_matrix()
        entries = report.ppr_entries()
        keys = {(e.family, e.devices) for e in entries}
        assert keys == {(f, d) for f in SMALL["families"]
                        for d in SMALL["device_counts"]}
        assert all(e.ppr > 0 for e in entries)


class TestDeterminism:
    """The three byte-identity legs ISSUE 10 pins."""

    def test_jobs_1_vs_4(self):
        serial = small_matrix(jobs=1)
        pooled = small_matrix(jobs=4)
        assert pooled.render() == serial.render()
        assert pooled.digest() == serial.digest()

    def test_cold_vs_resumed(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        cold = small_matrix(service=CompileService(
            journal=SweepJournal(path)))
        assert path.exists() and path.read_text().strip()
        resumed = small_matrix(service=CompileService(
            journal=SweepJournal(path)))
        assert resumed.digest() == cold.digest()

    def test_under_seeded_fault_plan(self):
        baseline = small_matrix()
        plan = parse_fault_spec("transient:p=0.3,seed=11")
        faulted = small_matrix(
            jobs=4,
            service=CompileService(jobs=4, fault_plan=plan,
                                   retry=RetryPolicy(max_retries=3)),
        )
        assert faulted.digest() == baseline.digest()


class TestTelemetryLanes:
    def test_each_device_gets_a_lane(self):
        reset_tracer()
        tracer = configure_tracer(enabled=True)
        try:
            small_matrix(families=("stencil",), device_counts=(2,))
            spans = tracer.spans()
        finally:
            reset_tracer()
        lanes = {span.attributes.get("lane") for span in spans
                 if "lane" in span.attributes}
        assert lanes == {"device:0", "device:1"}
        names = {span.name for span in spans}
        assert {"matrix.compute", "halo.pack", "halo.transfer",
                "halo.unpack"} <= names

    def test_chrome_export_names_the_lanes(self, tmp_path):
        from repro.telemetry import write_chrome_trace

        reset_tracer()
        tracer = configure_tracer(enabled=True)
        try:
            small_matrix(families=("stencil",), device_counts=(2,))
            out = tmp_path / "trace.json"
            write_chrome_trace(str(out), tracer.spans())
        finally:
            reset_tracer()
        events = json.loads(out.read_text())["traceEvents"]
        thread_names = {e["args"]["name"] for e in events
                        if e.get("name") == "thread_name"}
        assert {"device:0", "device:1"} <= thread_names
