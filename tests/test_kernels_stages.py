"""Structural expectations per benchmark stage — the 'Thread' rows of the
paper's figures, asserted at the compilation level."""

import pytest

from repro.compilers import CapsCompiler, PgiCompiler
from repro.compilers.framework import DistStrategy
from repro.kernels import get_benchmark


def caps(module, target="cuda"):
    return CapsCompiler().compile(module, target)


def pgi(module):
    return PgiCompiler().compile(module, "cuda")


class TestLudStages:
    def test_base_sequential_caps_parallel_pgi(self):
        stages = get_benchmark("lud").stages()
        assert all(k.sequential for k in caps(stages["base"]).kernels)
        assert all(
            k.distribution.strategy is DistStrategy.AUTO_1D
            for k in pgi(stages["base"]).kernels
        )

    def test_threaddist_gang_mode_both(self):
        stages = get_benchmark("lud").stages()
        for result in (caps(stages["threaddist"]), pgi(stages["threaddist"])):
            for kernel in result.kernels:
                assert kernel.distribution.strategy is DistStrategy.GANG_MODE
                cfg = kernel.launch_config({"size": 1024, "i": 512})
                assert cfg.grid[0] == 256 and cfg.block_threads == 16

    def test_unroll_changes_caps_ir_not_pgi(self):
        from repro.compilers import FlagSet
        stages = get_benchmark("lud").stages()
        caps_k = caps(stages["unroll"]).kernel("lud_row")
        assert caps_k.ir.loop_by_var("k").step == 8  # real unroll
        pgi_k = PgiCompiler(FlagSet("PGI", ("-Munroll",))).compile(
            stages["unroll"], "cuda"
        ).kernel("lud_row")
        assert pgi_k.ir.loop_by_var("k").step == 1  # skipped (reduction)

    def test_tile_is_noop_for_caps(self):
        stages = get_benchmark("lud").stages()
        plain = caps(stages["threaddist"]).kernel("lud_row")
        tiled = caps(stages["tile"]).kernel("lud_row")
        assert len(tiled.ir.loops()) == len(plain.ir.loops())


class TestGeStages:
    def test_indep_caps_2d_pgi_1d(self):
        stages = get_benchmark("ge").stages()
        fan2_caps = caps(stages["indep"]).kernel("ge_fan2")
        assert fan2_caps.distribution.strategy is DistStrategy.GRIDIFY_2D
        fan2_pgi = pgi(stages["indep"]).kernel("ge_fan2")
        assert fan2_pgi.distribution.strategy is DistStrategy.AUTO_1D
        assert len(fan2_pgi.parallel_loop_ids) == 1  # inner loop sequential

    def test_reorganized_has_two_kernels(self):
        stages = get_benchmark("ge").stages()
        assert len(caps(stages["reorganized"]).kernels) == 2

    def test_fan1_independent_is_provable(self):
        # fan1 needs no force: write m, read a only
        from repro.analysis import Verdict, analyze_loop
        base = get_benchmark("ge").module()
        fan1 = base.kernel("ge_fan1")
        assert analyze_loop(fan1.loops()[0]).verdict is Verdict.INDEPENDENT


class TestBfsStages:
    def test_push_requires_force_pull_accepted_by_pgi(self):
        stages = get_benchmark("bfs").stages()
        push = pgi(stages["indep"])
        assert all(k.sequential or k.elided for k in push.kernels)
        pull = pgi(stages["regrouped"])
        assert all(k.parallel_loop_ids and not k.elided for k in pull.kernels)

    def test_base_elided_by_pgi(self):
        stages = get_benchmark("bfs").stages()
        assert all(k.elided for k in pgi(stages["base"]).kernels)

    def test_dataregion_stage_carries_directives(self):
        stages = get_benchmark("bfs").stages()
        compiled = caps(stages["dataregion"])
        assert all(k.has_data_region for k in compiled.kernels)


class TestBpStages:
    def test_pgi_base_equals_indep_schedule(self):
        stages = get_benchmark("bp").stages()
        base = pgi(stages["base"])
        indep = pgi(stages["indep"])
        for kb, ki in zip(base.kernels, indep.kernels):
            assert kb.distribution.strategy is ki.distribution.strategy
            assert len(kb.parallel_loop_ids) == len(ki.parallel_loop_ids)

    def test_caps_indep_adjust_is_2d(self):
        stages = get_benchmark("bp").stages()
        adjust = caps(stages["indep"]).kernel("bp_adjust_weights")
        assert adjust.distribution.strategy is DistStrategy.GRIDIFY_2D

    def test_unroll_applies_only_in_opencl_backend(self):
        stages = get_benchmark("bp").stages()
        cuda = caps(stages["unroll"], "cuda").kernel("bp_adjust_weights")
        ocl = caps(stages["unroll"], "opencl").kernel("bp_adjust_weights")
        assert cuda.ir.loop_by_var("j").step == 1   # fake success
        assert ocl.ir.loop_by_var("j").step == 8    # really jammed

    def test_reduction_clause_reaches_both_compilers(self):
        from repro.ptx.counter import InstructionProfile
        stages = get_benchmark("bp").stages()
        for result in (caps(stages["reduction"]), pgi(stages["reduction"])):
            forward = result.kernel("bp_layer_forward")
            assert InstructionProfile.of(forward.ptx).uses_shared_memory


class TestHydroStages:
    def test_base_is_gang_mode(self):
        stages = get_benchmark("hydro").stages()
        compiled = caps(stages["base"])
        flux = compiled.kernel("hydro_flux_x")
        assert flux.distribution.strategy is DistStrategy.GANG_MODE

    def test_optimized_is_gridify(self):
        stages = get_benchmark("hydro").stages()
        compiled = caps(stages["optimized"])
        flux = compiled.kernel("hydro_flux_x")
        assert flux.distribution.strategy is DistStrategy.GRIDIFY_2D

    def test_courant_parallel_without_force(self):
        from repro.analysis import Verdict, analyze_loop
        base = get_benchmark("hydro").module()
        courant = base.kernel("hydro_courant")
        outer = courant.top_level_loops()[0]
        assert analyze_loop(outer).verdict is Verdict.INDEPENDENT
