"""The differential harness: classification, shrinking, replay, CLI."""

import pytest

from repro.difftest import (
    PAIRS,
    generate_case,
    replay_file,
    run_case,
    run_difftest,
)
from repro.difftest.shrink import shrink_case, write_reproducer
from repro.ir.expr import BinOp, FloatLit
from repro.ir.stmt import Assign
from repro.service import CompileService
from repro.service.scheduler import _default_compile_fn


def _buggy_compile_fn(request):
    """A deliberately broken CAPS/CUDA backend: the first plain store in
    the first kernel gets an extra ``+ 1.0`` (a transform bug)."""
    result = _default_compile_fn(request)
    if request.compiler == "caps" and request.target == "cuda":
        for compiled in result.kernels[:1]:
            for stmt in compiled.ir.body.walk():
                if isinstance(stmt, Assign) and stmt.op is None:
                    stmt.value = BinOp("+", stmt.value, FloatLit(1.0))
                    break
    return result


class TestPairs:
    def test_full_compiler_target_matrix(self):
        assert {(c, t) for c, t, _d in PAIRS} == {
            ("caps", "cuda"), ("caps", "opencl"),
            ("pgi", "cuda"), ("pgi", "opencl"),
        }

    def test_pgi_opencl_is_expected_compile_error(self):
        result = run_case(generate_case(0), CompileService())
        by_pair = {(p.compiler, p.target): p for p in result.pairs}
        assert by_pair[("pgi", "opencl")].status == "compile-error-expected"
        assert "NVIDIA" in by_pair[("pgi", "opencl")].detail


class TestClassification:
    def test_clean_seeds_are_explained(self):
        report = run_difftest(range(10))
        assert report.unexplained == []

    def test_wrong_answers_are_reproduced_and_explained(self):
        # the corpus must actually hit the paper V-D2 scenario
        report = run_difftest(range(10))
        assert report.count("wrong-answer") > 0
        for case in report.cases:
            for pair in case.pairs:
                for diff in pair.kernels:
                    if diff.status == "wrong-answer":
                        assert diff.prediction.wrong_answer
                        assert diff.mismatched

    def test_injected_transform_bug_is_unexplained(self):
        service = CompileService(compile_fn=_buggy_compile_fn)
        result = run_case(generate_case(2), service)
        assert not result.explained
        statuses = {
            diff.status
            for pair in result.pairs
            for diff in pair.kernels
        }
        assert "transform-bug" in statuses


class TestShrinkAndReplay:
    def test_shrunk_reproducer_replays(self, tmp_path):
        service = CompileService(compile_fn=_buggy_compile_fn)
        case = generate_case(2)
        result = run_case(case, service)
        assert not result.explained
        path = write_reproducer(case, result, service, str(tmp_path))

        source = open(path).read()
        assert source.startswith("// difftest reproducer for seed 2")
        assert len(source.splitlines()) < len(case.source.splitlines()) + 3

        # same failure with the buggy compiler...
        replayed = replay_file(path, CompileService(
            compile_fn=_buggy_compile_fn))
        assert not replayed.explained
        # ...and a *valid, clean* program with the real compilers
        clean = replay_file(path, CompileService())
        assert clean.explained

    def test_shrink_preserves_failure_signature(self):
        service = CompileService(compile_fn=_buggy_compile_fn)
        case = generate_case(2)
        shrunk = shrink_case(
            case, compile_fn=_buggy_compile_fn, max_evals=60
        )
        result = run_case(shrunk, CompileService(
            compile_fn=_buggy_compile_fn))
        statuses = {
            diff.status
            for pair in result.pairs
            for diff in pair.kernels
        }
        assert "transform-bug" in statuses

    def test_run_difftest_shrink_flag_writes_reproducer(self, tmp_path):
        service = CompileService(compile_fn=_buggy_compile_fn)
        report = run_difftest(
            [2], service=service, shrink=True, out_dir=str(tmp_path)
        )
        (case,) = report.unexplained
        assert case.reproducer
        assert open(case.reproducer).read().startswith("//")


class TestCli:
    def test_difftest_subcommand_clean_sweep(self, capsys):
        from repro.cli import main

        assert main(["difftest", "--seeds", "5"]) == 0
        out = capsys.readouterr().out
        assert "UNEXPLAINED divergences: 0" in out

    def test_difftest_subcommand_replay(self, tmp_path, capsys):
        from repro.cli import main

        case = generate_case(0)
        path = tmp_path / "case.c"
        path.write_text(case.source)
        assert main(["difftest", "--replay", str(path)]) == 0
        assert "EXPLAINED" in capsys.readouterr().out

    def test_difftest_subcommand_jobs(self, capsys):
        from repro.cli import main

        assert main(["difftest", "--seeds", "4", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "UNEXPLAINED divergences: 0" in out
        assert "compile service" in out  # --jobs prints service stats
