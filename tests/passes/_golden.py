"""Golden artifact fingerprints of the compiler models.

The pass-manager refactor (ISSUE 7) must keep every compiled artifact
byte-identical for the existing transform set.  This module collects the
canonical :func:`repro.server.artifact_signature` of

* the full Fig. 4 LUD thread-distribution grid (72 points, CAPS/CUDA),
* every benchmark stage through every (compiler, target) pair of the
  paper's matrix — CAPS/CUDA, CAPS/OpenCL, PGI/CUDA — with documented
  refusals recorded as structured error strings, and
* every hand-written OpenCL program on GPU and MIC,

hashed to SHA-256 per artifact.  ``golden_fingerprints.json`` was
generated from the pre-refactor tree (``python tests/passes/_golden.py``)
and is compared against the pipeline-compiled artifacts by
``test_golden_fingerprints.py``.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

GOLDEN_PATH = Path(__file__).resolve().parent / "golden_fingerprints.json"

#: the paper's OpenACC compiler/target matrix (PGI's missing OpenCL
#: backend is itself a documented behaviour, captured as an error entry)
ACC_PAIRS = (("caps", "cuda"), ("caps", "opencl"), ("pgi", "cuda"))


def _sha(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def collect_signatures() -> dict[str, str]:
    """Every golden artifact key -> sha256(artifact signature)."""
    from repro.compilers.framework import CompilationError
    from repro.compilers.opencl import compile_opencl
    from repro.core.method import compile_stage
    from repro.kernels import BENCHMARKS, get_benchmark
    from repro.server import artifact_signature, fig4_requests
    from repro.service import CompileService, JobError

    out: dict[str, str] = {}

    # -- the Fig. 4 grid, swept through the service ------------------------
    service = CompileService()
    requests = fig4_requests()
    for request, slot in zip(requests, service.sweep(requests)):
        assert not isinstance(slot, JobError), slot
        out[f"fig4/{request.label}"] = _sha(artifact_signature(slot))

    # -- every benchmark stage x compiler/target ---------------------------
    from repro.core.ladder import ladder_stages

    for name in sorted(BENCHMARKS):
        benchmark = get_benchmark(name)
        stages = dict(benchmark.stages())
        # the core optimization ladder rungs (fuse-reuse / shared-tile),
        # applied to the baseline module, pinned like any other stage
        stages.update(ladder_stages(benchmark.module()))
        for stage, module in stages.items():
            for compiler, target in ACC_PAIRS:
                key = f"{name}/{stage}/{compiler}-{target}"
                try:
                    result = compile_stage(module, compiler, target)
                except CompilationError as exc:
                    out[key] = _sha(f"compile-error|{exc}")
                    continue
                out[key] = _sha(artifact_signature(result))
        program = benchmark.opencl_program()
        if program is not None:
            for device in ("gpu", "mic"):
                result = compile_opencl(program, device)
                out[f"{name}/opencl/{device}"] = _sha(
                    artifact_signature(result)
                )
    return out


def load_golden() -> dict[str, str]:
    with GOLDEN_PATH.open("r", encoding="utf-8") as fh:
        return json.load(fh)


def main() -> None:
    signatures = collect_signatures()
    with GOLDEN_PATH.open("w", encoding="utf-8") as fh:
        json.dump(signatures, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"wrote {len(signatures)} golden fingerprints to {GOLDEN_PATH}")


if __name__ == "__main__":
    main()
