"""Shared fixtures for the pass-conformance battery.

The battery is *generic*: it iterates over every pass in the registry
(``repro.passes.all_passes()``), so a new pass registered under
``repro.passes.library`` inherits every check here with zero new test
code.  The corpus is the difftest fuzzer's 50-seed corpus — the same
seeds the cross-compiler differential suite uses.
"""

from __future__ import annotations

from functools import lru_cache

from repro.difftest.generator import GeneratedCase, generate_case

#: the standing difftest corpus (see tests/test_property_based.py)
CORPUS_SEEDS = tuple(range(50))
#: tier-1 subset; the rest runs under the slow marker
FAST_SEEDS = CORPUS_SEEDS[:12]
SLOW_SEEDS = CORPUS_SEEDS[len(FAST_SEEDS):]


@lru_cache(maxsize=None)
def corpus_case(seed: int) -> GeneratedCase:
    """The (deterministic) corpus entry for *seed*, cached per session."""
    return generate_case(seed)
