"""The generic pass-conformance battery.

For EVERY registered pass and every corpus case, running the pass through
a single-pass :class:`~repro.passes.Pipeline` (verifier enabled) must:

1. **verify clean** — introduce no IR violations (the pipeline raises a
   pass-attributed :class:`~repro.ir.verify.VerifyError` otherwise);
2. **not mutate its input** — the input kernel's fingerprint is unchanged;
3. **racecheck clean** — introduce no new static race warnings
   (differential: warnings already present on the adversarial fuzzer
   input are baselined away);
4. **bit-exact execution** — for passes registered
   ``semantics_preserving=True`` that actually transformed the kernel,
   executing the original and the transformed kernel on identical
   deterministic inputs yields byte-identical arrays.  Execution uses
   the ``check`` backend, which itself cross-checks the scalar and
   vectorizing executors bit-for-bit — so one run covers both backends.

A pass raising :class:`~repro.passes.PassNotApplicable` on a case is a
no-op there (still checked for 1-3).  Passes gated on compiler flags
declare ``conformance_options`` (e.g. ``pgi-munroll``'s ``force=True``)
so the battery exercises them anyway.

New passes inherit all of this by registration alone — there is nothing
pass-specific in this file.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.difftest.generator import make_inputs
from repro.difftest.racecheck import lint_kernel
from repro.passes import PassContext, Pipeline, all_passes, get_pass
from repro.runtime.executor import execute_kernel
from repro.service.fingerprint import fingerprint_kernel

from tests.passes.conftest import (
    CORPUS_SEEDS,
    FAST_SEEDS,
    SLOW_SEEDS,
    corpus_case,
)

PASS_NAMES = tuple(sorted(all_passes()))


def _warning_keys(kernel):
    # keyed by (kind, kernel), not loop id/var: transforms legitimately
    # rename or clone loops (tile's `i` -> `i_t`), which would make a
    # pre-existing adversarial warning look "introduced"
    return {(w.kind, w.kernel) for w in lint_kernel(kernel)}


def _excused_kinds(kernel):
    """Warning kinds the *input* already had the ingredients for.

    The fuzzer adversarially mis-labels loops (`independent` on a
    reduction loop, fake reduction clauses); a transform that moves such
    a directive onto a restructured loop merely *surfaces* the
    pre-existing lie where the linter's vocabulary notices it.  Only a
    warning whose triggering directive kind did not exist on the input
    is blamed on the pass.
    """
    from repro.ir.directives import AccLoop

    excused = set()
    for loop in kernel.loops():
        acc = loop.directives.first(AccLoop)
        if acc is None:
            continue
        if acc.independent:
            excused.add("independent-dependence")
        if acc.reduction is not None:
            excused.add("reduction-mismatch")
    return excused


def run_battery(pass_name: str, seed: int) -> int:
    """Run the full battery for one (pass, corpus case); return the number
    of kernels the pass actually transformed."""
    info = get_pass(pass_name)
    case = corpus_case(seed)
    pipeline = Pipeline(f"conformance/{pass_name}", (pass_name,))
    transformed = 0
    for kernel in case.module.kernels:
        before = fingerprint_kernel(kernel)
        baseline_warnings = _warning_keys(kernel)

        ctx = PassContext(options=dict(info.conformance_options))
        out = pipeline.run(kernel, ctx)  # (1) differential verify inside

        # (2) the input kernel object is never mutated
        assert fingerprint_kernel(kernel) == before, (
            f"{pass_name} mutated its input kernel on seed {seed}"
        )

        # (3) no new static race warnings — only semantics-preserving
        # passes promise this; split-loop & co. legitimately change
        # parallel semantics (that is why they are registered unsafe)
        if info.semantics_preserving:
            excused = _excused_kinds(kernel)
            introduced = {
                key for key in _warning_keys(out) - baseline_warnings
                if key[0] not in excused
            }
            assert not introduced, (
                f"{pass_name} introduced race warnings on seed {seed}: "
                f"{sorted(introduced)}"
            )

        if fingerprint_kernel(out) == before:
            continue  # no-op on this kernel; nothing to execute
        transformed += 1

        # (4) bit-exact execution, scalar AND vector via the check backend
        if not info.semantics_preserving:
            continue
        extents = case.extents[kernel.name]
        ref_args = make_inputs(kernel, extents, case.tag)
        new_args = make_inputs(kernel, extents, case.tag)
        execute_kernel(kernel, ref_args, backend="check")
        execute_kernel(out, new_args, backend="check")
        for name, ref in ref_args.items():
            if isinstance(ref, np.ndarray):
                assert ref.tobytes() == new_args[name].tobytes(), (
                    f"{pass_name} changed the value of {name!r} "
                    f"on seed {seed}"
                )
    return transformed


@pytest.mark.parametrize("pass_name", PASS_NAMES)
@pytest.mark.parametrize("seed", FAST_SEEDS)
def test_pass_conformance_fast(pass_name, seed):
    run_battery(pass_name, seed)


@pytest.mark.slow
@pytest.mark.parametrize("pass_name", PASS_NAMES)
@pytest.mark.parametrize("seed", SLOW_SEEDS)
def test_pass_conformance_full_corpus(pass_name, seed):
    run_battery(pass_name, seed)


@pytest.mark.parametrize("pass_name", ("shared-tile", "fuse-reuse"))
def test_new_passes_apply_on_corpus(pass_name):
    """The acceptance battery is not vacuous: each of the two new passes
    actually transforms at least one corpus kernel.  ``fuse-reuse``
    applies all over the fast subset; a provably permutable perfect nest
    is rare in fuzzed code, so ``shared-tile`` scans the whole corpus."""
    seeds = FAST_SEEDS if pass_name == "fuse-reuse" else CORPUS_SEEDS
    applied = 0
    for seed in seeds:
        applied += run_battery(pass_name, seed)
        if applied:
            break
    assert applied > 0, f"{pass_name} never applied on {len(seeds)} seeds"


#: paper Fig. 1 shape: an element-wise 2-deep perfect nest whose inner
#: iterations reuse the read-only arrays `a` and `b`
_FIG1_NEST = """
void saxpy2d(float *c, const float *a, const float *b, int n, int m) {
    int i; int j;
    for (i = 0; i < n; i++)
        for (j = 0; j < m; j++)
            c[i * m + j] = a[i * m + j] * 2.0f + b[i * m + j];
}
"""


def test_shared_tile_stages_readonly_arrays():
    """On a Fig.-1-style nest, shared-tile tiles with interchange AND
    attaches `acc cache(a, b)`; execution stays bit-exact and the CAPS
    backend lowers the directive to shared-memory PTX staging."""
    from repro.core.method import compile_stage
    from repro.frontend import parse_kernel
    from repro.ir.directives import AccCache
    from repro.ir.stmt import Module

    kernel = parse_kernel(_FIG1_NEST)
    out = Pipeline("t", ("shared-tile",)).run(kernel, PassContext())

    cached = [loop.directives.first(AccCache) for loop in out.loops()]
    cached = [d for d in cached if d is not None]
    assert [d.arrays for d in cached] == [("a", "b")]

    extents = {"c": 96, "a": 96, "b": 96}
    ref_args = make_inputs(kernel, extents, "fig1")
    new_args = make_inputs(kernel, extents, "fig1")
    ref_args["n"] = new_args["n"] = 8
    ref_args["m"] = new_args["m"] = 12
    execute_kernel(kernel, ref_args, backend="check")
    execute_kernel(out, new_args, backend="check")
    assert ref_args["c"].tobytes() == new_args["c"].tobytes()

    result = compile_stage(Module("fig1", [out]), "caps", "cuda")
    compiled = result.kernels[0]
    assert compiled.shared_staged == ("a", "b")
    assert compiled.traffic_reuse == 0.5
    assert any("Cache directive honored: a, b staged in shared memory"
               in msg for msg in compiled.messages)
    ptx_text = "\n".join(str(line) for line in compiled.ptx.instructions)
    assert "ld.shared" in ptx_text and "bar.sync" in ptx_text


def test_every_pass_has_metadata():
    """Registration hygiene: every pass carries a description and a tag."""
    for name, info in all_passes().items():
        assert info.description, f"pass {name} has no description"
        assert info.tags, f"pass {name} has no tags"
