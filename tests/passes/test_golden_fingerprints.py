"""The pass-manager refactor keeps every compiled artifact byte-identical.

``golden_fingerprints.json`` holds sha256 fingerprints of every artifact
the pre-refactor compilers produced: the full Fig. 4 LUD grid (72
points through the compile service), every benchmark stage through every
(compiler, target) pair of the paper's matrix, and the hand-written
OpenCL programs on GPU and MIC — 137 artifacts, documented refusals
included.  The declarative pass pipelines must reproduce all of them
exactly (ISSUE 7 acceptance).  ISSUE 8 added the 45 optimization-ladder
artifacts (fuse-reuse / shared-tile / full ladder per benchmark, per
compiler/target pair), pinned from the tree that registered the rungs.
ISSUE 10 added the three multi-device families (stencil / lbm / pic:
17 stage + ladder + OpenCL artifacts each) and re-pinned the two bp
shared-tile PGI artifacts: the PGI model now lowers ``acc cache``
(pgi-cache pass + tile-derived induction tracking), so the tiled
``bp_adjust_weights`` stages through shared memory instead of silently
dropping the directive and host-falling-back.

Regenerate (only after an *intentional* artifact change) with::

    PYTHONPATH=src python tests/passes/_golden.py
"""

from __future__ import annotations

from tests.passes._golden import collect_signatures, load_golden


def test_artifacts_match_pre_refactor_goldens():
    golden = load_golden()
    current = collect_signatures()

    missing = sorted(set(golden) - set(current))
    extra = sorted(set(current) - set(golden))
    assert not missing, f"artifacts no longer produced: {missing[:10]}"
    assert not extra, f"unexpected new artifacts: {extra[:10]}"

    changed = sorted(k for k in golden if current[k] != golden[k])
    assert not changed, (
        f"{len(changed)}/{len(golden)} artifacts changed vs the "
        f"pre-refactor tree, e.g. {changed[:10]}"
    )
    # the grid is complete, not silently shrunk: 137 pre-refactor artifacts
    # + 45 optimization-ladder artifacts (5 benchmarks x 3 ladder stages x
    # 3 compiler/target pairs), pinned deliberately when the fuse-reuse /
    # shared-tile rungs joined the core ladders (ISSUE 8), + 51 artifacts
    # for the three multi-device families (17 each: 2 stages + 3 ladder
    # stages through 3 compiler/target pairs, + OpenCL on gpu and mic),
    # pinned when ISSUE 10 registered them
    assert len(golden) == 137 + 45 + 51
