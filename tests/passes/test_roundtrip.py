"""Printer/parser round-trip property (ISSUE 7, satellite 2).

For every module the repo can produce — the 50-seed difftest corpus and
every benchmark stage module under ``src/repro/kernels/`` — printing to
C-with-pragmas and re-parsing must reproduce every kernel exactly
(fingerprint-identical, directives included).  The printed form is the
debugging/exchange format for pass pipelines, so information silently
dropped or mangled there would falsify any triage done on it.
"""

from __future__ import annotations

import pytest

from repro.frontend import parse_module
from repro.ir import print_module
from repro.kernels import BENCHMARKS, get_benchmark
from repro.service.fingerprint import fingerprint_kernel

from tests.passes.conftest import CORPUS_SEEDS, corpus_case


def _assert_roundtrip(module):
    printed = print_module(module)
    back = parse_module(printed, module.name)
    assert [k.name for k in back.kernels] == [k.name for k in module.kernels]
    for original, reparsed in zip(module.kernels, back.kernels):
        assert fingerprint_kernel(reparsed) == fingerprint_kernel(original), (
            f"kernel {original.name!r} does not survive print->parse"
        )
    # printing is a pure function of the IR: a second trip is identical
    assert print_module(back) == printed


@pytest.mark.parametrize("seed", CORPUS_SEEDS)
def test_corpus_roundtrip(seed):
    _assert_roundtrip(corpus_case(seed).module)


@pytest.mark.parametrize(
    "name,stage",
    [
        (name, stage)
        for name in sorted(BENCHMARKS)
        for stage in sorted(get_benchmark(name).stages())
    ],
)
def test_benchmark_stage_roundtrip(name, stage):
    _assert_roundtrip(get_benchmark(name).stages()[stage])
