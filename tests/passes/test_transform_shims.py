"""The ``repro.transforms`` deprecation shims (ISSUE 7, satellite 6).

Every public function of the legacy ``repro.transforms.*`` modules is
now a thin wrapper over the SAME implementation living in
``repro.passes.library.*``: it must emit a :class:`DeprecationWarning`
naming the new import path, behave identically, and re-export error
classes as the *same* objects (so existing ``except`` clauses keep
matching).
"""

from __future__ import annotations

import warnings

import pytest

import repro.passes.library.data as new_data
import repro.passes.library.distribute as new_distribute
import repro.passes.library.independent as new_independent
import repro.passes.library.reduction as new_reduction
import repro.passes.library.reorganize as new_reorganize
import repro.passes.library.tile as new_tile
import repro.passes.library.unroll as new_unroll
import repro.transforms.data as old_data
import repro.transforms.distribute as old_distribute
import repro.transforms.independent as old_independent
import repro.transforms.reduction as old_reduction
import repro.transforms.reorganize as old_reorganize
import repro.transforms.tile as old_tile
import repro.transforms.unroll as old_unroll
from repro.frontend import parse_kernel
from repro.service.fingerprint import fingerprint_kernel
from repro.transforms._shim import reset_deprecation_warnings

SHIMS = {
    "unroll": (old_unroll, new_unroll,
               ("unroll_in_kernel", "unroll_loop"), ("UnrollError",)),
    "tile": (old_tile, new_tile,
             ("nest_is_tileable", "tile_in_kernel", "tile_loop",
              "tile_nest"), ("TileError",)),
    "independent": (old_independent, new_independent,
                    ("add_independent", "is_independent"), ()),
    "distribute": (old_distribute, new_distribute,
                   ("clear_distribution", "set_gang_worker",
                    "set_gridify_blocksize"), ("DistributionError",)),
    "reduction": (old_reduction, new_reduction,
                  ("add_reduction",), ("ReductionError",)),
    "data": (old_data, new_data,
             ("add_data_region", "add_data_regions", "has_data_region",
              "infer_data_region"), ("DataRegionError",)),
    "reorganize": (old_reorganize, new_reorganize,
                   ("fuse_adjacent_loops", "fuse_kernels", "split_loop"),
                   ("ReorganizeError",)),
}

SRC = """
void k(float *a, const float *b, int n) {
    int i;
    for (i = 0; i < n; i++) {
        a[i] = b[i] * 2.0f;
    }
}
"""


@pytest.mark.parametrize("module", sorted(SHIMS))
def test_shim_wraps_same_implementation(module):
    old_mod, new_mod, functions, errors = SHIMS[module]
    for name in functions:
        wrapper = getattr(old_mod, name)
        impl = getattr(new_mod, name)
        assert wrapper is not impl, f"{module}.{name} is not wrapped"
        assert wrapper.__wrapped_pass_fn__ is impl, (
            f"{module}.{name} does not wrap repro.passes.library"
        )
    for name in errors:
        assert getattr(old_mod, name) is getattr(new_mod, name), (
            f"{module}.{name} must be the SAME class object"
        )


@pytest.mark.parametrize("module", sorted(SHIMS))
def test_shim_emits_deprecation_warning(module):
    old_mod, _, functions, _ = SHIMS[module]
    name = functions[0]
    reset_deprecation_warnings()  # aliases warn once per process
    with pytest.warns(DeprecationWarning, match="repro.passes.library"):
        try:
            getattr(old_mod, name)(parse_kernel(SRC))
        except Exception:
            pass  # only the warning is under test here


def test_shim_warns_once_per_process():
    """A sweep hammering a legacy alias must not flood stderr: only the
    first call through each alias warns (ISSUE 8, satellite 6)."""
    reset_deprecation_warnings()

    def call():
        k = parse_kernel(SRC)
        return old_unroll.unroll_in_kernel(
            k, next(iter(k.loops())).loop_id, 2
        )

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        call()
        call()
        call()
    deprecations = [w for w in caught
                    if issubclass(w.category, DeprecationWarning)]
    assert len(deprecations) == 1, (
        f"expected exactly one warning over three calls, got "
        f"{len(deprecations)}"
    )
    assert "repro.passes.library" in str(deprecations[0].message)

    # a different alias still gets its own first warning
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        k = parse_kernel(SRC)
        old_independent.add_independent(k)
    assert any(issubclass(w.category, DeprecationWarning) for w in caught)

    # re-arming brings the first alias back
    reset_deprecation_warnings()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        call()
    assert any(issubclass(w.category, DeprecationWarning) for w in caught)


def test_shim_output_equivalence():
    """Same input -> fingerprint-identical output through either path."""
    k_old, k_new = parse_kernel(SRC), parse_kernel(SRC)
    via_old = old_unroll.unroll_in_kernel(
        k_old, next(iter(k_old.loops())).loop_id, 2
    )
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        via_new = new_unroll.unroll_in_kernel(
            k_new, next(iter(k_new.loops())).loop_id, 2
        )
    assert fingerprint_kernel(via_old) == fingerprint_kernel(via_new)
