"""Regression: loop fusion must consult the dependence analysis.

``repro.transforms.reorganize._fusable`` used to check *structural*
header compatibility only.  Two adjacent loops with identical headers
would be merged even when the second loop read elements the first had
not yet produced in the fused order — a value-changing "optimization".

The shrunk reproducer: loop A doubles ``x[i]``, loop B reads ``x[i+1]``.
Sequentially, B sees every doubled element (except the last, which A
never touches); fused, B's iteration ``i`` reads ``x[i+1]`` *before*
A's iteration ``i+1`` doubled it.  ``test_structural_fusion_was_wrong``
executes the would-have-been-fused kernel to prove the old behaviour
really changed values — the fix is not defensive paranoia.
"""

from __future__ import annotations

import numpy as np

from repro.frontend import parse_kernel
from repro.ir.stmt import For
from repro.passes import PassContext, Pipeline
from repro.passes.library.reorganize import fuse_adjacent_loops
from repro.runtime.executor import execute_kernel

#: the shrunk reproducer: flow dependence at distance 1 across the loops
FLOW_DEP = """
void shift(float *x, float *y, int n) {
    int i;
    for (i = 0; i < n - 1; i++) {
        x[i] = x[i] * 2.0f;
    }
    for (i = 0; i < n - 1; i++) {
        y[i] = x[i + 1];
    }
}
"""

#: what structural-only fusion used to produce for FLOW_DEP
FLOW_DEP_FUSED = """
void shift(float *x, float *y, int n) {
    int i;
    for (i = 0; i < n - 1; i++) {
        x[i] = x[i] * 2.0f;
        y[i] = x[i + 1];
    }
}
"""

SAFE = """
void scale(float *x, float *y, int n) {
    int i;
    for (i = 0; i < n; i++) {
        x[i] = x[i] * 2.0f;
    }
    for (i = 0; i < n; i++) {
        y[i] = x[i] + 1.0f;
    }
}
"""

ANTI_DEP = """
void over(float *x, float *y, int n) {
    int i;
    for (i = 0; i < n - 1; i++) {
        y[i] = x[i + 1];
    }
    for (i = 0; i < n - 1; i++) {
        x[i] = 0.0f;
    }
}
"""

SCALAR_CARRIED = """
void last(float *x, float *y, int n) {
    int i;
    float s;
    s = 0.0f;
    for (i = 0; i < n; i++) {
        s = x[i];
    }
    for (i = 0; i < n; i++) {
        y[i] = s;
    }
}
"""


def _top_loops(kernel):
    return [s for s in kernel.body.stmts if isinstance(s, For)]


def test_flow_dependence_refuses_fusion():
    kernel = parse_kernel(FLOW_DEP)
    fused = fuse_adjacent_loops(kernel)
    assert len(_top_loops(fused)) == 2, "x[i+1] flow dependence must block"


def test_anti_dependence_refuses_fusion():
    kernel = parse_kernel(ANTI_DEP)
    fused = fuse_adjacent_loops(kernel)
    assert len(_top_loops(fused)) == 2, "x[i+1] anti dependence must block"


def test_scalar_carried_refuses_fusion():
    kernel = parse_kernel(SCALAR_CARRIED)
    fused = fuse_adjacent_loops(kernel)
    assert len(_top_loops(fused)) == 2, "scalar carried from A to B must block"


def test_same_subscripts_still_fuse():
    kernel = parse_kernel(SAFE)
    fused = fuse_adjacent_loops(kernel)
    assert len(_top_loops(fused)) == 1, "identical x[i] accesses are fusable"
    # and fusion really preserved values
    n = 9
    x0 = np.arange(n, dtype=np.float64)
    ref = {"x": x0.copy(), "y": np.zeros(n), "n": n}
    out = {"x": x0.copy(), "y": np.zeros(n), "n": n}
    execute_kernel(kernel, ref)
    execute_kernel(fused, out)
    assert ref["x"].tobytes() == out["x"].tobytes()
    assert ref["y"].tobytes() == out["y"].tobytes()


def test_structural_fusion_was_wrong():
    """Executing the kernel the *old* `_fusable` would have produced
    shows it changed values — the dependence check is load-bearing."""
    n = 8
    x0 = np.arange(1, n + 1, dtype=np.float64)
    ref = {"x": x0.copy(), "y": np.zeros(n), "n": n}
    bad = {"x": x0.copy(), "y": np.zeros(n), "n": n}
    execute_kernel(parse_kernel(FLOW_DEP), ref)
    execute_kernel(parse_kernel(FLOW_DEP_FUSED), bad)
    assert ref["x"].tobytes() == bad["x"].tobytes()  # same writes to x...
    assert ref["y"].tobytes() != bad["y"].tobytes(), (
        "the old structural-only fusion happened to preserve values on "
        "the reproducer; the regression test is vacuous"
    )


def test_registered_pass_refuses_too():
    """The same guarantee holds through the registered fuse-loops pass
    (the path compilers and the conformance battery exercise)."""
    out = Pipeline("t", ("fuse-loops",)).run(
        parse_kernel(FLOW_DEP), PassContext()
    )
    assert len(_top_loops(out)) == 2
