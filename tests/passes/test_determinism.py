"""Pass-pipeline determinism (ISSUE 7, satellite 3).

The declarative pipelines must produce byte-identical artifacts however
the surrounding service schedules them:

* ``jobs=1`` vs ``jobs=4`` — worker count must not leak into artifacts
  (pass options and telemetry state are per-request, never shared);
* under injected transient faults with retries — a request that fails
  and is re-run must compile to exactly what an undisturbed run yields.

"Byte-identical" is checked on :func:`repro.server.artifact_signature`,
the same canonical rendering the golden-fingerprint suite hashes — it
covers PTX listings, messages, schedules, and codelets.
"""

from __future__ import annotations

from repro.faults.plan import parse_fault_spec
from repro.server import artifact_signature, fig4_requests
from repro.service import CompileService, JobError, RetryPolicy, SimClock


def _signatures(service: CompileService) -> list[str]:
    requests = fig4_requests()
    out = []
    for request, slot in zip(requests, service.sweep(requests)):
        assert not isinstance(slot, JobError), (
            f"{request.label}: {slot}"
        )
        out.append(artifact_signature(slot))
    return out


def test_parallel_sweep_is_deterministic():
    sequential = _signatures(CompileService(jobs=1))
    parallel = _signatures(CompileService(jobs=4))
    assert sequential == parallel


def test_faulted_sweep_with_retries_is_deterministic():
    baseline = _signatures(CompileService(jobs=1))
    faulted = _signatures(
        CompileService(
            jobs=4,
            fault_plan=parse_fault_spec("transient:p=0.3,seed=11"),
            retry=RetryPolicy(max_retries=3),
            clock=SimClock(),
        )
    )
    assert baseline == faulted
