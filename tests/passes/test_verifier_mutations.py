"""Mutation coverage for the IR verifier.

A catalog of deliberate IR corruptions — every kind the transforms could
plausibly introduce — each of which MUST be caught by the named verifier
check.  A corruption the verifier misses would let a buggy pass slide
through the conformance pipelines silently, so this file is the
verifier's own conformance battery (ISSUE 7 acceptance: >= 10 distinct
corruptions all caught).

The flip side is property-tested too: every module of the 50-seed
difftest corpus verifies clean at ``structure`` level (the level pass
pipelines enforce between passes).
"""

from __future__ import annotations

import pytest

from repro.frontend import parse_kernel
from repro.ir.directives import AccCache, AccData, AccLoop
from repro.ir.expr import ArrayRef, IntLit, Var
from repro.ir.stmt import Assign, If, Module, Stmt
from repro.ir.types import DType
from repro.ir.verify import (
    VerifyError,
    check_kernel,
    check_module,
    verify_kernel,
)

from tests.passes.conftest import CORPUS_SEEDS, corpus_case

#: strict-clean baseline with every feature the mutations need: two
#: loops, a reduction scalar, an If, a const array read (`in`), a
#: read+written array (`out`), and an untouched const array (`buf`)
CLEAN = """
void k0(float *out, const float *in, const float *buf, int n) {
    int i;
    float s;
    s = 0.0f;
    for (i = 0; i < n; i++) {
        out[i] = out[i] + in[i] * 2.0f;
        s += in[i];
    }
    if (n > 0) {
        out[0] = s;
    }
    for (i = 0; i < n; i++) {
        out[i] = out[i] * 0.5f;
    }
}
"""


def clean_kernel():
    kernel = parse_kernel(CLEAN)
    assert check_kernel(kernel, "strict") == [], "baseline must be clean"
    return kernel


def _loops(kernel):
    return list(kernel.loops())


def _first_assign(kernel):
    loop = _loops(kernel)[0]
    return loop.body.stmts[0]


def _the_if(kernel):
    return next(s for s in kernel.body.stmts if isinstance(s, If))


class _AlienStmt(Stmt):
    """A statement node no verifier/visitor knows about."""


# -- the corruption catalog --------------------------------------------------
# name -> (mutator(kernel) -> None, expected check name)


def _dup_loop_id(k):
    a, b = _loops(k)
    b.loop_id = a.loop_id


def _aliased_stmt(k):
    k.body.stmts.append(k.body.stmts[-1])  # same For object twice


def _zero_step(k):
    _loops(k)[0].step = 0


def _non_lvalue_target(k):
    _first_assign(k).target = IntLit(1, DType.INT32)


def _illegal_compound_op(k):
    _first_assign(k).op = "%"


def _if_body_not_block(k):
    node = _the_if(k)
    node.then_body = node.then_body.stmts[0]


def _alien_stmt(k):
    k.body.stmts.append(_AlienStmt())


def _non_stmt_in_block(k):
    k.body.stmts.append("not a statement")


def _dup_param(k):
    k.params.append(k.params[0])


def _undefined_scalar(k):
    _first_assign(k).value = Var("ghost")


def _unknown_array(k):
    _first_assign(k).value = ArrayRef("ghost", (Var("i"),))


def _create_on_live_in(k):
    # `in` is read before written: a device create() would hold garbage
    k.directives = k.directives.with_added(AccData(create=("in",)))


def _copyin_on_written(k):
    k.directives = k.directives.with_added(AccData(copyin=("out",)))


def _copyout_never_written(k):
    k.directives = k.directives.with_added(AccData(copyout=("buf",)))


def _data_unknown_array(k):
    k.directives = k.directives.with_added(AccData(copy=("ghost",)))


def _cache_on_written(k):
    loop = _loops(k)[0]
    loop.directives = loop.directives.with_added(AccCache(("out",)))


def _cache_never_read(k):
    loop = _loops(k)[0]
    loop.directives = loop.directives.with_added(AccCache(("buf",)))


def _write_const_param(k):
    k.body.stmts.append(
        Assign(ArrayRef("in", (IntLit(0, DType.INT32),)), Var("s"))
    )


def _collapse_on_flat_loop(k):
    # collapse(2) needs a 2-deep perfect nest; CLEAN's loops are flat
    loop = _loops(k)[0]
    loop.directives = loop.directives.with_added(AccLoop(collapse=2))


def _gang_inside_gang(k):
    # nest the second loop under the first and schedule gang on both:
    # the inner gang would re-launch the coarsest parallelism level
    a, b = _loops(k)
    a.directives = a.directives.with_added(AccLoop(gang=128))
    b.directives = b.directives.with_added(AccLoop(gang=128))
    k.body.stmts.remove(b)
    a.body.stmts.append(b)


CATALOG = {
    "duplicate-loop-id": (_dup_loop_id, "unique-loop-ids"),
    "aliased-statement": (_aliased_stmt, "stmt-integrity"),
    "non-positive-step": (_zero_step, "stmt-integrity"),
    "non-lvalue-target": (_non_lvalue_target, "stmt-integrity"),
    "illegal-compound-op": (_illegal_compound_op, "stmt-integrity"),
    "if-body-not-block": (_if_body_not_block, "stmt-integrity"),
    "unknown-stmt-node": (_alien_stmt, "stmt-integrity"),
    "non-stmt-in-block": (_non_stmt_in_block, "stmt-integrity"),
    "duplicate-param": (_dup_param, "unique-params"),
    "undefined-scalar-use": (_undefined_scalar, "def-before-use"),
    "unknown-array-ref": (_unknown_array, "known-arrays"),
    "create-on-live-in": (_create_on_live_in, "directive-data"),
    "copyin-on-written": (_copyin_on_written, "directive-data"),
    "copyout-never-written": (_copyout_never_written, "directive-data"),
    "data-unknown-array": (_data_unknown_array, "directive-data"),
    "cache-on-written": (_cache_on_written, "directive-cache"),
    "cache-never-read": (_cache_never_read, "directive-cache"),
    "write-const-param": (_write_const_param, "param-intent"),
    "collapse-on-flat-loop": (_collapse_on_flat_loop, "collapse-legality"),
    "gang-inside-gang": (_gang_inside_gang, "gang-worker-nesting"),
}

#: corruptions expressed at the source level (directive legality against
#: what the dependence analyzer actually proves)
SOURCE_CATALOG = {
    "independent-on-dependent": (
        """
        void kd(float *a, int n) {
            int i;
        #pragma acc loop independent
            for (i = 1; i < n; i++) {
                a[i] = a[i - 1] + 1.0f;
            }
        }
        """,
        "directive-independent",
    ),
    "reduction-wrong-scalar": (
        """
        void kr(float *a, float t, int n) {
            int i;
            float s;
            s = 0.0f;
        #pragma acc loop reduction(+:t)
            for (i = 0; i < n; i++) {
                s += a[i];
            }
            a[0] = s;
        }
        """,
        "directive-reduction",
    ),
    "reduction-wrong-op": (
        """
        void km(float *a, int n) {
            int i;
            float s;
            s = 1.0f;
        #pragma acc loop reduction(+:s)
            for (i = 0; i < n; i++) {
                s *= a[i];
            }
            a[0] = s;
        }
        """,
        "directive-reduction",
    ),
    "collapse-non-rectangular": (
        """
        void kc(float *a, int n) {
            int i;
            int j;
        #pragma acc loop collapse(2)
            for (i = 0; i < n; i++) {
                for (j = 0; j < i; j++) {
                    a[i * n + j] = a[i * n + j] + 1.0f;
                }
            }
        }
        """,
        "collapse-legality",
    ),
    "collapse-too-deep": (
        """
        void kt(float *a, int n) {
            int i;
            int j;
        #pragma acc loop collapse(3)
            for (i = 0; i < n; i++) {
                for (j = 0; j < n; j++) {
                    a[i * n + j] = a[i * n + j] * 2.0f;
                }
            }
        }
        """,
        "collapse-legality",
    ),
    "gang-inside-worker": (
        """
        void kg(float *a, int n) {
            int i;
            int j;
        #pragma acc loop worker(32)
            for (i = 0; i < n; i++) {
        #pragma acc loop gang(128)
                for (j = 0; j < n; j++) {
                    a[i * n + j] = a[i * n + j] + 1.0f;
                }
            }
        }
        """,
        "gang-worker-nesting",
    ),
    "worker-inside-vector": (
        """
        void kv(float *a, int n) {
            int i;
            int j;
        #pragma acc loop vector(4)
            for (i = 0; i < n; i++) {
        #pragma acc loop worker(8)
                for (j = 0; j < n; j++) {
                    a[i * n + j] = a[i * n + j] + 1.0f;
                }
            }
        }
        """,
        "gang-worker-nesting",
    ),
}


@pytest.mark.parametrize("name", sorted(CATALOG))
def test_corruption_is_caught(name):
    mutate, expected = CATALOG[name]
    kernel = clean_kernel()
    mutate(kernel)
    failures = check_kernel(kernel, "strict")
    assert expected in {f.check for f in failures}, (
        f"corruption {name!r} was not caught by {expected!r}: "
        f"{[str(f) for f in failures]}"
    )
    with pytest.raises(VerifyError) as exc:
        verify_kernel(kernel, "strict", provenance=("some-pass",))
    assert "some-pass" in str(exc.value)


@pytest.mark.parametrize("name", sorted(SOURCE_CATALOG))
def test_source_corruption_is_caught(name):
    source, expected = SOURCE_CATALOG[name]
    kernel = parse_kernel(source)
    failures = check_kernel(kernel, "strict")
    assert expected in {f.check for f in failures}
    # ...but the *structure* level accepts it: wrong directives are the
    # paper's V-D2 scenario, which the compiler models must ingest
    assert check_kernel(kernel, "structure") == []


def test_duplicate_kernels_in_module():
    a, b = clean_kernel(), clean_kernel()
    failures = check_module(Module("m", [a, b]))
    assert "unique-kernels" in {f.check for f in failures}


def test_catalog_is_large_enough():
    """ISSUE 7 acceptance: at least 10 distinct corruptions, spanning
    both verifier levels.  ISSUE 8 grew the strict level with
    collapse-legality and gang/worker-nesting, each backed by catalog
    corruptions — the floor rises with it."""
    assert len(CATALOG) + len(SOURCE_CATALOG) >= 24
    checks = {c for _, c in CATALOG.values()}
    checks |= {c for _, c in SOURCE_CATALOG.values()}
    assert len(checks) >= 10  # distinct verifier checks exercised


@pytest.mark.parametrize("seed", CORPUS_SEEDS)
def test_corpus_verifies_clean_at_structure_level(seed):
    """Property: every fuzzer-generated module is structure-clean —
    the invariant set pass pipelines enforce between passes holds on
    all generated inputs (adversarial directives notwithstanding)."""
    module = corpus_case(seed).module
    assert check_module(module, "structure") == []
