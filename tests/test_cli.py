"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main

DEMO = """
#pragma acc kernels
void demo(float *a, const float *b, int n) {
  int i;
  #pragma acc loop independent
  for (i = 0; i < n; i++) {
    a[i] = b[i] * 2.0f;
  }
}
"""


@pytest.fixture
def demo_file(tmp_path):
    path = tmp_path / "demo.c"
    path.write_text(DEMO)
    return str(path)


class TestCompile:
    def test_caps(self, demo_file, capsys):
        assert main(["compile", demo_file]) == 0
        out = capsys.readouterr().out
        assert "CAPS -> cuda" in out and "gridify 1D" in out

    def test_pgi_with_ptx(self, demo_file, capsys):
        assert main(["compile", demo_file, "--compiler", "pgi", "--ptx"]) == 0
        out = capsys.readouterr().out
        assert ".visible .entry demo(" in out


class TestAnalyze:
    def test_reports_verdicts(self, demo_file, capsys):
        assert main(["analyze", demo_file]) == 0
        out = capsys.readouterr().out
        assert "loop over 'i': independent" in out


class TestExperiment:
    def test_single(self, capsys):
        assert main(["experiment", "table2"]) == 0
        out = capsys.readouterr().out
        assert "[PASS]" in out and "[FAIL]" not in out

    def test_unknown_id(self, capsys):
        assert main(["experiment", "fig99"]) == 2

    def test_multiple(self, capsys):
        assert main(["experiment", "table1", "table3"]) == 0


class TestBenchAndTools:
    def test_bench_bfs(self, capsys):
        assert main(["bench", "bfs", "--size", "16384"]) == 0
        out = capsys.readouterr().out
        assert "indep" in out and "dataregion" in out

    def test_heatmap(self, capsys):
        assert main(["heatmap", "--size", "512"]) == 0
        assert "best:" in capsys.readouterr().out

    def test_autotune(self, capsys):
        assert main(["autotune", "--size", "512"]) == 0
        out = capsys.readouterr().out
        assert "exhaustive" in out and "portable" in out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestResilienceFlags:
    def test_heatmap_with_faults_heals_and_reports(self, capsys):
        assert main(["heatmap", "--size", "512",
                     "--faults", "transient:p=0.3,seed=11",
                     "--retries", "3"]) == 0
        out = capsys.readouterr().out
        assert "best:" in out
        assert "resilience:" in out and "0 errors" in out

    def test_faulted_heatmap_output_matches_clean(self, capsys):
        assert main(["heatmap", "--size", "512"]) == 0
        clean = capsys.readouterr().out
        assert main(["heatmap", "--size", "512",
                     "--faults", "transient:p=0.3,seed=11"]) == 0
        faulted = capsys.readouterr().out
        # the heat map itself is byte-identical; only the appended
        # service-stats section differs
        assert faulted.startswith(clean.split("\n-- compile service --")[0]
                                  .rstrip("\n"))

    def test_unhealable_sweep_exits_1_cleanly(self, capsys):
        """A fault plan no retry budget can beat (p=1, and caps-cuda has
        no breaker fallback) must exit 1 with a one-line error, not a
        traceback."""
        assert main(["heatmap", "--size", "512",
                     "--faults", "transient:p=1.0",
                     "--retries", "2"]) == 1
        err = capsys.readouterr().err
        assert "sweep failed after retries" in err
        assert "Traceback" not in err

    def test_bad_fault_spec_exits_2(self, capsys):
        assert main(["heatmap", "--size", "512",
                     "--faults", "warp-drive:p=0.5"]) == 2
        assert "bad --faults spec" in capsys.readouterr().err

    def test_difftest_resume_skips_journaled_points(self, tmp_path, capsys):
        journal = str(tmp_path / "sweep.jsonl")
        assert main(["difftest", "--seeds", "2", "--resume", journal]) == 0
        first = capsys.readouterr().out
        lines = (tmp_path / "sweep.jsonl").read_text().splitlines()
        assert len(lines) == 8  # 2 cases x 4 pairs, one line per point
        assert main(["difftest", "--seeds", "2", "--resume", journal]) == 0
        second = capsys.readouterr().out
        assert (tmp_path / "sweep.jsonl").read_text().splitlines() == lines
        assert first.split("\n-- compile service --")[0] == \
            second.split("\n-- compile service --")[0]


class TestServerCli:
    def test_unwritable_cache_dir_exits_2(self, tmp_path, capsys):
        occupied = tmp_path / "occupied"
        occupied.write_text("a file, not a directory")
        # the same convention as a bad --faults spec: usage error, exit 2,
        # one clean line on stderr — never a traceback
        code = main(["heatmap", "--cache-dir", str(occupied / "sub")])
        assert code == 2
        err = capsys.readouterr().err
        assert "bad --cache-dir" in err
        assert "Traceback" not in err

    def test_unwritable_cache_dir_exits_2_for_serve(self, tmp_path, capsys):
        occupied = tmp_path / "occupied"
        occupied.write_text("a file")
        code = main(["serve", "--self-test", "--points", "1",
                     "--cache-dir", str(occupied / "sub")])
        assert code == 2
        assert "bad --cache-dir" in capsys.readouterr().err

    def test_serve_self_test_passes(self, capsys):
        code = main(["serve", "--self-test", "--clients", "2",
                     "--points", "4", "--jobs", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "server self-test: PASS" in out
        assert "byte-identical=yes" in out
        assert "rejected with 429" in out

    def test_client_spawn_compile(self, demo_file, capsys):
        assert main(["client", "--spawn", "compile", demo_file]) == 0
        out = capsys.readouterr().out
        assert "CAPS -> cuda (via daemon)" in out

    def test_client_spawn_sweep(self, capsys):
        assert main(["client", "--spawn", "sweep", "--points", "3"]) == 0
        out = capsys.readouterr().out
        assert "sweep: 3 points, 0 failed" in out
        assert "result digest" in out

    def test_client_spawn_status(self, capsys):
        assert main(["client", "--spawn", "status"]) == 0
        out = capsys.readouterr().out
        assert '"draining": false' in out

    def test_client_connection_refused_is_a_clean_error(self, capsys):
        from repro.server.daemon import free_port

        code = main(["client", "--port", str(free_port()), "status"])
        assert code == 1
        err = capsys.readouterr().err
        assert "cannot reach server" in err
        assert "Traceback" not in err


class TestExecSweep:
    @pytest.fixture(autouse=True)
    def _clean(self):
        from repro.runtime.executor import (
            clear_kernel_cache,
            configure_plan_cache,
        )
        from repro.telemetry import reset_registry

        clear_kernel_cache()
        configure_plan_cache(None)
        reset_registry()
        yield
        clear_kernel_cache()
        configure_plan_cache(None)
        reset_registry()

    def test_digest_stable_across_exec_jobs(self, capsys):
        import json

        from repro.runtime.executor import clear_kernel_cache
        from repro.telemetry import reset_registry

        digests = []
        for jobs in ("1", "2"):
            clear_kernel_cache()
            reset_registry()
            assert main(["exec-sweep", "--size", "48",
                         "--exec-jobs", jobs]) == 0
            payload = json.loads(capsys.readouterr().out)
            digests.append(payload["digest"])
            assert payload["jobs"] == int(jobs)
            assert payload["counters"]["executor.pool_tasks"] == 6
        assert digests[0] == digests[1]

    def test_cache_dir_persists_plans(self, tmp_path, capsys):
        import json

        cache = str(tmp_path / "cache")
        assert main(["exec-sweep", "--size", "48",
                     "--cache-dir", cache]) == 0
        cold = json.loads(capsys.readouterr().out)
        assert cold["counters"]["executor.plan_disk_store"] == 6

        from repro.runtime.executor import clear_kernel_cache

        clear_kernel_cache(memory_only=True)
        assert main(["exec-sweep", "--size", "48",
                     "--cache-dir", cache]) == 0
        warm = json.loads(capsys.readouterr().out)
        assert warm["counters"]["executor.plan_disk_hit"] == 6
        assert warm["digest"] == cold["digest"]

    def test_bad_cache_dir_exits_2(self, tmp_path, capsys):
        blocker = tmp_path / "file"
        blocker.write_text("")
        code = main(["exec-sweep", "--cache-dir", str(blocker / "x")])
        assert code == 2
        assert "bad --cache-dir" in capsys.readouterr().err
