"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main

DEMO = """
#pragma acc kernels
void demo(float *a, const float *b, int n) {
  int i;
  #pragma acc loop independent
  for (i = 0; i < n; i++) {
    a[i] = b[i] * 2.0f;
  }
}
"""


@pytest.fixture
def demo_file(tmp_path):
    path = tmp_path / "demo.c"
    path.write_text(DEMO)
    return str(path)


class TestCompile:
    def test_caps(self, demo_file, capsys):
        assert main(["compile", demo_file]) == 0
        out = capsys.readouterr().out
        assert "CAPS -> cuda" in out and "gridify 1D" in out

    def test_pgi_with_ptx(self, demo_file, capsys):
        assert main(["compile", demo_file, "--compiler", "pgi", "--ptx"]) == 0
        out = capsys.readouterr().out
        assert ".visible .entry demo(" in out


class TestAnalyze:
    def test_reports_verdicts(self, demo_file, capsys):
        assert main(["analyze", demo_file]) == 0
        out = capsys.readouterr().out
        assert "loop over 'i': independent" in out


class TestExperiment:
    def test_single(self, capsys):
        assert main(["experiment", "table2"]) == 0
        out = capsys.readouterr().out
        assert "[PASS]" in out and "[FAIL]" not in out

    def test_unknown_id(self, capsys):
        assert main(["experiment", "fig99"]) == 2

    def test_multiple(self, capsys):
        assert main(["experiment", "table1", "table3"]) == 0


class TestBenchAndTools:
    def test_bench_bfs(self, capsys):
        assert main(["bench", "bfs", "--size", "16384"]) == 0
        out = capsys.readouterr().out
        assert "indep" in out and "dataregion" in out

    def test_heatmap(self, capsys):
        assert main(["heatmap", "--size", "512"]) == 0
        assert "best:" in capsys.readouterr().out

    def test_autotune(self, capsys):
        assert main(["autotune", "--size", "512"]) == 0
        out = capsys.readouterr().out
        assert "exhaustive" in out and "portable" in out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
