"""Tests for device specs and lookup."""

import pytest

from repro.devices import (
    E5_2670,
    GCC,
    ICC,
    K40,
    PCIE,
    PHI_5110P,
    DeviceKind,
    device_by_name,
)


class TestSpecs:
    def test_k40_datasheet(self):
        assert K40.kind is DeviceKind.GPU
        assert K40.num_units == 15 and K40.lanes_per_unit == 192
        assert K40.total_lanes == 2880
        assert K40.warp_width == 32
        assert K40.max_resident_threads == 15 * 2048

    def test_phi_datasheet(self):
        assert PHI_5110P.kind is DeviceKind.MIC
        assert PHI_5110P.num_units == 60
        assert PHI_5110P.threads_per_unit == 4

    def test_host(self):
        assert E5_2670.kind is DeviceKind.CPU


class TestLookup:
    @pytest.mark.parametrize("name,spec", [
        ("k40", K40), ("GPU", K40), ("mic", PHI_5110P), ("5110p", PHI_5110P),
        ("cpu", E5_2670), ("NVIDIA Tesla K40", K40),
    ])
    def test_aliases(self, name, spec):
        assert device_by_name(name) is spec

    def test_unknown(self):
        with pytest.raises(KeyError):
            device_by_name("tpu")


class TestPcie:
    def test_transfer_time_monotone(self):
        assert PCIE.transfer_seconds(1 << 20) < PCIE.transfer_seconds(1 << 24)

    def test_latency_floor(self):
        assert PCIE.transfer_seconds(0) == pytest.approx(PCIE.latency_us * 1e-6)


class TestToolchains:
    def test_icc_faster(self):
        assert ICC.host_speed_factor < GCC.host_speed_factor == 1.0
