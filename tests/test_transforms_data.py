"""Tests for data-region directives (the paper's future work)."""

import pytest

from repro.compilers import CapsCompiler
from repro.frontend import parse_kernel, parse_module
from repro.ir import AccData
from repro.transforms import (
    DataRegionError,
    add_data_region,
    add_data_regions,
    has_data_region,
    infer_data_region,
)

SRC = """
void f(float *inout, const float *in, float *out, int n) {
  int i;
  for (i = 0; i < n; i++) {
    out[i] = in[i] * 2.0f;
    inout[i] += in[i];
  }
}
"""


class TestAddDataRegion:
    def test_attaches_directive(self):
        k = parse_kernel(SRC)
        out = add_data_region(k, copyin=("in",), copyout=("out",))
        assert has_data_region(out)
        assert not has_data_region(k)  # original untouched

    def test_unknown_array_rejected(self):
        k = parse_kernel(SRC)
        with pytest.raises(DataRegionError):
            add_data_region(k, copyin=("zzz",))


class TestInference:
    def test_classifies_by_access(self):
        k = parse_kernel(SRC)
        out = infer_data_region(k)
        data = out.directives.first(AccData)
        assert data.copy == ("inout",)
        assert "in" in data.copyin
        assert data.copyout == ("out",)

    def test_module_level(self):
        mod = parse_module(SRC, "m")
        out = add_data_regions(mod)
        assert all(has_data_region(k) for k in out.kernels)


class TestCompilerIntegration:
    def test_caps_records_region(self):
        mod = add_data_regions(parse_module(SRC, "m"))
        compiled = CapsCompiler().compile(mod, "cuda")
        assert compiled.kernels[0].has_data_region
        assert any("Data region" in m for m in compiled.kernels[0].messages)

    def test_without_region_flag_false(self):
        compiled = CapsCompiler().compile(parse_module(SRC, "m"), "cuda")
        assert not compiled.kernels[0].has_data_region


class TestBfsFutureWork:
    def test_dataregion_stage_hoists_transfers(self):
        from repro.devices import K40
        from repro.kernels import get_benchmark
        from repro.runtime import Accelerator

        bench = get_benchmark("bfs")
        n = 1 << 14
        counts = {}
        for stage in ("indep", "dataregion"):
            compiled = CapsCompiler().compile(bench.stages()[stage], "cuda")
            acc = Accelerator(K40)
            bench.run(acc, compiled, n, levels=8)
            # count data transfers the way Table VII does (the 8-byte
            # stop-flag updates are not data transfers)
            counts[stage] = sum(
                1 for e in acc.profiler.events
                if e.kind in ("h2d", "d2h") and e.nbytes >= 64
            )
        assert counts["dataregion"] <= 5
        assert counts["indep"] > 3 * counts["dataregion"]
