"""Tests for the functional executor."""

import numpy as np
import pytest

from repro.frontend import parse_kernel
from repro.runtime.executor import (
    ExecMode,
    ExecutionError,
    LoopSemantics,
    execute_kernel,
    kernel_python_source,
)


class TestSequential:
    def test_stream(self):
        k = parse_kernel(
            "void f(float *a, const float *b, int n) { int i; "
            "for (i = 0; i < n; i++) a[i] = b[i] * 2.0f + 1.0f; }"
        )
        a, b = np.zeros(4), np.arange(4, dtype=np.float64)
        execute_kernel(k, {"a": a, "b": b, "n": 4})
        assert np.allclose(a, b * 2 + 1)

    def test_c_integer_division(self):
        k = parse_kernel(
            "void f(int *o, int a, int b) { o[0] = a / b; o[1] = a % b; }"
        )
        out = np.zeros(2, dtype=np.int64)
        execute_kernel(k, {"o": out, "a": 7, "b": 2})
        assert list(out) == [3, 1]
        execute_kernel(k, {"o": out, "a": -7, "b": 2})
        assert list(out) == [-3, -1]  # trunc toward zero, like C

    def test_intrinsics(self):
        k = parse_kernel(
            "void f(float *o, float x) { o[0] = sqrt(x); o[1] = fabs(-x); "
            "o[2] = fmin(x, 1.0f); o[3] = exp(0.0f); }"
        )
        out = np.zeros(4)
        execute_kernel(k, {"o": out, "x": 4.0})
        assert np.allclose(out, [2.0, 4.0, 1.0, 1.0])

    def test_while_and_if(self):
        k = parse_kernel(
            "void f(float *s) { while (s[0] > 1.0f) { s[0] /= 2.0f; } "
            "if (s[0] > 0.5f) s[1] = 1.0f; }"
        )
        s = np.array([8.0, 0.0])
        execute_kernel(k, {"s": s})
        assert s[0] <= 1.0 and s[1] == 1.0

    def test_rank2(self):
        k = parse_kernel(
            "void f(double **q, int n) { int i; for (i = 0; i < n; i++) "
            "q[1][i] = q[0][i] * 3.0; }"
        )
        q = np.zeros((2, 4))
        q[0] = np.arange(4)
        execute_kernel(k, {"q": q, "n": 4})
        assert np.allclose(q[1], q[0] * 3)

    def test_ternary(self):
        k = parse_kernel(
            "void f(float *a, int n) { int i; for (i = 0; i < n; i++) "
            "a[i] = i > 1 ? 1.0f : 0.0f; }"
        )
        a = np.zeros(4)
        execute_kernel(k, {"a": a, "n": 4})
        assert list(a) == [0, 0, 1, 1]


class TestArgChecking:
    def _kernel(self):
        return parse_kernel("void f(float *a, int n) { a[0] = 1.0f; }")

    def test_missing_arg(self):
        with pytest.raises(ExecutionError):
            execute_kernel(self._kernel(), {"a": np.zeros(1)})

    def test_extra_arg(self):
        with pytest.raises(ExecutionError):
            execute_kernel(self._kernel(), {"a": np.zeros(1), "n": 1, "z": 2})

    def test_wrong_rank(self):
        with pytest.raises(ExecutionError):
            execute_kernel(self._kernel(), {"a": np.zeros((2, 2)), "n": 1})

    def test_scalar_for_array(self):
        with pytest.raises(ExecutionError):
            execute_kernel(self._kernel(), {"a": 5, "n": 1})


class TestParallelSnapshot:
    def test_dependent_loop_races(self):
        k = parse_kernel(
            "void f(float *A, int n) { int i; for (i = 1; i < n; i++) "
            "A[i] = A[i - 1] + 1.0f; }"
        )
        seq = np.zeros(6)
        execute_kernel(k, {"A": seq, "n": 6})
        racy = np.zeros(6)
        lid = k.loops()[0].loop_id
        execute_kernel(k, {"A": racy, "n": 6},
                       {lid: LoopSemantics(ExecMode.PARALLEL_SNAPSHOT)})
        assert not np.allclose(seq, racy)

    def test_independent_loop_unaffected(self):
        k = parse_kernel(
            "void f(float *A, int n) { int i; for (i = 0; i < n; i++) "
            "A[i] = A[i] * 2.0f; }"
        )
        seq = np.arange(6, dtype=np.float64)
        par = seq.copy()
        execute_kernel(k, {"A": seq, "n": 6})
        lid = k.loops()[0].loop_id
        execute_kernel(k, {"A": par, "n": 6},
                       {lid: LoopSemantics(ExecMode.PARALLEL_SNAPSHOT)})
        assert np.allclose(seq, par)


class TestBrokenReduction:
    def test_lost_updates(self):
        k = parse_kernel(
            "void f(const float *a, float *out, int n) { int i; float s = 0.0f; "
            "for (i = 0; i < n; i++) s += a[i]; out[0] = s; }"
        )
        a = np.ones(16)
        good, bad = np.zeros(1), np.zeros(1)
        execute_kernel(k, {"a": a, "out": good, "n": 16})
        lid = k.loops()[0].loop_id
        execute_kernel(
            k, {"a": a, "out": bad, "n": 16},
            {lid: LoopSemantics(ExecMode.REDUCTION_LAST_CHUNK, chunks=4)},
        )
        assert good[0] == 16.0 and bad[0] == 4.0

    def test_empty_range_ok(self):
        k = parse_kernel(
            "void f(const float *a, float *out, int n) { int i; float s = 0.0f; "
            "for (i = 0; i < n; i++) s += a[i]; out[0] = s; }"
        )
        out = np.ones(1)
        lid = k.loops()[0].loop_id
        execute_kernel(
            k, {"a": np.zeros(4), "out": out, "n": 0},
            {lid: LoopSemantics(ExecMode.REDUCTION_LAST_CHUNK)},
        )
        assert out[0] == 0.0


class TestSourceGeneration:
    def test_source_is_python(self):
        k = parse_kernel(
            "void f(float *a, int n) { int i; for (i = 0; i < n; i++) a[i] = 0.0f; }"
        )
        source = kernel_python_source(k)
        assert source.startswith("def _kernel(a, n):")
        compile(source, "<test>", "exec")


class TestCIntegerDivision:
    """C semantics: division truncates toward zero, and the remainder
    takes the dividend's sign — unlike Python's floor division."""

    def test_idiv_truncates_toward_zero(self):
        from repro.runtime.executor import _idiv

        assert _idiv(7, 2) == 3
        assert _idiv(-7, 2) == -3      # Python's -7 // 2 would be -4
        assert _idiv(7, -2) == -3
        assert _idiv(-7, -2) == 3

    def test_imod_takes_dividend_sign(self):
        from repro.runtime.executor import _imod

        assert _imod(7, 2) == 1
        assert _imod(-7, 2) == -1      # Python's -7 % 2 would be 1
        assert _imod(7, -2) == 1
        assert _imod(-7, -2) == -1

    def test_kernel_divides_negative_ints_like_c(self):
        k = parse_kernel(
            "void f(int *q, int *r, const int *a, int d) { int i; "
            "for (i = 0; i < 4; i++) { q[i] = a[i] / d; r[i] = a[i] % d; } }"
        )
        a = np.array([-7, -1, 1, 7], dtype=np.int32)
        q = np.zeros(4, dtype=np.int32)
        r = np.zeros(4, dtype=np.int32)
        execute_kernel(k, {"q": q, "r": r, "a": a, "d": 2})
        assert q.tolist() == [-3, 0, 0, 3]
        assert r.tolist() == [-1, -1, 1, 1]


class TestReductionLastChunkEdges:
    def test_chunks_exceed_trip_count(self):
        # trip count 2 with chunks=4: chunk size ceil(2/4)=1, so only the
        # single last iteration runs
        k = parse_kernel(
            "void f(const float *a, float *out) { int i; float s = 0.0f; "
            "for (i = 0; i < 2; i++) s += a[i];\n"
            "out[0] = s; }"
        )
        out = np.zeros(1)
        lid = k.loops()[0].loop_id
        execute_kernel(
            k, {"a": np.array([3.0, 5.0]), "out": out},
            {lid: LoopSemantics(ExecMode.REDUCTION_LAST_CHUNK, chunks=4)},
        )
        assert out[0] == 5.0

    def test_single_iteration_is_exact(self):
        # trip count 1: the last chunk IS the whole loop, result correct
        k = parse_kernel(
            "void f(const float *a, float *out) { int i; float s = 0.0f; "
            "for (i = 0; i < 1; i++) s += a[i];\n"
            "out[0] = s; }"
        )
        out = np.zeros(1)
        lid = k.loops()[0].loop_id
        execute_kernel(
            k, {"a": np.array([7.0]), "out": out},
            {lid: LoopSemantics(ExecMode.REDUCTION_LAST_CHUNK, chunks=4)},
        )
        assert out[0] == 7.0

    def test_strided_last_chunk(self):
        # lower 0, upper 7, step 2 -> iterates 0,2,4,6 (length 4);
        # chunk ceil(4/4)=1 -> start = 0 + 3*2 = 6: only i=6 runs
        k = parse_kernel(
            "void f(const float *a, float *out) { int i; float s = 0.0f; "
            "for (i = 0; i < 7; i += 2) s += a[i];\n"
            "out[0] = s; }"
        )
        out = np.zeros(1)
        lid = k.loops()[0].loop_id
        execute_kernel(
            k, {"a": np.arange(8, dtype=np.float64), "out": out},
            {lid: LoopSemantics(ExecMode.REDUCTION_LAST_CHUNK, chunks=4)},
        )
        assert out[0] == 6.0


class TestParallelSnapshotEdges:
    def test_empty_trip_loop_is_noop(self):
        # zero iterations: snapshots are taken and discarded, arrays
        # unchanged, and no error from the empty range
        k = parse_kernel(
            "void f(float *a, int n) { int i; "
            "for (i = 0; i < n; i++) a[i] = a[i] + 1.0f; }"
        )
        a = np.array([1.0, 2.0])
        lid = k.loops()[0].loop_id
        execute_kernel(
            k, {"a": a, "n": 0},
            {lid: LoopSemantics(ExecMode.PARALLEL_SNAPSHOT)},
        )
        assert a.tolist() == [1.0, 2.0]

    def test_snapshot_reads_are_stale(self):
        # the defining property: a[i] reads the pre-loop value of a[i-1]
        k = parse_kernel(
            "void f(float *a) { int i; "
            "for (i = 1; i < 4; i++) a[i] = a[i - 1] + 1.0f; }"
        )
        a = np.zeros(4)
        lid = k.loops()[0].loop_id
        execute_kernel(
            k, {"a": a}, {lid: LoopSemantics(ExecMode.PARALLEL_SNAPSHOT)}
        )
        assert a.tolist() == [0.0, 1.0, 1.0, 1.0]  # sequential: 0,1,2,3


class TestNestedSnapshot:
    def test_outer_reads_resolve_to_outer_snapshot(self):
        # An inner parallel loop writing the same array must not clobber
        # the outer loop's snapshot: after the inner loop exits, reads in
        # the outer frame still see the state at *outer* loop entry.
        k = parse_kernel(
            "void f(float *a, int n) { int i; int j; "
            "for (i = 0; i < 1; i++) { "
            "a[0] = a[1] + 10.0f; "
            "for (j = 1; j < 3; j++) a[j] = a[j - 1] + 1.0f; "
            "a[3] = a[0] + 100.0f; } }"
        )
        outer, inner = k.loops()
        a = np.array([1.0, 2.0, 3.0, 4.0])
        execute_kernel(
            k, {"a": a, "n": 4},
            {outer.loop_id: LoopSemantics(ExecMode.PARALLEL_SNAPSHOT),
             inner.loop_id: LoopSemantics(ExecMode.PARALLEL_SNAPSHOT)},
        )
        # outer snapshot [1,2,3,4]: a[0] = 2+10 = 12
        # inner snapshot [12,2,3,4]: a[1] = 13, a[2] = 3
        # a[3] reads the OUTER snapshot's a[0] (= 1), not the inner's (= 12)
        assert a.tolist() == [12.0, 13.0, 3.0, 101.0]

    def test_inner_loop_gets_fresh_snapshot_each_iteration(self):
        k = parse_kernel(
            "void f(float *a) { int i; int j; "
            "for (i = 0; i < 2; i++) { "
            "for (j = 0; j < 2; j++) a[j] = a[j] + 1.0f; } }"
        )
        outer, inner = k.loops()
        a = np.zeros(2)
        execute_kernel(
            k, {"a": a},
            {outer.loop_id: LoopSemantics(ExecMode.PARALLEL_SNAPSHOT),
             inner.loop_id: LoopSemantics(ExecMode.PARALLEL_SNAPSHOT)},
        )
        # each outer iteration re-snapshots at inner entry, so the
        # increments accumulate across outer iterations
        assert a.tolist() == [2.0, 2.0]


class TestLastChunkStepEdges:
    def _reduction_kernel(self):
        return parse_kernel(
            "void f(const float *a, float *out) { int i; float s = 0.0f; "
            "for (i = 0; i < 7; i += 2) s += a[i];\n"
            "out[0] = s; }"
        )

    def test_negative_step_trip_count(self):
        from repro.ir.expr import IntLit

        k = self._reduction_kernel()
        loop = k.loops()[0]
        # the parser only emits forward loops; model a descending one
        loop.lower = IntLit(6)
        loop.upper = IntLit(0)
        loop.step = -2
        a = np.arange(8, dtype=np.float64)
        seq = np.zeros(1)
        execute_kernel(k, {"a": a, "out": seq})
        assert seq[0] == 12.0  # iterates 6, 4, 2
        # trip count 3, chunks=3 -> size 1: start = 6 + 2*(-2) = 2
        out = np.zeros(1)
        execute_kernel(
            k, {"a": a, "out": out},
            {loop.loop_id: LoopSemantics(
                ExecMode.REDUCTION_LAST_CHUNK, chunks=3)},
        )
        assert out[0] == 2.0

    def test_negative_step_empty_range(self):
        from repro.ir.expr import IntLit

        k = self._reduction_kernel()
        loop = k.loops()[0]
        loop.lower = IntLit(0)
        loop.upper = IntLit(6)
        loop.step = -2  # range(0, 6, -2) is empty
        out = np.full(1, 9.0)
        execute_kernel(
            k, {"a": np.arange(8, dtype=np.float64), "out": out},
            {loop.loop_id: LoopSemantics(
                ExecMode.REDUCTION_LAST_CHUNK, chunks=2)},
        )
        assert out[0] == 0.0  # s = 0.0 still stored; no iterations run

    def test_step_zero_raises(self):
        k = self._reduction_kernel()
        k.loops()[0].step = 0
        with pytest.raises(ExecutionError, match="step 0"):
            execute_kernel(
                k, {"a": np.zeros(8), "out": np.zeros(1)}
            )


class TestUnknownScalar:
    def test_undeclared_name_raises_instead_of_int32_default(self):
        from repro.ir.expr import BinOp, FloatLit, Var
        from repro.ir.stmt import Assign

        # an unknown name used to default to INT32, routing float
        # division through _idiv; now it is a hard error
        k = parse_kernel("void f(float *a, float x) { a[0] = x / 2.0f; }")
        assign = next(s for s in k.body.walk() if isinstance(s, Assign))
        assign.value = BinOp("/", Var("mystery"), FloatLit(2.0))
        with pytest.raises(ExecutionError, match="mystery"):
            execute_kernel(k, {"a": np.zeros(1), "x": 1.0})


class TestArgTyping:
    def _kernel(self):
        return parse_kernel(
            "void f(float *a, const int *idx, float x, int n) "
            "{ a[0] = x; a[1] = (float) idx[0]; a[2] = (float) n; }"
        )

    def _args(self, **over):
        args = {
            "a": np.zeros(3, dtype=np.float32),
            "idx": np.zeros(1, dtype=np.int32),
            "x": 1.5,
            "n": 2,
        }
        args.update(over)
        return args

    def test_int_buffer_for_float_param_rejected(self):
        with pytest.raises(ExecutionError, match="incompatible"):
            execute_kernel(
                self._kernel(), self._args(a=np.zeros(3, dtype=np.int64))
            )

    def test_float_buffer_for_int_param_rejected(self):
        with pytest.raises(ExecutionError, match="incompatible"):
            execute_kernel(
                self._kernel(), self._args(idx=np.zeros(1, dtype=np.float64))
            )

    def test_wider_float_buffer_accepted(self):
        # kind matches (both float): float64 storage for a float32 param
        # is how every existing harness allocates buffers
        execute_kernel(
            self._kernel(), self._args(a=np.zeros(3, dtype=np.float64))
        )

    def test_numpy_scalars_normalized_to_python(self):
        a = np.zeros(3, dtype=np.float64)
        execute_kernel(
            self._kernel(),
            self._args(a=a, x=np.float32(1.5), n=np.int64(2)),
        )
        assert a.tolist() == [1.5, 0.0, 2.0]

    def test_float_for_int_param_truncates_like_c(self):
        a = np.zeros(3, dtype=np.float64)
        execute_kernel(self._kernel(), self._args(a=a, n=2.9))
        assert a[2] == 2.0

    def test_non_number_scalar_rejected(self):
        with pytest.raises(ExecutionError, match="must be a number"):
            execute_kernel(self._kernel(), self._args(n="2"))


class TestCompiledKernelCache:
    def test_cache_hits_are_counted(self):
        from repro.runtime.executor import clear_kernel_cache
        from repro.telemetry import get_registry, reset_registry

        k = parse_kernel(
            "void f(float *a, int n) { int i; "
            "for (i = 0; i < n; i++) a[i] = 2.0f; }"
        )
        clear_kernel_cache()
        reset_registry()
        a = np.zeros(4)
        execute_kernel(k, {"a": a, "n": 4})
        execute_kernel(k, {"a": a, "n": 4})
        assert get_registry().counter("executor.cache_hit").value == 1

    def test_semantics_changes_miss_the_cache(self):
        from repro.runtime.executor import clear_kernel_cache
        from repro.telemetry import get_registry, reset_registry

        k = parse_kernel(
            "void f(float *a, int n) { int i; "
            "for (i = 0; i < n; i++) a[i] = a[i] + 1.0f; }"
        )
        lid = k.loops()[0].loop_id
        clear_kernel_cache()
        reset_registry()
        a = np.zeros(4)
        execute_kernel(k, {"a": a, "n": 4})
        execute_kernel(k, {"a": a, "n": 4},
                       {lid: LoopSemantics(ExecMode.PARALLEL_SNAPSHOT)})
        assert get_registry().counter("executor.cache_hit").value == 0

    def test_equal_print_shares_cache_across_objects(self):
        from repro.runtime.executor import clear_kernel_cache
        from repro.telemetry import get_registry, reset_registry

        src = ("void f(float *a, int n) { int i; "
               "for (i = 0; i < n; i++) a[i] = 3.0f; }")
        clear_kernel_cache()
        reset_registry()
        a = np.zeros(4)
        execute_kernel(parse_kernel(src), {"a": a, "n": 4})
        execute_kernel(parse_kernel(src), {"a": a, "n": 4})
        assert get_registry().counter("executor.cache_hit").value == 1
