"""Tests for the functional executor."""

import numpy as np
import pytest

from repro.frontend import parse_kernel
from repro.runtime.executor import (
    ExecMode,
    ExecutionError,
    LoopSemantics,
    execute_kernel,
    kernel_python_source,
)


class TestSequential:
    def test_stream(self):
        k = parse_kernel(
            "void f(float *a, const float *b, int n) { int i; "
            "for (i = 0; i < n; i++) a[i] = b[i] * 2.0f + 1.0f; }"
        )
        a, b = np.zeros(4), np.arange(4, dtype=np.float64)
        execute_kernel(k, {"a": a, "b": b, "n": 4})
        assert np.allclose(a, b * 2 + 1)

    def test_c_integer_division(self):
        k = parse_kernel(
            "void f(int *o, int a, int b) { o[0] = a / b; o[1] = a % b; }"
        )
        out = np.zeros(2, dtype=np.int64)
        execute_kernel(k, {"o": out, "a": 7, "b": 2})
        assert list(out) == [3, 1]
        execute_kernel(k, {"o": out, "a": -7, "b": 2})
        assert list(out) == [-3, -1]  # trunc toward zero, like C

    def test_intrinsics(self):
        k = parse_kernel(
            "void f(float *o, float x) { o[0] = sqrt(x); o[1] = fabs(-x); "
            "o[2] = fmin(x, 1.0f); o[3] = exp(0.0f); }"
        )
        out = np.zeros(4)
        execute_kernel(k, {"o": out, "x": 4.0})
        assert np.allclose(out, [2.0, 4.0, 1.0, 1.0])

    def test_while_and_if(self):
        k = parse_kernel(
            "void f(float *s) { while (s[0] > 1.0f) { s[0] /= 2.0f; } "
            "if (s[0] > 0.5f) s[1] = 1.0f; }"
        )
        s = np.array([8.0, 0.0])
        execute_kernel(k, {"s": s})
        assert s[0] <= 1.0 and s[1] == 1.0

    def test_rank2(self):
        k = parse_kernel(
            "void f(double **q, int n) { int i; for (i = 0; i < n; i++) "
            "q[1][i] = q[0][i] * 3.0; }"
        )
        q = np.zeros((2, 4))
        q[0] = np.arange(4)
        execute_kernel(k, {"q": q, "n": 4})
        assert np.allclose(q[1], q[0] * 3)

    def test_ternary(self):
        k = parse_kernel(
            "void f(float *a, int n) { int i; for (i = 0; i < n; i++) "
            "a[i] = i > 1 ? 1.0f : 0.0f; }"
        )
        a = np.zeros(4)
        execute_kernel(k, {"a": a, "n": 4})
        assert list(a) == [0, 0, 1, 1]


class TestArgChecking:
    def _kernel(self):
        return parse_kernel("void f(float *a, int n) { a[0] = 1.0f; }")

    def test_missing_arg(self):
        with pytest.raises(ExecutionError):
            execute_kernel(self._kernel(), {"a": np.zeros(1)})

    def test_extra_arg(self):
        with pytest.raises(ExecutionError):
            execute_kernel(self._kernel(), {"a": np.zeros(1), "n": 1, "z": 2})

    def test_wrong_rank(self):
        with pytest.raises(ExecutionError):
            execute_kernel(self._kernel(), {"a": np.zeros((2, 2)), "n": 1})

    def test_scalar_for_array(self):
        with pytest.raises(ExecutionError):
            execute_kernel(self._kernel(), {"a": 5, "n": 1})


class TestParallelSnapshot:
    def test_dependent_loop_races(self):
        k = parse_kernel(
            "void f(float *A, int n) { int i; for (i = 1; i < n; i++) "
            "A[i] = A[i - 1] + 1.0f; }"
        )
        seq = np.zeros(6)
        execute_kernel(k, {"A": seq, "n": 6})
        racy = np.zeros(6)
        lid = k.loops()[0].loop_id
        execute_kernel(k, {"A": racy, "n": 6},
                       {lid: LoopSemantics(ExecMode.PARALLEL_SNAPSHOT)})
        assert not np.allclose(seq, racy)

    def test_independent_loop_unaffected(self):
        k = parse_kernel(
            "void f(float *A, int n) { int i; for (i = 0; i < n; i++) "
            "A[i] = A[i] * 2.0f; }"
        )
        seq = np.arange(6, dtype=np.float64)
        par = seq.copy()
        execute_kernel(k, {"A": seq, "n": 6})
        lid = k.loops()[0].loop_id
        execute_kernel(k, {"A": par, "n": 6},
                       {lid: LoopSemantics(ExecMode.PARALLEL_SNAPSHOT)})
        assert np.allclose(seq, par)


class TestBrokenReduction:
    def test_lost_updates(self):
        k = parse_kernel(
            "void f(const float *a, float *out, int n) { int i; float s = 0.0f; "
            "for (i = 0; i < n; i++) s += a[i]; out[0] = s; }"
        )
        a = np.ones(16)
        good, bad = np.zeros(1), np.zeros(1)
        execute_kernel(k, {"a": a, "out": good, "n": 16})
        lid = k.loops()[0].loop_id
        execute_kernel(
            k, {"a": a, "out": bad, "n": 16},
            {lid: LoopSemantics(ExecMode.REDUCTION_LAST_CHUNK, chunks=4)},
        )
        assert good[0] == 16.0 and bad[0] == 4.0

    def test_empty_range_ok(self):
        k = parse_kernel(
            "void f(const float *a, float *out, int n) { int i; float s = 0.0f; "
            "for (i = 0; i < n; i++) s += a[i]; out[0] = s; }"
        )
        out = np.ones(1)
        lid = k.loops()[0].loop_id
        execute_kernel(
            k, {"a": np.zeros(4), "out": out, "n": 0},
            {lid: LoopSemantics(ExecMode.REDUCTION_LAST_CHUNK)},
        )
        assert out[0] == 0.0


class TestSourceGeneration:
    def test_source_is_python(self):
        k = parse_kernel(
            "void f(float *a, int n) { int i; for (i = 0; i < n; i++) a[i] = 0.0f; }"
        )
        source = kernel_python_source(k)
        assert source.startswith("def _kernel(a, n):")
        compile(source, "<test>", "exec")


class TestCIntegerDivision:
    """C semantics: division truncates toward zero, and the remainder
    takes the dividend's sign — unlike Python's floor division."""

    def test_idiv_truncates_toward_zero(self):
        from repro.runtime.executor import _idiv

        assert _idiv(7, 2) == 3
        assert _idiv(-7, 2) == -3      # Python's -7 // 2 would be -4
        assert _idiv(7, -2) == -3
        assert _idiv(-7, -2) == 3

    def test_imod_takes_dividend_sign(self):
        from repro.runtime.executor import _imod

        assert _imod(7, 2) == 1
        assert _imod(-7, 2) == -1      # Python's -7 % 2 would be 1
        assert _imod(7, -2) == 1
        assert _imod(-7, -2) == -1

    def test_kernel_divides_negative_ints_like_c(self):
        k = parse_kernel(
            "void f(int *q, int *r, const int *a, int d) { int i; "
            "for (i = 0; i < 4; i++) { q[i] = a[i] / d; r[i] = a[i] % d; } }"
        )
        a = np.array([-7, -1, 1, 7], dtype=np.int32)
        q = np.zeros(4, dtype=np.int32)
        r = np.zeros(4, dtype=np.int32)
        execute_kernel(k, {"q": q, "r": r, "a": a, "d": 2})
        assert q.tolist() == [-3, 0, 0, 3]
        assert r.tolist() == [-1, -1, 1, 1]


class TestReductionLastChunkEdges:
    def test_chunks_exceed_trip_count(self):
        # trip count 2 with chunks=4: chunk size ceil(2/4)=1, so only the
        # single last iteration runs
        k = parse_kernel(
            "void f(const float *a, float *out) { int i; float s = 0.0f; "
            "for (i = 0; i < 2; i++) s += a[i];\n"
            "out[0] = s; }"
        )
        out = np.zeros(1)
        lid = k.loops()[0].loop_id
        execute_kernel(
            k, {"a": np.array([3.0, 5.0]), "out": out},
            {lid: LoopSemantics(ExecMode.REDUCTION_LAST_CHUNK, chunks=4)},
        )
        assert out[0] == 5.0

    def test_single_iteration_is_exact(self):
        # trip count 1: the last chunk IS the whole loop, result correct
        k = parse_kernel(
            "void f(const float *a, float *out) { int i; float s = 0.0f; "
            "for (i = 0; i < 1; i++) s += a[i];\n"
            "out[0] = s; }"
        )
        out = np.zeros(1)
        lid = k.loops()[0].loop_id
        execute_kernel(
            k, {"a": np.array([7.0]), "out": out},
            {lid: LoopSemantics(ExecMode.REDUCTION_LAST_CHUNK, chunks=4)},
        )
        assert out[0] == 7.0

    def test_strided_last_chunk(self):
        # lower 0, upper 7, step 2 -> iterates 0,2,4,6 (length 4);
        # chunk ceil(4/4)=1 -> start = 0 + 3*2 = 6: only i=6 runs
        k = parse_kernel(
            "void f(const float *a, float *out) { int i; float s = 0.0f; "
            "for (i = 0; i < 7; i += 2) s += a[i];\n"
            "out[0] = s; }"
        )
        out = np.zeros(1)
        lid = k.loops()[0].loop_id
        execute_kernel(
            k, {"a": np.arange(8, dtype=np.float64), "out": out},
            {lid: LoopSemantics(ExecMode.REDUCTION_LAST_CHUNK, chunks=4)},
        )
        assert out[0] == 6.0


class TestParallelSnapshotEdges:
    def test_empty_trip_loop_is_noop(self):
        # zero iterations: snapshots are taken and discarded, arrays
        # unchanged, and no error from the empty range
        k = parse_kernel(
            "void f(float *a, int n) { int i; "
            "for (i = 0; i < n; i++) a[i] = a[i] + 1.0f; }"
        )
        a = np.array([1.0, 2.0])
        lid = k.loops()[0].loop_id
        execute_kernel(
            k, {"a": a, "n": 0},
            {lid: LoopSemantics(ExecMode.PARALLEL_SNAPSHOT)},
        )
        assert a.tolist() == [1.0, 2.0]

    def test_snapshot_reads_are_stale(self):
        # the defining property: a[i] reads the pre-loop value of a[i-1]
        k = parse_kernel(
            "void f(float *a) { int i; "
            "for (i = 1; i < 4; i++) a[i] = a[i - 1] + 1.0f; }"
        )
        a = np.zeros(4)
        lid = k.loops()[0].loop_id
        execute_kernel(
            k, {"a": a}, {lid: LoopSemantics(ExecMode.PARALLEL_SNAPSHOT)}
        )
        assert a.tolist() == [0.0, 1.0, 1.0, 1.0]  # sequential: 0,1,2,3
