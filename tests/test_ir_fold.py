"""Constant folding (``repro.ir.fold``): C integer semantics, float
preservation, and scalar substitution — the jit frontend's step 1."""

import pytest

from repro.frontend import parse_kernel
from repro.ir import fold_expr, fold_kernel, substitute_scalars
from repro.ir.expr import BinOp, FloatLit, IntLit, Ternary, UnaryOp, Var
from repro.ir.printer import print_kernel
from repro.ir.types import DType


def i32(v):
    return IntLit(v, DType.INT32)


class TestFoldExpr:
    def test_arithmetic(self):
        assert fold_expr(BinOp("+", i32(2), i32(3))) == i32(5)
        assert fold_expr(BinOp("*", i32(6), i32(7))) == i32(42)

    def test_c_truncating_division(self):
        # C truncates toward zero; Python floors — they differ on negatives
        assert fold_expr(BinOp("/", i32(-7), i32(2))) == i32(-3)
        assert fold_expr(BinOp("%", i32(-7), i32(2))) == i32(-1)

    def test_division_by_zero_not_folded(self):
        expr = BinOp("/", i32(1), i32(0))
        assert fold_expr(expr) == expr

    def test_overflow_not_folded(self):
        expr = BinOp("*", i32(2**30), i32(4))
        assert fold_expr(expr) == expr

    def test_int64_widening(self):
        folded = fold_expr(
            BinOp("*", IntLit(2**30, DType.INT64), i32(4))
        )
        assert folded == IntLit(2**32, DType.INT64)

    def test_floats_never_folded(self):
        # bit-exactness: float expressions reach the executor untouched
        expr = BinOp("+", FloatLit(0.1, DType.FLOAT32),
                     FloatLit(0.2, DType.FLOAT32))
        assert fold_expr(expr) == expr

    def test_unary_and_ternary(self):
        assert fold_expr(UnaryOp("-", i32(5))) == i32(-5)
        picked = fold_expr(Ternary(i32(1), i32(10), i32(20)))
        assert picked == i32(10)

    def test_nested_fold(self):
        # (2 + 3) * (10 - 6) folds bottom-up to 20
        expr = BinOp("*", BinOp("+", i32(2), i32(3)),
                     BinOp("-", i32(10), i32(6)))
        assert fold_expr(expr) == i32(20)

    def test_free_variables_block_folding(self):
        expr = BinOp("+", Var("n"), i32(1))
        assert fold_expr(expr) == expr


SRC = """
void k(float *a, int n, float eps) {
    int i;
    for (i = 0; i < n; i++) {
        a[i] = a[i] + eps;
    }
}
"""


class TestSubstituteScalars:
    def test_binds_and_drops_params(self):
        kernel = parse_kernel(SRC)
        bound = substitute_scalars(kernel, {"n": 128, "eps": 0.5})
        names = [p.name for p in bound.params]
        assert "n" not in names and "eps" not in names
        text = print_kernel(bound)
        assert "i < 128" in text and "0.5f" in text

    def test_keep_params(self):
        kernel = parse_kernel(SRC)
        bound = substitute_scalars(kernel, {"n": 64}, drop_params=False)
        assert "n" in [p.name for p in bound.params]

    def test_unknown_binding_rejected(self):
        kernel = parse_kernel(SRC)
        with pytest.raises(KeyError, match="ghost"):
            substitute_scalars(kernel, {"ghost": 1})

    def test_array_binding_rejected(self):
        kernel = parse_kernel(SRC)
        with pytest.raises(ValueError, match="a"):
            substitute_scalars(kernel, {"a": 1})

    def test_fold_kernel_after_substitution(self):
        kernel = parse_kernel(SRC)
        folded = fold_kernel(substitute_scalars(kernel, {"n": 128}))
        loop = next(iter(folded.loops()))
        assert loop.upper == i32(128)
