"""The seeded kernel generator: determinism, canonicality, decidability."""

import numpy as np
import pytest

from repro.difftest.generator import (
    generate_case,
    generate_corpus,
    infer_extents,
    make_inputs,
)
from repro.frontend import parse_module
from repro.ir import print_module
from repro.ir.stmt import For
from repro.ir.types import ArrayType

SEEDS = range(12)


class TestDeterminism:
    def test_same_seed_same_case(self):
        for seed in SEEDS:
            a = generate_case(seed)
            b = generate_case(seed)
            assert a.source == b.source
            assert a.extents == b.extents
            assert a.salt == b.salt

    def test_different_seeds_differ(self):
        sources = {generate_case(seed).source for seed in range(20)}
        assert len(sources) > 15  # collisions would break corpus coverage

    def test_inputs_deterministic(self):
        case = generate_case(3)
        kernel = case.module.kernels[0]
        a = make_inputs(kernel, case.extents[kernel.name], "t")
        b = make_inputs(kernel, case.extents[kernel.name], "t")
        for name in a:
            if isinstance(a[name], np.ndarray):
                assert np.array_equal(a[name], b[name])
            else:
                assert a[name] == b[name]


class TestCanonicality:
    def test_source_is_fixpoint(self):
        for seed in SEEDS:
            case = generate_case(seed)
            assert print_module(parse_module(case.source)) == case.source

    def test_module_prints_to_source(self):
        for seed in SEEDS:
            case = generate_case(seed)
            assert print_module(case.module) == case.source


class TestExtents:
    def test_every_array_has_an_extent(self):
        for seed in SEEDS:
            case = generate_case(seed)
            for kernel in case.module.kernels:
                extents = case.extents[kernel.name]
                for param in kernel.array_params:
                    assert extents[param.name] >= 4

    def test_subscripts_in_bounds_under_execution(self):
        # the strongest check: actually run every kernel sequentially on
        # arrays sized exactly at the inferred extents
        from repro.runtime.executor import execute_kernel

        for seed in SEEDS:
            case = generate_case(seed)
            for kernel in case.module.kernels:
                args = make_inputs(kernel, case.extents[kernel.name], "b")
                execute_kernel(kernel, args, None)  # IndexError = failure

    def test_infer_extents_recomputes(self):
        for seed in SEEDS:
            case = generate_case(seed)
            for kernel in case.module.kernels:
                assert infer_extents(kernel) == case.extents[kernel.name]


class TestInputs:
    def test_dtypes_match_params(self):
        case = generate_case(1)
        kernel = case.module.kernels[0]
        args = make_inputs(kernel, case.extents[kernel.name], "t")
        for param in kernel.params:
            value = args[param.name]
            if isinstance(param.type, ArrayType):
                assert isinstance(value, np.ndarray)
                assert value.dtype.itemsize == param.type.dtype.size_bytes
                assert value.dtype.kind == (
                    "f" if param.type.dtype.is_float else "i"
                )
            else:
                assert not isinstance(value, np.ndarray)

    def test_values_positive_and_bounded(self):
        # the racecheck oracle's fabs-fold assumes nonnegative inputs;
        # integer index arrays instead hold in-bounds subscript values
        for seed in SEEDS:
            case = generate_case(seed)
            for kernel in case.module.kernels:
                args = make_inputs(kernel, case.extents[kernel.name], "p")
                for value in args.values():
                    if not isinstance(value, np.ndarray):
                        continue
                    if value.dtype.kind == "i":
                        assert int(value.min()) >= 0
                        assert int(value.max()) < 4
                    else:
                        assert float(value.min()) >= 0.75
                        assert float(value.max()) < 1.3


class TestShape:
    def test_loops_within_depth_3(self):
        for seed in range(30):
            case = generate_case(seed)
            for kernel in case.module.kernels:
                def depth(stmt, d=0):
                    best = d
                    for child in getattr(stmt, "children_stmts", lambda: [])():
                        best = max(
                            best,
                            depth(child, d + 1 if isinstance(stmt, For) else d),
                        )
                    return best

                assert depth(kernel.body) <= 3

    def test_corpus_helper(self):
        corpus = generate_corpus(range(4))
        assert [case.seed for case in corpus] == [0, 1, 2, 3]


class TestIndirectAndHalo:
    """ISSUE 10 corpus refresh: the generator must emit PIC-style
    scatter deposits through the index array and halo-style offset
    reads, and keep them decidable end to end."""

    def test_corpus_contains_indirect_accesses(self):
        hits = [
            seed for seed in range(50)
            if "cell[" in generate_case(seed).source
        ]
        assert len(hits) >= 5  # a healthy slice of the corpus

    def test_corpus_contains_atomic_scatter_deposit(self):
        import re

        found = False
        for seed in range(50):
            src = generate_case(seed).source
            if re.search(r"atomic update\n\s+\w+\[cell\[", src):
                found = True
                break
        assert found

    def test_corpus_contains_halo_offset(self):
        assert any(
            "[i + 2]" in generate_case(seed).source for seed in range(30)
        )

    def test_index_array_is_read_only_and_int(self):
        from repro.ir.types import ArrayType

        for seed in range(30):
            case = generate_case(seed)
            for kernel in case.module.kernels:
                for param in kernel.params:
                    if param.name != "cell":
                        continue
                    assert isinstance(param.type, ArrayType)
                    assert param.type.dtype.is_integer
                    assert param.intent == "in"

    def test_indirect_extents_stay_in_bounds(self):
        from repro.runtime.executor import execute_kernel

        # the extent floor must absorb any index value in [0, 4)
        for seed in range(50):
            case = generate_case(seed)
            for kernel in case.module.kernels:
                if all(
                    "cell" != p.name for p in kernel.params
                ):
                    continue
                extents = case.extents[kernel.name]
                args = make_inputs(kernel, extents, "ib")
                execute_kernel(kernel, args)  # raises if out of bounds
