"""Property-based tests (hypothesis) on core invariants.

* the printer/parser round trip is lossless for generated kernels,
* unrolling and tiling preserve semantics for arbitrary factors/trip counts,
* the dependence analyzer is *sound*: a loop it calls INDEPENDENT computes
  the same result under parallel-snapshot execution as sequentially,
* affine canonicalization agrees with direct evaluation,
* the performance model obeys basic sanity (non-negative, more work is
  never faster).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.affine import evaluate, linearize
from repro.analysis.dependence import Verdict, analyze_loop
from repro.analysis.patterns import OpCounts
from repro.devices.specs import K40, PHI_5110P
from repro.frontend import parse_expr, parse_kernel
from repro.ir import format_expr, print_kernel
from repro.perf.model import LaunchConfig, WorkProfile, estimate_time
from repro.runtime.executor import ExecMode, LoopSemantics, execute_kernel
from repro.transforms import tile_in_kernel, unroll_in_kernel

# --------------------------------------------------------------------------
# generated mini-C expressions over a fixed symbol universe
# --------------------------------------------------------------------------

_VARS = st.sampled_from(["i", "j", "n", "t", "size"])
_INTS = st.integers(min_value=0, max_value=64)


def _exprs(depth=3):
    base = st.one_of(_VARS, _INTS.map(str))
    if depth == 0:
        return base
    sub = _exprs(depth - 1)
    return st.one_of(
        base,
        st.tuples(sub, st.sampled_from(["+", "-", "*"]), sub).map(
            lambda t: f"({t[0]} {t[1]} {t[2]})"
        ),
    )


class TestExpressionRoundTrip:
    @given(_exprs())
    @settings(max_examples=200, deadline=None)
    def test_parse_print_parse(self, text):
        expr = parse_expr(text)
        assert parse_expr(format_expr(expr)) == expr

    @given(_exprs())
    @settings(max_examples=200, deadline=None)
    def test_linearize_agrees_with_evaluation(self, text):
        expr = parse_expr(text)
        form = linearize(expr)
        assert form is not None  # +,-,* over ints/vars is always polynomial
        env = {"i": 3, "j": 5, "n": 7, "t": 2, "size": 11}
        # direct evaluation via Python eval of the C-like text
        direct = eval(text, {}, env)  # noqa: S307 - generated input
        assert evaluate(form, env) == direct


# --------------------------------------------------------------------------
# generated elementwise kernels with affine accesses
# --------------------------------------------------------------------------

_BODY_TEMPLATES = [
    "a[i] = b[i] * 2.0f + 1.0f;",
    "a[i] = a[i] + b[i];",
    "a[i] = b[i] + b[i];",
    "a[i + 1] = b[i];",
    "a[2 * i] = b[i] * b[i];",
]


def _kernel_for(body):
    return parse_kernel(
        "void f(float *a, const float *b, int n) { int i; "
        f"for (i = 0; i < n; i++) {{ {body} }} }}"
    )


class TestTransformSemantics:
    @given(
        body=st.sampled_from(_BODY_TEMPLATES),
        n=st.integers(min_value=0, max_value=23),
        factor=st.integers(min_value=2, max_value=9),
    )
    @settings(max_examples=120, deadline=None)
    def test_unroll_preserves_semantics(self, body, n, factor):
        k = _kernel_for(body)
        unrolled = unroll_in_kernel(k, k.loops()[0].loop_id, factor)
        size = 2 * max(n, 1) + 2
        b = np.arange(size, dtype=np.float64)
        a1 = np.zeros(size)
        a2 = np.zeros(size)
        execute_kernel(k, {"a": a1, "b": b.copy(), "n": n})
        execute_kernel(unrolled, {"a": a2, "b": b.copy(), "n": n})
        assert np.allclose(a1, a2)

    @given(
        body=st.sampled_from(_BODY_TEMPLATES),
        n=st.integers(min_value=0, max_value=23),
        tile=st.integers(min_value=2, max_value=9),
    )
    @settings(max_examples=120, deadline=None)
    def test_tile_preserves_semantics(self, body, n, tile):
        k = _kernel_for(body)
        tiled = tile_in_kernel(k, k.loops()[0].loop_id, tile)
        size = 2 * max(n, 1) + 2
        b = np.arange(size, dtype=np.float64)
        a1 = np.zeros(size)
        a2 = np.zeros(size)
        execute_kernel(k, {"a": a1, "b": b.copy(), "n": n})
        execute_kernel(tiled, {"a": a2, "b": b.copy(), "n": n})
        assert np.allclose(a1, a2)


# --------------------------------------------------------------------------
# dependence-analysis soundness
# --------------------------------------------------------------------------

_SOUNDNESS_BODIES = [
    "a[i] = a[i] + 1.0f;",
    "a[i] = a[i - 1] + 1.0f;",
    "a[i] = a[i + 1] + 1.0f;",
    "a[i] = b[i];",
    "a[i + 2] = a[i] * 2.0f;",
    "a[0] = a[i];",
    "a[2 * i] = a[i];",
]


class TestDependenceSoundness:
    @given(
        body=st.sampled_from(_SOUNDNESS_BODIES),
        n=st.integers(min_value=2, max_value=16),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=150, deadline=None)
    def test_independent_verdict_is_safe(self, body, n, seed):
        """If the analyzer says INDEPENDENT, parallel-snapshot execution
        must equal sequential execution — the analyzer may be conservative
        but never unsound."""
        k = parse_kernel(
            "void f(float *a, const float *b, int n) { int i; "
            f"for (i = 1; i < n; i++) {{ {body} }} }}"
        )
        loop = k.loops()[0]
        if analyze_loop(loop).verdict is not Verdict.INDEPENDENT:
            return
        rng = np.random.default_rng(seed)
        size = 2 * n + 4
        base = rng.random(size)
        b = rng.random(size)
        seq = base.copy()
        par = base.copy()
        execute_kernel(k, {"a": seq, "b": b.copy(), "n": n})
        execute_kernel(
            k, {"a": par, "b": b.copy(), "n": n},
            {loop.loop_id: LoopSemantics(ExecMode.PARALLEL_SNAPSHOT)},
        )
        assert np.allclose(seq, par)


# --------------------------------------------------------------------------
# kernel round trip through the printer
# --------------------------------------------------------------------------

class TestKernelRoundTrip:
    @given(
        body=st.sampled_from(_BODY_TEMPLATES + _SOUNDNESS_BODIES),
        lower=st.integers(min_value=0, max_value=4),
        step=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=150, deadline=None)
    def test_print_parse_fixpoint(self, body, lower, step):
        incr = "i++" if step == 1 else f"i += {step}"
        k = parse_kernel(
            "void f(float *a, const float *b, int n) { int i; "
            f"for (i = {lower}; i < n; {incr}) {{ {body} }} }}"
        )
        once = print_kernel(k)
        assert print_kernel(parse_kernel(once)) == once


# --------------------------------------------------------------------------
# performance-model sanity
# --------------------------------------------------------------------------

class TestModelProperties:
    @given(
        items=st.integers(min_value=0, max_value=1 << 22),
        flops=st.integers(min_value=0, max_value=64),
        loads=st.integers(min_value=0, max_value=16),
        gang=st.sampled_from([1, 8, 64, 256, 1024]),
        worker=st.sampled_from([1, 8, 32, 128]),
        coal=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_times_finite_and_nonnegative(self, items, flops, loads, gang,
                                          worker, coal):
        profile = WorkProfile(
            items=items,
            ops=OpCounts(flops_add=flops, loads=loads),
            bytes_per_item=loads * 4,
            coalesced_fraction=coal,
        )
        for spec in (K40, PHI_5110P):
            for config in (LaunchConfig(sequential=True),
                           LaunchConfig(grid=(gang, 1, 1),
                                        block=(worker, 1, 1))):
                breakdown = estimate_time(spec, config, profile)
                assert breakdown.compute_s >= 0
                assert breakdown.memory_s >= 0
                assert np.isfinite(breakdown.total_s)

    @given(
        items=st.integers(min_value=1, max_value=1 << 20),
        scale=st.integers(min_value=2, max_value=8),
    )
    @settings(max_examples=100, deadline=None)
    def test_more_items_never_meaningfully_faster(self, items, scale):
        """More items may be *slightly* faster per launch in the
        unsaturated regime (extra resident threads hide latency better),
        but never by more than the latency-hiding headroom."""
        ops = OpCounts(flops_add=8, loads=2, stores=1)
        small = WorkProfile(items=items, ops=ops, bytes_per_item=12)
        large = WorkProfile(items=items * scale, ops=ops, bytes_per_item=12)
        config = LaunchConfig(grid=(64, 1, 1), block=(128, 1, 1))
        assert (estimate_time(K40, config, large).total_s
                >= estimate_time(K40, config, small).total_s * 0.85)

    @given(
        items=st.integers(min_value=1, max_value=1 << 20),
        scale=st.integers(min_value=2, max_value=8),
    )
    @settings(max_examples=100, deadline=None)
    def test_more_items_never_faster_when_saturated(self, items, scale):
        """Once the device is saturated the scaling is strictly monotone."""
        ops = OpCounts(flops_add=8, loads=2, stores=1)
        base = 1 << 16
        small = WorkProfile(items=base + items, ops=ops, bytes_per_item=12)
        large = WorkProfile(items=(base + items) * scale, ops=ops,
                            bytes_per_item=12)
        config = LaunchConfig(grid=(64, 1, 1), block=(128, 1, 1))
        assert (estimate_time(K40, config, large).total_s
                >= estimate_time(K40, config, small).total_s * 0.999)


# --------------------------------------------------------------------------
# the fixed difftest corpus: 50 seeds pinned as a standing correctness gate
# --------------------------------------------------------------------------

import pytest

from repro.difftest import generate_case, run_difftest
from repro.frontend import parse_module
from repro.ir import print_module

#: the fixed corpus of ISSUE 2's acceptance criterion.  Seeds are pinned:
#: any change to the generator that alters these cases is a breaking
#: change to the corpus and must be called out in review.
CORPUS_SEEDS = tuple(range(50))
_FAST_SEEDS = CORPUS_SEEDS[:12]


def _assert_corpus_properties(seeds):
    report = run_difftest(seeds)
    assert report.unexplained == [], [
        d for c in report.unexplained for d in c.unexplained_details()
    ]
    for case in report.cases:
        # round trip: parse -> print -> re-parse is the identity
        assert print_module(parse_module(case.source)) == case.source
        for pair in case.pairs:
            for diff in pair.kernels:
                # racecheck agreement: a divergence is observed iff the
                # oracle predicted it (no false positives or negatives)
                assert diff.prediction is not None
                assert diff.prediction.supported, diff.prediction.detail
                observed = bool(diff.mismatched)
                assert observed == diff.prediction.wrong_answer, (
                    case.tag, pair.compiler, pair.target, diff.kernel)


class TestDifftestCorpus:
    def test_fast_subset_agrees(self):
        _assert_corpus_properties(_FAST_SEEDS)

    @pytest.mark.slow
    def test_full_corpus_agrees(self):
        _assert_corpus_properties(CORPUS_SEEDS)

    def test_corpus_sources_are_pinned(self):
        # a cheap canary for accidental generator drift: the corpus is
        # deterministic, so the first case's shape is stable
        case = generate_case(CORPUS_SEEDS[0])
        assert case.module.name == "fuzz00000"
        assert case.source == generate_case(CORPUS_SEEDS[0]).source
