"""Executor memo-cache contracts: single-flight compile race, LRU
eviction, and the persistent plan tier (docs/EXECUTOR.md).

The race and eviction tests are behavioral: they count actual codegen
invocations through a monkeypatched ``_make_codegen`` rather than
peeking at ``_fn_cache`` keys, so a cache re-implementation keeps them
green as long as the contract holds.
"""

import json
import threading
import time

import numpy as np
import pytest

from repro.frontend import parse_kernel
from repro.runtime import executor
from repro.runtime.executor import (
    PLAN_SCHEMA,
    clear_kernel_cache,
    compile_kernel_fn,
    configure_plan_cache,
    execute_kernel,
    plan_cache_dir,
)
from repro.telemetry import get_registry, reset_registry
from repro.telemetry.spans import configure_tracer, reset_tracer


def _kernel(scale: float = 2.0):
    """A vectorizable one-loop kernel; *scale* varies the fingerprint."""
    return parse_kernel(
        "void f(float *a, const float *b, int n) { int i; "
        f"for (i = 0; i < n; i++) a[i] = b[i] * {scale}f + 1.0f; }}"
    )


@pytest.fixture(autouse=True)
def _clean_state():
    clear_kernel_cache()
    configure_plan_cache(None)
    reset_registry()
    reset_tracer()
    yield
    clear_kernel_cache()
    configure_plan_cache(None)
    reset_registry()
    reset_tracer()


def _counting_codegen(monkeypatch, delay: float = 0.0):
    """Route ``_make_codegen`` through a call counter (optionally slow,
    to widen race windows)."""
    calls: list[tuple] = []
    real = executor._make_codegen

    def counting(kernel, semantics, backend):
        if delay:
            time.sleep(delay)
        calls.append((kernel.name, backend))
        return real(kernel, semantics, backend)

    monkeypatch.setattr(executor, "_make_codegen", counting)
    return calls


class TestCompileRace:
    def test_sixteen_racing_threads_compile_once(self, monkeypatch):
        """16 threads on a cold key: exactly one compile, counters exact
        (1 vectorized bump, 15 cache hits) — the fallback histogram the
        tentpole reports depends on these not being inflated."""
        calls = _counting_codegen(monkeypatch, delay=0.02)
        kernel = _kernel()
        n = 16
        barrier = threading.Barrier(n)
        results: list = [None] * n
        errors: list = []

        def racer(i: int) -> None:
            try:
                barrier.wait()
                results[i] = compile_kernel_fn(kernel, None, "vector")
            except BaseException as exc:  # pragma: no cover - fail loud
                errors.append(exc)

        threads = [threading.Thread(target=racer, args=(i,))
                   for i in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert not errors
        assert len(calls) == 1, f"duplicate compiles: {calls}"
        first = results[0]
        assert first is not None
        assert all(r is first for r in results)
        counters = get_registry().snapshot()["counters"]
        assert counters["executor.cache_hit"] == n - 1
        assert counters["executor.vectorized"] == 1
        assert counters.get("executor.fallback", 0) == 0

    def test_leader_failure_propagates_then_allows_retry(self, monkeypatch):
        kernel = _kernel()

        boom = RuntimeError("codegen exploded")
        real = executor._make_codegen
        attempts = []

        def failing_once(k, semantics, backend):
            attempts.append(backend)
            if len(attempts) == 1:
                raise boom
            return real(k, semantics, backend)

        monkeypatch.setattr(executor, "_make_codegen", failing_once)
        with pytest.raises(RuntimeError, match="codegen exploded"):
            compile_kernel_fn(kernel, None, "vector")
        # the failed latch must not wedge the key: the next call compiles
        fn, _ = compile_kernel_fn(kernel, None, "vector")
        assert callable(fn)
        assert len(attempts) == 2


class TestLRUEviction:
    def test_hot_key_survives_cap_overflow(self, monkeypatch):
        """A repeatedly-hit kernel must not be evicted by one-shot
        kernels filling the cache (FIFO would evict it first)."""
        monkeypatch.setattr(executor, "_CACHE_CAP", 4)
        hot = _kernel(2.0)
        compile_kernel_fn(hot, None, "vector")
        fillers = [_kernel(3.0 + i) for i in range(3)]
        for f in fillers:
            compile_kernel_fn(f, None, "vector")
        compile_kernel_fn(hot, None, "vector")  # hit: moves to LRU back
        compile_kernel_fn(_kernel(99.0), None, "vector")  # evicts oldest

        calls = _counting_codegen(monkeypatch)
        compile_kernel_fn(hot, None, "vector")
        assert calls == [], "hot kernel was evicted despite recent use"
        # the least-recently-used filler (first one) was the victim
        compile_kernel_fn(fillers[0], None, "vector")
        assert len(calls) == 1

    def test_cap_bounds_cache_size(self, monkeypatch):
        monkeypatch.setattr(executor, "_CACHE_CAP", 3)
        for i in range(6):
            compile_kernel_fn(_kernel(2.0 + i), None, "scalar")
        assert len(executor._fn_cache) <= 3


class TestPersistentPlans:
    def test_store_then_warm_load_skips_codegen(self, tmp_path, monkeypatch):
        configure_plan_cache(tmp_path / "plans")
        kernel = _kernel()
        compile_kernel_fn(kernel, None, "vector")
        counters = get_registry().snapshot()["counters"]
        assert counters["executor.plan_disk_store"] == 1
        assert len(list(plan_cache_dir().glob("*.json"))) == 1

        # warm process: memory gone, disk tier intact
        clear_kernel_cache(memory_only=True)
        reset_registry()
        tracer = configure_tracer(enabled=True)
        calls = _counting_codegen(monkeypatch)
        fn, source = compile_kernel_fn(kernel, None, "vector")
        assert calls == [], "warm load ran codegen"
        assert tracer.spans_named("execute.vectorize") == []
        counters = get_registry().snapshot()["counters"]
        assert counters["executor.plan_disk_hit"] == 1
        assert counters.get("executor.vectorized", 0) == 0

        # and the re-entered plan still executes bit-identically
        b = np.arange(8, dtype=np.float64)
        a_vec, a_ref = np.zeros(8), np.zeros(8)
        execute_kernel(kernel, {"a": a_vec, "b": b, "n": 8},
                       backend="vector")
        execute_kernel(kernel, {"a": a_ref, "b": b, "n": 8},
                       backend="scalar")
        assert a_vec.tobytes() == a_ref.tobytes()

    def test_version_stamp_mismatch_is_unloadable(self, tmp_path,
                                                  monkeypatch):
        """A plan persisted by a different codegen version must be
        ignored and recompiled, never executed."""
        configure_plan_cache(tmp_path / "plans")
        kernel = _kernel()
        compile_kernel_fn(kernel, None, "vector")
        path, = plan_cache_dir().glob("*.json")
        payload = json.loads(path.read_text())
        assert payload["schema"] == PLAN_SCHEMA
        payload["schema"] = "exec-plan-v0"
        payload["source"] = "raise AssertionError('stale plan executed')"
        path.write_text(json.dumps(payload))

        clear_kernel_cache(memory_only=True)
        reset_registry()
        calls = _counting_codegen(monkeypatch)
        fn, _ = compile_kernel_fn(kernel, None, "vector")
        assert len(calls) == 1, "stale plan was loaded instead of recompiled"
        counters = get_registry().snapshot()["counters"]
        assert counters.get("executor.plan_disk_hit", 0) == 0
        assert counters["executor.vectorized"] == 1
        # the stale file was dropped and replaced by a fresh plan
        fresh = json.loads(path.read_text())
        assert fresh["schema"] == PLAN_SCHEMA

    def test_corrupt_plan_is_a_miss(self, tmp_path, monkeypatch):
        configure_plan_cache(tmp_path / "plans")
        kernel = _kernel()
        compile_kernel_fn(kernel, None, "vector")
        path, = plan_cache_dir().glob("*.json")
        path.write_text("{not json")
        clear_kernel_cache(memory_only=True)
        calls = _counting_codegen(monkeypatch)
        compile_kernel_fn(kernel, None, "vector")
        assert len(calls) == 1

    def test_clear_kernel_cache_wipes_disk_tier(self, tmp_path):
        configure_plan_cache(tmp_path / "plans")
        compile_kernel_fn(_kernel(), None, "vector")
        assert list(plan_cache_dir().glob("*.json"))
        clear_kernel_cache()
        assert list(plan_cache_dir().glob("*.json")) == []

    def test_memory_only_clear_keeps_disk(self, tmp_path):
        configure_plan_cache(tmp_path / "plans")
        compile_kernel_fn(_kernel(), None, "vector")
        clear_kernel_cache(memory_only=True)
        assert list(plan_cache_dir().glob("*.json"))

    def test_plans_keyed_per_backend(self, tmp_path):
        configure_plan_cache(tmp_path / "plans")
        kernel = _kernel()
        compile_kernel_fn(kernel, None, "scalar")
        compile_kernel_fn(kernel, None, "vector")
        assert len(list(plan_cache_dir().glob("*.json"))) == 2

    def test_unconfigured_tier_is_inert(self):
        assert plan_cache_dir() is None
        compile_kernel_fn(_kernel(), None, "vector")
        counters = get_registry().snapshot()["counters"]
        assert "executor.plan_disk_store" not in counters

    def test_bad_plan_dir_is_one_clear_error(self, tmp_path):
        from repro.service import CacheDirError

        blocker = tmp_path / "file"
        blocker.write_text("")
        with pytest.raises(CacheDirError):
            configure_plan_cache(blocker / "plans")
