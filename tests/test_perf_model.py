"""Tests for the analytical performance model."""

import pytest

from repro.analysis.patterns import OpCounts
from repro.devices.specs import E5_2670, K40, PHI_5110P
from repro.perf.model import LaunchConfig, WorkProfile, estimate_time


def profile(items=1 << 20, flops=4, loads=2, stores=1, coal=1.0, ws=0.0,
            vec=None):
    return WorkProfile(
        items=items,
        ops=OpCounts(flops_add=flops, loads=loads, stores=stores),
        bytes_per_item=(loads + stores) * 4,
        coalesced_fraction=coal,
        working_set_bytes=ws,
        vectorizable_fraction=vec,
    )


SEQ = LaunchConfig(sequential=True)


def par(gang=256, worker=128):
    return LaunchConfig(grid=(gang, 1, 1), block=(worker, 1, 1))


class TestGpu:
    def test_parallel_beats_serial(self):
        p = profile()
        serial = estimate_time(K40, SEQ, p).total_s
        parallel = estimate_time(K40, par(), p).total_s
        assert serial / parallel > 100

    def test_more_threads_never_slower_compute_bound(self):
        p = profile(flops=64, loads=0, stores=0)
        times = [
            estimate_time(K40, par(g, 128), p).total_s
            for g in (1, 4, 16, 64, 256)
        ]
        assert all(a >= b * 0.999 for a, b in zip(times, times[1:]))

    def test_uncoalesced_slower(self):
        fast = estimate_time(K40, par(), profile(coal=1.0)).total_s
        slow = estimate_time(K40, par(), profile(coal=0.0)).total_s
        assert slow > fast

    def test_partial_warp_penalty(self):
        p = profile(flops=64, loads=0, stores=0)
        full = estimate_time(K40, par(256, 32), p).total_s
        lone = estimate_time(K40, par(256, 1), p).total_s
        assert lone > full

    def test_cache_pressure(self):
        small = estimate_time(K40, par(), profile(ws=1 << 18)).total_s
        large = estimate_time(K40, par(), profile(ws=1 << 30)).total_s
        assert large > small

    def test_idle_threads_are_free(self):
        p = profile(items=100)
        few = estimate_time(K40, par(4, 32), p).total_s
        many = estimate_time(K40, par(1024, 256), p).total_s
        assert many <= few * 1.01

    def test_zero_items(self):
        b = estimate_time(K40, par(), profile(items=0))
        assert b.compute_s == 0 and b.memory_s == 0

    def test_limiter_labels(self):
        mem = estimate_time(K40, par(), profile(loads=64, flops=0))
        cpu = estimate_time(K40, par(), profile(loads=0, flops=512))
        assert mem.limiter == "memory" and cpu.limiter == "compute"


class TestMic:
    def test_serial_faster_than_gpu_serial(self):
        p = profile(flops=16)
        gpu = estimate_time(K40, SEQ, p).total_s
        mic = estimate_time(PHI_5110P, SEQ, p).total_s
        assert mic < gpu

    def test_worker_one_best_for_gang_mode(self):
        p = profile(vec=0.0)
        t1 = estimate_time(PHI_5110P, par(240, 1), p).total_s
        t128 = estimate_time(PHI_5110P, par(240, 128), p).total_s
        assert t1 < t128

    def test_vectorization_helps(self):
        p_vec = profile(flops=64, loads=0, stores=0, vec=1.0)
        p_scalar = profile(flops=64, loads=0, stores=0, vec=0.0)
        fast = estimate_time(PHI_5110P, par(240, 4), p_vec).total_s
        slow = estimate_time(PHI_5110P, par(240, 4), p_scalar).total_s
        assert slow / fast > 3

    def test_scalarized_item_overhead(self):
        # scalarized fine-grained items pay the KNC dispatch cliff
        fine = profile(items=1 << 20, flops=4, loads=0, stores=0, vec=0.0)
        t = estimate_time(PHI_5110P, par(240, 4), fine)
        vec = profile(items=1 << 20, flops=4, loads=0, stores=0, vec=1.0)
        tv = estimate_time(PHI_5110P, par(240, 4), vec)
        assert t.compute_s / tv.compute_s > 20

    def test_gather_kills_vectorization(self):
        indirect = profile(flops=32, coal=0.2, vec=1.0)
        direct = profile(flops=32, coal=1.0, vec=1.0)
        t_ind = estimate_time(PHI_5110P, par(240, 4), indirect)
        t_dir = estimate_time(PHI_5110P, par(240, 4), direct)
        assert t_ind.compute_s > t_dir.compute_s


class TestCpu:
    def test_cpu_serial_fastest_serial(self):
        p = profile(flops=16)
        cpu = estimate_time(E5_2670, SEQ, p).total_s
        mic = estimate_time(PHI_5110P, SEQ, p).total_s
        gpu = estimate_time(K40, SEQ, p).total_s
        assert cpu < mic < gpu


class TestValidation:
    def test_negative_items(self):
        with pytest.raises(ValueError):
            estimate_time(K40, SEQ, profile(items=-1))

    def test_bad_coalescing(self):
        with pytest.raises(ValueError):
            estimate_time(K40, SEQ, profile(coal=1.5))

    def test_launch_config_helpers(self):
        cfg = LaunchConfig(grid=(4, 2, 1), block=(32, 4, 1))
        assert cfg.num_blocks == 8
        assert cfg.block_threads == 128
        assert cfg.total_threads == 1024
        assert "grid" in cfg.describe()
        assert LaunchConfig(sequential=True).total_threads == 1
