"""Tests for repro.ir.expr."""

import pytest

from repro.ir.expr import (
    ArrayRef,
    BinOp,
    Call,
    Cast,
    FloatLit,
    IntLit,
    Ternary,
    UnaryOp,
    Var,
    add,
    arrays_referenced,
    as_expr,
    const,
    div,
    free_vars,
    idx,
    mul,
    sub,
    substitute,
)
from repro.ir.types import DType


class TestConstructors:
    def test_const_int(self):
        lit = const(5)
        assert isinstance(lit, IntLit) and lit.value == 5

    def test_const_float(self):
        lit = const(2.5)
        assert isinstance(lit, FloatLit) and lit.value == 2.5

    def test_const_bool(self):
        lit = const(True)
        assert lit.dtype is DType.BOOL

    def test_as_expr_string_is_var(self):
        assert as_expr("n") == Var("n")

    def test_as_expr_passthrough(self):
        v = Var("x")
        assert as_expr(v) is v

    def test_helpers(self):
        expr = add(mul("a", 2), sub(div("b", "c"), 1))
        assert isinstance(expr, BinOp) and expr.op == "+"

    def test_idx(self):
        ref = idx("a", "i", 3)
        assert ref == ArrayRef("a", (Var("i"), IntLit(3)))

    def test_bad_binop(self):
        with pytest.raises(ValueError):
            BinOp("**", Var("a"), Var("b"))

    def test_bad_unary(self):
        with pytest.raises(ValueError):
            UnaryOp("?", Var("a"))

    def test_bad_intrinsic(self):
        with pytest.raises(ValueError):
            Call("tan", (Var("x"),))


class TestWalk:
    def test_walk_yields_all_nodes(self):
        expr = add(mul("a", "b"), idx("c", "i"))
        nodes = list(expr.walk())
        assert len(nodes) == 6  # +, *, a, b, c[i], i

    def test_walk_ternary(self):
        expr = Ternary(Var("p"), Var("a"), Var("b"))
        assert len(list(expr.walk())) == 4


class TestFreeVars:
    def test_scalars_only(self):
        expr = add(mul("a", "b"), idx("arr", "i"))
        assert free_vars(expr) == {"a", "b", "i"}

    def test_arrays_referenced(self):
        expr = add(idx("x", "i"), idx("y", add("i", 1)))
        assert arrays_referenced(expr) == {"x", "y"}

    def test_nested_array_index(self):
        expr = idx("cost", idx("edges", "e"))
        assert arrays_referenced(expr) == {"cost", "edges"}
        assert free_vars(expr) == {"e"}


class TestSubstitute:
    def test_simple_var(self):
        expr = add("i", 1)
        out = substitute(expr, {"i": const(5)})
        assert out == add(5, 1)

    def test_inside_array_index(self):
        expr = idx("a", add("i", 2))
        out = substitute(expr, {"i": Var("j")})
        assert out == idx("a", add("j", 2))

    def test_array_names_not_substituted(self):
        expr = idx("i", Var("i"))  # array named like the variable
        out = substitute(expr, {"i": Var("j")})
        assert isinstance(out, ArrayRef) and out.name == "i"
        assert out.indices[0] == Var("j")

    def test_in_call_and_ternary(self):
        expr = Ternary(BinOp("<", Var("i"), Var("n")),
                       Call("sqrt", (Var("i"),)), const(0))
        out = substitute(expr, {"i": const(4)})
        assert free_vars(out) == {"n"}

    def test_in_cast(self):
        expr = Cast(DType.FLOAT32, Var("i"))
        out = substitute(expr, {"i": const(3)})
        assert out == Cast(DType.FLOAT32, const(3))

    def test_untouched_vars_shared(self):
        expr = add("i", "j")
        out = substitute(expr, {"k": const(0)})
        assert out == expr


class TestImmutability:
    def test_frozen(self):
        expr = Var("x")
        with pytest.raises(AttributeError):
            expr.name = "y"  # type: ignore[misc]

    def test_hashable(self):
        assert len({Var("a"), Var("a"), Var("b")}) == 2

    def test_structural_equality(self):
        assert add(mul("a", 2), "b") == add(mul("a", 2), "b")
