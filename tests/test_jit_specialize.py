"""The ``jit-specialize`` pass, ``specialize()``, and the ``@repro.jit``
decorator — including the telemetry contract CI smokes: a warm call has
no parse or pass spans (ISSUE 8 tentpole)."""

import numpy as np
import pytest

from repro.frontend import parse_kernel
from repro.ir.directives import AccLoop, HmppUnroll
from repro.jit import SpecializationCache, SpecializationPlan, jit, specialize
from repro.passes.library.jit_specialize import (
    constant_trip_count,
    specialize_kernel,
)
from repro.service import CompileService
from repro.telemetry import configure_tracer, get_tracer, reset_tracer

SAXPY = """
void saxpy(float* y, const float* x, float a, int n) {
  #pragma acc parallel
  #pragma acc loop independent
  for (i = 0; i < $n; i++) {
    y[i] = a * x[i] + y[i];
  }
}
"""


def bound_kernel(n=128):
    return parse_kernel(SAXPY, bindings={"n": n})


NEST = """
void scale2d(float* a, const float* b, int rows, int cols) {
  for (i = 0; i < $rows; i++) {
    for (j = 0; j < $cols; j++) {
      a[i * cols + j] = b[i * cols + j] * 2.0f;
    }
  }
}
"""


class TestSpecializeKernel:
    def test_trip_count(self):
        loop = next(iter(bound_kernel(100).loops()))
        assert constant_trip_count(loop) == 100

    def test_trip_count_unknown_bounds(self):
        src = "void k(float* a, int n) { for (i = 0; i < n; i++) { a[i] = 0.0f; } }"
        loop = next(iter(parse_kernel(src).loops()))
        assert constant_trip_count(loop) is None

    def test_unroll_attached_when_divisible(self):
        out = specialize_kernel(bound_kernel(128), unroll=4)
        loop = next(iter(out.loops()))
        directive = loop.directives.first(HmppUnroll)
        assert directive is not None and directive.factor == 4

    def test_unroll_gated_on_divisibility(self):
        out = specialize_kernel(bound_kernel(102), unroll=4)  # 102 % 4 != 0
        loop = next(iter(out.loops()))
        assert loop.directives.first(HmppUnroll) is None

    def test_unroll_skips_tiny_trips(self):
        out = specialize_kernel(bound_kernel(2), unroll=4)
        loop = next(iter(out.loops()))
        assert loop.directives.first(HmppUnroll) is None

    def test_tile_attached_on_divisible_nest(self):
        kernel = parse_kernel(NEST, bindings={"rows": 64, "cols": 128})
        out = specialize_kernel(kernel, tile=(32, 4))
        outer = next(iter(out.loops()))
        acc = outer.directives.first(AccLoop)
        assert acc is not None and acc.tile == (32, 4)

    def test_tile_gated_on_divisibility(self):
        kernel = parse_kernel(NEST, bindings={"rows": 100, "cols": 37})
        out = specialize_kernel(kernel, tile=(32, 4))
        outer = next(iter(out.loops()))
        acc = outer.directives.first(AccLoop)
        assert acc is None or acc.tile is None

    def test_independent_marked(self):
        src = "void k(float* a, int n) { for (i = 0; i < $n; i++) { a[i] = 1.0f; } }"
        out = specialize_kernel(parse_kernel(src, bindings={"n": 16}))
        loop = next(iter(out.loops()))
        acc = loop.directives.first(AccLoop)
        assert acc is not None and acc.independent


class TestSpecializeFunction:
    def test_caps_performs_the_unroll(self):
        spec = specialize(SAXPY, {"n": 128}, cache=SpecializationCache(),
                          service=CompileService())
        assert spec.plan.unroll == 4  # aligned class
        kernel = spec.kernel()
        # CAPS consumed the hmppcg unroll: the loop body now holds the
        # four replicated statements
        from repro.ir.printer import print_kernel

        text = print_kernel(kernel.ir)
        assert text.count("y[") >= 4
        assert kernel.distribution.strategy.value == "gridify 1D"

    def test_plan_override(self):
        spec = specialize(
            SAXPY, {"n": 128}, cache=SpecializationCache(),
            service=CompileService(),
            plan=SpecializationPlan(unroll=None, mark_independent=True),
        )
        assert spec.plan.unroll is None

    def test_label_names_template_and_class(self):
        spec = specialize(SAXPY, {"n": 128}, cache=SpecializationCache(),
                          service=CompileService())
        assert spec.module_name.startswith("saxpy__")
        assert spec.shape_class.describe() == "n=aligned"


class TestDecorator:
    def _make(self, **kwargs):
        @jit(cache=SpecializationCache(), service=CompileService(), **kwargs)
        def saxpy(**args):
            """
            void saxpy(float* y, const float* x, float a, int n) {
              #pragma acc parallel
              #pragma acc loop independent
              for (i = 0; i < $n; i++) {
                y[i] = a * x[i] + y[i];
              }
            }
            """

        return saxpy

    def test_executes_in_place(self):
        saxpy = self._make()
        y = np.ones(128, dtype=np.float32)
        x = np.arange(128, dtype=np.float32)
        saxpy(y=y, x=x, a=np.float32(2.0), n=128)
        np.testing.assert_allclose(y, 1.0 + 2.0 * np.arange(128))

    def test_warm_call_is_cache_hit(self):
        saxpy = self._make()
        y = np.zeros(64, dtype=np.float32)
        x = np.zeros(64, dtype=np.float32)
        first = saxpy(y=y, x=x, a=np.float32(1.0), n=64)
        second = saxpy(y=y, x=x, a=np.float32(1.0), n=64)
        assert second is first
        assert saxpy.cache.stats()["exact_hits"] >= 1

    def test_missing_argument_named(self):
        saxpy = self._make()
        with pytest.raises(TypeError, match="missing"):
            saxpy(y=np.zeros(8, dtype=np.float32), n=8)

    def test_docstring_required(self):
        from repro.jit import TemplateError

        with pytest.raises(TemplateError, match="docstring"):

            @jit
            def nodoc(**args):
                pass


class TestWarmSpanContract:
    """The CI ``jit-smoke`` invariant: a warm call records no
    ``frontend.parse`` and no pass spans — it is provably compile-free."""

    def teardown_method(self):
        reset_tracer()

    def test_cold_then_warm_span_sets(self):
        saxpy = TestDecorator()._make()
        y = np.zeros(96, dtype=np.float32)
        x = np.zeros(96, dtype=np.float32)

        configure_tracer(enabled=True)
        tracer = get_tracer()
        saxpy(y=y, x=x, a=np.float32(1.0), n=96)
        cold_names = {s.name for s in tracer.spans()}
        assert "jit.call" in cold_names
        assert "jit.specialize" in cold_names
        assert "frontend.parse" in cold_names

        tracer.clear()
        saxpy(y=y, x=x, a=np.float32(1.0), n=96)
        warm = tracer.spans()
        warm_names = {s.name for s in warm}
        assert warm_names == {"jit.cache", "jit.call"}
        call = next(s for s in warm if s.name == "jit.call")
        assert call.attributes["phase"] == "warm"
        assert not any(s.category == "pass" for s in warm)
