"""Tests for the auto-tuner (future-work counterpart of the hand method)."""

import pytest

from repro.core.autotune import (
    TuneResult,
    exhaustive_tune,
    hill_climb_tune,
    make_lud_evaluator,
    portable_tune,
)
from repro.devices import K40, PHI_5110P
from repro.kernels import get_benchmark


def quadratic_objective(opt_gang=128, opt_worker=16):
    """A synthetic convex-ish objective with a known optimum."""
    import math

    def evaluate(gang, worker):
        return (math.log2(max(gang, 1) / opt_gang) ** 2
                + math.log2(max(worker, 1) / opt_worker) ** 2 + 1.0)

    return evaluate


class TestExhaustive:
    def test_finds_grid_optimum(self):
        result = exhaustive_tune(
            quadratic_objective(), gangs=(32, 64, 128, 256),
            workers=(4, 8, 16, 32),
        )
        assert (result.gang, result.worker) == (128, 16)
        assert result.evaluations == 16
        assert len(result.history) == 16

    def test_best_matches_history_minimum(self):
        result = exhaustive_tune(
            quadratic_objective(), gangs=(1, 64), workers=(1, 16),
        )
        assert result.seconds == min(h[2] for h in result.history)


class TestHillClimb:
    def test_converges_to_optimum_from_nearby(self):
        result = hill_climb_tune(quadratic_objective(), seed=(64, 8))
        assert (result.gang, result.worker) == (128, 16)

    def test_cheaper_than_exhaustive(self):
        climb = hill_climb_tune(quadratic_objective(), seed=(64, 8))
        grid = exhaustive_tune(quadratic_objective())
        assert climb.evaluations < grid.evaluations

    def test_never_repeats_a_configuration(self):
        result = hill_climb_tune(quadratic_objective(), seed=(32, 4))
        seen = [h[:2] for h in result.history]
        assert len(seen) == len(set(seen))

    def test_respects_bounds(self):
        result = hill_climb_tune(
            quadratic_objective(opt_gang=1 << 20), seed=(512, 16),
            max_gang=1024,
        )
        assert result.gang <= 1024


class TestPortable:
    def test_minimizes_worst_case(self):
        gpu = quadratic_objective(opt_gang=256, opt_worker=32)
        mic = quadratic_objective(opt_gang=64, opt_worker=4)
        result, per_device = portable_tune(
            {"gpu": gpu, "mic": mic},
            gangs=(64, 128, 256), workers=(4, 8, 16, 32),
        )
        # the portable optimum sits between the two device optima
        assert 64 <= result.gang <= 256 and 4 <= result.worker <= 32
        assert set(per_device) == {"gpu", "mic"}
        assert result.seconds == pytest.approx(max(per_device.values()))


class TestLudEvaluator:
    def test_times_positive_and_config_sensitive(self):
        bench = get_benchmark("lud")
        evaluate = make_lud_evaluator(bench, K40, n=512, samples=4)
        serialish = evaluate(1, 1)
        parallel = evaluate(256, 16)
        assert parallel < serialish

    def test_mic_evaluator(self):
        bench = get_benchmark("lud")
        evaluate = make_lud_evaluator(bench, PHI_5110P, n=512, samples=4)
        assert evaluate(240, 1) > 0

    def test_describe(self):
        result = TuneResult(128, 16, 1.5, 9, "K40")
        assert "gang(128)" in result.describe()
