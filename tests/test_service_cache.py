"""The two-tier artifact cache: LRU behaviour, disk tier, invisibility."""

import pickle

import pytest

from repro.service import MISS, ArtifactCache


class TestMemoryTier:
    def test_roundtrip_and_counters(self):
        cache = ArtifactCache(max_entries=4)
        assert cache.get("fp1") is MISS
        cache.put("fp1", {"ptx": "body"})
        assert cache.get("fp1") == {"ptx": "body"}
        assert cache.stats.memory_hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.stores == 1
        assert cache.stats.hit_rate == 0.5

    def test_lru_evicts_oldest(self):
        cache = ArtifactCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert cache.get("a") is MISS  # oldest gone
        assert cache.get("b") == 2 and cache.get("c") == 3
        assert cache.stats.evictions == 1
        assert len(cache) == 2

    def test_get_refreshes_recency(self):
        cache = ArtifactCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # a is now most-recent
        cache.put("c", 3)       # evicts b, not a
        assert cache.get("a") == 1
        assert cache.get("b") is MISS

    def test_copy_on_hit_isolates_callers(self):
        """The cache is an invisible optimization: mutating a returned
        artifact must not corrupt the cached copy (or other callers)."""
        cache = ArtifactCache()
        cache.put("fp", {"log": ["ok"]})
        first = cache.get("fp")
        first["log"].append("mutated by caller")
        second = cache.get("fp")
        assert second == {"log": ["ok"]}
        assert first is not second

    def test_put_isolates_from_source_object(self):
        cache = ArtifactCache()
        artifact = {"log": ["ok"]}
        cache.put("fp", artifact)
        artifact["log"].append("mutated after put")
        assert cache.get("fp") == {"log": ["ok"]}

    def test_clear(self):
        cache = ArtifactCache()
        cache.put("fp", 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.get("fp") is MISS


class TestDiskTier:
    def test_persists_across_instances(self, tmp_path):
        first = ArtifactCache(cache_dir=tmp_path)
        first.put("fp", {"ptx": "body"})
        assert first.stats.disk_stores == 1

        fresh = ArtifactCache(cache_dir=tmp_path)  # a "new process"
        assert fresh.get("fp") == {"ptx": "body"}
        assert fresh.stats.disk_hits == 1
        # the hit promoted the artifact into the memory tier
        assert fresh.get("fp") == {"ptx": "body"}
        assert fresh.stats.memory_hits == 1

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        cache = ArtifactCache(cache_dir=tmp_path)
        path = tmp_path / "fp.pkl"
        path.write_bytes(b"not a pickle")
        assert cache.get("fp") is MISS
        assert not path.exists()

    def test_entries_are_plain_pickles(self, tmp_path):
        cache = ArtifactCache(cache_dir=tmp_path)
        cache.put("fp", [1, 2, 3])
        with (tmp_path / "fp.pkl").open("rb") as fh:
            assert pickle.load(fh) == [1, 2, 3]

    def test_clear_disk(self, tmp_path):
        cache = ArtifactCache(cache_dir=tmp_path)
        cache.put("fp", 1)
        cache.clear(memory_only=False)
        assert cache.get("fp") is MISS

    def test_cache_dir_colliding_with_a_file_is_rejected(self, tmp_path):
        path = tmp_path / "occupied"
        path.write_text("not a directory")
        with pytest.raises(NotADirectoryError, match="occupied"):
            ArtifactCache(cache_dir=path)

    def test_contains(self, tmp_path):
        cache = ArtifactCache(cache_dir=tmp_path)
        assert "fp" not in cache
        cache.put("fp", 1)
        assert "fp" in cache
        fresh = ArtifactCache(cache_dir=tmp_path)
        assert "fp" in fresh  # via the disk tier
