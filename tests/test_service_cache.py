"""The two-tier artifact cache: LRU behaviour, disk tier, invisibility."""

import pickle

import pytest

from repro.service import MISS, ArtifactCache


class TestMemoryTier:
    def test_roundtrip_and_counters(self):
        cache = ArtifactCache(max_entries=4)
        assert cache.get("fp1") is MISS
        cache.put("fp1", {"ptx": "body"})
        assert cache.get("fp1") == {"ptx": "body"}
        assert cache.stats.memory_hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.stores == 1
        assert cache.stats.hit_rate == 0.5

    def test_lru_evicts_oldest(self):
        cache = ArtifactCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert cache.get("a") is MISS  # oldest gone
        assert cache.get("b") == 2 and cache.get("c") == 3
        assert cache.stats.evictions == 1
        assert len(cache) == 2

    def test_get_refreshes_recency(self):
        cache = ArtifactCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # a is now most-recent
        cache.put("c", 3)       # evicts b, not a
        assert cache.get("a") == 1
        assert cache.get("b") is MISS

    def test_copy_on_hit_isolates_callers(self):
        """The cache is an invisible optimization: mutating a returned
        artifact must not corrupt the cached copy (or other callers)."""
        cache = ArtifactCache()
        cache.put("fp", {"log": ["ok"]})
        first = cache.get("fp")
        first["log"].append("mutated by caller")
        second = cache.get("fp")
        assert second == {"log": ["ok"]}
        assert first is not second

    def test_put_isolates_from_source_object(self):
        cache = ArtifactCache()
        artifact = {"log": ["ok"]}
        cache.put("fp", artifact)
        artifact["log"].append("mutated after put")
        assert cache.get("fp") == {"log": ["ok"]}

    def test_clear(self):
        cache = ArtifactCache()
        cache.put("fp", 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.get("fp") is MISS


class TestDiskTier:
    def test_persists_across_instances(self, tmp_path):
        first = ArtifactCache(cache_dir=tmp_path)
        first.put("fp", {"ptx": "body"})
        assert first.stats.disk_stores == 1

        fresh = ArtifactCache(cache_dir=tmp_path)  # a "new process"
        assert fresh.get("fp") == {"ptx": "body"}
        assert fresh.stats.disk_hits == 1
        # the hit promoted the artifact into the memory tier
        assert fresh.get("fp") == {"ptx": "body"}
        assert fresh.stats.memory_hits == 1

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        cache = ArtifactCache(cache_dir=tmp_path)
        path = tmp_path / "fp.pkl"
        path.write_bytes(b"not a pickle")
        assert cache.get("fp") is MISS
        assert not path.exists()

    def test_entries_are_plain_pickles(self, tmp_path):
        cache = ArtifactCache(cache_dir=tmp_path)
        cache.put("fp", [1, 2, 3])
        with (tmp_path / "fp.pkl").open("rb") as fh:
            assert pickle.load(fh) == [1, 2, 3]

    def test_clear_disk(self, tmp_path):
        cache = ArtifactCache(cache_dir=tmp_path)
        cache.put("fp", 1)
        cache.clear(memory_only=False)
        assert cache.get("fp") is MISS

    def test_cache_dir_colliding_with_a_file_is_rejected(self, tmp_path):
        path = tmp_path / "occupied"
        path.write_text("not a directory")
        with pytest.raises(NotADirectoryError, match="occupied"):
            ArtifactCache(cache_dir=path)

    def test_contains(self, tmp_path):
        cache = ArtifactCache(cache_dir=tmp_path)
        assert "fp" not in cache
        cache.put("fp", 1)
        assert "fp" in cache
        fresh = ArtifactCache(cache_dir=tmp_path)
        assert "fp" in fresh  # via the disk tier


class TestEnsureWritableDir:
    def test_creates_nested_directories(self, tmp_path):
        from repro.service import ensure_writable_dir

        target = tmp_path / "a" / "b" / "c"
        assert ensure_writable_dir(target) == target
        assert target.is_dir()

    def test_file_in_the_way_raises_cache_dir_error(self, tmp_path):
        from repro.service import CacheDirError, ensure_writable_dir

        occupied = tmp_path / "occupied"
        occupied.write_text("file")
        with pytest.raises(CacheDirError, match="occupied"):
            ensure_writable_dir(occupied)
        # ... and a path *under* a file cannot even be created
        with pytest.raises(CacheDirError):
            ensure_writable_dir(occupied / "sub")

    def test_cache_dir_error_is_a_not_a_directory_error(self):
        from repro.service import CacheDirError

        assert issubclass(CacheDirError, NotADirectoryError)


class TestShardPrefix:
    def test_hex_fingerprints_use_their_own_prefix(self):
        from repro.service import shard_prefix

        assert shard_prefix("ab12cd") == "ab"
        assert shard_prefix("AB12CD") == "ab"

    def test_non_hex_keys_are_hashed_to_a_uniform_prefix(self):
        from repro.service import shard_prefix

        prefix = shard_prefix("not-hex!")
        assert len(prefix) == 2
        assert all(c in "0123456789abcdef" for c in prefix)
        assert shard_prefix("not-hex!") == prefix  # deterministic


class TestShardedCache:
    def test_same_contract_as_flat_cache(self, tmp_path):
        from repro.service import MISS, ShardedArtifactCache

        cache = ShardedArtifactCache(shards=4, cache_dir=tmp_path)
        assert cache.get("ab" + "0" * 62) is MISS
        cache.put("ab" + "0" * 62, {"x": 1})
        assert cache.get("ab" + "0" * 62) == {"x": 1}
        assert "ab" + "0" * 62 in cache
        assert len(cache) == 1

    def test_fingerprints_land_in_prefix_shard_dirs(self, tmp_path):
        from repro.service import ShardedArtifactCache

        cache = ShardedArtifactCache(shards=4, cache_dir=tmp_path)
        fingerprints = [f"{i:02x}" + "0" * 62 for i in range(8)]
        for fingerprint in fingerprints:
            cache.put(fingerprint, fingerprint[:2])
        pickles = list(tmp_path.glob("shard-*/[0-9a-f]*.pkl"))
        assert len(pickles) == 8
        # every fingerprint is owned by exactly one shard
        owners = {f: cache.shard_for(f) for f in fingerprints}
        for fingerprint, shard in owners.items():
            assert fingerprint in shard

    def test_distinct_prefixes_use_distinct_locks(self, tmp_path):
        from repro.service import ShardedArtifactCache

        cache = ShardedArtifactCache(shards=16, cache_dir=tmp_path)
        a = cache.shard_for("00" + "0" * 62)
        b = cache.shard_for("01" + "0" * 62)
        assert a is not b
        assert a._lock is not b._lock

    def test_stats_aggregate_across_shards(self, tmp_path):
        from repro.service import ShardedArtifactCache

        cache = ShardedArtifactCache(shards=4, cache_dir=tmp_path)
        cache.put("00" + "0" * 62, 1)
        cache.put("40" + "0" * 62, 2)
        cache.get("00" + "0" * 62)
        cache.get("ff" + "0" * 62)  # miss
        stats = cache.stats
        assert stats.stores == 2
        assert stats.memory_hits == 1
        assert stats.misses == 1
        snapshots = cache.shard_snapshot()
        assert len(snapshots) == 4
        assert sum(s["stores"] for s in snapshots) == 2

    def test_survives_process_restart(self, tmp_path):
        from repro.service import ShardedArtifactCache

        ShardedArtifactCache(shards=4, cache_dir=tmp_path).put(
            "ab" + "0" * 62, [1, 2])
        fresh = ShardedArtifactCache(shards=4, cache_dir=tmp_path)
        assert fresh.get("ab" + "0" * 62) == [1, 2]
        assert fresh.stats.disk_hits == 1


class TestPeerReadThrough:
    def test_miss_falls_through_to_peer_and_copies_local(self, tmp_path):
        from repro.service import ArtifactCache

        peer_dir = tmp_path / "peer"
        local_dir = tmp_path / "local"
        ArtifactCache(cache_dir=peer_dir).put("fp", {"from": "peer"})

        local = ArtifactCache(cache_dir=local_dir, peer_dirs=(peer_dir,))
        assert local.get("fp") == {"from": "peer"}
        assert local.stats.peer_hits == 1
        # copied through: now present in the local disk tier
        assert (local_dir / "fp.pkl").exists()
        solo = ArtifactCache(cache_dir=local_dir)  # no peers configured
        assert solo.get("fp") == {"from": "peer"}

    def test_local_tiers_win_over_peers(self, tmp_path):
        from repro.service import ArtifactCache

        peer_dir = tmp_path / "peer"
        ArtifactCache(cache_dir=peer_dir).put("fp", "peer-value")
        local = ArtifactCache(cache_dir=tmp_path / "local",
                              peer_dirs=(peer_dir,))
        local.put("fp", "local-value")
        assert local.get("fp") == "local-value"
        assert local.stats.peer_hits == 0

    def test_peers_are_never_written(self, tmp_path):
        from repro.service import ArtifactCache

        peer_dir = tmp_path / "peer"
        peer_dir.mkdir()
        local = ArtifactCache(cache_dir=tmp_path / "local",
                              peer_dirs=(peer_dir,))
        local.put("fp", 1)
        assert list(peer_dir.iterdir()) == []

    def test_sharded_peers_share_the_shard_layout(self, tmp_path):
        from repro.service import ShardedArtifactCache

        peer_root = tmp_path / "peer"
        local_root = tmp_path / "local"
        ShardedArtifactCache(shards=4, cache_dir=peer_root).put(
            "ab" + "0" * 62, "warm")
        local = ShardedArtifactCache(shards=4, cache_dir=local_root,
                                     peer_dirs=(peer_root,))
        assert local.get("ab" + "0" * 62) == "warm"
        assert local.stats.peer_hits == 1


class _BlockingPickle:
    """Pickling blocks until `gate` is set; deep-copy stays instant, so
    the memory tier is fast and only the disk write stalls."""

    def __init__(self, gate, entered):
        self.gate = gate
        self.entered = entered

    def __deepcopy__(self, memo):
        return self

    def __reduce__(self):
        self.entered.set()
        assert self.gate.wait(timeout=10), "test gate never opened"
        return (str, ("unblocked",))


class TestLockNarrowing:
    """The regression contract: file I/O runs outside the cache lock, so
    one slow disk write cannot stall other fingerprints."""

    def test_concurrent_put_get_of_distinct_fingerprints(self, tmp_path):
        import threading

        from repro.service import ArtifactCache

        cache = ArtifactCache(cache_dir=tmp_path)
        gate = threading.Event()
        entered = threading.Event()
        slow = _BlockingPickle(gate, entered)

        writer = threading.Thread(target=cache.put, args=("slow-fp", slow))
        writer.start()
        try:
            assert entered.wait(timeout=10)  # writer is inside pickle.dump

            # while the writer's disk I/O is blocked, OTHER fingerprints
            # must still flow through the cache
            done = threading.Event()

            def other_traffic():
                cache.put("fast-fp", [1, 2, 3])
                assert cache.get("fast-fp") == [1, 2, 3]
                assert cache.get("absent-fp") is MISS
                done.set()

            prober = threading.Thread(target=other_traffic)
            prober.start()
            prober.join(timeout=5)
            assert done.is_set(), (
                "cache operations on distinct fingerprints deadlocked "
                "behind a blocked disk write (lock held during file I/O)"
            )
        finally:
            gate.set()
            writer.join(timeout=10)
        assert not writer.is_alive()
        # the slow artifact did land (as its reduced form)
        fresh = ArtifactCache(cache_dir=tmp_path)
        assert fresh.get("slow-fp") == "unblocked"

    def test_memory_tier_of_the_slow_fingerprint_stays_readable(
            self, tmp_path):
        import threading

        from repro.service import ArtifactCache

        cache = ArtifactCache(cache_dir=tmp_path)
        gate = threading.Event()
        entered = threading.Event()
        slow = _BlockingPickle(gate, entered)

        writer = threading.Thread(target=cache.put, args=("slow-fp", slow))
        writer.start()
        try:
            assert entered.wait(timeout=10)
            # the memory tier was installed before the disk write began
            assert isinstance(cache.get("slow-fp"), _BlockingPickle)
            assert cache.stats.memory_hits == 1
        finally:
            gate.set()
            writer.join(timeout=10)

    def test_parallel_puts_of_distinct_fingerprints(self, tmp_path):
        import threading

        from repro.service import ShardedArtifactCache

        cache = ShardedArtifactCache(shards=8, cache_dir=tmp_path)
        fingerprints = [f"{i:02x}" + "f" * 62 for i in range(32)]
        errors = []

        def hammer(fingerprint):
            try:
                cache.put(fingerprint, {"fp": fingerprint})
                assert cache.get(fingerprint) == {"fp": fingerprint}
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(f"{fingerprint[:2]}: {exc}")

        threads = [threading.Thread(target=hammer, args=(f,))
                   for f in fingerprints]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        assert len(cache) == 32
        assert cache.stats.stores == 32
