"""Tests for repro.frontend.lexer."""

import pytest

from repro.frontend.lexer import LexError, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source) if t.kind != "EOF"]


class TestTokenize:
    def test_keywords_vs_identifiers(self):
        tokens = tokenize("for foo int n")
        assert [t.kind for t in tokens[:-1]] == [
            "KEYWORD", "IDENT", "KEYWORD", "IDENT",
        ]

    def test_numbers(self):
        tokens = tokenize("42 0x1F 3.5 1e-3 2.0f 7f")
        assert [t.kind for t in tokens[:-1]] == [
            "INT", "INT", "FLOAT", "FLOAT", "FLOAT", "FLOAT",
        ]

    def test_operators_maximal_munch(self):
        assert texts("a+=b") == ["a", "+=", "b"]
        assert texts("i++") == ["i", "++"]
        assert texts("a<=b") == ["a", "<=", "b"]
        assert texts("a<b") == ["a", "<", "b"]
        assert texts("x&&y||z") == ["x", "&&", "y", "||", "z"]

    def test_pragma_is_single_token(self):
        tokens = tokenize("#pragma acc loop independent\nfor")
        assert tokens[0].kind == "PRAGMA"
        assert tokens[0].text == "#pragma acc loop independent"
        assert tokens[1].text == "for"

    def test_comments_dropped(self):
        assert texts("a // comment\nb /* multi\nline */ c") == ["a", "b", "c"]

    def test_line_tracking(self):
        tokens = tokenize("a\nb\n  c")
        assert tokens[0].line == 1
        assert tokens[1].line == 2
        assert tokens[2].line == 3 and tokens[2].col == 3

    def test_eof_token(self):
        assert tokenize("")[-1].kind == "EOF"

    def test_bad_character(self):
        with pytest.raises(LexError):
            tokenize("a @ b")

    def test_multiline_comment_line_tracking(self):
        tokens = tokenize("/* a\nb\nc */ x")
        assert tokens[0].text == "x" and tokens[0].line == 3
