"""Tests for directive nodes and DirectiveSet operations."""

import pytest

from repro.ir import (
    AccAtomic,
    AccData,
    AccKernels,
    AccLoop,
    AccParallel,
    AccRoutine,
    DirectiveSet,
    HmppBlocksize,
    HmppTile,
    HmppUnroll,
    ReductionClause,
)


class TestValidation:
    def test_reduction_ops(self):
        for op in ("+", "*", "min", "max"):
            ReductionClause(op, "s")
        with pytest.raises(ValueError):
            ReductionClause("^", "s")

    def test_unroll_factor(self):
        with pytest.raises(ValueError):
            HmppUnroll(1)
        with pytest.raises(ValueError):
            HmppUnroll(4, target="metal")

    def test_tile_factor(self):
        with pytest.raises(ValueError):
            HmppTile("i", 1)

    def test_atomic_kind(self):
        AccAtomic("capture")
        with pytest.raises(ValueError):
            AccAtomic("fetch")


class TestStr:
    @pytest.mark.parametrize("directive,text", [
        (AccKernels(), "#pragma acc kernels"),
        (AccLoop(independent=True), "#pragma acc loop independent"),
        (AccLoop(gang=8, worker=4), "#pragma acc loop gang(8) worker(4)"),
        (AccLoop(gang_auto=True), "#pragma acc loop gang"),
        (AccLoop(tile=(8, 4)), "#pragma acc loop tile(8, 4)"),
        (AccParallel(num_gangs=240), "#pragma acc parallel num_gangs(240)"),
        (AccRoutine("vector"), "#pragma acc routine vector"),
        (HmppBlocksize(32, 4), "#pragma hmppcg blocksize 32x4"),
        (HmppTile("i", 8), "#pragma hmppcg tile i:8"),
        (HmppUnroll(8, jam=True), "#pragma hmppcg unroll(8), jam"),
        (HmppUnroll(8, jam=True, target="cuda"),
         "#pragma hmppcg(cuda) unroll(8), jam"),
        (AccData(copyin=("a", "b")), "#pragma acc data copyin(a, b)"),
    ])
    def test_rendering(self, directive, text):
        assert str(directive) == text


class TestDirectiveSet:
    def test_first_and_all(self):
        ds = DirectiveSet((AccLoop(independent=True), HmppUnroll(4)))
        assert isinstance(ds.first(AccLoop), AccLoop)
        assert ds.first(HmppTile) is None
        assert len(ds.all(HmppUnroll)) == 1

    def test_with_added_is_persistent(self):
        empty = DirectiveSet()
        one = empty.with_added(AccKernels())
        assert len(empty) == 0 and len(one) == 1

    def test_with_replaced(self):
        ds = DirectiveSet((AccLoop(gang=8),))
        replaced = ds.with_replaced(AccLoop, AccLoop(gang=16))
        assert replaced.first(AccLoop).gang == 16
        appended = DirectiveSet().with_replaced(AccLoop, AccLoop(gang=2))
        assert len(appended) == 1

    def test_without(self):
        ds = DirectiveSet((AccLoop(), HmppUnroll(4)))
        assert ds.without(HmppUnroll).first(HmppUnroll) is None

    def test_iteration_and_bool(self):
        assert not DirectiveSet()
        ds = DirectiveSet((AccKernels(),))
        assert list(ds) == [AccKernels()]
