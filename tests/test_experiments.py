"""Every regenerated table and figure must reproduce its paper claims."""

import pytest

from repro.experiments import ALL_EXPERIMENTS


@pytest.mark.parametrize("name", sorted(ALL_EXPERIMENTS))
def test_experiment_claims_hold(name):
    result = ALL_EXPERIMENTS[name]()
    failed = result.failed_claims()
    assert not failed, "\n".join(str(c) for c in failed)


def test_reports_render():
    result = ALL_EXPERIMENTS["table2"]()
    text = result.report()
    assert "Table II" in text and "[PASS]" in text
