"""Tests for the PTX ISA subset and Table V categories."""

import pytest

from repro.ptx.isa import CATEGORY_OF, TABLE_V, Category, PtxInst, PtxKernel


class TestCategories:
    def test_table_v_partition(self):
        for category, opcodes in TABLE_V.items():
            for opcode in opcodes:
                assert CATEGORY_OF[opcode] is category

    def test_every_opcode_categorized(self):
        for opcode, category in CATEGORY_OF.items():
            assert isinstance(category, Category)

    def test_paper_rows(self):
        assert "fma" in TABLE_V[Category.ARITHMETIC]
        assert "setp" in TABLE_V[Category.FLOW_CONTROL]
        assert "shl" in TABLE_V[Category.LOGICAL_SHIFT]
        assert "cvta.to.global" in TABLE_V[Category.GLOBAL_MEMORY]
        assert "ld.param" in TABLE_V[Category.GLOBAL_MEMORY]
        assert "st.shared" in TABLE_V[Category.SHARED_MEMORY]


class TestPtxInst:
    def test_unknown_opcode_rejected(self):
        with pytest.raises(ValueError):
            PtxInst("frob", "f32")

    def test_category_property(self):
        assert PtxInst("fma", "rn.f32").category is Category.ARITHMETIC

    def test_str(self):
        inst = PtxInst("add", "s32", ("%r1", "%r2", "%r3"))
        assert str(inst) == "add.s32 %r1, %r2, %r3;"

    def test_branch_str(self):
        inst = PtxInst("bra", "", ("@%p1",), label="$L_x")
        assert str(inst) == "bra $L_x;"


class TestPtxKernel:
    def test_render_and_opcodes(self):
        kernel = PtxKernel("k")
        kernel.instructions = [
            PtxInst("ld.param", "u64", ("%rd1", "[a]")),
            PtxInst("ret", ""),
        ]
        text = kernel.render()
        assert ".visible .entry k(" in text and "ret;" in text
        assert kernel.opcodes() == ["ld.param", "ret"]
        assert len(kernel) == 2
