"""Tests for PTX code generation from IR kernels."""

import pytest

from repro.frontend import parse_kernel
from repro.ptx.codegen import (
    CodegenStyle,
    ParallelMapping,
    empty_ptx,
    generate_ptx,
)
from repro.ptx.counter import InstructionProfile

STREAM = """
void stream(float *a, const float *b, int n) {
    int i;
    for (i = 0; i < n; i++) {
        a[i] = b[i] * 2.0f + 1.0f;
    }
}
"""


def profile(source, parallel=True, style=None):
    k = parse_kernel(source)
    mapping = ParallelMapping(
        dims={k.loops()[0].loop_id: 0} if parallel else {}
    )
    return InstructionProfile.of(generate_ptx(k, mapping, style))


class TestBasics:
    def test_prologue_params(self):
        p = profile(STREAM)
        assert p.count("ld.param") == 3  # a, b, n

    def test_thread_indexing(self):
        k = parse_kernel(STREAM)
        ptx = generate_ptx(k, ParallelMapping({k.loops()[0].loop_id: 0}))
        operands = [op for inst in ptx for op in inst.operands]
        assert any("%ctaid.x" in op for op in operands)
        assert any("%tid.x" in op for op in operands)

    def test_bounds_guard(self):
        p = profile(STREAM)
        assert p.count("setp") >= 1 and p.count("bra") >= 1

    def test_sequential_loop_form(self):
        p_seq = profile(STREAM, parallel=False)
        p_par = profile(STREAM)
        # the sequential form carries loop-control instructions
        assert p_seq.count("bra") > p_par.count("bra")

    def test_loads_and_stores(self):
        p = profile(STREAM)
        assert p.count("ld.global") == 1 and p.count("st.global") == 1

    def test_fma_fusion(self):
        p = profile(STREAM, style=CodegenStyle(use_fma=True))
        no_fma = profile(STREAM, style=CodegenStyle(use_fma=False))
        assert p.count("fma") >= 1 and no_fma.count("fma") == 0

    def test_ret_terminates(self):
        k = parse_kernel(STREAM)
        ptx = generate_ptx(k)
        assert ptx.instructions[-1].opcode == "ret"


class TestStyles:
    def test_cse_addresses_fewer_cvta(self):
        src = """
void f(float *a, int n) {
    int i;
    for (i = 0; i < n; i++) {
        a[i] = a[i] + a[i];
    }
}
"""
        cse = profile(src, style=CodegenStyle(cse_addresses=True))
        no_cse = profile(src, style=CodegenStyle(cse_addresses=False))
        assert cse.count("cvta.to.global") < no_cse.count("cvta.to.global")

    def test_cse_loads(self):
        src = """
void f(float *a, const float *b, int n) {
    int i;
    for (i = 0; i < n; i++) {
        a[i] = b[0] + b[0];
    }
}
"""
        cse = profile(src, style=CodegenStyle(cse_loads=True))
        no_cse = profile(src, style=CodegenStyle(cse_loads=False))
        assert cse.count("ld.global") < no_cse.count("ld.global")

    def test_cse_loads_invalidated_by_store(self):
        src = """
void f(float *a) {
    float x = a[0];
    a[0] = 2.0f;
    float y = a[0];
    a[1] = x + y;
}
"""
        p = profile(src, parallel=False, style=CodegenStyle(cse_loads=True))
        assert p.count("ld.global") == 2  # reload after the store

    def test_mov_per_stmt(self):
        noisy = profile(STREAM, style=CodegenStyle(mov_per_stmt=2))
        clean = profile(STREAM, style=CodegenStyle(mov_per_stmt=0))
        assert noisy.count("mov") > clean.count("mov")

    def test_extra_param_loads(self):
        extra = profile(STREAM, style=CodegenStyle(extra_param_loads=5))
        base = profile(STREAM, style=CodegenStyle(extra_param_loads=0))
        assert extra.count("ld.param") - base.count("ld.param") == 5

    def test_fold_immediates(self):
        folded = profile(STREAM, style=CodegenStyle(fold_immediates=True))
        literal = profile(STREAM, style=CodegenStyle(fold_immediates=False))
        assert literal.count("mov") > folded.count("mov")


class TestSharedReduction:
    def test_tree_reduction_skeleton(self):
        src = """
void f(const float *a, float *out, int n) {
    int i;
    float s = 0.0f;
    for (i = 0; i < n; i++) {
        s += a[i];
    }
    out[0] = s;
}
"""
        k = parse_kernel(src)
        mapping = ParallelMapping(
            dims={}, shared_reductions={k.loops()[0].loop_id}
        )
        ptx = generate_ptx(k, mapping)
        ops = ptx.opcodes()
        assert "st.shared" in ops and "ld.shared" in ops
        assert ops.count("bar.sync") >= 2
        assert "shl" in ops


class TestMultiDim:
    def test_rank2_access(self):
        src = """
void f(double **q, int n) {
    int i;
    for (i = 0; i < n; i++) {
        q[1][i] = q[0][i] * 2.0;
    }
}
"""
        p = profile(src)
        assert p.count("ld.global") >= 1 and p.count("mad") >= 1


class TestEmptyPtx:
    def test_stub(self):
        stub = empty_ptx("gone")
        assert len(stub) == 1 and stub.instructions[0].opcode == "ret"
