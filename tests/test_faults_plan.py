"""repro.faults: deterministic fault plans, spec parsing, adapters."""

import pytest

from repro.faults import (
    FaultPlan,
    FaultRule,
    FaultSpecError,
    FaultyCacheAdapter,
    FaultyCompilerAdapter,
    FlakyIOError,
    PersistentCompileFault,
    TransientCompileFault,
    is_injected_fault,
    is_transient,
    parse_fault_spec,
)
from repro.service.cache import MISS, ArtifactCache

FP = "a" * 64
FP2 = "b" * 64


class TestFaultPlan:
    def test_same_seed_same_decisions(self):
        plan_a = FaultPlan(seed=7, rules=(FaultRule("transient", 0.5),))
        plan_b = FaultPlan(seed=7, rules=(FaultRule("transient", 0.5),))
        decisions_a = [plan_a.compile_fault(FP, k) is not None
                       for k in range(64)]
        decisions_b = [plan_b.compile_fault(FP, k) is not None
                       for k in range(64)]
        assert decisions_a == decisions_b
        assert any(decisions_a) and not all(decisions_a)

    def test_different_seed_different_decisions(self):
        rules = (FaultRule("transient", 0.5),)
        a = [FaultPlan(seed=1, rules=rules).compile_fault(FP, k) is not None
             for k in range(64)]
        b = [FaultPlan(seed=2, rules=rules).compile_fault(FP, k) is not None
             for k in range(64)]
        assert a != b

    def test_probability_extremes(self):
        never = FaultPlan(seed=3, rules=(FaultRule("transient", 0.0),))
        always = FaultPlan(seed=3, rules=(FaultRule("transient", 1.0),))
        assert all(never.compile_fault(FP, k) is None for k in range(16))
        assert all(isinstance(always.compile_fault(FP, k),
                              TransientCompileFault) for k in range(16))

    def test_persistent_ignores_attempt(self):
        plan = FaultPlan(seed=11, rules=(FaultRule("persistent", 0.5),))
        fps = [ch * 64 for ch in "abcdefgh"]
        broken = [fp for fp in fps if plan.compile_fault(fp, 0) is not None]
        assert broken and len(broken) < len(fps)
        for fp in broken:
            # every attempt replays the same fault — retries cannot heal
            assert all(
                isinstance(plan.compile_fault(fp, k), PersistentCompileFault)
                for k in range(8)
            )

    def test_slow_penalty_seconds(self):
        plan = FaultPlan(seed=5, rules=(FaultRule("slow", 1.0, seconds=0.25),))
        assert plan.slow_penalty_s(FP, 0) == 0.25
        assert FaultPlan(seed=5).slow_penalty_s(FP, 0) == 0.0

    def test_cache_fault_counter_advances(self):
        plan = FaultPlan(seed=9, rules=(FaultRule("cache", 0.5),))
        first = [plan.cache_fault("read", FP) is not None for _ in range(32)]
        plan.reset_counters()
        second = [plan.cache_fault("read", FP) is not None for _ in range(32)]
        assert first == second  # counter-based: replayable after reset
        assert any(first) and not all(first)

    def test_transient_flags(self):
        t = TransientCompileFault("x")
        p = PersistentCompileFault("x")
        io = FlakyIOError("x")
        assert is_injected_fault(t) and is_injected_fault(p)
        assert is_transient(t) and is_transient(io)
        assert not is_transient(p)
        assert not is_injected_fault(ValueError("x"))
        assert isinstance(io, OSError)

    def test_bad_rule_kind_and_probability(self):
        with pytest.raises(FaultSpecError):
            FaultRule("cosmic-ray", 0.5)
        with pytest.raises(FaultSpecError):
            FaultRule("transient", 1.5)


class TestParseFaultSpec:
    def test_single_clause(self):
        plan = parse_fault_spec("transient:p=0.3,seed=7")
        assert plan.seed == 7
        assert plan.rules == (FaultRule("transient", 0.3),)

    def test_multi_clause(self):
        plan = parse_fault_spec(
            "transient:p=0.2;slow:p=0.1,s=0.05;cache:p=0.05"
        )
        assert [r.kind for r in plan.rules] == ["transient", "slow", "cache"]
        assert plan.rule("slow").seconds == 0.05

    def test_seconds_alias(self):
        plan = parse_fault_spec("slow:p=1,seconds=0.2")
        assert plan.rule("slow").seconds == 0.2

    @pytest.mark.parametrize("bad", [
        "", "transient", "transient:q=0.3", "transient:p=oops",
        "transient:p=0.3,seed=x", "warp-drive:p=0.5",
        "transient:p=0.3,unknown=1",
    ])
    def test_rejects_bad_specs(self, bad):
        with pytest.raises(FaultSpecError):
            parse_fault_spec(bad)

    def test_describe_round_trips_the_shape(self):
        plan = parse_fault_spec("transient:p=0.3,seed=7;slow:p=0.1,s=0.05")
        assert "seed=7" in plan.describe()
        assert "transient:p=0.3" in plan.describe()
        assert "s=0.05" in plan.describe()


class _Request:
    def __init__(self, fingerprint):
        self.fingerprint = fingerprint


class TestAdapters:
    def test_compiler_adapter_transparent_without_rules(self):
        adapter = FaultyCompilerAdapter(
            lambda request: f"artifact:{request.fingerprint[:4]}",
            FaultPlan(seed=0),
        )
        artifact, penalty = adapter.compile(_Request(FP), attempt=0)
        assert artifact == "artifact:aaaa"
        assert penalty == 0.0

    def test_compiler_adapter_raises_before_compiling(self):
        calls = []
        plan = FaultPlan(seed=0, rules=(FaultRule("transient", 1.0),))
        adapter = FaultyCompilerAdapter(
            lambda request: calls.append(request), plan
        )
        with pytest.raises(TransientCompileFault):
            adapter.compile(_Request(FP), attempt=0)
        assert calls == []  # the model itself was never invoked

    def test_cache_adapter_flakes_and_delegates(self):
        cache = ArtifactCache()
        plan = FaultPlan(seed=0, rules=(FaultRule("cache-write", 1.0),))
        adapter = FaultyCacheAdapter(cache, plan)
        with pytest.raises(FlakyIOError):
            adapter.put(FP, "artifact")
        assert len(adapter) == 0
        assert adapter.get(FP) is MISS  # reads unaffected by a write rule
        assert adapter.stats.misses == 1  # __getattr__ delegation
