"""Integration tests on the compile daemon (docs/SERVER.md).

Real sockets on ephemeral ports throughout: coalescing across client
connections, admission control (queue bound, per-client quotas, drain),
connection survival through malformed frames, and the endpoint surface.
"""

import socket
import threading

import pytest

from repro.frontend import parse_module
from repro.server import protocol
from repro.server.client import ServerClient, spawn_local
from repro.server.daemon import ReproServer, ServerConfig
from repro.server.quotas import AdmissionController, TokenBucket
from repro.server.smoke import artifact_signature, fig4_requests
from repro.service.fingerprint import CompileRequest
from repro.service.resilience import SimClock

SOURCE = """
#pragma acc kernels
void demo(float *a, const float *b, int n) {
  int i;
  #pragma acc loop independent
  for (i = 0; i < n; i++) {
    a[i] = b[i] * 2.0f;
  }
}
"""


def demo_request() -> CompileRequest:
    return CompileRequest(parse_module(SOURCE, "demo"), "caps", "cuda")


def make_server(**overrides) -> ReproServer:
    config = ServerConfig(port=0, jobs=2, **overrides)
    return ReproServer(config).start()


# --------------------------------------------------------------------------
# coalescing across client connections
# --------------------------------------------------------------------------

def test_n_identical_concurrent_requests_compile_exactly_once():
    """The coalescing contract: N clients asking for the same fingerprint
    while it is in flight share ONE compile."""
    clients = 4
    # a wide batch window so every client lands in the first batch
    server = make_server(batch_window_s=0.25, max_batch=16)
    try:
        host, port = server.address
        barrier = threading.Barrier(clients)
        errors: list[str] = []
        results: dict[int, str] = {}

        def drive(index: int) -> None:
            try:
                with ServerClient(host, port,
                                  client_id=f"c{index}") as client:
                    barrier.wait(timeout=10)
                    artifact = client.compile_request(demo_request())
                results[index] = artifact_signature(artifact)
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors.append(f"{index}: {exc}")

        threads = [threading.Thread(target=drive, args=(i,))
                   for i in range(clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)

        assert not errors
        assert len(set(results.values())) == 1  # same artifact for everyone
        assert server.service.metrics.snapshot()["compiles"] == 1
        batch = server.batcher.snapshot()
        assert batch["coalesced"] == clients - 1
    finally:
        server.drain()


def test_sequential_repeat_is_a_cache_hit_not_a_recompile():
    with spawn_local(ServerConfig(jobs=1)) as (server, client):
        first = client.compile_request(demo_request())
        second = client.compile_request(demo_request())
        assert artifact_signature(first) == artifact_signature(second)
        snap = server.service.metrics.snapshot()
        assert snap["compiles"] == 1
        assert snap["cache_hits"] >= 1


def test_sweep_through_daemon_matches_in_process_byte_for_byte():
    from repro.service.scheduler import CompileService

    requests = fig4_requests(6)
    baseline = [artifact_signature(s)
                for s in CompileService().sweep(requests)]
    with spawn_local(ServerConfig(jobs=2)) as (_server, client):
        got = [artifact_signature(s) for s in client.sweep(requests)]
    assert got == baseline


# --------------------------------------------------------------------------
# admission control
# --------------------------------------------------------------------------

def test_oversized_sweep_is_rejected_not_queued():
    server = make_server(max_queue_depth=3, batch_window_s=0.0)
    try:
        host, port = server.address
        with ServerClient(host, port, client_id="greedy") as client:
            with pytest.raises(protocol.ServerRejected) as excinfo:
                client.sweep(fig4_requests(8))
        assert excinfo.value.code == protocol.REJECTED
        assert excinfo.value.kind == "queue-full"
        assert server.admission.snapshot()["rejected_queue"] == 1
        # the bound is on concurrency, not size: a fitting sweep still runs
        with ServerClient(host, port, client_id="modest") as client:
            slots = client.sweep(fig4_requests(2))
        assert len(slots) == 2
    finally:
        server.drain()


def test_per_client_quota_rejects_with_429():
    server = make_server(quota_rate=0.001, quota_burst=2.0,
                         batch_window_s=0.0)
    try:
        host, port = server.address
        with ServerClient(host, port, client_id="burster") as client:
            # the burst allowance covers 2 points...
            assert len(client.sweep(fig4_requests(2))) == 2
            # ...and the sustained rate is ~zero, so the next request
            # is over quota
            with pytest.raises(protocol.ServerRejected) as excinfo:
                client.sweep(fig4_requests(2))
        assert excinfo.value.kind == "quota"
        # quotas are per client: a different client still has its burst
        with ServerClient(host, port, client_id="fresh") as client:
            assert len(client.sweep(fig4_requests(2))) == 2
        assert server.admission.snapshot()["rejected_quota"] == 1
    finally:
        server.drain()


def test_token_bucket_refills_on_its_clock():
    clock = SimClock()
    bucket = TokenBucket(rate=2.0, burst=4.0, clock=clock)
    assert bucket.try_spend(4.0)          # full at birth
    assert not bucket.try_spend(1.0)      # empty
    clock.sleep(1.0)                    # +2 tokens
    assert bucket.try_spend(2.0)
    assert not bucket.try_spend(0.5)
    clock.sleep(100.0)                  # refill caps at burst
    assert bucket.available() == pytest.approx(4.0)


def test_admission_controller_depth_and_reasons():
    clock = SimClock()
    controller = AdmissionController(max_queue_depth=20, quota_rate=10.0,
                                     quota_burst=10.0, clock=clock)
    assert controller.admit("a", 3).allowed
    refusal = controller.admit("a", 18)         # 3 + 18 > 20
    assert not refusal.allowed and refusal.reason == "queue-full"
    # quota: "a" has 10 - 3 = 7 tokens left; 8 points is over (the depth
    # gate would allow it, so this exercises the quota gate specifically)
    refusal = controller.admit("a", 8)
    assert not refusal.allowed and refusal.reason == "quota"
    controller.release(3)
    assert controller.depth == 0
    clock.sleep(1.0)                            # +10, capped at 10
    assert controller.admit("a", 8).allowed
    controller.release(8)
    controller.start_draining()
    refusal = controller.admit("b", 1)
    assert not refusal.allowed and refusal.reason == "draining"
    snap = controller.snapshot()
    assert snap["rejected_queue"] == 1
    assert snap["rejected_quota"] == 1
    assert snap["rejected_draining"] == 1


# --------------------------------------------------------------------------
# drain / shutdown
# --------------------------------------------------------------------------

def test_draining_server_answers_503():
    server = make_server()
    try:
        host, port = server.address
        server.admission.start_draining()
        with ServerClient(host, port, client_id="late") as client:
            with pytest.raises(protocol.ServerRejected) as excinfo:
                client.sweep(fig4_requests(1))
        assert excinfo.value.code == protocol.DRAINING
        assert excinfo.value.kind == "draining"
    finally:
        server.drain()


def test_shutdown_op_answers_then_drains():
    server = make_server()
    host, port = server.address
    with ServerClient(host, port, client_id="admin") as client:
        response = client.shutdown()
    assert response["draining"] is True
    # the drain completes in the background and the listener goes away
    assert server._stopped.wait(timeout=10)
    with pytest.raises(OSError):
        socket.create_connection((host, port), timeout=0.5).close()


# --------------------------------------------------------------------------
# protocol robustness over a live socket
# --------------------------------------------------------------------------

def test_malformed_frames_get_400_and_the_connection_survives():
    server = make_server()
    try:
        host, port = server.address
        with socket.create_connection((host, port), timeout=10) as sock:
            reader = sock.makefile("rb")
            for garbage in (b"not json\n", b"[1,2]\n", b'{"op": 7}\n'):
                sock.sendall(garbage)
                response = protocol.decode_frame(reader.readline())
                assert response["ok"] is False
                assert response["error"]["code"] == protocol.BAD_REQUEST
            # same connection, now a valid frame: still served
            sock.sendall(protocol.encode_frame(
                {"id": 1, "op": "hello", "client": "probe"}))
            response = protocol.decode_frame(reader.readline())
            assert response["ok"] is True
            assert response["protocol"] == protocol.PROTOCOL
        assert server.protocol_errors == 3
    finally:
        server.drain()


def test_unknown_op_gets_404_and_the_connection_survives():
    with spawn_local() as (_server, client):
        with pytest.raises(protocol.ServerError) as excinfo:
            client._call("frobnicate")
        assert excinfo.value.code == protocol.UNKNOWN_OP
        # the same client object keeps working
        assert client.status()["draining"] is False


# --------------------------------------------------------------------------
# endpoints + telemetry lanes
# --------------------------------------------------------------------------

def test_status_and_stats_surfaces():
    with spawn_local(ServerConfig(jobs=1, shards=4)) as (_server, client):
        client.sweep(fig4_requests(2))
        status = client.status()
        assert status["queue"]["depth"] == 0
        assert status["requests_total"] >= 1
        stats = client.stats()
        assert stats["service"]["compiles"] == 2
        assert stats["server"]["batcher"]["batched_points"] == 2
        assert len(stats["cache_shards"]) == 4


def test_requests_are_traced_in_per_client_lanes():
    from repro.telemetry import configure_tracer, get_tracer, reset_tracer

    configure_tracer(enabled=True)
    try:
        with spawn_local(client_id="lane-me") as (_server, client):
            client.sweep(fig4_requests(1))
        spans = [s for s in get_tracer().spans()
                 if s.name == "server.request"]
        assert spans
        assert {s.attributes.get("lane") for s in spans} == {"client:lane-me"}
    finally:
        reset_tracer()
