"""Unit tests for the N-device node topology: links, switches, and the
halo contention math (docs/MODEL.md, multi-device section)."""

import pytest

from repro.devices import (
    K40,
    NVLINK_LINK,
    PCIE,
    PCIE2_LINK,
    DeviceTopology,
    LinkSpec,
)


class TestLinkSpec:
    def test_uncontended_transfer(self):
        link = LinkSpec("test", bandwidth_gbps=1.0, latency_us=0.0)
        assert link.transfer_seconds(1e9) == pytest.approx(1.0)

    def test_latency_is_paid_once(self):
        link = LinkSpec("test", bandwidth_gbps=1.0, latency_us=100.0)
        assert link.transfer_seconds(0) == pytest.approx(100e-6)

    def test_sharers_divide_bandwidth_not_latency(self):
        link = LinkSpec("test", bandwidth_gbps=1.0, latency_us=100.0)
        solo = link.transfer_seconds(1e9, sharers=1)
        shared = link.transfer_seconds(1e9, sharers=3)
        assert shared == pytest.approx(100e-6 + 3.0)
        assert shared > solo

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            PCIE2_LINK.transfer_seconds(-1)

    def test_pcie2_link_mirrors_single_device_model(self):
        # the multi-device host link at sharers=1 is the same channel the
        # single-device Accelerator models
        assert PCIE2_LINK.bandwidth_gbps == PCIE.bandwidth_gbps
        assert PCIE2_LINK.latency_us == PCIE.latency_us
        assert (PCIE2_LINK.transfer_seconds(1 << 20)
                == pytest.approx(PCIE.transfer_seconds(1 << 20)))


class TestTopologyStructure:
    def test_single_device_has_no_pairs(self):
        assert DeviceTopology(K40, 1).neighbor_pairs() == ()

    def test_chain_pairs(self):
        assert DeviceTopology(K40, 4).neighbor_pairs() == (
            (0, 1), (1, 2), (2, 3),
        )

    def test_invalid_count_rejected(self):
        with pytest.raises(ValueError):
            DeviceTopology(K40, 0)

    def test_switch_assignment(self):
        topo = DeviceTopology(K40, 4, devices_per_switch=2)
        assert [topo.switch_of(k) for k in range(4)] == [0, 0, 1, 1]

    def test_peer_only_within_switch(self):
        topo = DeviceTopology(K40, 4, peer=NVLINK_LINK,
                              devices_per_switch=2)
        assert topo.pair_uses_peer((0, 1))
        assert not topo.pair_uses_peer((1, 2))  # crosses the root
        assert topo.pair_uses_peer((2, 3))

    def test_no_peer_means_no_peer_pairs(self):
        topo = DeviceTopology(K40, 4)
        assert not any(topo.pair_uses_peer(p) for p in topo.neighbor_pairs())


class TestContentionMath:
    def test_single_device_exchange_is_free(self):
        assert DeviceTopology(K40, 1).exchange_seconds(1 << 30) == 0.0

    def test_two_devices_uncontended(self):
        topo = DeviceTopology(K40, 2)
        assert topo.host_link_sharers() == 1
        assert topo.exchange_seconds(1 << 20) == pytest.approx(
            PCIE2_LINK.transfer_seconds(1 << 20, sharers=1)
        )

    def test_four_devices_share_the_root(self):
        topo = DeviceTopology(K40, 4)
        assert topo.host_link_sharers() == 3
        # 3 pairs dividing one link: slower than the 2-device exchange
        assert (topo.exchange_seconds(1 << 20)
                > DeviceTopology(K40, 2).exchange_seconds(1 << 20))
        assert topo.exchange_seconds(1 << 20) == pytest.approx(
            PCIE2_LINK.transfer_seconds(1 << 20, sharers=3)
        )

    def test_peer_link_relieves_the_root(self):
        flat = DeviceTopology(K40, 4)
        peered = DeviceTopology(K40, 4, peer=NVLINK_LINK)
        # only the cross-switch pair still crosses the host link
        assert peered.host_link_sharers() == 1
        assert (peered.exchange_seconds(1 << 20)
                < flat.exchange_seconds(1 << 20))

    def test_busiest_device_bounds_the_step(self):
        # the exchange time is the max over pairs, so adding a slower
        # crossing pair can only grow it
        topo2 = DeviceTopology(K40, 2, peer=NVLINK_LINK)
        topo4 = DeviceTopology(K40, 4, peer=NVLINK_LINK)
        assert (topo4.exchange_seconds(1 << 20)
                >= topo2.exchange_seconds(1 << 20))

    def test_describe_mentions_peer(self):
        topo = DeviceTopology(K40, 2, peer=NVLINK_LINK)
        assert "nvlink" in topo.describe()
        assert "2x" in topo.describe()
