"""Telemetry wired through the real pipeline: scheduler lanes, CLI."""

import json

import pytest

from repro.cli import main
from repro.core.search import distribution_requests
from repro.kernels.lud import LudBenchmark
from repro.service.fingerprint import CompileRequest
from repro.service.scheduler import CompileService
from repro.telemetry.export import load_trace, timeline_coverage
from repro.telemetry.spans import configure_tracer, get_tracer, reset_tracer


@pytest.fixture(autouse=True)
def _fresh_tracer():
    yield
    reset_tracer()


def lud_requests(count: int = 6) -> list[CompileRequest]:
    """Distinct-fingerprint requests (one per gang value), so none
    dedup or hit the cache against each other."""
    gangs = (1, 2, 4, 8, 16, 32, 64, 128)[:count]
    return distribution_requests(LudBenchmark(), "caps", "cuda", gangs, (1,))


class TestTracedSweep:
    def test_jobs_spans_parented_to_sweep_across_threads(self):
        tracer = configure_tracer(enabled=True)
        service = CompileService(jobs=2)
        service.sweep(lud_requests(6))

        sweep, = tracer.spans_named("service.sweep")
        jobs = tracer.spans_named("service.job")
        assert len(jobs) == 6
        assert all(j.parent_id == sweep.span_id for j in jobs)
        # per-worker lanes: jobs ran on the pool's named threads
        worker_names = {j.thread_name for j in jobs}
        assert all(name.startswith("repro-compile") for name in worker_names)
        assert sweep.thread_name == "MainThread"

    def test_cache_hits_and_misses_distinguishable(self):
        tracer = configure_tracer(enabled=True)
        service = CompileService()
        requests = lud_requests(1)
        service.sweep(requests)
        service.sweep(requests)  # warm: all hits

        compiles = tracer.spans_named("service.compile")
        cache_attrs = [s.attributes["cache"] for s in compiles]
        assert cache_attrs.count("miss") == 1
        assert cache_attrs.count("hit") == 1

    def test_compile_pipeline_nests_under_job(self):
        tracer = configure_tracer(enabled=True)
        service = CompileService(jobs=2)
        service.sweep(lud_requests(2))

        job_ids = {s.span_id for s in tracer.spans_named("service.job")}
        compile_spans = tracer.spans_named("service.compile")
        assert all(s.parent_id in job_ids for s in compile_spans)
        compile_ids = {s.span_id for s in compile_spans}
        caps = tracer.spans_named("compile.caps")
        assert caps and all(s.parent_id in compile_ids for s in caps)

    def test_disabled_tracer_leaves_sweep_untraced(self):
        reset_tracer()
        service = CompileService(jobs=2)
        service.sweep(lud_requests(2))
        assert len(get_tracer().spans()) == 0


class TestCliTrace:
    def test_difftest_chrome_trace_end_to_end(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        rc = main(["difftest", "--seeds", "3", "--jobs", "2",
                   "--trace", str(trace), "--trace-format", "chrome"])
        assert rc == 0
        assert "trace:" in capsys.readouterr().err

        data = json.loads(trace.read_text())
        xs = [e for e in data["traceEvents"] if e["ph"] == "X"]
        assert xs
        tss = [e["ts"] for e in xs]
        assert tss == sorted(tss)
        names = {e["name"] for e in xs}
        assert {"difftest.case", "service.compile"} <= names
        lanes = {e["args"]["name"] for e in data["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "thread_name"}
        assert any(n.startswith("repro-compile") for n in lanes)

        # acceptance: root spans account for >=95% of the wall-clock
        spans, metrics = load_trace(str(trace))
        assert timeline_coverage(spans) >= 0.95
        assert metrics is not None and metrics["gauges"]

    def test_heatmap_jsonl_trace_and_telemetry_subcommand(self, tmp_path,
                                                          capsys):
        trace = tmp_path / "trace.jsonl"
        rc = main(["heatmap", "--size", "256", "--trace", str(trace)])
        assert rc == 0
        capsys.readouterr()

        rc = main(["telemetry", str(trace)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "covered by root spans" in out
        assert "search.heatmap" in out
        assert "-- metrics --" in out

    def test_trace_flag_resets_global_tracer_after_run(self, tmp_path,
                                                       capsys):
        trace = tmp_path / "trace.jsonl"
        main(["heatmap", "--size", "256", "--trace", str(trace)])
        capsys.readouterr()
        assert get_tracer().enabled is False

    def test_untraced_run_writes_no_trace(self, capsys):
        rc = main(["heatmap", "--size", "256"])
        assert rc == 0
        assert "trace:" not in capsys.readouterr().err
        assert get_tracer().enabled is False
