"""Tests for the SHOC/STREAM/EPCC microbenchmarks (paper section VI)."""

import numpy as np
import pytest

from repro.compilers import CapsCompiler, PgiCompiler
from repro.devices import K40, PHI_5110P
from repro.kernels import MICRO_KERNELS, run_micro, validate_micro
from repro.runtime import Accelerator

ALL = sorted(MICRO_KERNELS)


@pytest.mark.parametrize("name", ALL)
class TestFunctional:
    def test_caps_cuda_correct(self, name):
        compiled = CapsCompiler().compile(MICRO_KERNELS[name].module(), "cuda")
        outputs, elapsed = run_micro(name, compiled, Accelerator(K40), 256)
        assert validate_micro(name, outputs, 256)
        assert elapsed > 0

    def test_caps_opencl_mic(self, name):
        compiled = CapsCompiler().compile(
            MICRO_KERNELS[name].module(), "opencl"
        )
        outputs, _ = run_micro(name, compiled, Accelerator(PHI_5110P), 256)
        if name == "shoc_reduction":
            # the CAPS reduction is broken on MIC (paper V-D2): the SHOC
            # reduction microbenchmark hits exactly that bug
            assert not validate_micro(name, outputs, 256)
        else:
            assert validate_micro(name, outputs, 256)

    def test_pgi_correct(self, name):
        compiled = PgiCompiler().compile(MICRO_KERNELS[name].module(), "cuda")
        outputs, _ = run_micro(name, compiled, Accelerator(K40), 256)
        assert validate_micro(name, outputs, 256)


class TestModelShapes:
    def _time(self, name, device, n=1 << 20):
        compiled = CapsCompiler().compile(
            MICRO_KERNELS[name].module(),
            "cuda" if device.kind.value == "gpu" else "opencl",
        )
        accelerator = Accelerator(device)
        micro = MICRO_KERNELS[name]
        inputs = micro.make_inputs(n)
        accelerator.declare(**{
            k: np.asarray(v).nbytes for k, v in inputs.items()
            if isinstance(v, np.ndarray)
        })
        scalars = {k: v for k, v in inputs.items()
                   if not isinstance(v, np.ndarray)}
        total = 0.0
        for kernel in compiled.kernels:
            total += accelerator.launch(kernel, **scalars).seconds
        return total

    def test_triad_is_memory_bound_on_gpu(self):
        compiled = CapsCompiler().compile(
            MICRO_KERNELS["stream_triad"].module(), "cuda"
        )
        accelerator = Accelerator(K40)
        n = 1 << 22
        accelerator.declare(a=n * 8, b=n * 8, c=n * 8)
        record = accelerator.launch(compiled.kernels[0], s=2.5, n=n)
        assert record.profile.coalesced_fraction == 1.0

    def test_gather_slower_than_triad_per_element(self):
        triad = self._time("stream_triad", K40)
        gather = self._time("shoc_md_gather", K40)
        assert gather > triad  # indirect gather does DEGREE x the loads

    def test_stencil_faster_on_gpu_than_mic(self):
        gpu = self._time("epcc_stencil", K40)
        mic = self._time("epcc_stencil", PHI_5110P)
        assert gpu < mic


class TestRegistry:
    def test_four_kernels(self):
        assert set(ALL) == {
            "stream_triad", "shoc_reduction", "epcc_stencil", "shoc_md_gather",
        }

    def test_sources_parse(self):
        for micro in MICRO_KERNELS.values():
            assert micro.module().kernels
