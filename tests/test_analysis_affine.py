"""Tests for the monomial-map (affine) canonicalizer."""

from repro.analysis.affine import (
    coefficient_of,
    constant_value,
    difference,
    evaluate,
    forms_equal,
    linearize,
    split_on,
    variables,
)
from repro.frontend import parse_expr


def lin(text):
    return linearize(parse_expr(text))


class TestLinearize:
    def test_constant(self):
        assert lin("7") == {(): 7}
        assert lin("0") == {}

    def test_variable(self):
        assert lin("i") == {("i",): 1}

    def test_linear_combination(self):
        assert lin("i * n + j") == {("i", "n"): 1, ("j",): 1}

    def test_cancellation(self):
        assert lin("i - i") == {}
        assert lin("2 * i - i - i") == {}

    def test_distribution(self):
        assert lin("(i + 1) * n") == {("i", "n"): 1, ("n",): 1}

    def test_nested_products(self):
        assert lin("i * j * 3") == {("i", "j"): 3}

    def test_monomials_sorted(self):
        assert lin("n * i") == lin("i * n")

    def test_unary_minus(self):
        assert lin("-i + i") == {}

    def test_division_unanalyzable(self):
        assert lin("i / 2") is None

    def test_indirect_unanalyzable(self):
        assert lin("e[i]") is None

    def test_call_unanalyzable(self):
        assert lin("min(i, j)") is None

    def test_paper_subscripts(self):
        # GE fan2 subscript: size*(i+1+t)+(j+t)
        form = lin("size * (i + 1 + t) + (j + t)")
        assert form == {
            ("i", "size"): 1, ("size",): 1, ("size", "t"): 1,
            ("j",): 1, ("t",): 1,
        }


class TestAlgebra:
    def test_split_on(self):
        form = lin("i * n + j + 4")
        with_i, without = split_on(form, "i")
        assert with_i == {("i", "n"): 1}
        assert without == {("j",): 1, (): 4}

    def test_coefficient_of(self):
        assert coefficient_of(lin("i * n + j"), "i") == {("n",): 1}
        assert coefficient_of(lin("3 * i + j"), "i") == {(): 3}
        assert coefficient_of(lin("j"), "i") == {}

    def test_coefficient_nonlinear(self):
        assert coefficient_of(lin("i * i"), "i") is None

    def test_constant_value(self):
        assert constant_value(lin("5")) == 5
        assert constant_value(lin("0")) == 0
        assert constant_value(lin("i")) is None

    def test_difference(self):
        assert difference(lin("i + 1"), lin("i")) == {(): 1}
        assert difference(lin("i"), lin("i")) == {}

    def test_forms_equal(self):
        assert forms_equal(lin("i * n + j"), lin("j + n * i"))
        assert not forms_equal(lin("i"), lin("j"))
        assert not forms_equal(None, lin("i"))

    def test_variables(self):
        assert variables(lin("i * n + j")) == {"i", "n", "j"}

    def test_evaluate(self):
        assert evaluate(lin("i * n + j + 2"), {"i": 3, "n": 10, "j": 4}) == 36

    def test_evaluate_matches_python(self):
        env = {"i": 5, "j": 7, "n": 11, "t": 2, "size": 13}
        text = "size * (i + 1 + t) + (j + t)"
        expected = env["size"] * (env["i"] + 1 + env["t"]) + env["j"] + env["t"]
        assert evaluate(lin(text), env) == expected
