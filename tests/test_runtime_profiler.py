"""The runtime profiler, including the attached compile-service section."""

import pytest

from repro.frontend import parse_module
from repro.runtime.profiler import ProfileEvent, Profiler
from repro.service import CompileService

SOURCE = """
#pragma acc kernels
void demo(float *a, const float *b, int n) {
  int i;
  #pragma acc loop independent
  for (i = 0; i < n; i++) {
    a[i] = b[i] * 2.0f;
  }
}
"""


class TestEvents:
    def test_record_and_counters(self):
        prof = Profiler()
        prof.record("h2d", "a", 0.001, nbytes=4096)
        prof.record("launch", "demo", 0.002, device="K40")
        prof.record("d2h", "a", 0.001, nbytes=4096)
        assert prof.memcpy_h2d == 1
        assert prof.memcpy_d2h == 1
        assert prof.kernel_launches == 1
        assert prof.device_kernel_launches() == 1
        assert prof.transfer_bytes() == 8192
        assert prof.total_s == pytest.approx(0.004)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Profiler().record("h2d", "a", -0.001)

    def test_time_by_kind(self):
        prof = Profiler()
        prof.record("h2d", "a", 0.001)
        prof.record("h2d", "b", 0.002)
        prof.record("launch", "demo", 0.004)
        assert prof.time_by_kind() == pytest.approx(
            {"h2d": 0.003, "launch": 0.004}
        )

    def test_event_str_mentions_kind_and_ms(self):
        event = ProfileEvent("h2d", "a", 0.0015, nbytes=64)
        assert "h2d" in str(event)
        assert "64 B" in str(event)
        assert "1.500 ms" in str(event)

    def test_clear(self):
        prof = Profiler()
        prof.record("h2d", "a", 0.001)
        prof.clear()
        assert prof.events == []
        assert prof.total_s == 0.0


class TestReport:
    def test_report_totals_line(self):
        prof = Profiler()
        prof.record("h2d", "a", 0.001)
        prof.record("launch", "demo", 0.002)
        text = prof.report()
        assert "1 H2D" in text
        assert "1 launches" in text

    def test_attach_service_adds_cache_section(self):
        service = CompileService()
        module = parse_module(SOURCE, "demo")
        service.compile(module, "caps", "cuda")
        service.compile(module, "caps", "cuda")

        prof = Profiler()
        prof.record("launch", "demo", 0.002, device="K40")
        prof.attach_service(service)
        text = prof.report()
        assert "compile service" in text
        assert "1 cache hits" in text

    def test_attach_service_rejects_non_services(self):
        with pytest.raises(TypeError):
            Profiler().attach_service(object())

    def test_report_without_service_has_no_cache_section(self):
        prof = Profiler()
        prof.record("launch", "demo", 0.002)
        assert "compile service" not in prof.report()
