"""The runtime profiler, including the attached compile-service section."""

import threading

import pytest

from repro.frontend import parse_module
from repro.runtime.profiler import ProfileEvent, Profiler
from repro.service import CompileService
from repro.telemetry.spans import configure_tracer, reset_tracer

SOURCE = """
#pragma acc kernels
void demo(float *a, const float *b, int n) {
  int i;
  #pragma acc loop independent
  for (i = 0; i < n; i++) {
    a[i] = b[i] * 2.0f;
  }
}
"""


class TestEvents:
    def test_record_and_counters(self):
        prof = Profiler()
        prof.record("h2d", "a", 0.001, nbytes=4096)
        prof.record("launch", "demo", 0.002, device="K40")
        prof.record("d2h", "a", 0.001, nbytes=4096)
        assert prof.memcpy_h2d == 1
        assert prof.memcpy_d2h == 1
        assert prof.kernel_launches == 1
        assert prof.device_kernel_launches() == 1
        assert prof.transfer_bytes() == 8192
        assert prof.total_s == pytest.approx(0.004)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Profiler().record("h2d", "a", -0.001)

    def test_time_by_kind(self):
        prof = Profiler()
        prof.record("h2d", "a", 0.001)
        prof.record("h2d", "b", 0.002)
        prof.record("launch", "demo", 0.004)
        assert prof.time_by_kind() == pytest.approx(
            {"h2d": 0.003, "launch": 0.004}
        )

    def test_event_str_mentions_kind_and_ms(self):
        event = ProfileEvent("h2d", "a", 0.0015, nbytes=64)
        assert "h2d" in str(event)
        assert "64 B" in str(event)
        assert "1.500 ms" in str(event)

    def test_clear(self):
        prof = Profiler()
        prof.record("h2d", "a", 0.001)
        prof.clear()
        assert prof.events == []
        assert prof.total_s == 0.0


class TestConcurrency:
    def test_concurrent_recording_loses_no_events(self):
        """Regression: one Profiler shared across sweep workers must not
        drop or corrupt events (record/query are lock-guarded)."""
        prof = Profiler()
        nthreads, per_thread = 4, 500

        def work(i):
            for k in range(per_thread):
                prof.record("launch", f"t{i}k{k}", 0.001)
                prof.record("h2d", f"t{i}k{k}", 0.0005, nbytes=8)
                # interleave reads with writes: must never raise
                prof.time_by_kind()
                prof.total_s

        threads = [threading.Thread(target=work, args=(i,))
                   for i in range(nthreads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        expected = nthreads * per_thread
        assert prof.kernel_launches == expected
        assert prof.memcpy_h2d == expected
        assert prof.transfer_bytes() == expected * 8
        assert prof.total_s == pytest.approx(expected * 0.0015)

    def test_snapshot_events_is_a_stable_copy(self):
        prof = Profiler()
        prof.record("h2d", "a", 0.001)
        snap = prof.snapshot_events()
        prof.record("h2d", "b", 0.001)
        assert len(snap) == 1
        assert len(prof.snapshot_events()) == 2


class TestTracerBridge:
    def test_record_bridges_modeled_spans_when_tracing(self):
        tracer = configure_tracer(enabled=True)
        try:
            prof = Profiler()
            prof.record("launch", "demo", 0.002, device="K40")
            prof.record("h2d", "a", 0.001, nbytes=64)
            launch, = tracer.spans_named("runtime.launch")
            assert launch.category == "modeled"
            assert launch.duration_s == pytest.approx(0.002)
            assert launch.attributes["label"] == "demo"
            h2d, = tracer.spans_named("runtime.h2d")
            assert h2d.attributes["nbytes"] == 64
        finally:
            reset_tracer()

    def test_no_spans_when_tracing_disabled(self):
        reset_tracer()
        from repro.telemetry.spans import get_tracer
        prof = Profiler()
        prof.record("launch", "demo", 0.002)
        assert get_tracer().spans() == []


class TestReport:
    def test_report_totals_line(self):
        prof = Profiler()
        prof.record("h2d", "a", 0.001)
        prof.record("launch", "demo", 0.002)
        text = prof.report()
        assert "1 H2D" in text
        assert "1 launches" in text

    def test_attach_service_adds_cache_section(self):
        service = CompileService()
        module = parse_module(SOURCE, "demo")
        service.compile(module, "caps", "cuda")
        service.compile(module, "caps", "cuda")

        prof = Profiler()
        prof.record("launch", "demo", 0.002, device="K40")
        prof.attach_service(service)
        text = prof.report()
        assert "compile service" in text
        assert "1 cache hits" in text

    def test_attach_service_rejects_non_services(self):
        with pytest.raises(TypeError):
            Profiler().attach_service(object())

    def test_report_without_service_has_no_cache_section(self):
        prof = Profiler()
        prof.record("launch", "demo", 0.002)
        assert "compile service" not in prof.report()
