"""Property tests on the daemon wire protocol (docs/SERVER.md).

The contracts a client can rely on:

* framing round trip — any JSON-safe message survives
  ``encode_frame -> decode_frame`` unchanged;
* compile points round trip **fingerprint-stably** — a
  :class:`CompileRequest` rebuilt from its wire form has the same
  fingerprint as the original (the determinism contract's foundation);
* sweep slots round trip — artifacts and :class:`JobError` slots both
  survive the wire with every structured field intact;
* malformed frames raise :class:`ProtocolError` (which the daemon turns
  into a 400 response) rather than anything that would kill the
  connection;
* error responses map to the right exception type: 429/503 become
  :class:`ServerRejected`, everything else :class:`ServerError`.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compilers.flags import FlagSet
from repro.frontend import parse_module
from repro.service.fingerprint import CompileRequest
from repro.service.scheduler import JobError
from repro.server import protocol
from repro.server.protocol import (
    ProtocolError,
    ServerError,
    ServerRejected,
    decode_frame,
    encode_frame,
    point_from_wire,
    point_to_wire,
    slot_from_wire,
    slot_to_wire,
)

SOURCE = """
#pragma acc kernels
void demo(float *a, const float *b, int n) {
  int i;
  #pragma acc loop independent
  for (i = 0; i < n; i++) {
    a[i] = b[i] * 2.0f;
  }
}
"""


def demo_request(**kwargs):
    return CompileRequest(parse_module(SOURCE, "demo"), "caps", "cuda",
                          **kwargs)


# --------------------------------------------------------------------------
# framing
# --------------------------------------------------------------------------

_json_scalars = st.one_of(
    st.none(), st.booleans(), st.integers(min_value=-(2**31), max_value=2**31),
    st.floats(allow_nan=False, allow_infinity=False), st.text(max_size=40),
)
_json_values = st.recursive(
    _json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=10), children, max_size=4),
    ),
    max_leaves=20,
)
_messages = st.dictionaries(st.text(min_size=1, max_size=12), _json_values,
                            max_size=6)


@settings(max_examples=100, deadline=None)
@given(_messages)
def test_frame_round_trip(message):
    assert decode_frame(encode_frame(message)) == message


def test_frames_are_single_lines():
    frame = encode_frame({"op": "hello", "note": "a\nb"})
    assert frame.endswith(b"\n")
    assert frame.count(b"\n") == 1  # embedded newlines stay escaped


@pytest.mark.parametrize("garbage", [
    b"", b"\n", b"not json\n", b"[1, 2, 3]\n", b'"just a string"\n',
    b"{truncated\n", b"\xff\xfe\n", b"42\n", b"null\n",
])
def test_malformed_frames_raise_protocol_error(garbage):
    with pytest.raises(ProtocolError):
        decode_frame(garbage)


@settings(max_examples=50, deadline=None)
@given(st.binary(max_size=60))
def test_arbitrary_bytes_never_raise_anything_else(data):
    """Any byte garbage either decodes (valid frame) or raises exactly
    ProtocolError — the daemon's keep-the-connection-alive guarantee."""
    try:
        message = decode_frame(data)
    except ProtocolError:
        return
    assert isinstance(message, dict)


@pytest.mark.parametrize("bad", [
    {},                                # no op
    {"op": 7},                         # op not a string
    {"op": "sweep", "client": ""},     # empty client
    {"op": "sweep", "client": 1},      # client not a string
    {"op": "sweep", "id": [1]},        # id not int/str
])
def test_validate_request_rejects_bad_envelopes(bad):
    with pytest.raises(ProtocolError):
        protocol.validate_request(bad)


def test_validate_request_defaults_client():
    assert protocol.validate_request({"op": "hello"}) == ("hello", "anonymous")


# --------------------------------------------------------------------------
# compile points: the fingerprint-stable round trip
# --------------------------------------------------------------------------

_flag_sets = st.one_of(
    st.none(),
    st.builds(
        FlagSet,
        compiler=st.just("PGI"),
        flags=st.lists(
            st.sampled_from(["-O4", "-fast", "-Mvect", "-Munroll"]),
            max_size=3, unique=True,
        ).map(tuple),
    ),
    st.builds(
        FlagSet,
        compiler=st.just("CAPS"),
        gridify_blocksize=st.one_of(
            st.none(),
            st.tuples(st.integers(1, 1024), st.integers(1, 64)),
        ),
    ),
)


@settings(max_examples=30, deadline=None)
@given(flags=_flag_sets,
       label=st.text(max_size=20),
       compiler=st.sampled_from(["caps", "pgi"]),
       target=st.sampled_from(["cuda", "opencl"]))
def test_point_round_trip_is_fingerprint_stable(flags, label, compiler,
                                                target):
    request = CompileRequest(parse_module(SOURCE, "demo"), compiler, target,
                             flags, None, label)
    rebuilt = point_from_wire(point_to_wire(request))
    assert rebuilt.compiler == request.compiler
    assert rebuilt.target == request.target
    assert rebuilt.flags == request.flags
    assert rebuilt.label == request.label
    assert rebuilt.fingerprint == request.fingerprint


def test_point_round_trip_carries_device():
    from repro.devices import K40

    request = demo_request(device=K40)
    rebuilt = point_from_wire(point_to_wire(request))
    assert rebuilt.device is not None
    assert rebuilt.device.name == K40.name
    assert rebuilt.fingerprint == request.fingerprint


@pytest.mark.parametrize("corrupt", [
    {},
    {"source": SOURCE},                                   # missing fields
    {"source": "", "compiler": "caps", "target": "cuda"},  # empty source
    {"source": "int x = ;", "compiler": "caps", "target": "cuda"},
    {"source": SOURCE, "compiler": "caps", "target": "cuda",
     "device": "no-such-device"},
    {"source": SOURCE, "compiler": "caps", "target": "cuda",
     "flags": {"no_compiler": True}},
    "not even a dict",
])
def test_bad_points_raise_protocol_error(corrupt):
    with pytest.raises(ProtocolError):
        point_from_wire(corrupt)


# --------------------------------------------------------------------------
# sweep slots
# --------------------------------------------------------------------------

def test_artifact_slot_round_trip():
    from repro.core.method import compile_stage

    artifact = compile_stage(parse_module(SOURCE, "demo"), "caps", "cuda")
    rebuilt = slot_from_wire(slot_to_wire(artifact))
    assert rebuilt.compiler == artifact.compiler
    assert rebuilt.log == artifact.log
    assert [k.ptx.render() for k in rebuilt.kernels] == \
        [k.ptx.render() for k in artifact.kernels]


@settings(max_examples=40, deadline=None)
@given(label=st.text(max_size=20),
       fingerprint=st.text(st.sampled_from("0123456789abcdef"), max_size=16),
       kind=st.sampled_from(["transient", "fatal", "timeout"]),
       message=st.text(max_size=60),
       seconds=st.floats(min_value=0, max_value=1e3, allow_nan=False))
def test_job_error_slot_round_trip(label, fingerprint, kind, message,
                                   seconds):
    error = JobError(label, fingerprint, kind, message, seconds)
    rebuilt = slot_from_wire(slot_to_wire(error))
    assert isinstance(rebuilt, JobError)
    assert (rebuilt.label, rebuilt.fingerprint, rebuilt.kind,
            rebuilt.message, rebuilt.seconds) == \
        (label, fingerprint, kind, message, seconds)


@pytest.mark.parametrize("bad", [
    {}, {"status": "ok"}, {"status": "maybe"}, {"status": "ok",
                                                "artifact": "!!!not-b64!!!"},
    [],
])
def test_bad_slots_raise_protocol_error(bad):
    with pytest.raises(ProtocolError):
        slot_from_wire(bad)


# --------------------------------------------------------------------------
# error responses -> typed exceptions
# --------------------------------------------------------------------------

def test_ok_response_passes_through():
    response = protocol.ok_response(3, answer=42)
    assert protocol.raise_for_error(response) is response


@pytest.mark.parametrize("code,expected", [
    (protocol.REJECTED, ServerRejected),
    (protocol.DRAINING, ServerRejected),
    (protocol.BAD_REQUEST, ServerError),
    (protocol.UNKNOWN_OP, ServerError),
    (protocol.INTERNAL, ServerError),
])
def test_error_codes_map_to_exception_types(code, expected):
    response = protocol.error_response(1, code, "some-kind", "why")
    with pytest.raises(expected) as excinfo:
        protocol.raise_for_error(response)
    assert excinfo.value.code == code
    assert excinfo.value.kind == "some-kind"
