"""Tests for the experiment scaffolding helpers."""

from repro.experiments.common import (
    Claim,
    ExperimentResult,
    ordering_claim,
    ratio_claim,
    size_for,
)


class TestClaims:
    def test_ratio_claim_bounds(self):
        assert ratio_claim("x", 1.5, 1.0, 2.0).passed
        assert not ratio_claim("x", 2.5, 1.0, 2.0).passed
        assert not ratio_claim("x", 0.5, 1.0, 2.0).passed

    def test_ordering_claim_margin(self):
        assert ordering_claim("x", 1.0, 10.0, margin=5.0).passed
        assert not ordering_claim("x", 1.0, 4.0, margin=5.0).passed

    def test_str_marks(self):
        assert "[PASS]" in str(Claim("ok", True))
        assert "[FAIL]" in str(Claim("bad", False, "why"))
        assert "why" in str(Claim("bad", False, "why"))


class TestExperimentResult:
    def test_all_passed_and_failed(self):
        result = ExperimentResult(
            "X", "t", claims=[Claim("a", True), Claim("b", False)]
        )
        assert not result.all_passed
        assert len(result.failed_claims()) == 1

    def test_report_contains_everything(self):
        result = ExperimentResult("X", "title", rendered="DATA",
                                  claims=[Claim("a", True)])
        text = result.report()
        assert "X" in text and "DATA" in text and "[PASS]" in text


class TestSizes:
    def test_paper_scale_larger(self):
        for name in ("lud", "ge", "bfs", "bp", "hydro"):
            assert size_for(name, True) > size_for(name, False)
