"""Functional validation matrix for the five benchmarks.

Every (benchmark, stage, compiler, device) combination executes
functionally at test size and must match the NumPy reference — except the
one combination the paper reports as broken: the CAPS reduction on MIC.
"""

import numpy as np
import pytest

from repro.compilers import (
    CapsCompiler,
    CompilationError,
    PgiCompiler,
    compile_opencl,
)
from repro.devices import K40, PHI_5110P
from repro.kernels import BENCHMARKS, TABLE_IV_ROWS, get_benchmark
from repro.runtime import Accelerator

ALL = sorted(BENCHMARKS)


@pytest.fixture(scope="module")
def cases():
    """(benchmark, inputs, expected) per benchmark, computed once."""
    out = {}
    for name in ALL:
        bench = get_benchmark(name)
        inputs = bench.inputs(bench.meta.test_size)
        out[name] = (bench, inputs, bench.reference(inputs))
    return out


class TestRegistry:
    def test_lookup(self):
        assert get_benchmark("lud").meta.short == "lud"
        with pytest.raises(KeyError):
            get_benchmark("nbody")

    def test_table_iv_rows(self):
        assert len(TABLE_IV_ROWS) == 4

    def test_metadata_sizes(self):
        for name in ALL:
            meta = get_benchmark(name).meta
            assert meta.test_size < meta.paper_size


class TestReferences:
    def test_lud_reference_factorizes(self, cases):
        bench, inputs, expected = cases["lud"]
        n = int(inputs["size"])
        lu = expected["a"].reshape(n, n)
        L = np.tril(lu, -1) + np.eye(n)
        U = np.triu(lu)
        original = np.asarray(inputs["a"]).reshape(n, n)
        assert np.allclose(L @ U, original)

    def test_ge_reference_eliminates(self, cases):
        bench, inputs, expected = cases["ge"]
        n = int(inputs["size"])
        a = expected["a"].reshape(n, n)
        assert np.allclose(np.tril(a, -1), 0.0, atol=1e-9)

    def test_bfs_reference_reaches_root(self, cases):
        bench, inputs, expected = cases["bfs"]
        assert expected["cost"][0] == 0
        assert (expected["cost"] >= -1).all()

    def test_bp_reference_squash_bounds(self, cases):
        bench, inputs, expected = cases["bp"]
        assert ((expected["l2"][1:] > 0) & (expected["l2"][1:] < 1)).all()

    def test_hydro_reference_conserves_mass_interior(self, cases):
        bench, inputs, _ = cases["hydro"]
        out = bench.reference(inputs, steps=1)
        assert np.isfinite(out["rho"]).all()
        assert (out["rho"] > 0).all()


@pytest.mark.parametrize("name", ALL)
class TestCapsCudaStages:
    def test_all_stages_correct_on_gpu(self, cases, name):
        bench, inputs, expected = cases[name]
        for stage, module in bench.stages().items():
            compiled = CapsCompiler().compile(module, "cuda")
            acc = Accelerator(K40)
            res = bench.run(acc, compiled, bench.meta.test_size,
                            inputs=bench.inputs(bench.meta.test_size))
            assert bench.validate(res.outputs, expected), (name, stage)


@pytest.mark.parametrize("name", ALL)
class TestCapsOpenclMic:
    def test_stages_on_mic(self, cases, name):
        bench, inputs, expected = cases[name]
        for stage, module in bench.stages().items():
            compiled = CapsCompiler().compile(module, "opencl")
            acc = Accelerator(PHI_5110P)
            res = bench.run(acc, compiled, bench.meta.test_size,
                            inputs=bench.inputs(bench.meta.test_size))
            ok = bench.validate(res.outputs, expected)
            if name == "bp" and stage == "reduction":
                # the paper's broken CAPS reduction on MIC (V-D2)
                assert not ok
            else:
                assert ok, (name, stage)


@pytest.mark.parametrize("name", ALL)
class TestPgi:
    def test_base_stage(self, cases, name):
        bench, inputs, expected = cases[name]
        try:
            compiled = PgiCompiler().compile(bench.stages()["base"], "cuda")
        except CompilationError:
            assert name == "hydro"  # the paper's PGI failure (V-E)
            return
        acc = Accelerator(K40)
        res = bench.run(acc, compiled, bench.meta.test_size,
                        inputs=bench.inputs(bench.meta.test_size))
        assert bench.validate(res.outputs, expected)


@pytest.mark.parametrize("name", [n for n in ALL if n != "lud"])
class TestOpenCL:
    def test_gpu_and_mic(self, cases, name):
        bench, inputs, expected = cases[name]
        for kind, device in (("gpu", K40), ("mic", PHI_5110P)):
            compiled = compile_opencl(bench.opencl_program(), kind)
            acc = Accelerator(device)
            res = bench.run(acc, compiled, bench.meta.test_size,
                            inputs=bench.inputs(bench.meta.test_size))
            assert bench.validate(res.outputs, expected), (name, kind)


def test_lud_has_no_opencl():
    # "different algorithms" (paper V-A1)
    assert get_benchmark("lud").opencl_program() is None
