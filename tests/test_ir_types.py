"""Tests for repro.ir.types."""

import pytest

from repro.ir.types import (
    BOOL,
    FLOAT32,
    FLOAT64,
    INT32,
    INT64,
    ArrayType,
    DType,
    ScalarType,
    promote,
)


class TestDType:
    def test_integer_classification(self):
        assert DType.INT32.is_integer
        assert DType.INT64.is_integer
        assert DType.BOOL.is_integer
        assert not DType.FLOAT32.is_integer

    def test_float_classification(self):
        assert DType.FLOAT32.is_float
        assert DType.FLOAT64.is_float
        assert not DType.INT32.is_float

    def test_sizes(self):
        assert DType.INT32.size_bytes == 4
        assert DType.INT64.size_bytes == 8
        assert DType.FLOAT32.size_bytes == 4
        assert DType.FLOAT64.size_bytes == 8
        assert DType.BOOL.size_bytes == 1

    def test_c_names_round_trip(self):
        for dtype in DType:
            assert DType.from_c_name(dtype.c_name) is dtype

    def test_unknown_c_name(self):
        with pytest.raises(KeyError):
            DType.from_c_name("quadruple")


class TestScalarType:
    def test_str(self):
        assert str(FLOAT32) == "float"
        assert str(INT64) == "long"

    def test_size(self):
        assert FLOAT64.size_bytes == 8

    def test_equality(self):
        assert ScalarType(DType.INT32) == INT32
        assert INT32 != INT64


class TestArrayType:
    def test_rank_validation(self):
        with pytest.raises(ValueError):
            ArrayType(DType.FLOAT32, rank=0)

    def test_str(self):
        assert str(ArrayType(DType.FLOAT32)) == "float*"
        assert str(ArrayType(DType.FLOAT64, 2)) == "double**"

    def test_element_size(self):
        assert ArrayType(DType.FLOAT64, 2).size_bytes == 8


class TestPromote:
    def test_int_int(self):
        assert promote(DType.INT32, DType.INT32) is DType.INT32

    def test_int_long(self):
        assert promote(DType.INT32, DType.INT64) is DType.INT64

    def test_int_float(self):
        assert promote(DType.INT32, DType.FLOAT32) is DType.FLOAT32

    def test_float_double(self):
        assert promote(DType.FLOAT32, DType.FLOAT64) is DType.FLOAT64

    def test_bool_promotes_up(self):
        assert promote(DType.BOOL, DType.INT32) is DType.INT32

    def test_symmetry(self):
        for a in DType:
            for b in DType:
                assert promote(a, b) is promote(b, a)

    def test_bool_constants_exist(self):
        assert BOOL.dtype is DType.BOOL
