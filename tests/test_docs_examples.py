"""Docs-as-tests: execute every fenced ``python -m repro ...`` example.

Every fenced code block in README.md and docs/*.md is scanned for CLI
invocations (both the ``python -m repro`` and ``python -m repro.cli``
spellings).  Each command is normalized to a fast problem size — the
docs advertise paper-scale sweeps — and then actually executed through
:func:`repro.cli.main` in a scratch working directory.  A doc example
that stops parsing, references a removed flag, or exits non-zero fails
this suite, so the documentation cannot silently rot.
"""

import re
import shlex
from pathlib import Path

import pytest

from repro.cli import main

ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = [ROOT / "README.md"] + sorted((ROOT / "docs").glob("*.md"))

#: normalization caps so the docs suite stays tier-1 fast
SEED_CAP = 3
SIZE_CAP = 512
BENCH_SIZES = {"bfs": 16384, "bp": 16384}  # graph/vector kernels; else 128

KERNEL_C = """
#pragma acc kernels
void demo(float *a, const float *b, int n) {
  int i;
  #pragma acc loop independent
  for (i = 0; i < n; i++) {
    a[i] = b[i] * 2.0f;
  }
}
"""

# the saxpy template docs/JIT.md specializes by name (jit-stats)
SAXPY_TEMPLATE_C = """
void saxpy(float* y, const float* x, float a, int n) {
  #pragma acc parallel
  #pragma acc loop independent
  for (i = 0; i < $n; i++) {
    y[i] = a * x[i] + y[i];
  }
}
"""

# the shape of a shrunk reproducer (docs/DIFFTEST.md): any mini-C file
# replays; a divergence-free one classifies as explained (exit 0)
SEED42_MIN_C = """
// difftest reproducer placeholder for the docs examples
void k0(double *b) {
    double s0 = 0.0;
    b[2] = s0;
}
"""


def extract_commands(path: Path) -> list[list[str]]:
    """All ``python -m repro[.cli]`` argv lists in *path*'s fenced blocks."""
    commands = []
    in_fence = False
    pending = ""
    for raw in path.read_text().splitlines():
        if raw.strip().startswith("```"):
            in_fence = not in_fence
            pending = ""
            continue
        if not in_fence:
            continue
        line = pending + raw.strip()
        if line.endswith("\\"):
            pending = line[:-1] + " "
            continue
        pending = ""
        if line.startswith("$ "):
            line = line[2:]
        if not re.match(r"python -m repro(\.cli)? ", line):
            continue
        tokens = shlex.split(line, comments=True)
        commands.append(tokens[3:])  # drop "python -m repro[.cli]"
    return commands


def _cap_flag(argv: list[str], flag: str, cap: int) -> list[str]:
    if flag in argv:
        i = argv.index(flag) + 1
        argv[i] = str(min(int(argv[i]), cap))
    return argv


def _force_flag(argv: list[str], flag: str, value: int) -> list[str]:
    if flag in argv:
        return _cap_flag(argv, flag, value)
    return argv + [flag, str(value)]


def normalized(argv: list[str]) -> list[str]:
    """Shrink a documented command to a tier-1-fast equivalent."""
    argv = list(argv)
    cmd = argv[0]
    if cmd == "experiment":
        argv = ["table2" if a == "all" else a for a in argv]
    argv = _cap_flag(argv, "--seeds", SEED_CAP)
    if cmd in ("heatmap", "autotune"):
        argv = _force_flag(argv, "--size", SIZE_CAP)
    elif cmd == "bench":
        argv = _force_flag(argv, "--size", BENCH_SIZES.get(argv[1], 128))
    elif cmd == "matrix":
        # the full default matrix is already sub-second at the families'
        # test sizes; only cap a documented paper-scale sweep
        argv = _cap_flag(argv, "--size", 64)
    elif cmd == "serve":
        # a documented daemon would block the suite: run its self-test
        # (real sockets, ephemeral port) at a tiny grid instead
        if "--self-test" not in argv:
            argv.append("--self-test")
        argv = _force_flag(argv, "--points", 4)
        argv = _force_flag(argv, "--clients", 2)
    elif cmd == "client":
        # documented clients talk to a long-lived daemon; the suite
        # spawns an ephemeral in-process one instead
        if "--spawn" not in argv:
            argv.insert(1, "--spawn")
        argv = _cap_flag(argv, "--points", 4)
    return argv


def reset_process_state() -> None:
    """Undo everything a CLI command can leave behind process-wide."""
    from repro.runtime.executor import (
        clear_kernel_cache,
        configure_plan_cache,
        set_default_backend,
    )
    from repro.service import reset_default_service
    from repro.telemetry import reset_registry, reset_tracer

    reset_default_service()
    set_default_backend("scalar")
    configure_plan_cache(None)
    clear_kernel_cache(memory_only=True)
    reset_tracer()
    reset_registry()


@pytest.fixture(scope="module")
def docs_cwd(tmp_path_factory):
    """One scratch directory shared by all doc files, pre-seeded with the
    input files the examples reference by name."""
    cwd = tmp_path_factory.mktemp("docs-examples")
    (cwd / "kernel.c").write_text(KERNEL_C)
    (cwd / "saxpy_t.c").write_text(SAXPY_TEMPLATE_C)
    failures = cwd / "difftest-failures"
    failures.mkdir()
    (failures / "seed42_min.c").write_text(SEED42_MIN_C)
    return cwd


class TestExtraction:
    def test_docs_actually_contain_examples(self):
        """The audit floor: if a rewrite drops the runnable examples (or
        the extractor regresses), fail loudly instead of passing vacuously."""
        per_file = {str(p.relative_to(ROOT)): len(extract_commands(p))
                    for p in DOC_FILES}
        assert sum(per_file.values()) >= 25, per_file
        for required in ("README.md", "SERVICE.md", "FAULTS.md",
                         "TELEMETRY.md", "DIFFTEST.md", "EXECUTOR.md",
                         "JIT.md", "WORKLOADS.md"):
            assert any(n.endswith(required) and count > 0
                       for n, count in per_file.items()), per_file

    def test_continuation_lines_are_joined(self):
        cmds = extract_commands(ROOT / "docs" / "TELEMETRY.md")
        assert any("--trace-format" in c and "difftest" in c for c in cmds)

    def test_index_reaches_every_docs_page(self):
        """Cross-link audit: docs/README.md links every docs/*.md page,
        and every page links back to the index."""
        index = (ROOT / "docs" / "README.md").read_text()
        for page in (ROOT / "docs").glob("*.md"):
            if page.name == "README.md":
                continue
            assert f"({page.name})" in index, f"{page.name} not in index"
            assert "README.md" in page.read_text(), \
                f"{page.name} has no link back to the index"
        readme = (ROOT / "README.md").read_text()
        assert "docs/ARCHITECTURE.md" in readme
        assert "docs/README.md" in readme


@pytest.mark.parametrize(
    "doc", DOC_FILES, ids=[p.name if p.parent == ROOT else f"docs-{p.name}"
                           for p in DOC_FILES]
)
def test_doc_examples_run(doc, docs_cwd, monkeypatch, capsys):
    """Run the file's examples in document order (later commands may read
    files earlier ones wrote, e.g. the telemetry trace)."""
    commands = extract_commands(doc)
    if not commands:
        pytest.skip(f"{doc.name} has no runnable examples")
    monkeypatch.chdir(docs_cwd)
    for argv in commands:
        argv = normalized(argv)
        reset_process_state()
        try:
            code = main(argv)
        finally:
            reset_process_state()
        out = capsys.readouterr()
        assert code == 0, (
            f"documented command failed in {doc.name}: "
            f"`python -m repro {' '.join(argv)}` -> exit {code}\n"
            f"stdout:\n{out.out}\nstderr:\n{out.err}"
        )
