"""Tests for the ablation override mechanism."""

import pytest

from repro.analysis.patterns import OpCounts
from repro.devices import PHI_5110P
from repro.perf import LaunchConfig, WorkProfile, estimate_time, model_overrides
from repro.perf import model


def _mic_time():
    profile = WorkProfile(
        items=1 << 18, ops=OpCounts(flops_add=4), bytes_per_item=0,
        vectorizable_fraction=0.0,
    )
    config = LaunchConfig(grid=(240, 1, 1), block=(4, 1, 1))
    return estimate_time(PHI_5110P, config, profile).total_s


class TestModelOverrides:
    def test_override_changes_result(self):
        base = _mic_time()
        with model_overrides(MIC_SCALARIZED_ITEM_OVERHEAD=0.0):
            ablated = _mic_time()
        assert ablated < base / 5

    def test_restored_after_context(self):
        before = model.MIC_SCALARIZED_ITEM_OVERHEAD
        with model_overrides(MIC_SCALARIZED_ITEM_OVERHEAD=0.0):
            pass
        assert model.MIC_SCALARIZED_ITEM_OVERHEAD == before
        assert _mic_time() == pytest.approx(_mic_time())

    def test_restored_after_exception(self):
        before = model.CACHE_ALPHA
        with pytest.raises(RuntimeError):
            with model_overrides(CACHE_ALPHA=99.0):
                raise RuntimeError("boom")
        assert model.CACHE_ALPHA == before

    def test_unknown_constant_rejected(self):
        with pytest.raises(KeyError):
            with model_overrides(TOTALLY_FAKE=1.0):
                pass

    def test_multiple_overrides(self):
        with model_overrides(CACHE_ALPHA=0.0, CACHE_CAP=1.0):
            assert model.CACHE_ALPHA == 0.0 and model.CACHE_CAP == 1.0
