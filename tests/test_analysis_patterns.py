"""Tests for op counting, stride classification, and trip counts."""

from repro.analysis.patterns import (
    StrideKind,
    access_patterns,
    classify_access,
    coalescing_fraction,
    count_ops,
    trip_count,
)
from repro.frontend import parse_expr, parse_kernel
from repro.ir.expr import ArrayRef


def ref(text):
    expr = parse_expr(text)
    assert isinstance(expr, ArrayRef)
    return expr


class TestClassifyAccess:
    def test_unit(self):
        assert classify_access(ref("a[i]"), "i").stride is StrideKind.UNIT

    def test_unit_with_offset(self):
        assert classify_access(ref("a[i + t + 1]"), "i").stride is StrideKind.UNIT

    def test_constant(self):
        access = classify_access(ref("a[2 * i]"), "i")
        assert access.stride is StrideKind.CONSTANT and access.stride_elems == 2

    def test_symbolic_row_pitch(self):
        assert classify_access(ref("a[i * n + j]"), "i").stride is StrideKind.SYMBOLIC

    def test_zero_broadcast(self):
        access = classify_access(ref("a[j]"), "i")
        assert access.stride is StrideKind.ZERO and access.coalesced

    def test_indirect(self):
        assert classify_access(ref("c[e[i]]"), "i").stride is StrideKind.INDIRECT

    def test_multi_dim_contiguous_last(self):
        assert classify_access(ref("q[1][i]"), "i").stride is StrideKind.UNIT

    def test_multi_dim_outer_strided(self):
        assert classify_access(ref("q[i][0]"), "i").stride is StrideKind.SYMBOLIC


class TestCoalescing:
    def test_fully_coalesced(self):
        k = parse_kernel(
            "void f(float *a, const float *b, int n) { int i; "
            "for (i = 0; i < n; i++) a[i] = b[i]; }"
        )
        loop = k.loops()[0]
        assert coalescing_fraction(loop.body, "i") == 1.0

    def test_column_access_uncoalesced(self):
        k = parse_kernel(
            "void f(float *a, int n) { int i; for (i = 0; i < n; i++) "
            "a[i * n] = 0.0f; }"
        )
        assert coalescing_fraction(k.loops()[0].body, "i") == 0.0

    def test_empty_body_is_one(self):
        k = parse_kernel("void f(int n) { int i; for (i = 0; i < n; i++) ; }")
        assert coalescing_fraction(k.loops()[0].body, "i") == 1.0


class TestCountOps:
    def test_simple_stream(self):
        k = parse_kernel(
            "void f(float *a, const float *b, int n) { int i; "
            "for (i = 0; i < n; i++) a[i] = b[i] * 2.0f; }"
        )
        counts = count_ops(k.body, {"n": 10})
        assert counts.stores == 10
        assert counts.loads == 10
        assert counts.flops_mul == 10

    def test_nested_triangular(self):
        k = parse_kernel(
            "void f(float *a, int n) { int i, j; for (i = 0; i < n; i++) "
            "for (j = 0; j < i; j++) a[i * n + j] = 0.0f; }"
        )
        counts = count_ops(k.body, {"n": 100})
        # midpoint heuristic: inner trips ~ n/2 per outer iteration
        assert 0.35 * 100 * 100 < counts.stores < 0.65 * 100 * 100

    def test_cse_dedupes_repeated_loads(self):
        k = parse_kernel(
            "void f(float *a, const float *b) { a[0] = b[1] + b[1] + b[1]; }"
        )
        counts = count_ops(k.body)
        assert counts.loads == 1

    def test_cse_resets_across_loop_iterations(self):
        k = parse_kernel(
            "void f(float *a, const float *b, int n) { int i; "
            "for (i = 0; i < n; i++) a[i] = b[i] + b[i]; }"
        )
        counts = count_ops(k.body, {"n": 4})
        assert counts.loads == 4  # one b[i] per iteration, deduped within

    def test_divergent_if_charges_both_sides(self):
        k = parse_kernel(
            "void f(float *a, int n) { int i; for (i = 0; i < n; i++) "
            "{ if (i > 2) a[i] = 1.0f; else a[i] = 2.0f; } }"
        )
        both = count_ops(k.body, {"n": 8}, divergent=True)
        half = count_ops(k.body, {"n": 8}, divergent=False)
        assert both.stores == 16 and half.stores == 8

    def test_special_intrinsics(self):
        k = parse_kernel("void f(float *a) { a[0] = sqrt(a[1]) + exp(a[2]); }")
        counts = count_ops(k.body)
        assert counts.flops_special == 2

    def test_division_counted(self):
        k = parse_kernel("void f(float *a) { a[0] = a[1] / a[2]; }")
        assert count_ops(k.body).flops_div == 1


class TestTripCount:
    def _loop(self, source, var=None):
        k = parse_kernel(source)
        return k.loop_by_var(var) if var else k.loops()[0]

    def test_concrete(self):
        loop = self._loop(
            "void f(float *a, int n) { int i; for (i = 0; i < n; i++) a[i] = 0.0f; }"
        )
        assert trip_count(loop, {"n": 17}) == 17

    def test_strided(self):
        loop = self._loop(
            "void f(float *a, int n) { int i; for (i = 0; i < n; i += 4) a[i] = 0.0f; }"
        )
        assert trip_count(loop, {"n": 10}) == 3

    def test_empty_range(self):
        loop = self._loop(
            "void f(float *a, int n) { int i; for (i = 5; i < n; i++) a[i] = 0.0f; }"
        )
        assert trip_count(loop, {"n": 3}) == 0

    def test_unknown_symbol_fallback(self):
        loop = self._loop(
            "void f(float *a, int m) { int i; for (i = 0; i < m; i++) a[i] = 0.0f; }"
        )
        from repro.analysis.patterns import DEFAULT_TRIP
        assert trip_count(loop, {}) == DEFAULT_TRIP

    def test_default_trip_hint(self):
        loop = self._loop(
            "void f(float *a, const int *s, int n) { int i; "
            "for (i = s[0]; i < s[1]; i++) a[i] = 0.0f; }"
        )
        assert trip_count(loop, {"_default_trip": 4}) == 4
