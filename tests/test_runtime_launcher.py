"""Tests for the simulated accelerator runtime."""

import numpy as np
import pytest

from repro.compilers import CapsCompiler
from repro.devices import E5_2670, GCC, ICC, K40
from repro.frontend import parse_module
from repro.runtime import Accelerator, RuntimeError_

MODULE = parse_module(
    """
#pragma acc kernels
void scale(float *a, int n) {
  int i;
  #pragma acc loop independent
  for (i = 0; i < n; i++) {
    a[i] = a[i] * 2.0f;
  }
}
""",
    "scale",
)


def compiled_kernel():
    return CapsCompiler().compile(MODULE, "cuda").kernels[0]


class TestBuffers:
    def test_to_device_copies(self):
        acc = Accelerator(K40)
        host = np.arange(4, dtype=np.float64)
        acc.to_device(a=host)
        host[0] = 99.0
        assert acc.buffer("a")[0] == 0.0

    def test_from_device_records_event(self):
        acc = Accelerator(K40)
        acc.to_device(a=np.zeros(4))
        acc.from_device("a")
        assert acc.profiler.memcpy_h2d == 1 and acc.profiler.memcpy_d2h == 1

    def test_missing_buffer(self):
        acc = Accelerator(K40)
        with pytest.raises(RuntimeError_):
            acc.buffer("nope")
        with pytest.raises(RuntimeError_):
            acc.from_device("nope")

    def test_declare_and_touch(self):
        acc = Accelerator(K40)
        acc.declare(a=1024)
        acc.upload_declared("a")
        acc.touch_h2d("a")
        acc.touch_d2h("a")
        acc.download_declared("a")
        assert acc.profiler.memcpy_h2d == 2 and acc.profiler.memcpy_d2h == 2
        assert acc.profiler.transfer_bytes() == 4096

    def test_negative_declare(self):
        acc = Accelerator(K40)
        with pytest.raises(RuntimeError_):
            acc.declare(a=-1)

    def test_non_array_rejected(self):
        acc = Accelerator(K40)
        with pytest.raises(RuntimeError_):
            acc.to_device(a=[1, 2, 3])


class TestLaunch:
    def test_functional_execution(self):
        acc = Accelerator(K40)
        acc.to_device(a=np.arange(8, dtype=np.float64))
        record = acc.launch(compiled_kernel(), n=8)
        assert record.executed_functionally
        assert np.allclose(acc.buffer("a"), np.arange(8) * 2)

    def test_modeled_only(self):
        acc = Accelerator(K40)
        acc.declare(a=1 << 20)
        record = acc.launch(compiled_kernel(), n=1 << 18)
        assert not record.executed_functionally
        assert record.seconds > 0

    def test_missing_scalar(self):
        acc = Accelerator(K40)
        acc.to_device(a=np.zeros(4))
        with pytest.raises(RuntimeError_):
            acc.launch(compiled_kernel())

    def test_missing_array(self):
        acc = Accelerator(K40)
        with pytest.raises(RuntimeError_):
            acc.launch(compiled_kernel(), n=4)

    def test_elapsed_accumulates(self):
        acc = Accelerator(K40)
        acc.declare(a=1024)
        acc.upload_declared("a")
        acc.launch(compiled_kernel(), n=64)
        assert acc.elapsed_s == pytest.approx(acc.profiler.total_s)
        acc.reset_timeline()
        assert acc.elapsed_s == 0.0

    def test_host_compute_scaled_by_toolchain(self):
        gcc = Accelerator(K40, toolchain=GCC)
        icc = Accelerator(K40, toolchain=ICC)
        gcc.host_compute("x", 1.0)
        icc.host_compute("x", 1.0)
        assert icc.elapsed_s < gcc.elapsed_s


class TestProfiler:
    def test_report_text(self):
        acc = Accelerator(K40)
        acc.to_device(a=np.zeros(4))
        acc.launch(compiled_kernel(), n=4)
        text = acc.profiler.report()
        assert "h2d" in text and "launch" in text and "total" in text

    def test_negative_duration_rejected(self):
        acc = Accelerator(K40)
        with pytest.raises(ValueError):
            acc.profiler.record("h2d", "x", -1.0)

    def test_device_kernel_launches_excludes_host(self):
        acc = Accelerator(K40)
        acc.profiler.record("launch", "k", 0.1, device="host")
        acc.profiler.record("launch", "k", 0.1, device="NVIDIA Tesla K40")
        assert acc.profiler.kernel_launches == 2
        assert acc.profiler.device_kernel_launches() == 1

    def test_time_by_kind(self):
        acc = Accelerator(K40)
        acc.profiler.record("h2d", "a", 0.5)
        acc.profiler.record("h2d", "b", 0.25)
        assert acc.profiler.time_by_kind()["h2d"] == pytest.approx(0.75)


class TestByteAccounting:
    """Regression pins for declare/upload_declared/touch_h2d transfer
    accounting — the machinery behind the Table 7 BFS transfer numbers
    (each modeled byte must be counted exactly once per event)."""

    def test_declare_records_no_events(self):
        acc = Accelerator(K40)
        acc.declare(graph=1 << 20, frontier=4096)
        assert acc.profiler.events == []
        assert acc.profiler.transfer_bytes() == 0

    def test_upload_declared_counts_declared_bytes(self):
        acc = Accelerator(K40)
        acc.declare(graph=1 << 20, frontier=4096)
        acc.upload_declared("graph", "frontier")
        assert acc.profiler.memcpy_h2d == 2
        assert acc.profiler.transfer_bytes() == (1 << 20) + 4096
        by_label = {e.label: e.nbytes for e in acc.profiler.events}
        assert by_label == {"graph": 1 << 20, "frontier": 4096}

    def test_touch_h2d_retransfers_full_size_each_time(self):
        # the BFS level loop re-enters its data region every level: each
        # touch must re-count the full buffer size (paper Table 7)
        acc = Accelerator(K40)
        acc.declare(edges=1000)
        for _ in range(3):
            acc.touch_h2d("edges")
        assert acc.profiler.memcpy_h2d == 3
        assert acc.profiler.transfer_bytes() == 3000

    def test_download_declared_counts_d2h(self):
        acc = Accelerator(K40)
        acc.declare(cost=256)
        acc.download_declared("cost")
        assert acc.profiler.memcpy_d2h == 1
        assert acc.profiler.transfer_bytes() == 256

    def test_real_buffer_size_beats_declared_size(self):
        # a real upload supersedes a stale declaration: _nbytes must
        # prefer the live ndarray's nbytes
        acc = Accelerator(K40)
        acc.declare(a=999999)
        acc.to_device(a=np.zeros(8, dtype=np.float32))  # 32 bytes
        acc.touch_h2d("a")
        sizes = [e.nbytes for e in acc.profiler.events if e.kind == "h2d"]
        assert sizes == [32, 32]

    def test_unknown_buffer_raises(self):
        acc = Accelerator(K40)
        with pytest.raises(RuntimeError_):
            acc.touch_h2d("nope")
        with pytest.raises(RuntimeError_):
            acc.upload_declared("nope")

    def test_negative_declared_size_rejected(self):
        acc = Accelerator(K40)
        with pytest.raises(RuntimeError_):
            acc.declare(bad=-1)

    def test_transfer_seconds_scale_with_bytes(self):
        # the modeled PCIe time must be proportional to the declared size
        acc = Accelerator(K40)
        acc.declare(small=1 << 10, big=1 << 20)
        acc.upload_declared("small")
        acc.upload_declared("big")
        small_s, big_s = [e.seconds for e in acc.profiler.events]
        assert big_s > small_s
