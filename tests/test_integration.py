"""End-to-end integration tests: the whole pipeline on user kernels."""

import numpy as np
import pytest

from repro import (
    Accelerator,
    CapsCompiler,
    K40,
    PHI_5110P,
    compile_openacc,
    parse_module,
)
from repro.core import ppr, run_stage
from repro.ptx.counter import InstructionProfile
from repro.transforms import add_independent, set_gang_worker, unroll_in_kernel

JACOBI = """
#pragma acc kernels
void jacobi_step(float *out, const float *in, int n) {
  int i;
  for (i = 1; i < n - 1; i++) {
    out[i] = 0.5f * (in[i - 1] + in[i + 1]);
  }
}
"""


class TestUserKernelPipeline:
    """A user applies the paper's method to their own kernel."""

    def _reference(self, data):
        out = data.copy()
        out[1:-1] = 0.5 * (data[:-2] + data[2:])
        return out

    def test_method_end_to_end(self):
        module = parse_module(JACOBI, "jacobi")
        n = 256
        rng = np.random.default_rng(3)
        data = rng.random(n)
        expected = self._reference(data)

        # Step 1: independent (provable here - disjoint in/out arrays)
        module.kernels = [add_independent(k).kernel for k in module.kernels]
        # Step 2: thread distribution
        module.kernels = [
            set_gang_worker(k, k.loops()[0].loop_id, 256, 16)
            for k in module.kernels
        ]
        # Step 3: unroll
        module.kernels = [
            unroll_in_kernel(k, k.loops()[0].loop_id, 4)
            for k in module.kernels
        ]

        results = {}
        for compiler, target, device in (
            ("caps", "cuda", K40),
            ("caps", "opencl", PHI_5110P),
            ("pgi", "cuda", K40),
        ):
            compiled = compile_openacc(module, compiler=compiler,
                                       target=target)
            accelerator = Accelerator(device)
            accelerator.to_device(out=data.copy(), **{"in": data.copy()})
            record = accelerator.launch(compiled.kernels[0], n=n)
            got = accelerator.from_device("out")["out"]
            assert np.allclose(got, expected), (compiler, target)
            results[(compiler, device.name)] = record.seconds

        # PPR is computable from the same runs
        ratio = ppr(results[("caps", PHI_5110P.name)],
                    results[("caps", K40.name)])
        assert ratio > 0

    def test_ptx_available_through_public_api(self):
        compiled = compile_openacc(parse_module(JACOBI, "jacobi"))
        profile = InstructionProfile.of(compiled.kernels[0].ptx)
        assert profile.total > 10
        assert profile.shared_memory == 0


class TestStageResultPlumbing:
    def test_run_stage_carries_profiling(self):
        from repro.kernels import get_benchmark

        bench = get_benchmark("ge")
        row = run_stage(bench, bench.stages()["indep"], "indep", "caps",
                        "cuda", K40, 64)
        assert row.kernel_launches == 3 * 63
        assert row.memcpy_h2d == 3 and row.memcpy_d2h == 2
        assert row.ptx is not None and row.ptx.total > 0


class TestCrossCompilerConsistency:
    """Both compilers must compute identical results wherever both run."""

    @pytest.mark.parametrize("name", ["lud", "ge", "bp"])
    def test_caps_and_pgi_agree(self, name):
        from repro.kernels import get_benchmark

        bench = get_benchmark(name)
        n = bench.meta.test_size
        module = bench.stages()["base"]
        outputs = {}
        for compiler in ("caps", "pgi"):
            compiled = compile_openacc(module, compiler=compiler)
            accelerator = Accelerator(K40)
            res = bench.run(accelerator, compiled, n, inputs=bench.inputs(n))
            outputs[compiler] = res.outputs
        for key in outputs["caps"]:
            assert np.allclose(outputs["caps"][key], outputs["pgi"][key])


class TestDeterminism:
    def test_model_times_are_deterministic(self):
        from repro.kernels import get_benchmark

        bench = get_benchmark("bfs")
        times = []
        for _ in range(2):
            compiled = CapsCompiler().compile(bench.stages()["indep"], "cuda")
            accelerator = Accelerator(K40)
            bench.run(accelerator, compiled, 1 << 16, levels=6)
            times.append(accelerator.elapsed_s)
        assert times[0] == times[1]

    def test_inputs_are_seeded(self):
        from repro.kernels import get_benchmark

        bench = get_benchmark("bfs")
        a = bench.inputs(128, seed=5)
        b = bench.inputs(128, seed=5)
        assert np.array_equal(a["edges"], b["edges"])
        c = bench.inputs(128, seed=6)
        assert not np.array_equal(a["edges"], c["edges"])
