"""Determinism guard for the jit frontend (ISSUE 8 satellite).

Same template + same shapes must produce **byte-identical** artifacts —
across worker-pool sizes, cold vs warm caches, in-process vs
server-coalesced compiles, and under an injected fault plan with
retries.  The jit layers (template digest, shape-class plan, pipeline,
content-addressed store) are invisible optimizations, never semantic
inputs."""

import threading

import pytest

from repro.faults import parse_fault_spec
from repro.jit import SpecializationCache, specialize
from repro.jit.bench import SEED_SHAPES, SEED_TEMPLATES, seed_templates
from repro.server import ServerClient, artifact_signature, spawn_local
from repro.service import CompileService, RetryPolicy, SimClock

#: every seed template x every seed shape: the full determinism surface
CASES = [
    (name, shape)
    for name in sorted(SEED_TEMPLATES)
    for shape in SEED_SHAPES[name]
]


def signatures(service: CompileService) -> list[str]:
    """Specialize every case through *service* with a fresh cache."""
    cache = SpecializationCache()
    templates = seed_templates()
    return [
        artifact_signature(
            specialize(templates[name], shape, service=service,
                       cache=cache).result
        )
        for name, shape in CASES
    ]


def test_jobs1_vs_jobs4_byte_identical():
    assert signatures(CompileService(jobs=1)) == \
        signatures(CompileService(jobs=4))


def test_cold_vs_warm_byte_identical():
    service = CompileService()
    cold = signatures(service)
    compiles = service.metrics.compiles
    warm = signatures(service)  # fresh L1, warm artifact store
    assert warm == cold
    assert service.metrics.compiles == compiles  # zero recompilations


def test_fresh_process_state_byte_identical():
    # two completely independent service+cache universes agree
    assert signatures(CompileService()) == signatures(CompileService())


def test_faulted_with_retries_byte_identical():
    clean = signatures(CompileService())
    faulted_service = CompileService(
        fault_plan=parse_fault_spec("transient:p=0.3,seed=11"),
        retry=RetryPolicy(max_retries=5),
        clock=SimClock(),
    )
    faulted = signatures(faulted_service)
    assert faulted == clean
    assert faulted_service.metrics.faults_injected > 0, (
        "p=0.3 over the seed sweep must actually inject faults"
    )
    assert faulted_service.metrics.retries > 0


def test_in_process_vs_server_coalesced_byte_identical():
    local = signatures(CompileService())

    templates = seed_templates()
    with spawn_local() as (server, client):
        remote = [
            artifact_signature(
                specialize(templates[name], shape, client=client,
                           cache=SpecializationCache()).result
            )
            for name, shape in CASES
        ]
    assert remote == local


def test_concurrent_clients_coalesce_to_identical_artifacts():
    """N clients race the same cold shape: the daemon coalesces the
    in-flight duplicates and every client gets the same bytes."""
    clients = 4
    template = seed_templates()["scale2d"]
    shape = SEED_SHAPES["scale2d"][1]
    results: list[str | None] = [None] * clients
    errors: list[Exception] = []
    barrier = threading.Barrier(clients)

    with spawn_local() as (server, _bootstrap):
        host, port = server.address

        def worker(slot: int) -> None:
            try:
                with ServerClient(host, port,
                                  client_id=f"det-{slot}") as client:
                    barrier.wait()
                    spec = specialize(template, shape, client=client,
                                      cache=SpecializationCache())
                    results[slot] = artifact_signature(spec.result)
            except Exception as exc:  # pragma: no cover - fails the test
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(clients)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        coalesced = int(server.status()["batcher"]["coalesced"])

    assert not errors
    assert len(set(results)) == 1 and results[0] is not None
    assert coalesced >= 1, "identical in-flight compiles must coalesce"
