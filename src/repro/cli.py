"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``compile FILE``   — run a mini-C + OpenACC source through a compiler
  model; print the log, the schedule, and (optionally) the PTX.
* ``analyze FILE``   — per-loop dependence report (paper Step 1's view).
* ``bench NAME``     — drive one benchmark's optimization stages and print
  the paper-style elapsed-time table.
* ``experiment ID``  — regenerate one paper table/figure (or ``all``).
* ``heatmap``        — the Fig. 4 thread-distribution heat map.
* ``autotune``       — the future-work auto-tuner on LUD.
* ``difftest``       — seeded cross-compiler differential fuzzing with a
  static race checker (docs/DIFFTEST.md).
* ``telemetry FILE`` — render a saved trace (either format) as the
  hierarchical text report (docs/TELEMETRY.md).
* ``serve``          — run the compile daemon: many clients, one shared
  cache/scheduler, batching + admission control (docs/SERVER.md).
* ``client``         — talk to a running daemon: ``compile``, ``sweep``,
  ``status``, ``stats`` (or ``--spawn`` an ephemeral in-process one).
* ``jit-bench``      — the jit seed-template benchmark: cold/warm cache
  trajectory + server-coalesced remote compiles (docs/JIT.md).
* ``jit-stats``      — specialize a ``$hole`` template for given shapes;
  print shape classes, plans, and the cache trajectory (docs/JIT.md).
* ``exec-sweep``     — run the execution-heavy GE/LUD/Hydro kernel sweep
  through the process-pool executor (docs/EXECUTOR.md); ``--exec-jobs N``
  forks N workers over shared-memory buffers, ``--cache-dir`` persists
  compiled kernel plans so warm runs skip codegen entirely.

``heatmap`` and ``autotune`` accept ``--ladder RUNGS`` to climb the
registered optimization rungs (``fuse-reuse``, ``shared-tile``; see
:mod:`repro.core.ladder`) on every explored configuration.

``experiment``, ``heatmap``, and ``autotune`` accept ``--jobs N`` and
``--cache-dir PATH`` to route compilations through the
:mod:`repro.service` compile cache / worker pool (see docs/SERVICE.md);
output is byte-identical to the serial, cache-free default.

``experiment``, ``heatmap``, ``autotune``, ``bench``, and ``difftest``
accept ``--exec-backend {scalar,vector,check}`` to pick the kernel
executor backend — the scalar interpreter, the vectorizing NumPy backend,
or a differential mode that runs both and asserts bit-identical results
(see docs/EXECUTOR.md) — and ``--trace FILE`` (plus
``--trace-format {jsonl,chrome}``) to record
the run's tool-chain timeline — frontend, compiler passes, PTX codegen,
cache hits/compiles, scheduler worker lanes, modeled runtime events —
through :mod:`repro.telemetry` (see docs/TELEMETRY.md).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path


def _cmd_compile(args: argparse.Namespace) -> int:
    from .core.method import compile_stage
    from .frontend import parse_module

    source = Path(args.file).read_text()
    module = parse_module(source, Path(args.file).stem)
    compiled = compile_stage(module, args.compiler, args.target)
    print(f"# {compiled.compiler} -> {compiled.target}")
    for line in compiled.log:
        print(f"log: {line}")
    env = {"n": args.size, "size": args.size, "num_nodes": args.size}
    for kernel in compiled.kernels:
        config = kernel.launch_config(env)
        print(f"\nkernel {kernel.name}: {kernel.distribution.strategy.value}"
              f" -> {config.describe()}")
        if args.ptx and kernel.ptx is not None:
            print(kernel.ptx.render())
        if kernel.ptx is not None and not args.ptx:
            from .ptx.counter import InstructionProfile

            row = InstructionProfile.of(kernel.ptx).as_row()
            print("  static PTX:",
                  ", ".join(f"{k}={v}" for k, v in row.items()))
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from .analysis.dependence import analyze_loop
    from .frontend import parse_module

    source = Path(args.file).read_text()
    module = parse_module(source, Path(args.file).stem)
    for kernel in module.kernels:
        print(f"kernel {kernel.name}:")
        for loop in kernel.loops():
            report = analyze_loop(loop)
            print(f"  loop over {loop.var!r}: {report.verdict.value}")
            for reason in report.reasons:
                print(f"    - {reason}")
            for reduction in report.reductions:
                print(f"    - reduction candidate: "
                      f"{reduction.op}:{reduction.var}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .core.method import format_rows, run_opencl, run_stage
    from .devices import device_by_name
    from .kernels import get_benchmark
    from .telemetry import get_tracer

    bench = get_benchmark(args.name)
    n = args.size or min(bench.meta.paper_size, 1 << 20)
    device = device_by_name(args.device)
    target = "cuda" if device.kind.value == "gpu" else "opencl"
    with get_tracer().span("bench", category="cli", label=args.name,
                           device=device.name, compiler=args.compiler):
        rows = []
        for stage, module in bench.stages().items():
            rows.append(
                run_stage(bench, module, stage, args.compiler, target,
                          device, n)
            )
        if args.opencl and bench.opencl_program() is not None:
            rows.append(run_opencl(bench, "opencl", device, n))
    print(f"{bench.meta.name} (n = {n}) on {device.name} via {args.compiler}")
    print(format_rows(rows))
    return 0


def _cmd_matrix(args: argparse.Namespace) -> int:
    from .core.matrix import DEVICE_COUNTS, run_matrix
    from .devices.topology import NVLINK_LINK
    from .kernels import MATRIX_FAMILIES

    families = (tuple(part.strip() for part in args.families.split(",")
                      if part.strip())
                if args.families else MATRIX_FAMILIES)
    counts = (tuple(int(part) for part in args.devices.split(","))
              if args.devices else DEVICE_COUNTS)
    service = _service_from_args(args)
    report = run_matrix(
        families=families, n=args.size, device_counts=counts,
        service=service, jobs=args.jobs,
        peer=NVLINK_LINK if args.peer else None,
    )
    print(report.render())
    print()
    print(f"digest: {report.digest()}")
    _print_service_stats(service)
    _maybe_publish(service)
    if service is not None:
        service.close()
    return 0


def _resilience_from_args(args: argparse.Namespace) -> dict:
    """Translate --faults/--retries/--hedge/--resume into CompileService
    keyword arguments (docs/FAULTS.md).  Empty dict when none are set."""
    from .faults import parse_fault_spec
    from .service import CircuitBreaker, RetryPolicy, SweepJournal

    kwargs: dict = {}
    spec = getattr(args, "faults", None)
    if spec:
        kwargs["fault_plan"] = parse_fault_spec(spec)
        # injected faults come with the full healing kit: a breaker so a
        # persistently failing route degrades loudly instead of erroring
        # silently slot after slot
        kwargs["breaker"] = CircuitBreaker()
    retries = getattr(args, "retries", None)
    if retries is None and spec:
        retries = 3  # faults without --retries still get the default kit
    if retries:
        kwargs["retry"] = RetryPolicy(max_retries=retries)
    hedge = getattr(args, "hedge", None)
    if hedge is not None:
        kwargs["hedge_after_s"] = hedge
    resume = getattr(args, "resume", None)
    if resume is not None:
        kwargs["journal"] = SweepJournal(resume)
    return kwargs


def _service_from_args(args: argparse.Namespace):
    """Build a CompileService from --jobs/--cache-dir plus the resilience
    flags (None if everything is at its default)."""
    from .service import CompileService
    from .service.cache import ArtifactCache
    from .telemetry import get_tracer

    resilience = _resilience_from_args(args)
    # a traced run always gets an explicit service so its metrics can be
    # published into the exported trace
    if (args.jobs == 1 and args.cache_dir is None and not resilience
            and not get_tracer().enabled):
        return None
    return CompileService(
        cache=ArtifactCache(cache_dir=args.cache_dir), jobs=args.jobs,
        **resilience,
    )


def _print_service_stats(service) -> None:
    if service is not None:
        print()
        print("\n".join(service.report_lines()))


def _maybe_publish(service) -> None:
    """When tracing is on, publish the run's service/cache counters into
    the process-wide registry so they ride along in the exported trace."""
    from .telemetry import get_registry, get_tracer

    if service is not None and get_tracer().enabled:
        service.publish(get_registry())


def _cmd_experiment(args: argparse.Namespace) -> int:
    from .experiments import ALL_EXPERIMENTS
    from .service import configure_default_service, get_default_service
    from .telemetry import get_tracer

    resilience = _resilience_from_args(args)
    if args.jobs != 1 or args.cache_dir is not None or resilience:
        # the experiment drivers share the process-wide default service
        configure_default_service(jobs=args.jobs, cache_dir=args.cache_dir,
                                  **resilience)

    names = list(ALL_EXPERIMENTS) if "all" in args.ids else args.ids
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {unknown}; choose from "
              f"{sorted(ALL_EXPERIMENTS)}", file=sys.stderr)
        return 2
    failures = 0
    for name in names:
        with get_tracer().span(f"experiment.{name}", category="cli",
                               label=name):
            result = ALL_EXPERIMENTS[name](paper_scale=args.paper_scale)
        print(result.report())
        print()
        failures += len(result.failed_claims())
    if args.jobs != 1 or args.cache_dir is not None or resilience:
        _print_service_stats(get_default_service())
    _maybe_publish(get_default_service())
    return 1 if failures else 0


def _cmd_heatmap(args: argparse.Namespace) -> int:
    from .core.ladder import normalize_ladder
    from .core.search import lud_heatmap
    from .devices import device_by_name
    from .kernels import get_benchmark

    device = device_by_name(args.device)
    ladder = normalize_ladder(args.ladder)
    service = _service_from_args(args)
    heatmap = lud_heatmap(get_benchmark("lud"), device, args.compiler,
                          n=args.size, service=service, jobs=args.jobs,
                          ladder=ladder)
    print(heatmap.render())
    _print_service_stats(service)
    _maybe_publish(service)
    return 0


def _cmd_autotune(args: argparse.Namespace) -> int:
    from .core.autotune import (
        exhaustive_tune,
        hill_climb_tune,
        make_lud_evaluator,
        portable_tune,
        prewarm_lud_grid,
    )
    from .core.ladder import normalize_ladder
    from .devices import K40, PHI_5110P
    from .kernels import get_benchmark
    from .service import CompileService
    from .service.cache import ArtifactCache

    bench = get_benchmark("lud")
    ladder = normalize_ladder(args.ladder)
    # tuners always share one service: the exhaustive sweep, the hill
    # climber, and the portable tuner revisit the same configurations
    service = CompileService(
        cache=ArtifactCache(cache_dir=args.cache_dir), jobs=args.jobs,
        **_resilience_from_args(args),
    )
    if args.jobs > 1:
        # fan the whole candidate grid over the worker pool up front;
        # the (serial) tuning loops below then run compile-free
        prewarm_lud_grid(bench, K40, service, ladder=ladder)
        prewarm_lud_grid(bench, PHI_5110P, service, ladder=ladder)
    ev_gpu = make_lud_evaluator(bench, K40, n=args.size, service=service,
                                ladder=ladder)
    ev_mic = make_lud_evaluator(bench, PHI_5110P, n=args.size, service=service,
                                ladder=ladder)
    print("exhaustive (K40):  ", exhaustive_tune(ev_gpu,
                                                 device_name="K40").describe())
    print("hill climb (K40):  ", hill_climb_tune(ev_gpu,
                                                 device_name="K40").describe())
    portable, per_device = portable_tune({"gpu": ev_gpu, "mic": ev_mic})
    print("portable (GPU+MIC):", portable.describe())
    for name, seconds in sorted(per_device.items()):
        print(f"  {name}: {seconds:.4g}s")
    if args.jobs != 1 or args.cache_dir is not None:
        _print_service_stats(service)
    _maybe_publish(service)
    return 0


def _cmd_difftest(args: argparse.Namespace) -> int:
    from .difftest import replay_file, run_difftest
    from .service import CompileService
    from .service.cache import ArtifactCache

    service = CompileService(
        cache=ArtifactCache(cache_dir=args.cache_dir), jobs=args.jobs,
        **_resilience_from_args(args),
    )
    if args.replay is not None:
        result = replay_file(args.replay, service)
        status = "EXPLAINED" if result.explained else "UNEXPLAINED"
        print(f"replay {args.replay}: {status}")
        for detail in result.unexplained_details():
            print(f"  {detail}")
        _print_service_stats(service)
        _maybe_publish(service)
        return 0 if result.explained else 1

    seeds = range(args.start, args.start + args.seeds)
    report = run_difftest(
        seeds, service=service, shrink=args.shrink, out_dir=args.out,
        log=lambda line: print(f"  FAIL {line}", file=sys.stderr),
        exec_backend=args.exec_backend,
    )
    print("\n".join(report.summary_lines()))
    for case in report.unexplained:
        if case.reproducer:
            print(f"  reproducer: {case.reproducer}")
    if args.jobs != 1 or args.cache_dir is not None:
        _print_service_stats(service)
    _maybe_publish(service)
    return 1 if report.unexplained else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .server import ReproServer, ServerConfig, run_server_smoke
    from .telemetry import get_registry, get_tracer

    config = ServerConfig(
        host=args.host, port=args.port, jobs=args.jobs,
        cache_dir=args.cache_dir, shards=args.shards,
        peer_dirs=tuple(args.peer_dir or ()),
        max_queue_depth=args.queue_depth,
        quota_rate=args.quota_rate, quota_burst=args.quota_burst,
        batch_window_s=args.batch_window, max_batch=args.max_batch,
        service_kwargs=_resilience_from_args(args),
    )
    if args.self_test:
        report = run_server_smoke(clients=args.clients, points=args.points,
                                  jobs=args.jobs, config=config)
        print("\n".join(report.lines()))
        return 0 if report.ok else 1

    server = ReproServer(config).start()
    host, port = server.address
    print(f"repro server listening on {host}:{port} "
          f"(jobs={args.jobs}, shards={args.shards}, "
          f"queue-depth={args.queue_depth})", file=sys.stderr)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("draining...", file=sys.stderr)
    finally:
        server.drain()
        if get_tracer().enabled:
            server.publish(get_registry())
        print("\n".join(server.report_lines()))
    return 0


def _client_connection(args: argparse.Namespace):
    """Connect per --host/--port, or --spawn an in-process daemon.

    Returns a context manager yielding the connected ServerClient.
    """
    import contextlib

    from .server import ServerClient, ServerConfig, spawn_local

    if args.spawn:
        config = ServerConfig(jobs=args.jobs, cache_dir=args.cache_dir,
                              service_kwargs=_resilience_from_args(args))

        @contextlib.contextmanager
        def spawned():
            with spawn_local(config, client_id=args.id) as (_server, client):
                yield client

        return spawned()
    return ServerClient(args.host, args.port, client_id=args.id)


def _cmd_client(args: argparse.Namespace) -> int:
    import json

    from .server import artifact_signature, fig4_requests
    from .service import JobError

    try:
        connection = _client_connection(args)
    except ConnectionError as exc:
        print(f"repro: cannot reach server {args.host}:{args.port}: {exc} "
              f"(is `repro serve` running? or pass --spawn)", file=sys.stderr)
        return 1
    with connection as client:
        if args.client_command == "status":
            print(json.dumps(client.status(), indent=2, sort_keys=True))
            return 0
        if args.client_command == "stats":
            print(json.dumps(client.stats(), indent=2, sort_keys=True))
            return 0
        if args.client_command == "compile":
            source = Path(args.file).read_text()
            artifact = client.compile_source(
                source, args.compiler, args.target, Path(args.file).stem
            )
            print(f"# {artifact.compiler} -> {artifact.target} (via daemon)")
            for line in artifact.log:
                print(f"log: {line}")
            for kernel in artifact.kernels:
                print(f"kernel {kernel.name}: "
                      f"{kernel.distribution.strategy.value}")
            return 0
        # sweep: drive the Fig. 4 grid through the daemon
        requests = fig4_requests(args.points, compiler=args.compiler)
        slots = client.sweep(requests)
        failures = 0
        for request, slot in zip(requests, slots):
            if isinstance(slot, JobError):
                failures += 1
                print(f"  FAIL {request.label}: {slot}")
        digest = __import__("hashlib").sha256(
            "\x1d".join(artifact_signature(s) for s in slots).encode()
        ).hexdigest()
        print(f"sweep: {len(slots)} points, {failures} failed "
              f"(result digest {digest[:16]})")
        stats = client.stats()
        service = stats.get("service", {})
        print(f"server: {service.get('compiles', '?')} compiles, "
              f"{service.get('cache_hits', '?')} cache hits, "
              f"{stats.get('server', {}).get('batcher', {}).get('coalesced', 0)} "
              f"coalesced")
        return 1 if failures else 0


def _parse_shape(spec: str) -> dict[str, int]:
    """``"n=128"`` or ``"rows=64,cols=128"`` -> hole bindings."""
    shape: dict[str, int] = {}
    for part in spec.split(","):
        name, _, value = part.partition("=")
        if not name or not value:
            raise ValueError(f"bad --shape entry {part!r} (want name=value)")
        shape[name.strip()] = int(value)
    return shape


def _cmd_jit_bench(args: argparse.Namespace) -> int:
    import json

    from .jit.bench import report_lines, run_bench

    payload = run_bench(
        compiler=args.compiler, target=args.target,
        warm_rounds=args.warm_rounds, clients=args.clients,
        remote=not args.no_remote,
    )
    print("\n".join(report_lines(payload)))
    if args.json is not None:
        Path(args.json).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {args.json}", file=sys.stderr)
    ok = payload["trajectory"]["warm_speedup"] >= 1.0
    remote = payload.get("remote")
    if remote is not None:
        ok = ok and remote["identical"]
    return 0 if ok else 1


def _cmd_jit_stats(args: argparse.Namespace) -> int:
    from .jit import KernelTemplate, specialize
    from .jit.cache import SpecializationCache
    from .telemetry import get_registry

    try:
        shapes = [_parse_shape(spec) for spec in args.shape]
    except ValueError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 2
    template = KernelTemplate.from_source(Path(args.file).read_text())
    holes = ", ".join(f"${name}:{dtype}"
                      for name, dtype in sorted(template.holes.items()))
    print(f"template {template.name} ({template.template_id[:12]}) "
          f"holes: {holes or 'none'}")
    cache = SpecializationCache()
    for shape in shapes:
        spec = specialize(template, shape, args.compiler, args.target,
                          cache=cache)
        binding = " ".join(f"{k}={v}" for k, v in sorted(shape.items()))
        print(f"  {binding}: class [{spec.shape_class.describe()}] "
              f"plan {spec.plan.describe()} "
              f"fingerprint {spec.fingerprint[:16]}")
        kernel = spec.kernel()
        print(f"    schedule: {kernel.distribution.strategy.value}")
    print("cache: "
          + " ".join(f"{k}={v}" for k, v in sorted(cache.stats().items())))
    counters = {
        name: value
        for name, value in get_registry().snapshot()["counters"].items()
        if name.startswith("jit.")
    }
    if counters:
        print("counters: "
              + " ".join(f"{k}={v}" for k, v in sorted(counters.items())))
    fallbacks = _fallback_histogram()
    if fallbacks:
        print("executor fallbacks: "
              + " ".join(f"{k}={v}" for k, v in sorted(fallbacks.items())))
    return 0


def _fallback_histogram() -> dict[str, int]:
    """The per-reason ``executor.fallback.<reason>`` counters, keyed by
    reason (docs/EXECUTOR.md) — why the vectorizer rejected loops."""
    from .telemetry import get_registry

    prefix = "executor.fallback."
    return {
        name[len(prefix):]: value
        for name, value in get_registry().snapshot()["counters"].items()
        if name.startswith(prefix)
    }


def _cmd_exec_sweep(args: argparse.Namespace) -> int:
    import json

    from .runtime.parallel import run_exec_sweep
    from .telemetry import get_registry

    service = _service_from_args(args)
    sizes = None
    if args.size is not None:
        sizes = {"ge": args.size, "lud": args.size, "hydro": args.size}
    result = run_exec_sweep(
        service=service, jobs=args.exec_jobs,
        backend=args.exec_backend or "vector",
        sizes=sizes, repeats=args.repeats,
    )
    counters = {
        name: value
        for name, value in get_registry().snapshot()["counters"].items()
        if name.startswith("executor.")
    }
    payload = {
        "backend": result["backend"],
        "counters": counters,
        "digest": result["digest"],
        "jobs": result["jobs"],
        "sizes": result["sizes"],
        "tasks": result["tasks"],
    }
    print(json.dumps(payload, indent=2, sort_keys=True))
    print(f"sweep: {len(result['tasks'])} tasks in "
          f"{result['seconds']:.3f}s", file=sys.stderr)
    _maybe_publish(service)
    return 0


def _cmd_telemetry(args: argparse.Namespace) -> int:
    from .telemetry import load_trace, text_report

    spans, metrics = load_trace(args.file)
    print(text_report(spans, metrics, max_tree_lines=args.limit))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Simulated OpenACC performance-portability tool-chain "
                    "(IPPS 2015 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_service_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--jobs", type=int, default=1, metavar="N",
            help="compile sweep points on N worker threads (results are "
                 "deterministic and identical to --jobs 1)",
        )
        p.add_argument(
            "--cache-dir", default=None, metavar="PATH",
            help="persist compiled artifacts to PATH (content-addressed; "
                 "a warm cache makes re-sweeps compile-free)",
        )

    def add_resilience_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--faults", default=None, metavar="SPEC",
            help="inject deterministic tool-chain faults, e.g. "
                 "'transient:p=0.3,seed=11' or "
                 "'transient:p=0.2;slow:p=0.1,s=0.05;cache:p=0.05' "
                 "(docs/FAULTS.md); implies a circuit breaker and, unless "
                 "--retries says otherwise, 3 retries",
        )
        p.add_argument(
            "--retries", type=int, default=None, metavar="N",
            help="retry transient compile failures up to N times with "
                 "exponential backoff (default: 3 with --faults, else 0)",
        )
        p.add_argument(
            "--hedge", type=float, default=None, metavar="S",
            help="duplicate a sweep point still unfinished after S seconds; "
                 "first result wins (requires --jobs > 1 to matter)",
        )
        p.add_argument(
            "--resume", default=None, metavar="FILE",
            help="checkpoint completed sweep points to FILE (JSONL) and "
                 "skip points already journaled there — a killed sweep "
                 "resumes byte-identically",
        )

    def add_exec_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--exec-backend", choices=("scalar", "vector", "check"),
            default=None, metavar="B",
            help="kernel executor backend: scalar interpreter, vectorizing "
                 "NumPy backend, or check (run both, assert bit-identical; "
                 "docs/EXECUTOR.md); default scalar",
        )
        p.add_argument(
            "--exec-jobs", type=int, default=1, metavar="N",
            help="execute kernels across N forked worker processes over "
                 "shared-memory buffers; results are byte-identical to "
                 "--exec-jobs 1 (docs/EXECUTOR.md)",
        )

    def add_trace_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--trace", default=None, metavar="FILE",
            help="record the run's tool-chain timeline (spans + metrics) "
                 "to FILE (docs/TELEMETRY.md)",
        )
        p.add_argument(
            "--trace-format", choices=("jsonl", "chrome"), default="jsonl",
            help="trace file format: JSON lines, or Chrome trace events "
                 "loadable in chrome://tracing / Perfetto (default jsonl)",
        )

    p = sub.add_parser("compile", help="compile a mini-C + OpenACC source")
    p.add_argument("file")
    p.add_argument("--compiler", choices=("caps", "pgi"), default="caps")
    p.add_argument("--target", choices=("cuda", "opencl"), default="cuda")
    p.add_argument("--ptx", action="store_true", help="print full listings")
    p.add_argument("--size", type=int, default=4096,
                   help="problem size for launch-config resolution")
    p.set_defaults(func=_cmd_compile)

    p = sub.add_parser("analyze", help="per-loop dependence report")
    p.add_argument("file")
    p.set_defaults(func=_cmd_analyze)

    p = sub.add_parser("bench", help="drive one benchmark's stages")
    p.add_argument("name", choices=("lud", "ge", "bfs", "bp", "hydro",
                                    "stencil", "lbm", "pic"))
    p.add_argument("--compiler", choices=("caps", "pgi"), default="caps")
    p.add_argument("--device", default="gpu")
    p.add_argument("--size", type=int, default=None)
    p.add_argument("--opencl", action="store_true",
                   help="include the hand-written OpenCL version")
    add_exec_flags(p)
    add_trace_flags(p)
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser(
        "matrix",
        help="the multi-device portability matrix: family x compiler x "
             "target x device count, with halo-exchange modeling "
             "(docs/WORKLOADS.md)",
    )
    p.add_argument("--families", default=None, metavar="LIST",
                   help="comma-separated kernel families "
                        "(default: stencil,lbm,pic)")
    p.add_argument("--size", type=int, default=None, metavar="N",
                   help="problem size for every family "
                        "(default: each family's test size)")
    p.add_argument("--devices", default=None, metavar="LIST",
                   help="comma-separated device counts (default: 1,2,4)")
    p.add_argument("--peer", action="store_true",
                   help="give same-switch neighbor pairs an NVLink-class "
                        "peer link instead of sharing the PCIe root")
    add_service_flags(p)
    add_resilience_flags(p)
    add_trace_flags(p)
    p.set_defaults(func=_cmd_matrix)

    p = sub.add_parser("experiment", help="regenerate paper tables/figures")
    p.add_argument("ids", nargs="+",
                   help="experiment ids (e.g. fig3 table7) or 'all'")
    p.add_argument("--paper-scale", action="store_true")
    add_service_flags(p)
    add_resilience_flags(p)
    add_exec_flags(p)
    add_trace_flags(p)
    p.set_defaults(func=_cmd_experiment)

    p = sub.add_parser("heatmap", help="the Fig. 4 heat map")
    p.add_argument("--device", default="gpu")
    p.add_argument("--compiler", choices=("caps", "pgi"), default="caps")
    p.add_argument("--size", type=int, default=2048)
    p.add_argument("--ladder", default=None, metavar="RUNGS",
                   help="climb optimization rungs on every grid point: "
                        "comma-separated rung names (fuse-reuse,shared-tile), "
                        "'full', or 'none' (default none)")
    add_service_flags(p)
    add_resilience_flags(p)
    add_exec_flags(p)
    add_trace_flags(p)
    p.set_defaults(func=_cmd_heatmap)

    p = sub.add_parser("autotune", help="auto-tune LUD thread distribution")
    p.add_argument("--size", type=int, default=1024)
    p.add_argument("--ladder", default=None, metavar="RUNGS",
                   help="climb optimization rungs on every configuration: "
                        "comma-separated rung names (fuse-reuse,shared-tile), "
                        "'full', or 'none' (default none)")
    add_service_flags(p)
    add_resilience_flags(p)
    add_exec_flags(p)
    add_trace_flags(p)
    p.set_defaults(func=_cmd_autotune)

    p = sub.add_parser(
        "jit-bench",
        help="the jit seed-template benchmark: cold/warm cache trajectory "
             "plus server-coalesced remote compiles (docs/JIT.md)",
    )
    p.add_argument("--compiler", choices=("caps", "pgi"), default="caps")
    p.add_argument("--target", choices=("cuda", "opencl"), default="cuda")
    p.add_argument("--warm-rounds", type=int, default=2, metavar="N",
                   help="warm replay rounds over the seed shapes (default 2)")
    p.add_argument("--clients", type=int, default=4, metavar="N",
                   help="concurrent clients for the remote-coalescing phase "
                        "(default 4)")
    p.add_argument("--no-remote", action="store_true",
                   help="skip the spawned-server coalescing phase")
    p.add_argument("--json", default=None, metavar="FILE",
                   help="also write the BENCH_jit.json payload to FILE")
    add_trace_flags(p)
    p.set_defaults(func=_cmd_jit_bench)

    p = sub.add_parser(
        "jit-stats",
        help="specialize a kernel template for given shapes and print the "
             "shape classes, plans, and cache trajectory (docs/JIT.md)",
    )
    p.add_argument("file", help="a mini-C template with $name holes")
    p.add_argument("--shape", action="append", required=True, metavar="BINDS",
                   help="one shape's hole bindings, e.g. 'n=128' or "
                        "'rows=64,cols=128' (repeatable; repeats show "
                        "exact-cache hits)")
    p.add_argument("--compiler", choices=("caps", "pgi"), default="caps")
    p.add_argument("--target", choices=("cuda", "opencl"), default="cuda")
    add_trace_flags(p)
    p.set_defaults(func=_cmd_jit_stats)

    p = sub.add_parser(
        "exec-sweep",
        help="run the execution-heavy GE/LUD/Hydro kernel sweep through "
             "the process-pool executor (docs/EXECUTOR.md)",
    )
    p.add_argument("--size", type=int, default=None, metavar="N",
                   help="problem size for every benchmark in the sweep "
                        "(default: ge=96 lud=128 hydro=96)")
    p.add_argument("--repeats", type=int, default=1, metavar="N",
                   help="run each kernel task N times (default 1)")
    add_service_flags(p)
    add_resilience_flags(p)
    add_exec_flags(p)
    add_trace_flags(p)
    p.set_defaults(func=_cmd_exec_sweep)

    p = sub.add_parser(
        "difftest",
        help="seeded cross-compiler differential fuzzing (docs/DIFFTEST.md)",
    )
    p.add_argument("--seeds", type=int, default=50, metavar="N",
                   help="number of generator seeds to sweep (default 50)")
    p.add_argument("--start", type=int, default=0, metavar="N",
                   help="first seed (default 0)")
    p.add_argument("--shrink", action="store_true",
                   help="shrink unexplained failures to minimal reproducers")
    p.add_argument("--out", default="difftest-failures", metavar="DIR",
                   help="directory for shrunk reproducers")
    p.add_argument("--replay", default=None, metavar="FILE",
                   help="re-run one dumped reproducer instead of sweeping")
    add_service_flags(p)
    add_resilience_flags(p)
    add_exec_flags(p)
    add_trace_flags(p)
    p.set_defaults(func=_cmd_difftest)

    p = sub.add_parser(
        "serve",
        help="run the compile daemon: shared cache, batching, admission "
             "control (docs/SERVER.md)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7453,
                   help="TCP port (0 picks an ephemeral one; default 7453)")
    p.add_argument("--shards", type=int, default=16, metavar="N",
                   help="artifact-store shards, each with its own lock "
                        "(default 16)")
    p.add_argument("--peer-dir", action="append", default=None, metavar="PATH",
                   help="read-through peer cache directory (repeatable): "
                        "local misses consult PATH before compiling")
    p.add_argument("--queue-depth", type=int, default=256, metavar="N",
                   help="admission bound on queued sweep points; beyond it "
                        "requests are rejected with 429 (default 256)")
    p.add_argument("--quota-rate", type=float, default=64.0, metavar="R",
                   help="per-client sustained points/second (default 64)")
    p.add_argument("--quota-burst", type=float, default=256.0, metavar="B",
                   help="per-client burst allowance in points (default 256)")
    p.add_argument("--batch-window", type=float, default=0.005, metavar="S",
                   help="micro-batch collection window in seconds "
                        "(default 0.005)")
    p.add_argument("--max-batch", type=int, default=32, metavar="N",
                   help="max points per scheduler batch (default 32)")
    p.add_argument("--self-test", action="store_true",
                   help="run the end-to-end smoke (concurrent clients, "
                        "byte-identity, coalescing, admission) and exit")
    p.add_argument("--clients", type=int, default=4, metavar="N",
                   help="concurrent clients for --self-test (default 4)")
    p.add_argument("--points", type=int, default=72, metavar="N",
                   help="Fig. 4 grid points for --self-test (default 72)")
    add_service_flags(p)
    add_resilience_flags(p)
    add_trace_flags(p)
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "client",
        help="talk to a running repro serve daemon (docs/SERVER.md)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7453)
    p.add_argument("--id", default="cli", metavar="NAME",
                   help="client id for quotas and trace lanes (default cli)")
    p.add_argument("--spawn", action="store_true",
                   help="spawn an ephemeral in-process daemon instead of "
                        "connecting (ignores --host/--port)")
    add_service_flags(p)
    add_resilience_flags(p)
    add_trace_flags(p)
    csub = p.add_subparsers(dest="client_command", required=True)

    cp = csub.add_parser("compile", help="compile one source via the daemon")
    cp.add_argument("file")
    cp.add_argument("--compiler", choices=("caps", "pgi"), default="caps")
    cp.add_argument("--target", choices=("cuda", "opencl"), default="cuda")

    cp = csub.add_parser("sweep",
                         help="drive the Fig. 4 grid through the daemon")
    cp.add_argument("--points", type=int, default=None, metavar="N",
                    help="grid points to sweep (default: all 72)")
    cp.add_argument("--compiler", choices=("caps", "pgi"), default="caps")

    csub.add_parser("status", help="print the daemon's status JSON")
    csub.add_parser("stats", help="print the daemon's counters JSON")
    p.set_defaults(func=_cmd_client)

    p = sub.add_parser(
        "telemetry",
        help="render a saved --trace file as a text report "
             "(docs/TELEMETRY.md)",
    )
    p.add_argument("file", help="a trace written by --trace (either format)")
    p.add_argument("--limit", type=int, default=400, metavar="N",
                   help="max timeline-tree lines to render (default 400)")
    p.set_defaults(func=_cmd_telemetry)

    return parser


def _cli_errors(func):
    """Turn the structured failure modes into clean CLI exits: a bad
    --faults spec or an unusable --cache-dir is a usage error (2); a
    sweep point still failing after the retry/breaker kit is exhausted
    is a run failure (1), reported as one line rather than a
    traceback."""
    import functools

    from .core.ladder import LadderError
    from .faults import FaultSpecError
    from .jit import TemplateError
    from .service import CacheDirError, JobError

    @functools.wraps(func)
    def wrapped(args: argparse.Namespace) -> int:
        try:
            return func(args)
        except FaultSpecError as exc:
            print(f"repro: bad --faults spec: {exc}", file=sys.stderr)
            return 2
        except CacheDirError as exc:
            print(f"repro: bad --cache-dir: {exc}", file=sys.stderr)
            return 2
        except LadderError as exc:
            print(f"repro: bad --ladder spec: {exc}", file=sys.stderr)
            return 2
        except TemplateError as exc:
            print(f"repro: bad template/bindings: {exc}", file=sys.stderr)
            return 2
        except JobError as exc:
            print(f"repro: sweep failed after retries: {exc}",
                  file=sys.stderr)
            return 1

    return wrapped


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    backend = getattr(args, "exec_backend", None)
    if backend is not None:
        # every execute_kernel() call in the process honors this default,
        # so bench/experiment/heatmap/autotune need no extra plumbing
        from .runtime.executor import set_default_backend

        set_default_backend(backend)

    def dispatch(a: argparse.Namespace) -> int:
        cache_dir = getattr(a, "cache_dir", None)
        if cache_dir is not None:
            # the persistent kernel-plan tier lives under the same
            # content-addressed cache directory as compiled artifacts
            from .runtime.executor import configure_plan_cache

            configure_plan_cache(Path(cache_dir) / "plans")
        return a.func(a)

    trace_path = getattr(args, "trace", None)
    if trace_path is None:
        return _cli_errors(dispatch)(args)

    from .telemetry import (
        configure_tracer,
        get_registry,
        get_tracer,
        reset_registry,
        reset_tracer,
        write_trace,
    )

    configure_tracer(enabled=True)
    reset_registry()
    try:
        return _cli_errors(dispatch)(args)
    finally:
        count = write_trace(trace_path, args.trace_format, get_tracer(),
                            get_registry())
        print(f"trace: {count} spans -> {trace_path} ({args.trace_format})",
              file=sys.stderr)
        reset_tracer()


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
