"""Mini-C + OpenACC/HMPP pragma frontend.

Parses the kernel sources of the five benchmarks (and any user-written
kernel in the same subset) into the loop-nest IR of :mod:`repro.ir`.
"""

from .lexer import LexError, Token, tokenize
from .parser import (
    ParseError,
    Parser,
    parse_expr,
    parse_kernel,
    parse_module,
    template_holes,
)
from .pragmas import PragmaError, parse_pragma

__all__ = [
    "LexError",
    "ParseError",
    "Parser",
    "PragmaError",
    "Token",
    "parse_expr",
    "parse_kernel",
    "parse_module",
    "parse_pragma",
    "template_holes",
    "tokenize",
]
