"""Lexer for the mini-C kernel language.

Produces a flat token stream; ``#pragma`` lines become single PRAGMA tokens
carrying their raw text (sub-parsed later by :mod:`repro.frontend.pragmas`),
mirroring how a real C tokenizer hands pragmas to the compiler as units.

Template holes — ``$n`` or ``$rows:int`` / ``$eps:float`` — lex to HOLE
tokens.  They are only meaningful to a :class:`~repro.frontend.parser.Parser`
constructed with a ``bindings`` map (the ``repro.jit`` frontend); plain
``parse_kernel``/``parse_module`` reject them with a diagnostic listing
the unbound holes.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

KEYWORDS = frozenset(
    {
        "for",
        "if",
        "else",
        "while",
        "void",
        "int",
        "long",
        "float",
        "double",
        "bool",
        "const",
        "restrict",
        "unsigned",
        "return",
    }
)

#: Multi-character operators, longest first so maximal munch works.
_OPERATORS = [
    "<<=", ">>=",
    "&&", "||", "==", "!=", "<=", ">=", "+=", "-=", "*=", "/=", "%=",
    "++", "--", "<<", ">>",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "~", "&", "|", "^",
    "(", ")", "[", "]", "{", "}", ",", ";", "?", ":",
]

#: template-hole spellings: ``$name`` with an optional ``:type`` suffix
HOLE_TYPES = ("int", "long", "float", "double")

_TOKEN_RE = re.compile(
    r"""
    (?P<pragma>\#pragma[^\n]*)
  | (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<hole>\$[A-Za-z_][A-Za-z_0-9]*(:(?:int|long|float|double))?)
  | (?P<float>(\d+\.\d*|\.\d+)([eE][-+]?\d+)?[fF]?|\d+[eE][-+]?\d+[fF]?|\d+[fF])
  | (?P<int>0[xX][0-9a-fA-F]+|\d+)
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op>""" + "|".join(re.escape(op) for op in _OPERATORS) + r""")
  | (?P<ws>\s+)
  | (?P<bad>.)
    """,
    re.VERBOSE | re.DOTALL,
)


class LexError(SyntaxError):
    """Raised on an unrecognized character."""


@dataclass(frozen=True)
class Token:
    kind: str  # PRAGMA | FLOAT | INT | IDENT | KEYWORD | OP | HOLE | EOF
    text: str
    line: int
    col: int

    def __str__(self) -> str:
        return f"{self.kind}({self.text!r})@{self.line}:{self.col}"


def tokenize(source: str) -> list[Token]:
    """Tokenize mini-C *source*, dropping comments and whitespace."""
    tokens: list[Token] = []
    line = 1
    line_start = 0
    pos = 0
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:  # pragma: no cover - regex has a catch-all
            raise LexError(f"cannot tokenize at offset {pos}")
        kind = match.lastgroup
        text = match.group()
        col = match.start() - line_start + 1
        if kind == "bad":
            raise LexError(f"unexpected character {text!r} at line {line}, col {col}")
        if kind == "pragma":
            tokens.append(Token("PRAGMA", text.strip(), line, col))
        elif kind == "hole":
            tokens.append(Token("HOLE", text, line, col))
        elif kind == "float":
            tokens.append(Token("FLOAT", text, line, col))
        elif kind == "int":
            tokens.append(Token("INT", text, line, col))
        elif kind == "ident":
            token_kind = "KEYWORD" if text in KEYWORDS else "IDENT"
            tokens.append(Token(token_kind, text, line, col))
        elif kind == "op":
            tokens.append(Token("OP", text, line, col))
        # comments / whitespace are dropped, but line tracking continues
        newlines = text.count("\n")
        if newlines:
            line += newlines
            line_start = match.start() + text.rindex("\n") + 1
        pos = match.end()
    tokens.append(Token("EOF", "", line, 1))
    return tokens
