"""Recursive-descent parser: mini-C + pragmas -> kernel IR.

Grammar (informal)::

    module   := kernel*
    kernel   := pragma* "void" IDENT "(" params ")" block
    param    := ["const"|"unsigned"] type ["*"["restrict"]]* IDENT
    block    := "{" stmt* "}"
    stmt     := decl ";" | assign ";" | for | if | while | block | ";"
    for      := pragma* "for" "(" init ";" cond ";" incr ")" body
    expr     := C expression subset (ternary, ||, &&, compare, arith,
                unary, calls, array refs, casts)

Loops must be canonical counted loops (``i = lo; i < hi; i += step``) —
exactly the forms the OpenACC compilers of the paper can map to device
parallelism.  Anything else is rejected with a diagnostic.
"""

from __future__ import annotations

from ..ir.directives import Directive, DirectiveSet
from ..ir.expr import (
    ArrayRef,
    BinOp,
    Call,
    Cast,
    Expr,
    FloatLit,
    INTRINSICS,
    IntLit,
    Ternary,
    UnaryOp,
    Var,
    add,
    const,
)
from ..ir.stmt import (
    Assign,
    Block,
    Decl,
    For,
    If,
    KernelFunction,
    Module,
    Param,
    Stmt,
    While,
)
from ..ir.types import ArrayType, DType, ScalarType
from .lexer import Token, tokenize
from .pragmas import parse_pragma

_TYPE_KEYWORDS = {"int", "long", "float", "double", "bool"}

# binary operator precedence for the climbing parser (higher binds tighter)
_BIN_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "<": 7,
    "<=": 7,
    ">": 7,
    ">=": 7,
    "<<": 8,
    ">>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
}


class ParseError(SyntaxError):
    """Raised with a line/column diagnostic on malformed input."""

    def __init__(self, message: str, token: Token):
        super().__init__(f"{message} (at line {token.line}, col {token.col}: {token.text!r})")
        self.token = token


class Parser:
    """Parses mini-C; *bindings* resolves template holes (``$n``) to
    literals at parse time (the ``repro.jit`` specialization frontend).

    ``holes`` records every hole the source mentions (name -> declared
    type), whether or not it was bound — :func:`template_holes` uses a
    scan-only parser to enumerate a template's parameters.
    """

    def __init__(
        self,
        source: str,
        bindings: dict[str, int | float] | None = None,
    ) -> None:
        self._tokens = tokenize(source)
        self._pos = 0
        self._bindings = bindings
        self.holes: dict[str, str] = {}

    # -- token helpers ------------------------------------------------------

    @property
    def _cur(self) -> Token:
        return self._tokens[self._pos]

    def _peek(self, offset: int = 1) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._cur
        if token.kind != "EOF":
            self._pos += 1
        return token

    def _check(self, kind: str, text: str | None = None) -> bool:
        token = self._cur
        return token.kind == kind and (text is None or token.text == text)

    def _accept(self, kind: str, text: str | None = None) -> Token | None:
        if self._check(kind, text):
            return self._advance()
        return None

    def _expect(self, kind: str, text: str | None = None) -> Token:
        if not self._check(kind, text):
            want = text if text is not None else kind
            raise ParseError(f"expected {want!r}", self._cur)
        return self._advance()

    # -- pragmas ------------------------------------------------------------

    def _collect_pragmas(self) -> list[Directive]:
        directives: list[Directive] = []
        while self._check("PRAGMA"):
            directives.append(parse_pragma(self._advance().text))
        return directives

    # -- module / kernel ----------------------------------------------------

    def parse_module(self, name: str = "module") -> Module:
        kernels: list[KernelFunction] = []
        while not self._check("EOF"):
            kernels.append(self.parse_kernel())
        return Module(name, kernels)

    def parse_kernel(self) -> KernelFunction:
        directives = self._collect_pragmas()
        self._expect("KEYWORD", "void")
        name = self._expect("IDENT").text
        self._expect("OP", "(")
        params = self._parse_params()
        self._expect("OP", ")")
        body = self._parse_block()
        return KernelFunction(name, params, body, DirectiveSet(tuple(directives)))

    def _parse_params(self) -> list[Param]:
        params: list[Param] = []
        if self._check("OP", ")"):
            return params
        while True:
            params.append(self._parse_param())
            if not self._accept("OP", ","):
                break
        return params

    def _parse_param(self) -> Param:
        is_const = False
        while self._cur.kind == "KEYWORD" and self._cur.text in ("const", "unsigned"):
            if self._cur.text == "const":
                is_const = True
            self._advance()
        type_token = self._expect("KEYWORD")
        if type_token.text not in _TYPE_KEYWORDS:
            raise ParseError("expected a type name", type_token)
        dtype = DType.from_c_name(type_token.text)
        rank = 0
        while self._accept("OP", "*"):
            rank += 1
            self._accept("KEYWORD", "restrict")
            self._accept("KEYWORD", "const")
        name = self._expect("IDENT").text
        # trailing "[]" dimensions also raise rank
        while self._accept("OP", "["):
            self._accept("INT")
            self._expect("OP", "]")
            rank += 1
        if rank:
            intent = "in" if is_const else "inout"
            return Param(name, ArrayType(dtype, rank), intent)
        return Param(name, ScalarType(dtype), "in")

    # -- statements ---------------------------------------------------------

    def _parse_block(self) -> Block:
        self._expect("OP", "{")
        block = Block()
        while not self._check("OP", "}"):
            if self._check("EOF"):
                raise ParseError("unterminated block", self._cur)
            stmt = self._parse_stmt()
            if stmt is not None:
                block.stmts.append(stmt)
        self._expect("OP", "}")
        return block

    def _parse_body(self) -> Block:
        """A loop/if body: either a block or a single statement."""
        if self._check("OP", "{"):
            return self._parse_block()
        stmt = self._parse_stmt()
        return Block([stmt] if stmt is not None else [])

    def _parse_stmt(self) -> Stmt | None:
        if self._check("PRAGMA"):
            directives = self._collect_pragmas()
            from ..ir.directives import AccAtomic

            if directives and all(isinstance(d, AccAtomic) for d in directives):
                stmt = self._parse_assign()
                self._expect("OP", ";")
                stmt.atomic = True
                return stmt
            if not self._check("KEYWORD", "for"):
                raise ParseError("pragma must be followed by a for loop", self._cur)
            return self._parse_for(directives)
        if self._check("KEYWORD", "for"):
            return self._parse_for([])
        if self._check("KEYWORD", "if"):
            return self._parse_if()
        if self._check("KEYWORD", "while"):
            return self._parse_while()
        if self._check("OP", "{"):
            return self._parse_block()
        if self._accept("OP", ";"):
            return None
        if self._cur.kind == "KEYWORD" and self._cur.text in _TYPE_KEYWORDS | {
            "const",
            "unsigned",
        }:
            return self._parse_decl()
        stmt = self._parse_assign()
        self._expect("OP", ";")
        return stmt

    def _parse_decl(self) -> Stmt:
        while self._cur.kind == "KEYWORD" and self._cur.text in ("const", "unsigned"):
            self._advance()
        type_token = self._expect("KEYWORD")
        if type_token.text not in _TYPE_KEYWORDS:
            raise ParseError("expected a type name", type_token)
        dtype = DType.from_c_name(type_token.text)
        decls: list[Stmt] = []
        while True:
            name = self._expect("IDENT").text
            init = None
            if self._accept("OP", "="):
                init = self._parse_expr()
            decls.append(Decl(name, ScalarType(dtype), init))
            if not self._accept("OP", ","):
                break
        self._expect("OP", ";")
        if len(decls) == 1:
            return decls[0]
        return Block(decls)

    def _parse_for(self, directives: list[Directive]) -> For:
        self._expect("KEYWORD", "for")
        self._expect("OP", "(")

        # init: [type] var = expr
        if self._cur.kind == "KEYWORD" and self._cur.text in _TYPE_KEYWORDS | {"unsigned"}:
            while self._cur.kind == "KEYWORD":
                self._advance()
        var_token = self._expect("IDENT")
        var = var_token.text
        self._expect("OP", "=")
        lower = self._parse_expr()
        self._expect("OP", ";")

        # condition: var < expr | var <= expr
        cond_var = self._expect("IDENT")
        if cond_var.text != var:
            raise ParseError(
                f"non-canonical loop: condition tests {cond_var.text!r}, "
                f"induction variable is {var!r}",
                cond_var,
            )
        op_token = self._expect("OP")
        if op_token.text not in ("<", "<="):
            raise ParseError("loop condition must use < or <=", op_token)
        bound = self._parse_expr()
        upper = add(bound, 1) if op_token.text == "<=" else bound
        self._expect("OP", ";")

        # increment: var++ | var += c | var = var + c
        step = self._parse_increment(var)
        self._expect("OP", ")")
        body = self._parse_body()
        return For(
            var=var,
            lower=lower,
            upper=upper,
            body=body,
            step=step,
            directives=DirectiveSet(tuple(directives)),
        )

    def _parse_increment(self, var: str) -> int:
        name_token = self._expect("IDENT")
        if name_token.text != var:
            raise ParseError(
                f"non-canonical loop: increment updates {name_token.text!r}", name_token
            )
        if self._accept("OP", "++"):
            return 1
        if self._accept("OP", "+="):
            step_token = self._expect("INT")
            return int(step_token.text, 0)
        if self._accept("OP", "="):
            base = self._expect("IDENT")
            if base.text != var:
                raise ParseError("non-canonical loop increment", base)
            self._expect("OP", "+")
            step_token = self._expect("INT")
            return int(step_token.text, 0)
        raise ParseError("unsupported loop increment", self._cur)

    def _parse_if(self) -> If:
        self._expect("KEYWORD", "if")
        self._expect("OP", "(")
        cond = self._parse_expr()
        self._expect("OP", ")")
        then_body = self._parse_body()
        else_body = None
        if self._accept("KEYWORD", "else"):
            else_body = self._parse_body()
        return If(cond, then_body, else_body)

    def _parse_while(self) -> While:
        self._expect("KEYWORD", "while")
        self._expect("OP", "(")
        cond = self._parse_expr()
        self._expect("OP", ")")
        body = self._parse_body()
        return While(cond, body)

    def _parse_assign(self) -> Assign:
        target = self._parse_postfix()
        if not isinstance(target, (Var, ArrayRef)):
            raise ParseError("assignment target must be a variable or array element",
                             self._cur)
        if self._accept("OP", "++"):
            return Assign(target, const(1), op="+")
        if self._accept("OP", "--"):
            return Assign(target, const(1), op="-")
        op_token = self._expect("OP")
        if op_token.text == "=":
            return Assign(target, self._parse_expr())
        if op_token.text in ("+=", "-=", "*=", "/="):
            return Assign(target, self._parse_expr(), op=op_token.text[0])
        raise ParseError("expected an assignment operator", op_token)

    # -- expressions --------------------------------------------------------

    def _parse_expr(self) -> Expr:
        return self._parse_ternary()

    def _parse_ternary(self) -> Expr:
        cond = self._parse_binary(1)
        if self._accept("OP", "?"):
            then = self._parse_expr()
            self._expect("OP", ":")
            otherwise = self._parse_ternary()
            return Ternary(cond, then, otherwise)
        return cond

    def _parse_binary(self, min_prec: int) -> Expr:
        lhs = self._parse_unary()
        while True:
            token = self._cur
            prec = _BIN_PRECEDENCE.get(token.text) if token.kind == "OP" else None
            if prec is None or prec < min_prec:
                return lhs
            self._advance()
            rhs = self._parse_binary(prec + 1)
            lhs = BinOp(token.text, lhs, rhs)

    def _parse_unary(self) -> Expr:
        if self._cur.kind == "OP" and self._cur.text in ("-", "!", "~", "+"):
            op = self._advance().text
            operand = self._parse_unary()
            if op == "-" and isinstance(operand, IntLit):
                return IntLit(-operand.value, operand.dtype)
            if op == "-" and isinstance(operand, FloatLit):
                return FloatLit(-operand.value, operand.dtype)
            return UnaryOp(op, operand)
        return self._parse_postfix()

    def _parse_postfix(self) -> Expr:
        expr = self._parse_primary()
        while self._check("OP", "["):
            indices: list[Expr] = []
            while self._accept("OP", "["):
                indices.append(self._parse_expr())
                self._expect("OP", "]")
            if not isinstance(expr, Var):
                raise ParseError("can only index plain arrays", self._cur)
            expr = ArrayRef(expr.name, tuple(indices))
        return expr

    def _resolve_hole(self, token: Token) -> Expr:
        """Bind one ``$name[:type]`` hole to a typed literal."""
        text = token.text[1:]  # strip "$"
        name, _, declared = text.partition(":")
        declared = declared or "int"
        previous = self.holes.setdefault(name, declared)
        if previous != declared:
            raise ParseError(
                f"hole ${name} declared both :{previous} and :{declared}",
                token,
            )
        if self._bindings is None or name not in self._bindings:
            raise ParseError(f"unbound template hole ${name}", token)
        value = self._bindings[name]
        if declared in ("int", "long"):
            if isinstance(value, bool) or not isinstance(value, int):
                raise ParseError(
                    f"hole ${name}:{declared} bound to non-integer "
                    f"{value!r}", token,
                )
            dtype = DType.INT64 if declared == "long" else DType.INT32
            return IntLit(int(value), dtype)
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ParseError(
                f"hole ${name}:{declared} bound to non-numeric {value!r}",
                token,
            )
        dtype = DType.FLOAT32 if declared == "float" else DType.FLOAT64
        return FloatLit(float(value), dtype)

    def _parse_primary(self) -> Expr:
        token = self._cur
        if token.kind == "HOLE":
            self._advance()
            return self._resolve_hole(token)
        if token.kind == "INT":
            self._advance()
            return IntLit(int(token.text, 0))
        if token.kind == "FLOAT":
            self._advance()
            text = token.text
            if text[-1] in "fF":
                return FloatLit(float(text[:-1]), DType.FLOAT32)
            return FloatLit(float(text), DType.FLOAT64)
        if token.kind == "IDENT":
            self._advance()
            if self._check("OP", "(") and token.text in INTRINSICS:
                self._advance()
                args: list[Expr] = []
                if not self._check("OP", ")"):
                    while True:
                        args.append(self._parse_expr())
                        if not self._accept("OP", ","):
                            break
                self._expect("OP", ")")
                return Call(token.text, tuple(args))
            if self._check("OP", "(") and token.text not in INTRINSICS:
                raise ParseError(f"unknown function {token.text!r}", token)
            return Var(token.text)
        if token.kind == "OP" and token.text == "(":
            # cast or parenthesized expression
            if (
                self._peek().kind == "KEYWORD"
                and self._peek().text in _TYPE_KEYWORDS
                and self._peek(2).kind == "OP"
                and self._peek(2).text == ")"
            ):
                self._advance()  # (
                dtype = DType.from_c_name(self._advance().text)
                self._advance()  # )
                return Cast(dtype, self._parse_unary())
            self._advance()
            expr = self._parse_expr()
            self._expect("OP", ")")
            return expr
        raise ParseError("expected an expression", token)


def parse_kernel(
    source: str, bindings: dict[str, int | float] | None = None
) -> KernelFunction:
    """Parse a single mini-C kernel function."""
    parser = Parser(source, bindings)
    kernel = parser.parse_kernel()
    if not parser._check("EOF"):
        raise ParseError("trailing input after kernel", parser._cur)
    return kernel


def parse_module(
    source: str,
    name: str = "module",
    bindings: dict[str, int | float] | None = None,
) -> Module:
    """Parse a translation unit of one or more kernels.

    *bindings* resolves template holes (``$n``) at parse time; a hole the
    map does not cover raises :class:`ParseError`.
    """
    from ..telemetry.spans import get_tracer

    with get_tracer().span("frontend.parse", category="frontend",
                           module=name, chars=len(source)):
        return Parser(source, bindings).parse_module(name)


def template_holes(source: str) -> dict[str, str]:
    """The holes of a kernel template (name -> declared type), by lexing
    alone — no bindings needed, no IR built, no parse span emitted."""
    from .lexer import tokenize

    holes: dict[str, str] = {}
    for token in tokenize(source):
        if token.kind != "HOLE":
            continue
        name, _, declared = token.text[1:].partition(":")
        declared = declared or "int"
        if holes.setdefault(name, declared) != declared:
            raise ParseError(
                f"hole ${name} declared both :{holes[name]} and "
                f":{declared}", token,
            )
    return holes


def parse_expr(source: str) -> Expr:
    """Parse a standalone expression (testing convenience)."""
    parser = Parser(source)
    expr = parser._parse_expr()
    if not parser._check("EOF"):
        raise ParseError("trailing input after expression", parser._cur)
    return expr
