"""Sub-parser for ``#pragma acc`` and ``#pragma hmppcg`` lines.

Accepts the directive vocabulary used by the paper (sections II-B and III):
OpenACC compute/loop/data/routine/atomic constructs and the CAPS HMPP
codelet-generator directives (unroll-and-jam, tile, blocksize).
"""

from __future__ import annotations

import re

from ..ir.directives import (
    AccAtomic,
    AccCache,
    AccData,
    AccKernels,
    AccLoop,
    AccParallel,
    AccRoutine,
    Directive,
    HmppBlocksize,
    HmppTile,
    HmppUnroll,
    ReductionClause,
)


class PragmaError(SyntaxError):
    """Raised when a pragma line cannot be understood."""


_CLAUSE_RE = re.compile(
    r"""
    (?P<name>[A-Za-z_]+)
    (?:\(\s*(?P<args>[^)]*)\s*\))?
    """,
    re.VERBOSE,
)


def _split_clauses(text: str) -> list[tuple[str, str | None]]:
    """Split ``"independent gang(8) worker(32)"`` into (name, args) pairs."""
    clauses: list[tuple[str, str | None]] = []
    pos = 0
    while pos < len(text):
        ch = text[pos]
        if ch.isspace() or ch == ",":
            pos += 1
            continue
        match = _CLAUSE_RE.match(text, pos)
        if match is None:
            raise PragmaError(f"cannot parse clause at {text[pos:]!r}")
        clauses.append((match.group("name"), match.group("args")))
        pos = match.end()
    return clauses


def _int_arg(name: str, args: str | None) -> int:
    if args is None or not args.strip():
        raise PragmaError(f"clause {name!r} requires an integer argument")
    try:
        return int(args.strip())
    except ValueError as exc:
        raise PragmaError(f"clause {name}({args}) is not an integer") from exc


def _reduction_arg(args: str | None) -> ReductionClause:
    if args is None or ":" not in args:
        raise PragmaError("reduction clause requires 'op:var'")
    op, var = args.split(":", 1)
    return ReductionClause(op.strip(), var.strip())


def _parse_acc(body: str) -> Directive:
    match = re.match(r"^([A-Za-z_]+)\s*(.*)$", body, re.DOTALL)
    construct = match.group(1) if match else ""
    rest = match.group(2) if match else ""

    if construct == "kernels":
        return AccKernels()

    if construct == "parallel":
        num_gangs = num_workers = vector_length = None
        reduction = None
        for name, args in _split_clauses(rest):
            if name == "num_gangs":
                num_gangs = _int_arg(name, args)
            elif name == "num_workers":
                num_workers = _int_arg(name, args)
            elif name == "vector_length":
                vector_length = _int_arg(name, args)
            elif name == "reduction":
                reduction = _reduction_arg(args)
            else:
                raise PragmaError(f"unknown acc parallel clause {name!r}")
        return AccParallel(num_gangs, num_workers, vector_length, reduction)

    if construct == "loop":
        independent = False
        gang = worker = vector = collapse = None
        gang_auto = worker_auto = False
        tile: tuple[int, ...] | None = None
        reduction = None
        for name, args in _split_clauses(rest):
            if name == "independent":
                independent = True
            elif name == "gang":
                if args is None or not args.strip():
                    gang_auto = True
                else:
                    gang = _int_arg(name, args)
            elif name == "worker":
                if args is None or not args.strip():
                    worker_auto = True
                else:
                    worker = _int_arg(name, args)
            elif name == "vector":
                vector = _int_arg(name, args)
            elif name == "collapse":
                collapse = _int_arg(name, args)
            elif name == "tile":
                if args is None:
                    raise PragmaError("tile clause requires sizes")
                tile = tuple(int(a.strip()) for a in args.split(","))
            elif name == "reduction":
                reduction = _reduction_arg(args)
            elif name == "seq":
                independent = False
            else:
                raise PragmaError(f"unknown acc loop clause {name!r}")
        return AccLoop(
            independent=independent,
            gang=gang,
            worker=worker,
            vector=vector,
            collapse=collapse,
            tile=tile,
            reduction=reduction,
            gang_auto=gang_auto,
            worker_auto=worker_auto,
        )

    if construct == "tile":
        # CAPS extension: "#pragma acc tile(n)" (paper section III-D)
        match = re.match(r"^\(\s*([0-9, ]+?)\s*\)$", rest.strip())
        if match is None:
            raise PragmaError(f"cannot parse acc tile sizes from {body!r}")
        sizes = tuple(int(s) for s in match.group(1).split(","))
        return AccLoop(tile=sizes)

    if construct == "cache":
        match = re.match(r"^\(\s*([^)]*?)\s*\)$", rest.strip())
        if match is None:
            raise PragmaError(f"cannot parse acc cache arrays from {body!r}")
        arrays = tuple(a.strip() for a in match.group(1).split(",") if a.strip())
        if not arrays:
            raise PragmaError("acc cache requires at least one array")
        return AccCache(arrays)

    if construct == "data":
        kwargs: dict[str, tuple[str, ...]] = {}
        for name, args in _split_clauses(rest):
            if name not in ("copy", "copyin", "copyout", "create", "present"):
                raise PragmaError(f"unknown acc data clause {name!r}")
            if args is None:
                raise PragmaError(f"acc data {name} requires variable names")
            kwargs[name] = tuple(a.strip() for a in args.split(",") if a.strip())
        return AccData(**kwargs)

    if construct == "routine":
        level = rest.strip() or "seq"
        return AccRoutine(level)

    if construct == "atomic":
        kind = rest.strip() or "update"
        return AccAtomic(kind)

    raise PragmaError(f"unknown acc construct {construct!r}")


def _parse_hmppcg(body: str, target: str | None) -> Directive:
    body = body.strip()

    match = re.match(r"^blocksize\s+(\d+)\s*[xX]\s*(\d+)$", body)
    if match:
        return HmppBlocksize(int(match.group(1)), int(match.group(2)))

    match = re.match(r"^tile\s+([A-Za-z_][A-Za-z_0-9]*)\s*:\s*(\d+)$", body)
    if match:
        return HmppTile(match.group(1), int(match.group(2)))

    match = re.match(r"^unroll\s*\(\s*(\d+)\s*\)\s*(,\s*jam)?$", body)
    if match:
        return HmppUnroll(int(match.group(1)), jam=match.group(2) is not None,
                          target=target)

    raise PragmaError(f"unknown hmppcg directive {body!r}")


def parse_pragma(text: str) -> Directive:
    """Parse one ``#pragma ...`` line into a directive node."""
    stripped = text.strip()
    if not stripped.startswith("#pragma"):
        raise PragmaError(f"not a pragma line: {text!r}")
    body = stripped[len("#pragma"):].strip()

    if body.startswith("acc"):
        return _parse_acc(body[len("acc"):].strip())

    match = re.match(r"^hmppcg(?:\s*\(\s*(cuda|opencl)\s*\))?\s+(.*)$", body)
    if match:
        return _parse_hmppcg(match.group(2), match.group(1))

    # "#pragma hmppcg call ..." and friends used in generated codelets are
    # not accepted as *input* pragmas.
    raise PragmaError(f"unsupported pragma family in {text!r}")
