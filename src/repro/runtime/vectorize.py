"""Vectorizing NumPy backend for the kernel executor.

:class:`_VectorCodeGen` subclasses the scalar code generator and, for each
loop, tries to lower the whole iteration space to array-at-a-time NumPy
statements; any loop it cannot prove safe falls back — *per loop* — to
the inherited scalar codegen, so the two backends always agree statement
for statement on the parts that are not vectorized.

Legality (see ``docs/EXECUTOR.md`` for the full rules):

* innermost loops only — the body may contain nothing but assignments,
  ``if``s, and *top-level* scalar declarations (no nested loops,
  ``while``, barriers, or declarations inside an ``if``);
* a top-level declaration is privatized per iteration: its name becomes a
  lane vector (or a loop-invariant scalar), guarded updates under a
  vector mask lower to ``np.where(mask, new, old)``, and the final
  lane's value is re-leaked as a Python scalar after the loop exactly as
  the scalar backend's block-scope-free ``for`` would leak it; masked
  updates must preserve the value's promotion kind, reads before the
  declaration are loop-carried and reject the loop;
* array references of any rank lower to NumPy fancy indexing — each
  subscript dimension is lowered independently and vector dimensions
  broadcast to the lane axis, so ``a[i][j]``-style affine gathers and
  scatters vectorize without linearization;
* ``SEQUENTIAL`` loops need an ``INDEPENDENT`` or ``REDUCTION`` verdict
  from :func:`repro.analysis.dependence.analyze_loop`; statement-at-a-time
  execution of an independent loop is observationally identical to
  iteration-at-a-time;
* ``PARALLEL_SNAPSHOT`` loops are always eligible: every read of a
  written array goes to the loop-entry snapshot, so statements cannot
  interfere through *reads* — and when several statements write the same
  array their stores are deferred into one iteration-major interleaved
  scatter (``_vstore_multi``) so overlapping writes land in the scalar
  loop's order; snapshot *copies* are only materialized for arrays whose
  reads could actually observe the loop's own stores
  (:func:`_snapshot_copies_needed`) — everything else reads live memory,
  which equals the loop-entry state by construction;
* loops containing *atomic* updates are never vectorized in any mode —
  the dependence analyzer excludes atomics from its write set, so its
  verdicts cannot vouch for them, and a compound atomic accumulates on
  live memory across iterations;
* ``REDUCTION_LAST_CHUNK`` loops are never vectorized — they exist to
  model a *broken* chunked reduction and their semantics are inherently
  iteration-ordered.

Bit-compatibility with the scalar backend is the design invariant, not an
aspiration: the lowering tracks the NEP-50 "weak scalar" promotion the
scalar backend gets from Python ints/floats (a *kind* lattice — weak int,
weak float, and the strong NumPy dtypes) and inserts explicit ``astype``
casts exactly where per-element execution would have converted, so each
array statement computes the same bits the scalar loop would.  Constructs
whose NumPy lowering is *not* bit-identical to the ``math``-module scalar
path (``exp``/``log``/``pow``, vector ``min``/``max``, bitwise ops) are
rejected rather than approximated.  Scalar reductions are recognized
(single ``acc += / -= / *=`` statement, float accumulator, accumulator
referenced nowhere else) and lowered to ``np.add.accumulate`` /
``np.multiply.accumulate``, whose documented semantics are the exact
left-to-right recurrence of the scalar loop — *not* ``np.sum``, whose
pairwise summation would change the bits.

Known, documented divergences are all on error paths: the scalar backend
raises for ``math.sqrt`` of a negative or ``float`` division by zero
where NumPy yields NaN/inf with a warning, and a mid-loop ``IndexError``
leaves partially-written arrays under the scalar backend but nothing
written under the vector one.  ``execute_kernel(..., backend="check")``
only compares runs that complete.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

from ..analysis.dependence import Verdict, analyze_loop
from ..ir.expr import (
    ArrayRef,
    BinOp,
    Call,
    Cast,
    Expr,
    FloatLit,
    IntLit,
    Ternary,
    UnaryOp,
    Var,
)
from ..ir.stmt import Assign, Barrier, Block, Decl, For, If, Stmt, While
from ..ir.types import ArrayType, DType
from ..ir.visitors import writes_and_reads
from .executor import (
    _CALL_MAP,
    _CodeGen,
    ExecMode,
    ExecutionError,
    LoopSemantics,
    _pyname,
)


class _NotVectorizable(Exception):
    """Internal control flow: this loop must use the scalar fallback.

    ``reason`` is the fallback-histogram bucket the rejection lands in
    (``executor.fallback.<reason>``); the default covers the many
    promotion/representation rejections.
    """

    def __init__(self, message: str, reason: str = "dtype") -> None:
        super().__init__(message)
        self.reason = reason


# -- the kind lattice --------------------------------------------------------
#
# Scalar-backend values are Python scalars (weak under NEP 50) or NumPy
# scalars/array elements (strong).  A lowered value's *kind* records which,
# so binary ops can insert the cast per-element execution would perform.

KB = "bool"      # boolean (comparisons, logical ops)
KWI = "weak-int"   # Python int / int64-backed vector acting weakly
KI32 = "int32"
KI64 = "int64"
KFW = "weak-float"  # Python float / float64-backed vector acting weakly
KF32 = "float32"
KF64 = "float64"

_NPDT = {
    KWI: "np.int64",
    KI32: "np.int32",
    KI64: "np.int64",
    KFW: "np.float64",
    KF32: "np.float32",
    KF64: "np.float64",
}

#: storage representation; kinds sharing a backing never need a real cast
_BACKING = {
    KB: "b1", KWI: "i8", KI64: "i8", KI32: "i4",
    KFW: "f8", KF64: "f8", KF32: "f4",
}

_DTYPE_KIND = {
    DType.BOOL: KB,
    DType.INT32: KI32,
    DType.INT64: KI64,
    DType.FLOAT32: KF32,
    DType.FLOAT64: KF64,
}

_INT_KINDS = (KWI, KI32, KI64)
_NUMERIC_KINDS = (KWI, KI32, KI64, KFW, KF32, KF64)


def _pair(a: str, b: str) -> frozenset:
    return frozenset((a, b))


#: result kind of a binary arithmetic op, mirroring what NEP 50 gives the
#: scalar backend per element (weak operands adopt the strong side's
#: precision; int-meets-float among strong kinds promotes to float64).
_COMBINE = {
    _pair(KWI, KI32): KI32,
    _pair(KWI, KI64): KI64,
    _pair(KI32, KI64): KI64,
    _pair(KWI, KFW): KFW,
    _pair(KWI, KF32): KF32,
    _pair(KWI, KF64): KF64,
    _pair(KFW, KF32): KF32,
    _pair(KFW, KF64): KF64,
    _pair(KF32, KF64): KF64,
    _pair(KFW, KI32): KF64,
    _pair(KFW, KI64): KF64,
    _pair(KF32, KI32): KF64,
    _pair(KF32, KI64): KF64,
    _pair(KF64, KI32): KF64,
    _pair(KF64, KI64): KF64,
}


def _combine(a: str, b: str) -> str:
    if a == b:
        return a
    result = _COMBINE.get(_pair(a, b))
    if result is None:
        raise _NotVectorizable(f"cannot combine kinds {a}/{b}")
    return result


class _VVal(NamedTuple):
    """A lowered value: code string, promotion kind, vector-or-scalar."""

    code: str
    kind: str
    vector: bool


# -- runtime helpers injected into generated namespaces ----------------------


def _vidiv(a, b):
    """Elementwise C-style truncating integer division (``_idiv``)."""
    q = np.abs(a) // np.abs(b)
    return np.where((a >= 0) == (b >= 0), q, -q)


def _vimod(a, b):
    """Elementwise C-style remainder (sign of the dividend)."""
    return a - _vidiv(a, b) * b


def _vstore(arr, idx, val, mask, n):
    """Masked scatter with the scalar loop's write order.

    NumPy fancy assignment applies duplicate indices in order, so the
    last (= highest iteration) value wins — exactly what the sequential
    snapshot-semantics loop produces.  A tuple *idx* is a rank > 1
    subscript: each dimension broadcasts to the lane axis and the store
    goes through multi-dimensional fancy indexing.
    """
    val = np.broadcast_to(np.asarray(val), (n,))
    if isinstance(idx, tuple):
        dims = [np.broadcast_to(np.asarray(i), (n,)) for i in idx]
        if mask is not None:
            dims = [d[mask] for d in dims]
            val = val[mask]
        arr[tuple(dims)] = val
        return
    idx = np.broadcast_to(np.asarray(idx), (n,))
    if mask is not None:
        idx = idx[mask]
        val = val[mask]
    arr[idx] = val


def _vstore_multi(arr, writes, n):
    """Scatter several statements' writes to one array in iteration-major
    order.

    When two statements write overlapping cells, the scalar loop's final
    value is the one from the highest (iteration, statement) pair in
    *iteration-major* order; per-statement scatters would impose
    statement-major order instead.  Interleaving all writes as an
    (n, statements) grid and raveling row-major restores the scalar
    order, and fancy assignment's in-order duplicate handling does the
    rest.  Tuple indices (rank > 1 targets) interleave one grid per
    dimension.
    """
    if not writes:
        return
    cols = len(writes)
    first = writes[0][0]
    rank = len(first) if isinstance(first, tuple) else 1
    idxs = [np.empty((n, cols), dtype=np.int64) for _ in range(rank)]
    val = np.empty((n, cols), dtype=arr.dtype)
    keep = np.empty((n, cols), dtype=bool)
    for col, (i, v, m) in enumerate(writes):
        dims = i if isinstance(i, tuple) else (i,)
        for d, dim in enumerate(dims):
            idxs[d][:, col] = np.broadcast_to(np.asarray(dim), (n,))
        val[:, col] = np.broadcast_to(np.asarray(v), (n,))
        keep[:, col] = True if m is None else m
    flat = keep.ravel()
    if rank == 1:
        arr[idxs[0].ravel()[flat]] = val.ravel()[flat]
    else:
        arr[tuple(ix.ravel()[flat] for ix in idxs)] = val.ravel()[flat]


def _vreduce(acc, terms, op, weak):
    """Fold *terms* into *acc* with the scalar loop's exact bits.

    ``np.add.accumulate`` / ``np.multiply.accumulate`` are documented as
    the left-to-right recurrence ``t = op(t, a[i])`` — unlike ``np.sum``
    (pairwise) they reassociate nothing.  The chain dtype replicates the
    per-step NEP 50 promotion: a weak (Python) accumulator adopts strong
    terms' dtype; a strong accumulator converts weak terms per step,
    which equals one up-front ``astype``.
    """
    terms = np.asarray(terms)
    if terms.size == 0:
        return acc
    if op == "-":
        terms = -terms  # a - b == a + (-b) exactly in IEEE 754
        op = "+"
    acc_weak = isinstance(acc, (int, float)) and not isinstance(acc, bool)
    if acc_weak and weak:
        dt = np.dtype(np.float64)  # pure-Python chain
    elif acc_weak:
        dt = terms.dtype
    elif weak:
        dt = np.asarray(acc).dtype
    else:
        dt = np.result_type(np.asarray(acc).dtype, terms.dtype)
    chain = np.empty(terms.size + 1, dtype=dt)
    chain[0] = acc
    chain[1:] = terms
    ufunc = np.add if op == "+" else np.multiply
    total = ufunc.accumulate(chain)[-1]
    # a fully-weak chain stays a Python float for downstream promotion
    return float(total) if acc_weak and weak else total


_VHELPERS = {
    "np": np,
    "_vidiv": _vidiv,
    "_vimod": _vimod,
    "_vstore": _vstore,
    "_vstore_multi": _vstore_multi,
    "_vreduce": _vreduce,
}


def _collect_assigns(stmt: Stmt) -> list[Assign]:
    return [node for node in stmt.walk() if isinstance(node, Assign)]


def _body_shape_reason(stmt: Stmt, under_if: bool = False) -> str | None:
    """Why the body *shape* rules out vectorization (``None`` if it
    doesn't): assignments and nested ifs are fine anywhere, scalar
    declarations only at the top level (a declaration under an ``if``
    would privatize conditionally — the guarded-loop bucket), and loops,
    ``while``, and barriers never."""
    if isinstance(stmt, Block):
        for child in stmt.stmts:
            reason = _body_shape_reason(child, under_if)
            if reason is not None:
                return reason
        return None
    if isinstance(stmt, If):
        reason = _body_shape_reason(stmt.then_body, True)
        if reason is not None:
            return reason
        if stmt.else_body is not None:
            return _body_shape_reason(stmt.else_body, True)
        return None
    if isinstance(stmt, Assign):
        return None
    if isinstance(stmt, Decl):
        return "guarded-loop" if under_if else None
    if isinstance(stmt, For):
        return "nested-loop"
    if isinstance(stmt, While):
        return "while-loop"
    if isinstance(stmt, Barrier):
        return "barrier"
    return "control-flow"


def _top_level_decls(body: Stmt) -> list[str]:
    """Names declared at the top level of *body*, in declaration order."""
    names: list[str] = []
    if isinstance(body, Block):
        for child in body.stmts:
            if isinstance(child, Decl):
                names.append(child.name)
            elif isinstance(child, Block):
                names.extend(_top_level_decls(child))
    return list(dict.fromkeys(names))


def _snapshot_copies_needed(body: Stmt, deferred: set[str]) -> set[str]:
    """Which written arrays actually need a snapshot *copy*.

    Statement-at-a-time execution evaluates each statement's reads before
    its own store, so a read only observes mutated state when an earlier
    statement already stored to that array.  Arrays whose writes are
    deferred (multi-writer scatter) never mutate until the loop's final
    ``_vstore_multi``, so live reads of them equal the loop-entry
    snapshot by construction.  Everything else can read the live array
    and skip the (potentially large) ``.copy()``.

    Conservative linear scan: ``if`` branches are treated as executing in
    emission order and a store anywhere marks the array stored from then
    on — over-approximating ``needed`` is always safe.
    """
    stored: set[str] = set()
    needed: set[str] = set()

    def expr_reads(expr: Expr) -> None:
        for sub in expr.walk():
            if isinstance(sub, ArrayRef) and sub.name in stored:
                needed.add(sub.name)

    def visit(stmt: Stmt) -> None:
        if isinstance(stmt, Block):
            for child in stmt.stmts:
                visit(child)
        elif isinstance(stmt, If):
            expr_reads(stmt.cond)
            visit(stmt.then_body)
            if stmt.else_body is not None:
                visit(stmt.else_body)
        elif isinstance(stmt, Decl):
            if stmt.init is not None:
                expr_reads(stmt.init)
        elif isinstance(stmt, Assign):
            expr_reads(stmt.value)
            if isinstance(stmt.target, ArrayRef):
                for index in stmt.target.indices:
                    expr_reads(index)
                name = stmt.target.name
                if stmt.op is not None and name in stored:
                    needed.add(name)  # compound read of mutated state
                if name not in deferred:
                    stored.add(name)

    visit(body)
    return needed


def _reads_scalar(stmt: Stmt, names: set[str]) -> bool:
    """Does any expression in *stmt* mention one of *names*?  (Assignment
    targets are writes, but their subscripts are reads; a ``Var`` target
    itself does not count.)"""
    for node in stmt.walk():
        exprs: list[Expr] = []
        if isinstance(node, Assign):
            exprs.append(node.value)
            if isinstance(node.target, ArrayRef):
                exprs.extend(node.target.indices)
        elif isinstance(node, If):
            exprs.append(node.cond)
        elif isinstance(node, Decl) and node.init is not None:
            exprs.append(node.init)
        for expr in exprs:
            for sub in expr.walk():
                if isinstance(sub, Var) and sub.name in names:
                    return True
    return False


class _VectorCodeGen(_CodeGen):
    """Scalar codegen that opportunistically vectorizes eligible loops."""

    def __init__(self, kernel, semantics=None) -> None:
        super().__init__(kernel, semantics)
        self.vectorized_loops = 0
        self.fallback_loops = 0
        #: fallback histogram: reason bucket -> count (one per loop that
        #: fell back); lands in ``executor.fallback.<reason>`` counters
        self.fallback_reasons: dict[str, int] = {}
        self.runtime_helpers = dict(_VHELPERS)
        self._param_scalars = {
            p.name for p in kernel.params if not isinstance(p.type, ArrayType)
        }
        #: scalar-loop variables in scope: guaranteed plain Python ints
        self._int_scalars: set[str] = set()
        self._vec_var: str | None = None
        self._vec_iv: str | None = None
        self._reductions: dict[int, Assign] = {}
        #: arrays written by >1 statement of the current snapshot loop,
        #: mapped to the runtime list their writes are deferred into
        self._multi_writers: dict[str, str] = {}
        #: top-level Decl names of the loop being vectorized, and the
        #: statically-tracked value each holds at the current emission
        #: point (declaration order preserved for the post-loop leak)
        self._decl_names: list[str] = []
        self._vlocals: dict[str, _VVal] = {}
        #: >0 while emitting inside a Python-level (loop-invariant
        #: condition) branch: static local tracking must not diverge
        #: between the taken and untaken arm there
        self._py_branch_depth = 0

    # -- loop dispatch ------------------------------------------------------

    def _gen_for(self, loop: For) -> None:
        reason = "zero-step" if loop.step == 0 else self._try_vectorize(loop)
        if reason is None:
            self.vectorized_loops += 1
            self._int_scalars.add(loop.var)
            return
        self.fallback_loops += 1
        self.fallback_reasons[reason] = self.fallback_reasons.get(reason, 0) + 1
        self._int_scalars.add(loop.var)
        super()._gen_for(loop)

    def _try_vectorize(self, loop: For) -> str | None:
        """Vectorize *loop* in place, or return the fallback reason."""
        semantics = self.semantics.get(loop.loop_id, LoopSemantics())
        if semantics.mode is ExecMode.REDUCTION_LAST_CHUNK:
            return "reduction-last-chunk"
        reason = _body_shape_reason(loop.body)
        if reason is not None:
            return reason
        decls = _top_level_decls(loop.body)
        if loop.var in decls:
            return "control-flow"  # local shadows the induction variable
        self._decl_names = decls
        try:
            reason = self._plan_scalar_writes(loop, semantics)
            if reason is not None:
                return reason
            if semantics.mode is ExecMode.SEQUENTIAL:
                report = analyze_loop(loop)
                if report.verdict not in (Verdict.INDEPENDENT,
                                          Verdict.REDUCTION):
                    if any("unanalyzable" in r for r in report.reasons):
                        return "non-affine-gather"
                    return "dependence"

            outer_lines = self.lines
            level = self.level
            snap_depth = len(self._snapshot_stack)
            self.lines = []
            self._vec_var = loop.var
            try:
                self._emit_vector_loop(loop, semantics)
            except _NotVectorizable as exc:
                self.lines = outer_lines
                self.level = level
                del self._snapshot_stack[snap_depth:]
                return exc.reason
            else:
                outer_lines.extend(self.lines)
                self.lines = outer_lines
                return None
        finally:
            self._vec_var = None
            self._vec_iv = None
            self._reductions = {}
            self._multi_writers = {}
            self._decl_names = []
            self._vlocals = {}
            self._py_branch_depth = 0

    def _plan_scalar_writes(self, loop: For,
                            semantics: LoopSemantics) -> str | None:
        """Vet every assignment target; record recognized reductions.

        Returns the fallback reason, or ``None`` when every target is an
        eligible array store, a loop-local, or a recognized reduction.
        """
        reductions: dict[str, Assign] = {}
        for assign in _collect_assigns(loop.body):
            if isinstance(assign.target, ArrayRef):
                # The dependence analyzer excludes atomic updates from its
                # write set (skip_atomic), so its verdicts say nothing about
                # them — and a compound atomic accumulates on live memory
                # across iterations (c[i] *= x with i invariant applies n
                # times).  Never vectorize a loop containing one.
                if assign.atomic:
                    return "atomics"
                continue
            if not isinstance(assign.target, Var):
                return "scalar-write"
            name = assign.target.name
            if name in self._decl_names:
                continue  # loop-local: privatized per iteration
            if name in reductions:
                return "multi-writer"  # two updates: interleaving differs
            if (
                assign.op not in ("+", "-", "*")
                or name == loop.var
                or self.dtypes.get(name) not in (DType.FLOAT32, DType.FLOAT64)
            ):
                return "scalar-write"
            reductions[name] = assign
        # accumulators must feed nothing inside the loop (not even their
        # own update), or prefix values would leak into other statements
        if reductions and _reads_scalar(loop.body, set(reductions)):
            return "scalar-write"
        self._reductions = {id(a): a for a in reductions.values()}
        return None

    # -- emission -----------------------------------------------------------

    def _emit_vector_loop(self, loop: For, semantics: LoopSemantics) -> None:
        lower = self.gen_expr(loop.lower)
        upper = self.gen_expr(loop.upper)
        iv = self._fresh("iv")
        self._emit(f"{iv} = np.arange(int({lower}), int({upper}), {loop.step})")
        self.dtypes[loop.var] = DType.INT32
        self._vec_iv = iv

        # Loops with privatized locals guard the whole body on a nonempty
        # iteration space: the scalar loop never executes a declaration
        # when the range is empty, so the lowering must not define (or
        # clobber) the local names either.
        wrapped = bool(self._decl_names)
        if wrapped:
            self._emit(f"if {iv}.size:")
            self.level += 1

        pushed = False
        if semantics.mode is ExecMode.PARALLEL_SNAPSHOT:
            written = sorted(
                {ref.name for ref in writes_and_reads(loop.body)[0]}
            )
            # Snapshots make *reads* order-free, but when two statements
            # write overlapping cells the final value still depends on
            # write order (iteration-major in the scalar loop).  Defer
            # such arrays' writes and scatter them interleaved at the end.
            counts: dict[str, int] = {}
            for assign in _collect_assigns(loop.body):
                if isinstance(assign.target, ArrayRef):
                    name = assign.target.name
                    counts[name] = counts.get(name, 0) + 1
            for name in sorted(n for n, c in counts.items() if c > 1):
                deferred = self._fresh("wr")
                self._multi_writers[name] = deferred
                self._emit(f"{deferred} = []")
            # Only copy arrays whose reads could observe this loop's own
            # stores; everything else reads live memory, which equals the
            # loop-entry snapshot by construction.  On copy-dominated
            # kernels (e.g. GE's fan2 copies an N^2 matrix per outer
            # iteration) this is the difference between O(N^2) and O(N)
            # work per entry.
            needed = _snapshot_copies_needed(
                loop.body, set(self._multi_writers)
            )
            frame: dict[str, str] = {}
            for name in written:
                if name in needed:
                    snap = f"{self._fresh('snap')}_{name}"
                    self._emit(f"{snap} = {_pyname(name)}.copy()")
                    frame[name] = snap
                else:
                    frame[name] = _pyname(name)
            self._snapshot_stack.append(frame)
            pushed = True
        try:
            self._vstmt(loop.body, None)
            for name in sorted(self._multi_writers):
                self._emit(
                    f"_vstore_multi({_pyname(name)}, "
                    f"{self._multi_writers[name]}, {iv}.size)"
                )
        finally:
            if pushed:
                self._snapshot_stack.pop()
            self._multi_writers = {}
        # Python for-loops leak the final iterate into the enclosing scope
        if wrapped:
            self._emit(f"{_pyname(loop.var)} = int({iv}[-1])")
            # ... and, with no block scope, the loop's locals leak their
            # final-iteration values too.  A lane vector's last lane *is*
            # that value; weak kinds re-become Python scalars so
            # downstream promotion matches the scalar backend.
            for name in self._decl_names:
                final = self._vlocals.get(name)
                if final is None or not final.vector:
                    continue  # non-vector locals already hold the value
                pyn = _pyname(name)
                if final.kind == KWI:
                    self._emit(f"{pyn} = int({pyn}[-1])")
                elif final.kind == KFW:
                    self._emit(f"{pyn} = float({pyn}[-1])")
                else:
                    self._emit(f"{pyn} = {pyn}[-1]")
            self.level -= 1
        else:
            self._emit(f"if {iv}.size:")
            self._emit(f"    {_pyname(loop.var)} = int({iv}[-1])")

    def _vstmt(self, stmt: Stmt, mask: str | None) -> None:
        if isinstance(stmt, Block):
            for child in stmt.stmts:
                self._vstmt(child, mask)
            return
        if isinstance(stmt, If):
            self._vif(stmt, mask)
            return
        if isinstance(stmt, Decl):
            self._vdecl(stmt, mask)
            return
        if isinstance(stmt, Assign):
            if isinstance(stmt.target, Var):
                if stmt.target.name in self._decl_names:
                    self._emit_local_update(stmt, mask)
                else:
                    self._emit_reduction(stmt, mask)
            else:
                self._emit_store(stmt, mask)
            return
        raise _NotVectorizable(f"statement {type(stmt).__name__}",
                               reason="control-flow")

    def _vdecl(self, stmt: Decl, mask: str | None) -> None:
        # body-shape vetting only admits top-level declarations, which
        # execute unconditionally every iteration (mask is always None)
        if mask is not None or self._py_branch_depth:
            raise _NotVectorizable(f"guarded local {stmt.name!r}",
                                   reason="guarded-loop")
        self.dtypes[stmt.name] = stmt.type.dtype
        if stmt.init is not None:
            value = self._vexpr(stmt.init, None)
        else:
            # the scalar backend initializes with a weak Python zero,
            # ignoring the declared width (no cast on declaration)
            if stmt.type.dtype.is_integer:
                value = _VVal("0", KWI, False)
            else:
                value = _VVal("0.0", KFW, False)
        if value.kind == KB:
            # a Python bool and an np.bool_ lane promote differently
            raise _NotVectorizable(f"bool-valued local {stmt.name!r}")
        pyn = _pyname(stmt.name)
        self._emit(f"{pyn} = {value.code}")
        self._vlocals[stmt.name] = _VVal(pyn, value.kind, value.vector)

    def _emit_local_update(self, stmt: Assign, mask: str | None) -> None:
        assert isinstance(stmt.target, Var)
        name = stmt.target.name
        cur = self._vlocals.get(name)
        if cur is None:
            # the scalar backend would read/keep the *outer* binding here
            # on iteration one and the previous iteration's local after —
            # a loop-carried dependence through the name
            raise _NotVectorizable(
                f"write to local {name!r} before its declaration",
                reason="guarded-loop",
            )
        value = self._vexpr(stmt.value, mask)
        if stmt.op is not None:
            if stmt.op == "/":
                # the scalar backend's `x /= y` is Python true division,
                # which _vbinop's C-style _idiv routing would not match
                raise _NotVectorizable(f"compound / on local {name!r}")
            value = self._vbinop(stmt.op, cur, value, stmt.target, stmt.value)
        if value.kind == KB:
            raise _NotVectorizable(f"bool-valued local {name!r}")
        pyn = _pyname(name)
        if mask is not None:
            # masked lanes keep their previous value; the merged vector
            # must stay in one promotion kind or untaken lanes would
            # change representation mid-loop
            if value.kind != cur.kind:
                raise _NotVectorizable(
                    f"masked update changes kind of local {name!r}",
                    reason="guarded-loop",
                )
            self._emit(f"{pyn} = np.where({mask}, {value.code}, {pyn})")
            self._vlocals[name] = _VVal(pyn, cur.kind, True)
            return
        if self._py_branch_depth and (
            value.kind != cur.kind or value.vector != cur.vector
        ):
            # inside one arm of a Python-level branch: the static state
            # after the if must hold whichever arm ran
            raise _NotVectorizable(
                f"branch-divergent local {name!r}", reason="guarded-loop"
            )
        self._emit(f"{pyn} = {value.code}")
        self._vlocals[name] = _VVal(pyn, value.kind, value.vector)

    def _vif(self, stmt: If, mask: str | None) -> None:
        cond = self._vexpr(stmt.cond, mask)
        if cond.kind != KB:
            if cond.kind not in _NUMERIC_KINDS:
                raise _NotVectorizable("if condition kind")
            cond = _VVal(f"({cond.code} != 0)", KB, cond.vector)  # C truthiness
        has_else = stmt.else_body is not None and len(stmt.else_body) > 0
        if not cond.vector:
            # loop-invariant condition: one Python branch for all lanes
            self._py_branch_depth += 1
            self._emit(f"if {cond.code}:")
            self.level += 1
            self._vblock(stmt.then_body, mask)
            self.level -= 1
            if has_else:
                self._emit("else:")
                self.level += 1
                self._vblock(stmt.else_body, mask)
                self.level -= 1
            self._py_branch_depth -= 1
            return
        c = self._fresh("c")
        self._emit(f"{c} = {cond.code}")
        then_mask = c if mask is None else f"({mask} & {c})"
        self._vstmt(stmt.then_body, then_mask)
        if has_else:
            else_mask = f"(~{c})" if mask is None else f"({mask} & ~{c})"
            self._vstmt(stmt.else_body, else_mask)

    def _vblock(self, stmt: Stmt, mask: str | None) -> None:
        """Statement list under a Python-level ``if`` (needs a ``pass``
        when empty, unlike mask-guarded emission)."""
        if isinstance(stmt, Block) and not stmt.stmts:
            self._emit("pass")
            return
        self._vstmt(stmt, mask)

    def _emit_store(self, stmt: Assign, mask: str | None) -> None:
        target = stmt.target
        assert isinstance(target, ArrayRef)
        dtype = self.array_dtypes.get(target.name)
        if dtype is None:
            raise ExecutionError(
                f"unknown array {target.name!r} in kernel {self.kernel.name!r}"
            )
        arr = _pyname(target.name)  # stores always hit live memory
        idxs = [self._vexpr(index, mask) for index in target.indices]
        if any(idx.kind not in _INT_KINDS for idx in idxs):
            raise _NotVectorizable("non-integer subscript")
        value = self._vexpr(stmt.value, mask)
        if stmt.op is not None:
            # compound update: the scalar backend reads the snapshot for
            # non-atomic updates of snapshotted arrays, live memory else
            snap = self._snapshot_name(target.name)
            src = snap if (snap is not None and not stmt.atomic) else arr
            read = self._gather(src, idxs, mask, _DTYPE_KIND[dtype])
            value = self._vbinop(stmt.op, read, value, stmt.target, stmt.value)
        # rank > 1 stores pass the whole subscript tuple through; rank 1
        # keeps the bare index (same generated code as before)
        joined = ", ".join(idx.code for idx in idxs)
        idx_code = idxs[0].code if len(idxs) == 1 else f"({joined})"
        any_vec = any(idx.vector for idx in idxs)
        deferred = self._multi_writers.get(target.name)
        if deferred is not None:
            # multi-writer array: preserve iteration-major write order by
            # deferring to one interleaved _vstore_multi scatter
            self._emit(f"{deferred}.append(({idx_code}, {value.code}, {mask}))")
            return
        if not any_vec and not value.vector and mask is None:
            # every iteration writes the same cell with the same value
            self._emit(f"{arr}[{joined}] = {value.code}")
            return
        self._emit(
            f"_vstore({arr}, {idx_code}, {value.code}, {mask}, "
            f"{self._vec_iv}.size)"
        )

    def _emit_reduction(self, stmt: Assign, mask: str | None) -> None:
        if id(stmt) not in self._reductions:
            raise _NotVectorizable("unplanned scalar write",
                                   reason="scalar-write")
        assert isinstance(stmt.target, Var)
        acc = _pyname(stmt.target.name)
        value = self._vexpr(stmt.value, mask)
        if value.kind not in _NUMERIC_KINDS:
            raise _NotVectorizable("non-numeric reduction term")
        weak = value.kind in (KFW, KWI)
        terms = (
            value.code
            if value.vector
            else f"np.full({self._vec_iv}.shape, {value.code})"
        )
        if mask is not None:
            terms = f"({terms})[{mask}]"
        self._emit(f"{acc} = _vreduce({acc}, {terms}, {stmt.op!r}, {weak})")

    # -- expression lowering ------------------------------------------------

    def _cast(self, value: _VVal, kind: str) -> str:
        if _BACKING[value.kind] == _BACKING[kind]:
            return value.code
        npdt = _NPDT[kind]
        if value.vector:
            return f"{value.code}.astype({npdt})"
        return f"{npdt}({value.code})"

    def _gather(self, arr: str, idxs: list[_VVal], mask: str | None,
                kind: str) -> _VVal:
        """Lower an N-dimensional element read.  All-scalar subscripts
        stay an element access; any vector dimension turns the whole read
        into fancy indexing, where vector dimensions broadcast against
        the lane axis and scalar dimensions broadcast along it."""
        if not any(idx.vector for idx in idxs):
            joined = ", ".join(idx.code for idx in idxs)
            return _VVal(f"{arr}[{joined}]", kind, False)
        parts = []
        for idx in idxs:
            icode = idx.code
            if idx.vector and mask is not None:
                # inactive lanes may hold out-of-range subscripts the
                # scalar loop would never evaluate; clamp to a safe cell
                icode = f"np.where({mask}, {icode}, 0)"
            parts.append(icode)
        return _VVal(f"{arr}[{', '.join(parts)}]", kind, True)

    def _vbinop(self, op: str, lv: _VVal, rv: _VVal,
                lexpr: Expr, rexpr: Expr) -> _VVal:
        vector = lv.vector or rv.vector
        if op in ("<", "<=", ">", ">=", "==", "!="):
            if KB in (lv.kind, rv.kind):
                if lv.kind != KB or rv.kind != KB or op not in ("==", "!="):
                    raise _NotVectorizable("comparison on bool")
                return _VVal(f"({lv.code} {op} {rv.code})", KB, vector)
            kind = _combine(lv.kind, rv.kind)
            return _VVal(
                f"({self._cast(lv, kind)} {op} {self._cast(rv, kind)})",
                KB, vector,
            )
        if op in ("&&", "||"):
            if lv.kind != KB or rv.kind != KB:
                raise _NotVectorizable("logical op on non-bool")
            if not vector:
                word = "and" if op == "&&" else "or"
                return _VVal(f"({lv.code} {word} {rv.code})", KB, False)
            sym = "&" if op == "&&" else "|"
            return _VVal(f"({lv.code} {sym} {rv.code})", KB, True)
        if op in ("&", "|", "^", "<<", ">>"):
            # Python's unbounded ints vs int64 lanes differ on overflow
            raise _NotVectorizable("bitwise op")
        if op in ("/", "%") and (
            self._dtype_of(lexpr).is_integer
            and self._dtype_of(rexpr).is_integer
        ):
            kind = _combine(lv.kind, rv.kind)
            if kind not in _INT_KINDS:
                raise _NotVectorizable("integer division on non-int kinds")
            lc, rc = self._cast(lv, kind), self._cast(rv, kind)
            if not vector:
                fn = "_idiv" if op == "/" else "_imod"
            else:
                fn = "_vidiv" if op == "/" else "_vimod"
            return _VVal(f"{fn}({lc}, {rc})", kind, vector)
        if op in ("+", "-", "*", "/", "%"):
            if op == "%":
                raise _NotVectorizable("float modulo")  # scalar uses % too
            kind = _combine(lv.kind, rv.kind)
            return _VVal(
                f"({self._cast(lv, kind)} {op} {self._cast(rv, kind)})",
                kind, vector,
            )
        raise _NotVectorizable(f"operator {op!r}")

    def _vexpr(self, expr: Expr, mask: str | None) -> _VVal:
        if isinstance(expr, IntLit):
            return _VVal(repr(expr.value), KWI, False)
        if isinstance(expr, FloatLit):
            return _VVal(repr(expr.value), KFW, False)
        if isinstance(expr, Var):
            name = expr.name
            if name == self._vec_var:
                assert self._vec_iv is not None
                return _VVal(self._vec_iv, KWI, True)
            local = self._vlocals.get(name)
            if local is not None:
                return _VVal(_pyname(name), local.kind, local.vector)
            if name in self._decl_names:
                # declared later in this body: iteration one would read
                # the outer binding, later iterations the previous
                # iteration's local — a loop-carried dependence
                raise _NotVectorizable(
                    f"read of local {name!r} before its declaration",
                    reason="guarded-loop",
                )
            if name in self._int_scalars:
                return _VVal(_pyname(name), KWI, False)
            if name in self._param_scalars:
                dtype = self.dtypes[name]
                kind = KWI if dtype.is_integer else KFW
                return _VVal(_pyname(name), kind, False)
            # locals declared in outer scopes may hold NumPy scalars whose
            # promotion strength we cannot know statically
            raise _NotVectorizable(f"scalar local {name!r}",
                                   reason="guarded-loop")
        if isinstance(expr, ArrayRef):
            dtype = self.array_dtypes.get(expr.name)
            if dtype is None:
                raise ExecutionError(
                    f"unknown array {expr.name!r} in kernel "
                    f"{self.kernel.name!r}"
                )
            snap = self._snapshot_name(expr.name)
            arr = snap if snap is not None else _pyname(expr.name)
            idxs = [self._vexpr(index, mask) for index in expr.indices]
            if any(idx.kind not in _INT_KINDS for idx in idxs):
                raise _NotVectorizable("non-integer subscript")
            return self._gather(arr, idxs, mask, _DTYPE_KIND[dtype])
        if isinstance(expr, BinOp):
            lv = self._vexpr(expr.lhs, mask)
            rv = self._vexpr(expr.rhs, mask)
            return self._vbinop(expr.op, lv, rv, expr.lhs, expr.rhs)
        if isinstance(expr, UnaryOp):
            operand = self._vexpr(expr.operand, mask)
            if expr.op == "!":
                if operand.kind != KB:
                    raise _NotVectorizable("! on non-bool")
                code = (
                    f"(~{operand.code})" if operand.vector
                    else f"(not {operand.code})"
                )
                return _VVal(code, KB, operand.vector)
            if operand.kind not in _NUMERIC_KINDS:
                raise _NotVectorizable("unary op on bool")
            return _VVal(
                f"({expr.op}{operand.code})", operand.kind, operand.vector
            )
        if isinstance(expr, Call):
            return self._vcall(expr, mask)
        if isinstance(expr, Ternary):
            return self._vternary(expr, mask)
        if isinstance(expr, Cast):
            operand = self._vexpr(expr.operand, mask)
            if expr.dtype.is_integer:
                if operand.vector:
                    # astype truncates toward zero, like C and int()
                    return _VVal(f"{operand.code}.astype(np.int64)", KWI, True)
                return _VVal(f"int({operand.code})", KWI, False)
            if operand.vector:
                return _VVal(f"{operand.code}.astype(np.float64)", KFW, True)
            return _VVal(f"float({operand.code})", KFW, False)
        raise _NotVectorizable(f"expression {type(expr).__name__}")

    def _vcall(self, expr: Call, mask: str | None) -> _VVal:
        helper = _CALL_MAP.get(expr.func)
        if helper is None:
            raise ExecutionError(
                f"no executor mapping for intrinsic {expr.func!r}"
            )
        args = [self._vexpr(a, mask) for a in expr.args]
        if any(a.kind not in _NUMERIC_KINDS for a in args):
            raise _NotVectorizable("intrinsic on bool")
        if not any(a.vector for a in args):
            # pure-scalar call: emit exactly what the scalar backend would
            kind = self._scalar_call_kind(expr.func, args)
            code = f"{helper}({', '.join(a.code for a in args)})"
            return _VVal(code, kind, False)
        if expr.func == "sqrt":
            (arg,) = args
            code = (
                arg.code if _BACKING[arg.kind] == "f8"
                else self._cast(arg, KFW)
            )
            # math.sqrt computes in double and returns a weak float
            return _VVal(f"np.sqrt({code})", KFW, True)
        if expr.func in ("fabs", "abs"):
            (arg,) = args
            return _VVal(f"np.abs({arg.code})", arg.kind, True)
        if expr.func in ("floor", "ceil"):
            (arg,) = args
            # math.floor/ceil return weak Python ints
            return _VVal(
                f"np.{expr.func}({arg.code}).astype(np.int64)", KWI, True
            )
        # exp/log/pow: NumPy and libm differ by ulps; min/max: Python's
        # pick-an-operand semantics (signed zeros, mixed kinds) don't map
        raise _NotVectorizable(f"intrinsic {expr.func!r} on vectors")

    def _scalar_call_kind(self, func: str, args: list[_VVal]) -> str:
        if func in ("sqrt", "exp", "log"):
            return KFW  # math.* return Python floats
        if func == "pow":
            if all(a.kind in _INT_KINDS for a in args):
                return KWI  # pow(int, int) is an int
            return KFW
        if func in ("floor", "ceil"):
            return KWI
        if func in ("fabs", "abs"):
            return args[0].kind
        # min/max return one operand unchanged: kind is only defined
        # when both agree
        kinds = {a.kind for a in args}
        if len(kinds) != 1:
            raise _NotVectorizable(f"{func} on mixed kinds")
        return kinds.pop()

    def _vternary(self, expr: Ternary, mask: str | None) -> _VVal:
        cond = self._vexpr(expr.cond, mask)
        if cond.kind != KB:
            if cond.kind not in _NUMERIC_KINDS:
                raise _NotVectorizable("ternary condition kind")
            cond = _VVal(f"({cond.code} != 0)", KB, cond.vector)
        if not cond.vector:
            then = self._vexpr(expr.then, mask)
            other = self._vexpr(expr.otherwise, mask)
            if then.kind != other.kind:
                raise _NotVectorizable("ternary branch kinds differ")
            return _VVal(
                f"({then.code} if {cond.code} else {other.code})",
                then.kind, then.vector or other.vector,
            )
        then_mask = (
            cond.code if mask is None else f"({mask} & {cond.code})"
        )
        else_mask = (
            f"(~{cond.code})" if mask is None
            else f"({mask} & ~{cond.code})"
        )
        then = self._vexpr(expr.then, then_mask)
        other = self._vexpr(expr.otherwise, else_mask)
        if then.kind != other.kind:
            raise _NotVectorizable("ternary branch kinds differ")
        return _VVal(
            f"np.where({cond.code}, {then.code}, {other.code})",
            then.kind, True,
        )
