"""Simulated accelerator runtime: buffers, launches, profiling, execution."""

from .executor import (
    BACKENDS,
    ExecMode,
    ExecutionError,
    LoopSemantics,
    clear_kernel_cache,
    compile_kernel_fn,
    execute_kernel,
    get_default_backend,
    kernel_python_source,
    set_default_backend,
)
from .launcher import Accelerator, LaunchRecord, RuntimeError_, kernel_host_profile
from .profiler import ProfileEvent, Profiler

__all__ = [
    "Accelerator",
    "BACKENDS",
    "ExecMode",
    "ExecutionError",
    "LaunchRecord",
    "LoopSemantics",
    "ProfileEvent",
    "Profiler",
    "RuntimeError_",
    "clear_kernel_cache",
    "compile_kernel_fn",
    "execute_kernel",
    "get_default_backend",
    "kernel_host_profile",
    "kernel_python_source",
    "set_default_backend",
]
