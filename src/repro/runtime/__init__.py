"""Simulated accelerator runtime: buffers, launches, profiling, execution."""

from .executor import (
    ExecMode,
    ExecutionError,
    LoopSemantics,
    compile_kernel_fn,
    execute_kernel,
    kernel_python_source,
)
from .launcher import Accelerator, LaunchRecord, RuntimeError_, kernel_host_profile
from .profiler import ProfileEvent, Profiler

__all__ = [
    "Accelerator",
    "ExecMode",
    "ExecutionError",
    "LaunchRecord",
    "LoopSemantics",
    "ProfileEvent",
    "Profiler",
    "RuntimeError_",
    "compile_kernel_fn",
    "execute_kernel",
    "kernel_host_profile",
    "kernel_python_source",
]
