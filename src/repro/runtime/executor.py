"""Functional execution of IR kernels over NumPy buffers.

The executor turns a kernel into a Python function (source generation +
``exec``) and runs it on concrete arrays.  It is the *semantic ground
truth* of the simulated tool-chain: every benchmark validates its compiled
versions against this executor, and this executor against a vectorized
NumPy reference.

Three per-loop execution semantics are supported:

* ``SEQUENTIAL`` — plain C semantics.
* ``PARALLEL_SNAPSHOT`` — all iterations logically start from the same
  memory state (reads of arrays the loop writes go to a snapshot taken at
  loop entry).  For a genuinely independent loop this equals sequential
  execution; for a dependent loop wrongly executed in parallel it produces
  the wrong answer a real device race would — deterministically.
* ``REDUCTION_LAST_CHUNK`` — emulates a *broken* parallel reduction with
  lost updates: the iteration range is split into chunks and only the last
  chunk's contribution survives.  This is how we reproduce "the CAPS
  version ... even cannot get the correct results on MIC" (paper V-D2).
"""

from __future__ import annotations

import enum
import keyword
import math
from dataclasses import dataclass

import numpy as np

from ..ir.directives import AccLoop
from ..ir.expr import (
    ArrayRef,
    BinOp,
    Call,
    Cast,
    Expr,
    FloatLit,
    IntLit,
    Ternary,
    UnaryOp,
    Var,
)
from ..ir.stmt import (
    Assign,
    Barrier,
    Block,
    Decl,
    For,
    If,
    KernelFunction,
    Stmt,
    While,
)
from ..ir.types import ArrayType, DType
from ..ir.visitors import writes_and_reads


class ExecMode(enum.Enum):
    SEQUENTIAL = "sequential"
    PARALLEL_SNAPSHOT = "parallel-snapshot"
    REDUCTION_LAST_CHUNK = "reduction-last-chunk"


@dataclass(frozen=True)
class LoopSemantics:
    mode: ExecMode = ExecMode.SEQUENTIAL
    chunks: int = 4  # for REDUCTION_LAST_CHUNK


class ExecutionError(RuntimeError):
    """Raised when a kernel cannot be executed (bad args, codegen hole)."""


def _idiv(a: int, b: int) -> int:
    """C-style truncating integer division."""
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _imod(a: int, b: int) -> int:
    """C-style remainder (sign of the dividend)."""
    return a - _idiv(a, b) * b


_HELPERS = {
    "_idiv": _idiv,
    "_imod": _imod,
    "_sqrt": math.sqrt,
    "_exp": math.exp,
    "_log": math.log,
    "_pow": pow,
    "_floor": math.floor,
    "_ceil": math.ceil,
    "_abs": abs,
    "_min": min,
    "_max": max,
}

def _pyname(name: str) -> str:
    """Mangle C identifiers that collide with Python keywords (``in``,
    ``while``-style parameter names are legal mini-C)."""
    return name + "__kw" if keyword.iskeyword(name) else name


_CALL_MAP = {
    "sqrt": "_sqrt",
    "exp": "_exp",
    "log": "_log",
    "pow": "_pow",
    "fabs": "_abs",
    "abs": "_abs",
    "fmin": "_min",
    "min": "_min",
    "fmax": "_max",
    "max": "_max",
    "floor": "_floor",
    "ceil": "_ceil",
}


class _CodeGen:
    """Generates the Python source of one kernel function."""

    def __init__(
        self,
        kernel: KernelFunction,
        semantics: dict[int, LoopSemantics] | None = None,
    ) -> None:
        self.kernel = kernel
        self.semantics = semantics or {}
        self.lines: list[str] = []
        self.level = 1
        self.dtypes: dict[str, DType] = {}
        self.array_dtypes: dict[str, DType] = {}
        self._snapshot_stack: list[frozenset[str]] = []
        self._tmp = 0
        for param in kernel.params:
            if isinstance(param.type, ArrayType):
                self.array_dtypes[param.name] = param.type.dtype
            else:
                self.dtypes[param.name] = param.type.dtype

    # -- emit helpers -------------------------------------------------------

    def _emit(self, text: str) -> None:
        self.lines.append("    " * self.level + text)

    def _fresh(self, prefix: str) -> str:
        self._tmp += 1
        return f"_{prefix}{self._tmp}"

    # -- expressions --------------------------------------------------------

    def _dtype_of(self, expr: Expr) -> DType:
        if isinstance(expr, IntLit):
            return expr.dtype
        if isinstance(expr, FloatLit):
            return expr.dtype
        if isinstance(expr, Var):
            return self.dtypes.get(expr.name, DType.INT32)
        if isinstance(expr, ArrayRef):
            return self.array_dtypes.get(expr.name, DType.FLOAT32)
        if isinstance(expr, BinOp):
            if expr.op in ("<", "<=", ">", ">=", "==", "!=", "&&", "||"):
                return DType.BOOL
            from ..ir.types import promote

            return promote(self._dtype_of(expr.lhs), self._dtype_of(expr.rhs))
        if isinstance(expr, UnaryOp):
            return DType.BOOL if expr.op == "!" else self._dtype_of(expr.operand)
        if isinstance(expr, Call):
            if expr.func in ("min", "max", "abs"):
                return self._dtype_of(expr.args[0])
            return DType.FLOAT64
        if isinstance(expr, Ternary):
            from ..ir.types import promote

            return promote(self._dtype_of(expr.then), self._dtype_of(expr.otherwise))
        if isinstance(expr, Cast):
            return expr.dtype
        raise ExecutionError(f"cannot type {type(expr).__name__}")

    def _snapshot_name(self, array: str) -> str | None:
        for frame in reversed(self._snapshot_stack):
            if array in frame:
                return f"_snap_{array}"
        return None

    def gen_expr(self, expr: Expr, as_store_target: bool = False) -> str:
        if isinstance(expr, IntLit):
            return repr(expr.value)
        if isinstance(expr, FloatLit):
            return repr(expr.value)
        if isinstance(expr, Var):
            return _pyname(expr.name)
        if isinstance(expr, ArrayRef):
            name = expr.name
            if not as_store_target:
                snap = self._snapshot_name(name)
                if snap is not None:
                    name = snap
            name = _pyname(name) if not name.startswith("_snap_") else name
            index = ", ".join(self.gen_expr(i) for i in expr.indices)
            return f"{name}[{index}]"
        if isinstance(expr, BinOp):
            lhs = self.gen_expr(expr.lhs)
            rhs = self.gen_expr(expr.rhs)
            if expr.op == "/" and (
                self._dtype_of(expr.lhs).is_integer
                and self._dtype_of(expr.rhs).is_integer
            ):
                return f"_idiv({lhs}, {rhs})"
            if expr.op == "%" and (
                self._dtype_of(expr.lhs).is_integer
                and self._dtype_of(expr.rhs).is_integer
            ):
                return f"_imod({lhs}, {rhs})"
            op = {"&&": "and", "||": "or"}.get(expr.op, expr.op)
            return f"({lhs} {op} {rhs})"
        if isinstance(expr, UnaryOp):
            operand = self.gen_expr(expr.operand)
            if expr.op == "!":
                return f"(not {operand})"
            return f"({expr.op}{operand})"
        if isinstance(expr, Call):
            func = _CALL_MAP.get(expr.func)
            if func is None:
                raise ExecutionError(f"no executor mapping for intrinsic {expr.func!r}")
            args = ", ".join(self.gen_expr(a) for a in expr.args)
            return f"{func}({args})"
        if isinstance(expr, Ternary):
            return (
                f"({self.gen_expr(expr.then)} if {self.gen_expr(expr.cond)} "
                f"else {self.gen_expr(expr.otherwise)})"
            )
        if isinstance(expr, Cast):
            inner = self.gen_expr(expr.operand)
            return f"int({inner})" if expr.dtype.is_integer else f"float({inner})"
        raise ExecutionError(f"cannot generate {type(expr).__name__}")

    # -- statements ---------------------------------------------------------

    def gen_stmt(self, stmt: Stmt) -> None:
        if isinstance(stmt, Block):
            if not stmt.stmts:
                self._emit("pass")
            for child in stmt.stmts:
                self.gen_stmt(child)
            return
        if isinstance(stmt, Decl):
            self.dtypes[stmt.name] = stmt.type.dtype
            if stmt.init is not None:
                self._emit(f"{_pyname(stmt.name)} = {self.gen_expr(stmt.init)}")
            else:
                zero = "0" if stmt.type.dtype.is_integer else "0.0"
                self._emit(f"{_pyname(stmt.name)} = {zero}")
            return
        if isinstance(stmt, Assign):
            target = self.gen_expr(stmt.target, as_store_target=True)
            value = self.gen_expr(stmt.value)
            if stmt.op is None:
                self._emit(f"{target} = {value}")
            elif (
                isinstance(stmt.target, ArrayRef)
                and not stmt.atomic  # atomics serialize on live memory
                and self._snapshot_name(stmt.target.name)
            ):
                # compound update under snapshot semantics: read the snapshot
                read = self.gen_expr(stmt.target)  # snapshot read
                self._emit(f"{target} = {read} {stmt.op} ({value})")
            else:
                self._emit(f"{target} {stmt.op}= {value}")
            return
        if isinstance(stmt, If):
            self._emit(f"if {self.gen_expr(stmt.cond)}:")
            self.level += 1
            self.gen_stmt(stmt.then_body)
            self.level -= 1
            if stmt.else_body is not None and len(stmt.else_body) > 0:
                self._emit("else:")
                self.level += 1
                self.gen_stmt(stmt.else_body)
                self.level -= 1
            return
        if isinstance(stmt, For):
            self._gen_for(stmt)
            return
        if isinstance(stmt, While):
            self._emit(f"while {self.gen_expr(stmt.cond)}:")
            self.level += 1
            self.gen_stmt(stmt.body)
            self.level -= 1
            return
        if isinstance(stmt, Barrier):
            self._emit("pass  # barrier")
            return
        raise ExecutionError(f"cannot execute {type(stmt).__name__}")

    def _gen_for(self, loop: For) -> None:
        self.dtypes[loop.var] = DType.INT32
        semantics = self.semantics.get(loop.loop_id, LoopSemantics())
        lower = self.gen_expr(loop.lower)
        upper = self.gen_expr(loop.upper)

        if semantics.mode is ExecMode.SEQUENTIAL:
            self._emit(
                f"for {_pyname(loop.var)} in range(int({lower}), int({upper}), {loop.step}):"
            )
            self.level += 1
            self.gen_stmt(loop.body)
            self.level -= 1
            return

        if semantics.mode is ExecMode.PARALLEL_SNAPSHOT:
            written = sorted({ref.name for ref in writes_and_reads(loop.body)[0]})
            for name in written:
                self._emit(f"_snap_{name} = {_pyname(name)}.copy()")
            self._snapshot_stack.append(frozenset(written))
            self._emit(
                f"for {_pyname(loop.var)} in range(int({lower}), int({upper}), {loop.step}):"
            )
            self.level += 1
            self.gen_stmt(loop.body)
            self.level -= 1
            self._snapshot_stack.pop()
            return

        if semantics.mode is ExecMode.REDUCTION_LAST_CHUNK:
            length = self._fresh("len")
            chunk = self._fresh("chunk")
            start = self._fresh("start")
            self._emit(f"{length} = max(0, -(-(int({upper}) - int({lower})) // {loop.step}))")
            self._emit(f"{chunk} = -(-{length} // {semantics.chunks})")
            self._emit(
                f"{start} = int({lower}) + max(0, {length} - {chunk}) * {loop.step}"
            )
            self._emit(
                f"for {_pyname(loop.var)} in range({start}, int({upper}), "
                f"{loop.step}):"
            )
            self.level += 1
            self.gen_stmt(loop.body)
            self.level -= 1
            return

        raise ExecutionError(f"unknown execution mode {semantics.mode}")

    # -- driver -------------------------------------------------------------

    def source(self) -> str:
        params = ", ".join(_pyname(p.name) for p in self.kernel.params)
        header = f"def _kernel({params}):"
        self.gen_stmt(self.kernel.body)
        body = self.lines or ["    pass"]
        return "\n".join([header, *body])


def compile_kernel_fn(
    kernel: KernelFunction,
    semantics: dict[int, LoopSemantics] | None = None,
):
    """Compile *kernel* into a callable ``f(**args)``."""
    gen = _CodeGen(kernel, semantics)
    source = gen.source()
    namespace: dict[str, object] = dict(_HELPERS)
    try:
        exec(compile(source, f"<kernel {kernel.name}>", "exec"), namespace)
    except SyntaxError as exc:  # pragma: no cover - codegen bug guard
        raise ExecutionError(f"generated code failed to compile:\n{source}") from exc
    return namespace["_kernel"], source


def _check_args(kernel: KernelFunction, args: dict[str, object]) -> None:
    for param in kernel.params:
        if param.name not in args:
            raise ExecutionError(f"missing argument {param.name!r}")
        value = args[param.name]
        if isinstance(param.type, ArrayType):
            if not isinstance(value, np.ndarray):
                raise ExecutionError(f"argument {param.name!r} must be an ndarray")
            if value.ndim != param.type.rank:
                raise ExecutionError(
                    f"argument {param.name!r} has rank {value.ndim}, "
                    f"expected {param.type.rank}"
                )
        else:
            if isinstance(value, np.ndarray):
                raise ExecutionError(f"argument {param.name!r} must be a scalar")
    extra = set(args) - {p.name for p in kernel.params}
    if extra:
        raise ExecutionError(f"unexpected arguments: {sorted(extra)}")


def execute_kernel(
    kernel: KernelFunction,
    args: dict[str, object],
    semantics: dict[int, LoopSemantics] | None = None,
) -> None:
    """Execute *kernel* in place on the NumPy arrays in *args*."""
    _check_args(kernel, args)
    fn, _ = compile_kernel_fn(kernel, semantics)
    fn(**{_pyname(name): value for name, value in args.items()})


def kernel_python_source(
    kernel: KernelFunction,
    semantics: dict[int, LoopSemantics] | None = None,
) -> str:
    """The generated Python source (debugging / documentation aid)."""
    return _CodeGen(kernel, semantics).source()
