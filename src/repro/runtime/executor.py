"""Functional execution of IR kernels over NumPy buffers.

The executor turns a kernel into a Python function (source generation +
``exec``) and runs it on concrete arrays.  It is the *semantic ground
truth* of the simulated tool-chain: every benchmark validates its compiled
versions against this executor, and this executor against a vectorized
NumPy reference.

Three per-loop execution semantics are supported:

* ``SEQUENTIAL`` — plain C semantics.
* ``PARALLEL_SNAPSHOT`` — all iterations logically start from the same
  memory state (reads of arrays the loop writes go to a snapshot taken at
  loop entry).  For a genuinely independent loop this equals sequential
  execution; for a dependent loop wrongly executed in parallel it produces
  the wrong answer a real device race would — deterministically.
* ``REDUCTION_LAST_CHUNK`` — emulates a *broken* parallel reduction with
  lost updates: the iteration range is split into chunks and only the last
  chunk's contribution survives.  This is how we reproduce "the CAPS
  version ... even cannot get the correct results on MIC" (paper V-D2).

Two execution *backends* share those semantics (see ``docs/EXECUTOR.md``):

* ``scalar`` — the loop-at-a-time Python interpretation below; the
  reference semantics.
* ``vector`` — :mod:`repro.runtime.vectorize` lowers vectorizable loops
  to whole-array NumPy statements and falls back to scalar codegen
  per-loop; results are bit-compatible with ``scalar``.

``check`` runs both and raises on any bitwise output difference.
Compiled functions are memoized in a process-wide cache keyed on
``(kernel fingerprint, semantics, backend)`` so repeated executions stop
paying source generation + ``exec``; ``executor.cache_hit``,
``executor.vectorized`` and ``executor.fallback`` counters land in
:func:`repro.telemetry.get_registry`.
"""

from __future__ import annotations

import enum
import hashlib
import json
import keyword
import math
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..telemetry.registry import get_registry
from ..telemetry.spans import get_tracer

from ..ir.directives import AccLoop
from ..ir.expr import (
    ArrayRef,
    BinOp,
    Call,
    Cast,
    Expr,
    FloatLit,
    IntLit,
    Ternary,
    UnaryOp,
    Var,
)
from ..ir.stmt import (
    Assign,
    Barrier,
    Block,
    Decl,
    For,
    If,
    KernelFunction,
    Stmt,
    While,
)
from ..ir.types import ArrayType, DType
from ..ir.visitors import writes_and_reads


class ExecMode(enum.Enum):
    SEQUENTIAL = "sequential"
    PARALLEL_SNAPSHOT = "parallel-snapshot"
    REDUCTION_LAST_CHUNK = "reduction-last-chunk"


@dataclass(frozen=True)
class LoopSemantics:
    mode: ExecMode = ExecMode.SEQUENTIAL
    chunks: int = 4  # for REDUCTION_LAST_CHUNK


class ExecutionError(RuntimeError):
    """Raised when a kernel cannot be executed (bad args, codegen hole)."""


def _idiv(a: int, b: int) -> int:
    """C-style truncating integer division."""
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _imod(a: int, b: int) -> int:
    """C-style remainder (sign of the dividend)."""
    return a - _idiv(a, b) * b


_HELPERS = {
    "_idiv": _idiv,
    "_imod": _imod,
    "_sqrt": math.sqrt,
    "_exp": math.exp,
    "_log": math.log,
    "_pow": pow,
    "_floor": math.floor,
    "_ceil": math.ceil,
    "_abs": abs,
    "_min": min,
    "_max": max,
}

def _pyname(name: str) -> str:
    """Mangle C identifiers that collide with Python keywords (``in``,
    ``while``-style parameter names are legal mini-C)."""
    return name + "__kw" if keyword.iskeyword(name) else name


_CALL_MAP = {
    "sqrt": "_sqrt",
    "exp": "_exp",
    "log": "_log",
    "pow": "_pow",
    "fabs": "_abs",
    "abs": "_abs",
    "fmin": "_min",
    "min": "_min",
    "fmax": "_max",
    "max": "_max",
    "floor": "_floor",
    "ceil": "_ceil",
}


class _CodeGen:
    """Generates the Python source of one kernel function."""

    def __init__(
        self,
        kernel: KernelFunction,
        semantics: dict[int, LoopSemantics] | None = None,
    ) -> None:
        self.kernel = kernel
        self.semantics = semantics or {}
        self.lines: list[str] = []
        self.level = 1
        self.dtypes: dict[str, DType] = {}
        self.array_dtypes: dict[str, DType] = {}
        # one dict per active PARALLEL_SNAPSHOT frame: array -> snapshot name
        self._snapshot_stack: list[dict[str, str]] = []
        self._tmp = 0
        for param in kernel.params:
            if isinstance(param.type, ArrayType):
                self.array_dtypes[param.name] = param.type.dtype
            else:
                self.dtypes[param.name] = param.type.dtype

    # -- emit helpers -------------------------------------------------------

    def _emit(self, text: str) -> None:
        self.lines.append("    " * self.level + text)

    def _fresh(self, prefix: str) -> str:
        self._tmp += 1
        return f"_{prefix}{self._tmp}"

    # -- expressions --------------------------------------------------------

    def _dtype_of(self, expr: Expr) -> DType:
        if isinstance(expr, IntLit):
            return expr.dtype
        if isinstance(expr, FloatLit):
            return expr.dtype
        if isinstance(expr, Var):
            dtype = self.dtypes.get(expr.name)
            if dtype is None:
                # a silent INT32 default here would route float division
                # of undeclared scalars through _idiv
                raise ExecutionError(
                    f"unknown scalar {expr.name!r}: not a parameter, "
                    f"declaration, or loop variable of kernel "
                    f"{self.kernel.name!r}"
                )
            return dtype
        if isinstance(expr, ArrayRef):
            dtype = self.array_dtypes.get(expr.name)
            if dtype is None:
                raise ExecutionError(
                    f"unknown array {expr.name!r} in kernel "
                    f"{self.kernel.name!r}"
                )
            return dtype
        if isinstance(expr, BinOp):
            if expr.op in ("<", "<=", ">", ">=", "==", "!=", "&&", "||"):
                return DType.BOOL
            from ..ir.types import promote

            return promote(self._dtype_of(expr.lhs), self._dtype_of(expr.rhs))
        if isinstance(expr, UnaryOp):
            return DType.BOOL if expr.op == "!" else self._dtype_of(expr.operand)
        if isinstance(expr, Call):
            if expr.func in ("min", "max", "abs"):
                return self._dtype_of(expr.args[0])
            return DType.FLOAT64
        if isinstance(expr, Ternary):
            from ..ir.types import promote

            return promote(self._dtype_of(expr.then), self._dtype_of(expr.otherwise))
        if isinstance(expr, Cast):
            return expr.dtype
        raise ExecutionError(f"cannot type {type(expr).__name__}")

    def _snapshot_name(self, array: str) -> str | None:
        # innermost frame wins: an inner parallel loop snapshots the state
        # at *its* entry, not the outer loop's
        for frame in reversed(self._snapshot_stack):
            if array in frame:
                return frame[array]
        return None

    def _push_snapshots(self, written: list[str]) -> dict[str, str]:
        """Emit loop-entry copies of *written* arrays under frame-unique
        names and push the frame (names must not collide across nesting
        levels: a shared ``_snap_{array}`` lets an inner loop clobber the
        outer loop's snapshot)."""
        frame = {name: f"{self._fresh('snap')}_{name}" for name in written}
        for name, snap in frame.items():
            self._emit(f"{snap} = {_pyname(name)}.copy()")
        self._snapshot_stack.append(frame)
        return frame

    def gen_expr(self, expr: Expr, as_store_target: bool = False) -> str:
        if isinstance(expr, IntLit):
            return repr(expr.value)
        if isinstance(expr, FloatLit):
            return repr(expr.value)
        if isinstance(expr, Var):
            return _pyname(expr.name)
        if isinstance(expr, ArrayRef):
            name = expr.name
            if not as_store_target:
                snap = self._snapshot_name(name)
                if snap is not None:
                    name = snap
            name = _pyname(name) if not name.startswith("_snap") else name
            index = ", ".join(self.gen_expr(i) for i in expr.indices)
            return f"{name}[{index}]"
        if isinstance(expr, BinOp):
            lhs = self.gen_expr(expr.lhs)
            rhs = self.gen_expr(expr.rhs)
            if expr.op == "/" and (
                self._dtype_of(expr.lhs).is_integer
                and self._dtype_of(expr.rhs).is_integer
            ):
                return f"_idiv({lhs}, {rhs})"
            if expr.op == "%" and (
                self._dtype_of(expr.lhs).is_integer
                and self._dtype_of(expr.rhs).is_integer
            ):
                return f"_imod({lhs}, {rhs})"
            op = {"&&": "and", "||": "or"}.get(expr.op, expr.op)
            return f"({lhs} {op} {rhs})"
        if isinstance(expr, UnaryOp):
            operand = self.gen_expr(expr.operand)
            if expr.op == "!":
                return f"(not {operand})"
            return f"({expr.op}{operand})"
        if isinstance(expr, Call):
            func = _CALL_MAP.get(expr.func)
            if func is None:
                raise ExecutionError(f"no executor mapping for intrinsic {expr.func!r}")
            args = ", ".join(self.gen_expr(a) for a in expr.args)
            return f"{func}({args})"
        if isinstance(expr, Ternary):
            return (
                f"({self.gen_expr(expr.then)} if {self.gen_expr(expr.cond)} "
                f"else {self.gen_expr(expr.otherwise)})"
            )
        if isinstance(expr, Cast):
            inner = self.gen_expr(expr.operand)
            return f"int({inner})" if expr.dtype.is_integer else f"float({inner})"
        raise ExecutionError(f"cannot generate {type(expr).__name__}")

    # -- statements ---------------------------------------------------------

    def gen_stmt(self, stmt: Stmt) -> None:
        if isinstance(stmt, Block):
            if not stmt.stmts:
                self._emit("pass")
            for child in stmt.stmts:
                self.gen_stmt(child)
            return
        if isinstance(stmt, Decl):
            self.dtypes[stmt.name] = stmt.type.dtype
            if stmt.init is not None:
                self._emit(f"{_pyname(stmt.name)} = {self.gen_expr(stmt.init)}")
            else:
                zero = "0" if stmt.type.dtype.is_integer else "0.0"
                self._emit(f"{_pyname(stmt.name)} = {zero}")
            return
        if isinstance(stmt, Assign):
            target = self.gen_expr(stmt.target, as_store_target=True)
            value = self.gen_expr(stmt.value)
            if stmt.op is None:
                self._emit(f"{target} = {value}")
            elif (
                isinstance(stmt.target, ArrayRef)
                and not stmt.atomic  # atomics serialize on live memory
                and self._snapshot_name(stmt.target.name)
            ):
                # compound update under snapshot semantics: read the snapshot
                read = self.gen_expr(stmt.target)  # snapshot read
                self._emit(f"{target} = {read} {stmt.op} ({value})")
            else:
                self._emit(f"{target} {stmt.op}= {value}")
            return
        if isinstance(stmt, If):
            self._emit(f"if {self.gen_expr(stmt.cond)}:")
            self.level += 1
            self.gen_stmt(stmt.then_body)
            self.level -= 1
            if stmt.else_body is not None and len(stmt.else_body) > 0:
                self._emit("else:")
                self.level += 1
                self.gen_stmt(stmt.else_body)
                self.level -= 1
            return
        if isinstance(stmt, For):
            self._gen_for(stmt)
            return
        if isinstance(stmt, While):
            self._emit(f"while {self.gen_expr(stmt.cond)}:")
            self.level += 1
            self.gen_stmt(stmt.body)
            self.level -= 1
            return
        if isinstance(stmt, Barrier):
            self._emit("pass  # barrier")
            return
        raise ExecutionError(f"cannot execute {type(stmt).__name__}")

    def _gen_for(self, loop: For) -> None:
        if loop.step == 0:
            raise ExecutionError(
                f"loop over {loop.var!r} in kernel {self.kernel.name!r} "
                f"has step 0 (would never terminate)"
            )
        self.dtypes[loop.var] = DType.INT32
        semantics = self.semantics.get(loop.loop_id, LoopSemantics())
        lower = self.gen_expr(loop.lower)
        upper = self.gen_expr(loop.upper)

        if semantics.mode is ExecMode.SEQUENTIAL:
            self._emit(
                f"for {_pyname(loop.var)} in range(int({lower}), int({upper}), {loop.step}):"
            )
            self.level += 1
            self.gen_stmt(loop.body)
            self.level -= 1
            return

        if semantics.mode is ExecMode.PARALLEL_SNAPSHOT:
            written = sorted({ref.name for ref in writes_and_reads(loop.body)[0]})
            self._push_snapshots(written)
            self._emit(
                f"for {_pyname(loop.var)} in range(int({lower}), int({upper}), {loop.step}):"
            )
            self.level += 1
            self.gen_stmt(loop.body)
            self.level -= 1
            self._snapshot_stack.pop()
            return

        if semantics.mode is ExecMode.REDUCTION_LAST_CHUNK:
            length = self._fresh("len")
            chunk = self._fresh("chunk")
            start = self._fresh("start")
            # trip count: ceil((upper - lower) / step), clamped at 0.
            # ceil(x/y) == -(-x // y) under Python floor division for
            # either sign of y, so this is exact for negative and
            # non-unit steps too (covered by tests).
            self._emit(f"{length} = max(0, -(-(int({upper}) - int({lower})) // {loop.step}))")
            self._emit(f"{chunk} = -(-{length} // {semantics.chunks})")
            # first iterate of the last ceil(length/chunks)-sized chunk
            self._emit(
                f"{start} = int({lower}) + max(0, {length} - {chunk}) * {loop.step}"
            )
            self._emit(
                f"for {_pyname(loop.var)} in range({start}, int({upper}), "
                f"{loop.step}):"
            )
            self.level += 1
            self.gen_stmt(loop.body)
            self.level -= 1
            return

        raise ExecutionError(f"unknown execution mode {semantics.mode}")

    # -- driver -------------------------------------------------------------

    def source(self) -> str:
        params = ", ".join(_pyname(p.name) for p in self.kernel.params)
        header = f"def _kernel({params}):"
        self.gen_stmt(self.kernel.body)
        body = self.lines or ["    pass"]
        return "\n".join([header, *body])


#: execution backends: "scalar" and "vector" generate code; "check" runs
#: both and asserts bitwise-identical array outputs (execute_kernel only).
BACKENDS = ("scalar", "vector", "check")

_default_backend = "scalar"


def set_default_backend(backend: str) -> None:
    """Set the process-wide backend used when ``execute_kernel`` is called
    without an explicit one (the CLI's ``--exec-backend`` lands here)."""
    global _default_backend
    if backend not in BACKENDS:
        raise ValueError(f"unknown executor backend {backend!r}; "
                         f"expected one of {BACKENDS}")
    _default_backend = backend


def get_default_backend() -> str:
    return _default_backend


def _make_codegen(kernel: KernelFunction,
                  semantics: dict[int, LoopSemantics] | None,
                  backend: str) -> _CodeGen:
    if backend == "scalar":
        return _CodeGen(kernel, semantics)
    if backend == "vector":
        from .vectorize import _VectorCodeGen  # local: vectorize subclasses us

        return _VectorCodeGen(kernel, semantics)
    raise ExecutionError(f"unknown codegen backend {backend!r}")


# -- compiled-kernel cache ---------------------------------------------------
#
# Keyed on (kernel fingerprint, canonical semantics, backend).  The
# fingerprint is content-addressed (repro.service.fingerprint over the
# canonical mini-C print), and semantics loop_ids are mapped to pre-order
# loop *positions*, so a re-parsed identical kernel with fresh loop_ids
# still hits.
#
# Two tiers.  The in-memory tier is an LRU OrderedDict holding compiled
# functions.  The optional *persistent* tier (configure_plan_cache)
# stores the generated Python source on disk under the content-addressed
# cache directory; a warm process re-enters plans by exec()ing the
# persisted source, skipping _make_codegen — and therefore the
# execute.vectorize span — entirely.  Every persisted plan carries the
# PLAN_SCHEMA codegen version stamp; a stamp mismatch makes the plan
# unloadable (treated as a miss and dropped), so stale plans from an
# older lowering can never execute.

#: codegen version stamp for persisted plans.  Bump whenever the scalar
#: or vector lowering changes in any observable way: stale plans become
#: unloadable rather than silently wrong.
PLAN_SCHEMA = "exec-plan-v1"

_CACHE_CAP = 512
_fn_cache: OrderedDict[tuple, tuple] = OrderedDict()
_fn_cache_lock = threading.Lock()


class _InflightCompile:
    """Per-key latch: the first thread to miss compiles, racers wait."""

    __slots__ = ("event", "result", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.result: tuple | None = None
        self.error: BaseException | None = None


_fn_inflight: dict[tuple, _InflightCompile] = {}

_plan_dir: Path | None = None


def configure_plan_cache(path: str | os.PathLike[str] | None) -> Path | None:
    """Enable the persistent plan tier at *path* (``None`` disables it).

    The directory is created and probe-written eagerly
    (:func:`repro.service.cache.ensure_writable_dir`), so a bad path is
    one clear error at configuration time, not a failure mid-sweep.
    Returns the resolved directory (or ``None``).
    """
    global _plan_dir
    if path is None:
        _plan_dir = None
        return None
    from ..service.cache import ensure_writable_dir

    _plan_dir = ensure_writable_dir(path)
    return _plan_dir


def plan_cache_dir() -> Path | None:
    """The configured persistent plan directory, if any."""
    return _plan_dir


def clear_kernel_cache(memory_only: bool = False) -> None:
    """Drop every cached compiled kernel function (tests, benchmarks).

    Also invalidates the persistent plan tier, when one is configured —
    a "clear" that leaves disk plans behind would resurrect them on the
    next compile.  ``memory_only=True`` keeps the disk tier (used to
    prove warm loads skip codegen).
    """
    with _fn_cache_lock:
        _fn_cache.clear()
        _fn_inflight.clear()
    if memory_only or _plan_dir is None:
        return
    for path in _plan_dir.glob("*.json"):
        try:
            path.unlink()
        except OSError:  # pragma: no cover - racing cleanup is fine
            pass


def _plan_path(key: tuple) -> Path:
    """Content-addressed file for *key* in the persistent tier.

    The codegen version stamp is deliberately *not* part of the file
    name: a version bump must find the stale file and reject it on load
    (the satellite contract), not silently shadow it.
    """
    assert _plan_dir is not None
    fingerprint, semantics_key, backend = key
    digest = hashlib.sha256(
        "\x00".join([fingerprint, repr(semantics_key), backend]).encode()
    ).hexdigest()
    return _plan_dir / f"{digest}.json"


def _plan_namespace(backend: str) -> dict[str, object]:
    namespace: dict[str, object] = dict(_HELPERS)
    if backend == "vector":
        from .vectorize import _VHELPERS

        namespace.update(_VHELPERS)
    return namespace


def _exec_plan_source(source: str, backend: str, kernel_name: str):
    namespace = _plan_namespace(backend)
    try:
        exec(compile(source, f"<kernel {kernel_name}>", "exec"), namespace)
    except SyntaxError as exc:  # pragma: no cover - codegen bug guard
        raise ExecutionError(
            f"generated code failed to compile:\n{source}"
        ) from exc
    return namespace["_kernel"]


def _plan_load(key: tuple, kernel_name: str) -> tuple | None:
    """Load a persisted plan for *key*; ``None`` on miss or stale stamp."""
    if _plan_dir is None:
        return None
    path = _plan_path(key)
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    source = payload.get("source") if isinstance(payload, dict) else None
    if (
        not isinstance(payload, dict)
        or payload.get("schema") != PLAN_SCHEMA
        or not isinstance(source, str)
    ):
        # a plan persisted by a different codegen version (or corrupt):
        # unloadable by design — drop it and recompile
        try:
            path.unlink()
        except OSError:  # pragma: no cover - racing cleanup is fine
            pass
        return None
    return (_exec_plan_source(source, key[2], kernel_name), source)


def _plan_store(key: tuple, source: str) -> None:
    """Persist *source* for *key* (atomic publish, rename-based)."""
    if _plan_dir is None:
        return
    path = _plan_path(key)
    payload = {
        "schema": PLAN_SCHEMA,
        "fingerprint": key[0],
        "semantics": [list(item) for item in key[1]],
        "backend": key[2],
        "source": source,
    }
    tmp = path.with_suffix(f".tmp.{os.getpid()}.{threading.get_ident()}")
    try:
        tmp.write_text(json.dumps(payload, sort_keys=True))
        os.replace(tmp, path)
    except OSError:  # pragma: no cover - disk-full etc: cache is optional
        try:
            tmp.unlink()
        except OSError:
            pass


def _semantics_key(kernel: KernelFunction,
                   semantics: dict[int, LoopSemantics] | None) -> tuple:
    if not semantics:
        return ()
    position = {loop.loop_id: i for i, loop in enumerate(kernel.loops())}
    items = []
    for loop_id, sem in semantics.items():
        pos = position.get(loop_id)
        if pos is None:
            continue  # semantics for loops the kernel doesn't have are inert
        chunks = sem.chunks if sem.mode is ExecMode.REDUCTION_LAST_CHUNK else 0
        items.append((pos, sem.mode.value, chunks))
    return tuple(sorted(items))


def _compile_uncached(
    kernel: KernelFunction,
    semantics: dict[int, LoopSemantics] | None,
    backend: str,
    key: tuple,
) -> tuple:
    """Compile on a genuine memo miss: disk tier first, then codegen."""
    loaded = _plan_load(key, kernel.name)
    if loaded is not None:
        # warm persistent hit: no codegen ran, so no execute.vectorize
        # span and no vectorized/fallback counter bumps — those count
        # codegen events, and this was a plan re-entry
        get_registry().counter("executor.plan_disk_hit").inc()
        return loaded

    if backend == "vector":
        with get_tracer().span("execute.vectorize", category="executor",
                               kernel=kernel.name):
            gen = _make_codegen(kernel, semantics, backend)
            source = gen.source()
        registry = get_registry()
        registry.counter("executor.vectorized").inc(gen.vectorized_loops)
        registry.counter("executor.fallback").inc(gen.fallback_loops)
        for reason, count in sorted(
            getattr(gen, "fallback_reasons", {}).items()
        ):
            registry.counter(f"executor.fallback.{reason}").inc(count)
    else:
        gen = _make_codegen(kernel, semantics, backend)
        source = gen.source()
    compiled = (_exec_plan_source(source, backend, kernel.name), source)
    _plan_store(key, source)
    if _plan_dir is not None:
        get_registry().counter("executor.plan_disk_store").inc()
    return compiled


def compile_kernel_fn(
    kernel: KernelFunction,
    semantics: dict[int, LoopSemantics] | None = None,
    backend: str = "scalar",
):
    """Compile *kernel* into a callable ``f(**args)`` (memoized).

    Thread-safe with single-flight semantics: N threads racing on a cold
    key run exactly one compile — the first thread takes a per-key latch
    and the rest wait on it, then count a cache hit.  The memo tier is
    LRU: a hit moves the key to the back, eviction at ``_CACHE_CAP``
    drops the least-recently-used entry.
    """
    from ..service.fingerprint import fingerprint_kernel

    key = (fingerprint_kernel(kernel), _semantics_key(kernel, semantics),
           backend)
    while True:
        with _fn_cache_lock:
            cached = _fn_cache.get(key)
            if cached is not None:
                _fn_cache.move_to_end(key)
                latch = None
            else:
                latch = _fn_inflight.get(key)
                if latch is None:
                    latch = _InflightCompile()
                    _fn_inflight[key] = latch
                    break  # this thread is the compile leader
        if cached is not None:
            get_registry().counter("executor.cache_hit").inc()
            return cached
        latch.event.wait()
        if latch.error is not None:
            raise latch.error
        if latch.result is not None:
            get_registry().counter("executor.cache_hit").inc()
            return latch.result
        # the leader was cancelled (clear_kernel_cache mid-compile):
        # retry from the top

    try:
        compiled = _compile_uncached(kernel, semantics, backend, key)
    except BaseException as exc:
        latch.error = exc
        with _fn_cache_lock:
            if _fn_inflight.get(key) is latch:
                del _fn_inflight[key]
        latch.event.set()
        raise
    latch.result = compiled
    with _fn_cache_lock:
        while len(_fn_cache) >= _CACHE_CAP:
            _fn_cache.popitem(last=False)  # LRU eviction
        _fn_cache[key] = compiled
        if _fn_inflight.get(key) is latch:
            del _fn_inflight[key]
    latch.event.set()
    return compiled


def _check_args(kernel: KernelFunction,
                args: dict[str, object]) -> dict[str, object]:
    """Validate *args* against the kernel signature.

    Returns the mapping actually passed to the compiled function: arrays
    by reference (dtype *kind* must match the declared element type —
    an int buffer bound to a float parameter silently changes division
    semantics), scalars explicitly cast to plain Python ``int``/``float``
    (C truncation semantics for float-to-int).
    """
    call: dict[str, object] = {}
    for param in kernel.params:
        if param.name not in args:
            raise ExecutionError(f"missing argument {param.name!r}")
        value = args[param.name]
        if isinstance(param.type, ArrayType):
            if not isinstance(value, np.ndarray):
                raise ExecutionError(f"argument {param.name!r} must be an ndarray")
            if value.ndim != param.type.rank:
                raise ExecutionError(
                    f"argument {param.name!r} has rank {value.ndim}, "
                    f"expected {param.type.rank}"
                )
            kinds = "iub" if param.type.dtype.is_integer else "f"
            if value.dtype.kind not in kinds:
                raise ExecutionError(
                    f"argument {param.name!r} has dtype {value.dtype}, "
                    f"incompatible with declared {param.type.dtype.name}"
                )
            call[param.name] = value
        else:
            if isinstance(value, np.ndarray):
                raise ExecutionError(f"argument {param.name!r} must be a scalar")
            if not isinstance(value, (bool, int, float, np.bool_,
                                      np.integer, np.floating)):
                raise ExecutionError(
                    f"argument {param.name!r} must be a number, "
                    f"got {type(value).__name__}"
                )
            if param.type.dtype.is_integer:
                call[param.name] = int(value)  # C-style truncation
            else:
                call[param.name] = float(value)
    extra = set(args) - {p.name for p in kernel.params}
    if extra:
        raise ExecutionError(f"unexpected arguments: {sorted(extra)}")
    return call


def execute_kernel(
    kernel: KernelFunction,
    args: dict[str, object],
    semantics: dict[int, LoopSemantics] | None = None,
    backend: str | None = None,
) -> None:
    """Execute *kernel* in place on the NumPy arrays in *args*.

    *backend* is ``"scalar"``, ``"vector"`` or ``"check"`` (run both,
    raise :class:`ExecutionError` on any bitwise output difference);
    ``None`` uses :func:`get_default_backend`.
    """
    backend = backend or _default_backend
    if backend not in BACKENDS:
        raise ExecutionError(f"unknown executor backend {backend!r}; "
                             f"expected one of {BACKENDS}")
    call = _check_args(kernel, args)

    if backend == "check":
        ref = {name: value.copy() if isinstance(value, np.ndarray) else value
               for name, value in call.items()}
        fn_scalar, _ = compile_kernel_fn(kernel, semantics, "scalar")
        fn_scalar(**{_pyname(name): value for name, value in ref.items()})
        fn_vector, _ = compile_kernel_fn(kernel, semantics, "vector")
        fn_vector(**{_pyname(name): value for name, value in call.items()})
        diverged = [
            name for name, value in call.items()
            if isinstance(value, np.ndarray)
            and value.tobytes() != ref[name].tobytes()  # bitwise, NaN-safe
        ]
        if diverged:
            raise ExecutionError(
                f"vector backend diverged from scalar on kernel "
                f"{kernel.name!r}, arrays {sorted(diverged)}"
            )
        return

    fn, _ = compile_kernel_fn(kernel, semantics, backend)
    fn(**{_pyname(name): value for name, value in call.items()})


def kernel_python_source(
    kernel: KernelFunction,
    semantics: dict[int, LoopSemantics] | None = None,
    backend: str = "scalar",
) -> str:
    """The generated Python source (debugging / documentation aid)."""
    return _make_codegen(kernel, semantics, backend).source()
