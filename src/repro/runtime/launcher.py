"""The simulated accelerator runtime.

An :class:`Accelerator` owns device buffers, executes compiled kernels
(functionally, via the executor, when arrays are provided), models their
elapsed time with :mod:`repro.perf`, and records every event in a
:class:`Profiler`.

Two usage modes:

* **functional** — tests and examples allocate real NumPy arrays with
  :meth:`to_device`; launches mutate them exactly as the compiled kernel
  would (including racy/broken-parallelization semantics), and the
  timing model runs alongside.
* **modeled-only** — the paper-scale experiments (4K matrices, 32M-node
  graphs) declare buffer *sizes* with :meth:`declare`; launches are
  timed but not executed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..devices.specs import (
    E5_2670,
    GCC,
    PCIE,
    DeviceSpec,
    HostToolchain,
    PcieLink,
)
from ..ir.types import ArrayType
from ..perf.model import LaunchConfig, WorkProfile, estimate_time
from .executor import execute_kernel
from .profiler import Profiler

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a circular import
    from ..compilers.framework import CompiledKernel


class RuntimeError_(RuntimeError):
    """Runtime-layer failure (missing buffer, bad launch arguments)."""


@dataclass
class LaunchRecord:
    """What one launch cost and how it ran."""

    kernel: str
    config: LaunchConfig
    profile: WorkProfile
    seconds: float
    device: str
    executed_functionally: bool


class Accelerator:
    """One simulated device with its PCIe link and host."""

    def __init__(
        self,
        spec: DeviceSpec,
        link: PcieLink = PCIE,
        host: DeviceSpec = E5_2670,
        toolchain: HostToolchain = GCC,
    ) -> None:
        self.spec = spec
        self.link = link
        self.host = host
        self.toolchain = toolchain
        self.profiler = Profiler()
        self._buffers: dict[str, np.ndarray] = {}
        self._declared: dict[str, int] = {}
        self.launches: list[LaunchRecord] = []

    # -- buffer management -----------------------------------------------------

    def to_device(self, **arrays: np.ndarray) -> None:
        """Copy host arrays to the device (functional mode)."""
        for name, array in arrays.items():
            if not isinstance(array, np.ndarray):
                raise RuntimeError_(f"{name!r} must be an ndarray")
            self._buffers[name] = array.copy()
            self.profiler.record(
                "h2d", name, self.link.transfer_seconds(array.nbytes),
                array.nbytes, self.spec.name,
            )

    def declare(self, **nbytes: int) -> None:
        """Declare buffer sizes without data (modeled-only mode)."""
        for name, size in nbytes.items():
            if size < 0:
                raise RuntimeError_(f"negative size for buffer {name!r}")
            self._declared[name] = int(size)

    def upload_declared(self, *names: str) -> None:
        """Model an H2D transfer of declared (data-less) buffers."""
        for name in names:
            size = self._nbytes(name)
            self.profiler.record(
                "h2d", name, self.link.transfer_seconds(size), size,
                self.spec.name,
            )

    def download_declared(self, *names: str) -> None:
        for name in names:
            size = self._nbytes(name)
            self.profiler.record(
                "d2h", name, self.link.transfer_seconds(size), size,
                self.spec.name,
            )

    def touch_h2d(self, *names: str) -> None:
        """Record an H2D re-transfer of existing buffers (a data-region
        entry re-copying data that is already in sync — what CAPS's
        per-region data movement does inside the BFS level loop)."""
        for name in names:
            size = self._nbytes(name)
            self.profiler.record(
                "h2d", name, self.link.transfer_seconds(size), size,
                self.spec.name,
            )

    def touch_d2h(self, *names: str) -> None:
        """Record a D2H transfer of existing buffers without copying."""
        for name in names:
            size = self._nbytes(name)
            self.profiler.record(
                "d2h", name, self.link.transfer_seconds(size), size,
                self.spec.name,
            )

    def from_device(self, *names: str) -> dict[str, np.ndarray]:
        """Copy device buffers back to the host (functional mode)."""
        out: dict[str, np.ndarray] = {}
        for name in names:
            if name not in self._buffers:
                raise RuntimeError_(f"no device buffer {name!r}")
            array = self._buffers[name]
            out[name] = array.copy()
            self.profiler.record(
                "d2h", name, self.link.transfer_seconds(array.nbytes),
                array.nbytes, self.spec.name,
            )
        return out

    def buffer(self, name: str) -> np.ndarray:
        if name not in self._buffers:
            raise RuntimeError_(f"no device buffer {name!r}")
        return self._buffers[name]

    def _nbytes(self, name: str) -> int:
        if name in self._buffers:
            return self._buffers[name].nbytes
        if name in self._declared:
            return self._declared[name]
        raise RuntimeError_(f"buffer {name!r} neither allocated nor declared")

    # -- kernel launch -----------------------------------------------------------

    def launch(self, kernel: "CompiledKernel", **scalars: int | float
               ) -> LaunchRecord:
        """Launch a compiled kernel.

        ``scalars`` supplies the kernel's scalar parameters (sizes etc.).
        Array parameters bind to same-named device buffers.  If every
        array parameter has a real buffer the kernel also executes
        functionally (with the compiled execution semantics — including
        any broken-reduction behaviour on this device kind).
        """
        env = {k: int(v) for k, v in scalars.items() if isinstance(v, (int, np.integer))}
        working_set = 0
        have_all_arrays = True
        for param in kernel.ir.array_params:
            try:
                working_set += self._nbytes(param.name)
            except RuntimeError_:
                raise
            if param.name not in self._buffers:
                have_all_arrays = False

        config = kernel.launch_config(env)
        profile = kernel.work_profile(env, working_set)

        if kernel.elided:
            # host fallback: the region runs on the host CPU, sequentially
            host_profile = kernel_host_profile(kernel, env, working_set)
            breakdown = estimate_time(
                self.host, LaunchConfig(sequential=True), host_profile
            )
            seconds = breakdown.total_s * self.toolchain.host_speed_factor
            device_label = "host"
        else:
            breakdown = estimate_time(self.spec, config, profile)
            seconds = breakdown.total_s + kernel.dispatch_overhead_us * 1e-6
            device_label = self.spec.name

        executed = False
        if have_all_arrays and kernel.ir.array_params:
            args: dict[str, object] = {}
            for param in kernel.ir.params:
                if isinstance(param.type, ArrayType):
                    args[param.name] = self._buffers[param.name]
                else:
                    if param.name not in scalars:
                        raise RuntimeError_(
                            f"missing scalar argument {param.name!r} for "
                            f"kernel {kernel.name!r}"
                        )
                    args[param.name] = scalars[param.name]
            semantics = kernel.executor_semantics(self.spec.kind.value)
            if kernel.elided:
                semantics = {}  # host fallback executes sequentially (correct)
            execute_kernel(kernel.ir, args, semantics)
            executed = True

        self.profiler.record("launch", kernel.name, seconds, 0, device_label)
        record = LaunchRecord(
            kernel.name, config, profile, seconds, device_label, executed
        )
        self.launches.append(record)
        return record

    # -- host-side work -----------------------------------------------------------

    def host_compute(self, label: str, seconds_at_gcc: float) -> None:
        """Model host-side computation between kernels (Hydro's CPU parts);
        scaled by the host toolchain factor (GCC vs Intel, Fig. 15)."""
        self.profiler.record(
            "host", label, seconds_at_gcc * self.toolchain.host_speed_factor
        )

    # -- results -----------------------------------------------------------------

    @property
    def elapsed_s(self) -> float:
        return self.profiler.total_s

    def reset_timeline(self) -> None:
        self.profiler.clear()
        self.launches.clear()


def kernel_host_profile(
    kernel: "CompiledKernel", env: dict[str, int], working_set: float
) -> WorkProfile:
    """The whole-kernel sequential profile used for host fallback."""
    from ..analysis.patterns import count_ops

    # an out-of-order host core predicts branches: no divergence penalty
    ops = count_ops(kernel.ir.body, env, divergent=False)
    elem = 4
    for param in kernel.ir.array_params:
        elem = max(elem, param.type.size_bytes)  # type: ignore[union-attr]
    return WorkProfile(
        items=1,
        ops=ops,
        bytes_per_item=float((ops.loads + ops.stores) * elem),
        coalesced_fraction=1.0,
        working_set_bytes=working_set,
    )
