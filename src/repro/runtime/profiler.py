"""Event profiler for the simulated runtime (the nvprof / PGI_ACC_TIME
stand-in).

Records host<->device transfers and kernel launches with their modeled
durations; the BFS discovery of paper V-C1 ("we find the kernels do not
run on GPU after we set the environment variable PGI_ACC_TIME to 1 and
profile the kernels with nvprof") and the transfer counts of Table VII
are read off this timeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ProfileEvent:
    kind: str        # "h2d" | "d2h" | "launch" | "host"
    label: str
    seconds: float
    nbytes: int = 0
    device: str = ""

    def __str__(self) -> str:
        size = f" {self.nbytes} B" if self.nbytes else ""
        return f"[{self.kind:>6}] {self.label}{size}: {self.seconds * 1e3:.3f} ms"


@dataclass
class Profiler:
    events: list[ProfileEvent] = field(default_factory=list)
    #: an attached compile-service view (any object with ``report_lines()``,
    #: e.g. :class:`repro.service.CompileService` or ``ServiceMetrics``);
    #: duck-typed so the runtime layer stays independent of the service layer
    service: object | None = None

    def attach_service(self, service: object) -> None:
        """Surface a compile service's cache/latency counters in
        :meth:`report` (the nvprof stand-in gains the compile-cache view)."""
        if not hasattr(service, "report_lines"):
            raise TypeError(
                "attach_service expects an object with report_lines(), got "
                f"{type(service).__name__}"
            )
        self.service = service

    def record(self, kind: str, label: str, seconds: float, nbytes: int = 0,
               device: str = "") -> None:
        if seconds < 0:
            raise ValueError("event duration must be non-negative")
        self.events.append(ProfileEvent(kind, label, seconds, nbytes, device))

    # -- queries -------------------------------------------------------------

    def count(self, kind: str, label: str | None = None) -> int:
        return sum(
            1
            for event in self.events
            if event.kind == kind and (label is None or event.label == label)
        )

    @property
    def memcpy_h2d(self) -> int:
        return self.count("h2d")

    @property
    def memcpy_d2h(self) -> int:
        return self.count("d2h")

    @property
    def kernel_launches(self) -> int:
        return self.count("launch")

    def device_kernel_launches(self) -> int:
        """Launches that actually ran on the device (PGI_ACC_TIME view)."""
        return sum(
            1
            for event in self.events
            if event.kind == "launch" and event.device not in ("", "host")
        )

    @property
    def total_s(self) -> float:
        return sum(event.seconds for event in self.events)

    def time_by_kind(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0.0) + event.seconds
        return out

    def transfer_bytes(self) -> int:
        return sum(
            event.nbytes for event in self.events if event.kind in ("h2d", "d2h")
        )

    def report(self) -> str:
        lines = [str(event) for event in self.events]
        lines.append(
            f"-- total {self.total_s * 1e3:.3f} ms over {len(self.events)} events "
            f"({self.memcpy_h2d} H2D, {self.memcpy_d2h} D2H, "
            f"{self.kernel_launches} launches)"
        )
        if self.service is not None:
            lines.extend(self.service.report_lines())  # type: ignore[attr-defined]
        return "\n".join(lines)

    def clear(self) -> None:
        self.events.clear()
