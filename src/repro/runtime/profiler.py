"""Event profiler for the simulated runtime (the nvprof / PGI_ACC_TIME
stand-in).

Records host<->device transfers and kernel launches with their modeled
durations; the BFS discovery of paper V-C1 ("we find the kernels do not
run on GPU after we set the environment variable PGI_ACC_TIME to 1 and
profile the kernels with nvprof") and the transfer counts of Table VII
are read off this timeline.

All recording and reading is lock-guarded: the parallel sweep scheduler
can drive several accelerators (or one shared profiler) from pool
threads while a reporter iterates the timeline.  Every recorded event is
also bridged into the process-wide :mod:`repro.telemetry` tracer as a
modeled span (``runtime.h2d`` / ``runtime.d2h`` / ``runtime.launch`` /
``runtime.host``) when tracing is enabled, so one exported trace covers
the compile service *and* the simulated device timeline.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from ..telemetry.registry import MetricsRegistry, Reportable
from ..telemetry.spans import get_tracer


@dataclass(frozen=True)
class ProfileEvent:
    kind: str        # "h2d" | "d2h" | "launch" | "host"
    label: str
    seconds: float
    nbytes: int = 0
    device: str = ""

    def __str__(self) -> str:
        size = f" {self.nbytes} B" if self.nbytes else ""
        return f"[{self.kind:>6}] {self.label}{size}: {self.seconds * 1e3:.3f} ms"


@dataclass
class Profiler:
    events: list[ProfileEvent] = field(default_factory=list)
    #: an attached compile-service view (any :class:`Reportable`, e.g.
    #: :class:`repro.service.CompileService` or ``ServiceMetrics``); typed
    #: through the telemetry protocol so the runtime layer stays
    #: independent of the service layer
    service: Reportable | None = None

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    def attach_service(self, service: Reportable) -> None:
        """Surface a compile service's cache/latency counters in
        :meth:`report` (the nvprof stand-in gains the compile-cache view)."""
        if not isinstance(service, Reportable):
            raise TypeError(
                "attach_service expects an object with report_lines(), got "
                f"{type(service).__name__}"
            )
        self.service = service

    def record(self, kind: str, label: str, seconds: float, nbytes: int = 0,
               device: str = "") -> None:
        if seconds < 0:
            raise ValueError("event duration must be non-negative")
        event = ProfileEvent(kind, label, seconds, nbytes, device)
        with self._lock:
            self.events.append(event)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.record_span(
                f"runtime.{kind}", seconds, category="modeled",
                label=label, nbytes=nbytes, device=device,
            )

    def snapshot_events(self) -> tuple[ProfileEvent, ...]:
        """A consistent copy of the timeline (safe under concurrent
        :meth:`record` calls)."""
        with self._lock:
            return tuple(self.events)

    # -- queries -------------------------------------------------------------

    def count(self, kind: str, label: str | None = None) -> int:
        return sum(
            1
            for event in self.snapshot_events()
            if event.kind == kind and (label is None or event.label == label)
        )

    @property
    def memcpy_h2d(self) -> int:
        return self.count("h2d")

    @property
    def memcpy_d2h(self) -> int:
        return self.count("d2h")

    @property
    def kernel_launches(self) -> int:
        return self.count("launch")

    def device_kernel_launches(self) -> int:
        """Launches that actually ran on the device (PGI_ACC_TIME view)."""
        return sum(
            1
            for event in self.snapshot_events()
            if event.kind == "launch" and event.device not in ("", "host")
        )

    @property
    def total_s(self) -> float:
        return sum(event.seconds for event in self.snapshot_events())

    def time_by_kind(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for event in self.snapshot_events():
            out[event.kind] = out.get(event.kind, 0.0) + event.seconds
        return out

    def transfer_bytes(self) -> int:
        return sum(
            event.nbytes
            for event in self.snapshot_events()
            if event.kind in ("h2d", "d2h")
        )

    def publish(self, registry: MetricsRegistry,
                prefix: str = "runtime") -> None:
        """Publish per-kind counts/durations and transfer bytes into the
        unified telemetry registry (gauges: idempotent)."""
        events = self.snapshot_events()
        counts: dict[str, int] = {}
        seconds: dict[str, float] = {}
        for event in events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
            seconds[event.kind] = seconds.get(event.kind, 0.0) + event.seconds
        for kind in sorted(counts):
            registry.gauge(f"{prefix}.{kind}.events").set(counts[kind])
            registry.gauge(f"{prefix}.{kind}.seconds").set(seconds[kind])
        registry.gauge(f"{prefix}.transfer_bytes").set(
            sum(e.nbytes for e in events if e.kind in ("h2d", "d2h"))
        )

    def report(self) -> str:
        events = self.snapshot_events()
        lines = [str(event) for event in events]
        h2d = sum(1 for e in events if e.kind == "h2d")
        d2h = sum(1 for e in events if e.kind == "d2h")
        launches = sum(1 for e in events if e.kind == "launch")
        total_s = sum(e.seconds for e in events)
        lines.append(
            f"-- total {total_s * 1e3:.3f} ms over {len(events)} events "
            f"({h2d} H2D, {d2h} D2H, "
            f"{launches} launches)"
        )
        if self.service is not None:
            lines.extend(self.service.report_lines())
        return "\n".join(lines)

    def clear(self) -> None:
        with self._lock:
            self.events.clear()
