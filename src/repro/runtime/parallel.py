"""Process-parallel kernel execution over shared-memory buffers.

The executor escapes the GIL for execution-heavy sweeps by fanning tasks
out to ``fork``-ed worker processes.  Each task's array arguments are
copied into :mod:`multiprocessing.shared_memory` segments; a worker
attaches NumPy views over those segments and runs the ordinary
:func:`repro.runtime.executor.execute_kernel` in place, so the parent
reads results back without a second serialization.

Determinism is structural, not incidental:

* tasks are assigned **round-robin** (task *i* goes to worker ``i %
  jobs``), so the task→worker mapping — and therefore every per-worker
  telemetry lane — is a pure function of the task list;
* every task executes on its own private copy of its argument arrays
  (the copy into shared memory), so tasks cannot observe each other and
  results are byte-identical to running the same list with ``jobs=1``;
* the parent **pre-warms** every compiled plan before forking, so
  workers inherit the memoized functions through fork and compile
  nothing — compile-side counters (``executor.vectorized``,
  ``executor.fallback.*``) are bumped exactly once, in the parent,
  regardless of ``jobs``;
* workers report per-task ``executor.*`` counter deltas back over a
  pipe and the parent merges them in task order, so the registry ends
  identical for ``jobs=1`` and ``jobs=N``.

Telemetry: the parent records one modeled ``exec.task`` span per task
with a ``lane="worker:<k>"`` attribute — the same lane pattern the
compile daemon uses for ``client:<id>`` — so a trace of a process-pool
sweep shows per-worker timelines.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import time
from dataclasses import dataclass, field
from multiprocessing import shared_memory

import numpy as np

from ..ir.stmt import KernelFunction
from ..telemetry.registry import get_registry
from ..telemetry.spans import get_tracer
from .executor import (
    ExecutionError,
    LoopSemantics,
    compile_kernel_fn,
    execute_kernel,
)

__all__ = ["ExecTask", "run_tasks", "run_exec_sweep", "sweep_digest"]


@dataclass
class ExecTask:
    """One unit of process-parallel work: a kernel plus its arguments."""

    label: str
    kernel: KernelFunction
    args: dict[str, object]
    semantics: dict[int, LoopSemantics] | None = None


@dataclass
class _ShmSpec:
    """Wire description of one array argument living in shared memory."""

    arg: str
    shm_name: str
    shape: tuple
    dtype: str


@dataclass
class _TaskResult:
    index: int
    seconds: float
    counters: dict[str, int] = field(default_factory=dict)
    error: str | None = None


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without taking ownership (the
    parent created the segment and is the one that unlinks it)."""
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track flag
        return shared_memory.SharedMemory(name=name)


def _disable_shm_tracking() -> None:
    """Worker-side: stop shared_memory attaches from re-registering with
    the fork-shared resource tracker.  The parent already registered
    every segment at creation; a second registration (or a child-side
    unregister) corrupts the tracker's bookkeeping for names the parent
    still owns.  Workers only ever *attach*, so tracking nothing here is
    safe.  Python 3.13+ makes this a constructor flag instead."""
    try:
        from multiprocessing import resource_tracker

        resource_tracker.register = lambda name, rtype: None
    except Exception:  # pragma: no cover - tracking is best-effort anyway
        pass


def _counter_snapshot() -> dict[str, int]:
    return dict(get_registry().snapshot()["counters"])


def _counter_delta(before: dict[str, int],
                   after: dict[str, int]) -> dict[str, int]:
    return {
        name: value - before.get(name, 0)
        for name, value in after.items()
        if value != before.get(name, 0)
    }


def _worker_main(assigned, backend, conn) -> None:
    """Worker loop: attach, execute in place, report (index, dt, delta)."""
    _disable_shm_tracking()
    results = []
    for index, task, specs in assigned:
        segments = []
        try:
            args = dict(task.args)
            for spec in specs:
                shm = _attach(spec.shm_name)
                segments.append(shm)
                args[spec.arg] = np.ndarray(
                    spec.shape, dtype=np.dtype(spec.dtype), buffer=shm.buf
                )
            before = _counter_snapshot()
            start = time.perf_counter()
            execute_kernel(task.kernel, args, task.semantics, backend=backend)
            seconds = time.perf_counter() - start
            delta = _counter_delta(before, _counter_snapshot())
            results.append(_TaskResult(index, seconds, delta))
        except BaseException as exc:  # report, don't kill the pipe
            results.append(_TaskResult(index, 0.0, {}, f"{exc}"))
        finally:
            for shm in segments:
                shm.close()
    conn.send(results)
    conn.close()


def _scalar_args(task: ExecTask) -> dict[str, object]:
    return {
        name: value
        for name, value in task.args.items()
        if not isinstance(value, np.ndarray)
    }


def run_tasks(
    tasks: list[ExecTask],
    jobs: int = 1,
    backend: str | None = None,
) -> list[dict[str, np.ndarray]]:
    """Execute *tasks* with *jobs* worker processes; return each task's
    array buffers after execution, in task order.

    ``jobs <= 1`` runs inline (no processes) through the identical
    pre-warm/copy/merge path, so the two modes produce byte-identical
    buffers and identical ``executor.*`` counter totals.
    """
    if not tasks:
        return []
    registry = get_registry()
    tracer = get_tracer()

    # pre-warm every plan in the parent: workers inherit the memo cache
    # through fork and never compile (zero compile-counter drift), and a
    # configured persistent plan tier is populated exactly once
    resolved = backend or _resolved_backend()
    codegen_backends = ("scalar", "vector") if resolved == "check" else (resolved,)
    for task in tasks:
        for codegen in codegen_backends:
            compile_kernel_fn(task.kernel, task.semantics, codegen)

    if (
        jobs <= 1
        or len(tasks) == 1
        or "fork" not in multiprocessing.get_all_start_methods()
    ):
        results: list[dict[str, np.ndarray]] = []
        for index, task in enumerate(tasks):
            args: dict[str, object] = dict(_scalar_args(task))
            buffers = {
                name: value.copy()
                for name, value in task.args.items()
                if isinstance(value, np.ndarray)
            }
            args.update(buffers)
            start = time.perf_counter()
            execute_kernel(task.kernel, args, task.semantics, backend=backend)
            seconds = time.perf_counter() - start
            tracer.record_span(
                "exec.task", seconds, category="exec",
                lane="worker:0", task=task.label, index=index,
            )
            registry.counter("executor.pool_tasks").inc()
            results.append(buffers)
        return results

    context = multiprocessing.get_context("fork")
    jobs = min(jobs, len(tasks))

    # one shared-memory segment per array argument per task
    segments: list[shared_memory.SharedMemory] = []
    views: list[dict[str, np.ndarray]] = []
    specs: list[list[_ShmSpec]] = []
    try:
        for task in tasks:
            task_specs: list[_ShmSpec] = []
            task_views: dict[str, np.ndarray] = {}
            for name, value in task.args.items():
                if not isinstance(value, np.ndarray):
                    continue
                shm = shared_memory.SharedMemory(
                    create=True, size=max(1, value.nbytes)
                )
                segments.append(shm)
                view = np.ndarray(value.shape, dtype=value.dtype,
                                  buffer=shm.buf)
                view[...] = value
                task_views[name] = view
                task_specs.append(
                    _ShmSpec(name, shm.name, value.shape, value.dtype.str)
                )
            specs.append(task_specs)
            views.append(task_views)

        # round-robin assignment: task i -> worker i % jobs
        assignments: list[list[tuple]] = [[] for _ in range(jobs)]
        for index, task in enumerate(tasks):
            slim = ExecTask(task.label, task.kernel, _scalar_args(task),
                            task.semantics)
            assignments[index % jobs].append((index, slim, specs[index]))

        procs = []
        parents = []
        for worker_tasks in assignments:
            parent_conn, child_conn = context.Pipe(duplex=False)
            proc = context.Process(
                target=_worker_main,
                args=(worker_tasks, backend, child_conn),
            )
            proc.start()
            child_conn.close()
            procs.append(proc)
            parents.append(parent_conn)

        reported: dict[int, _TaskResult] = {}
        for conn, proc in zip(parents, procs):
            try:
                for result in conn.recv():
                    reported[result.index] = result
            except EOFError:
                pass  # worker died before reporting; detected below
            finally:
                conn.close()
            proc.join()

        errors = []
        for index, task in enumerate(tasks):
            result = reported.get(index)
            if result is None:
                errors.append(f"{task.label}: worker died without a result")
            elif result.error is not None:
                errors.append(f"{task.label}: {result.error}")
        if errors:
            raise ExecutionError(
                "process-pool execution failed: " + "; ".join(errors)
            )

        # merge telemetry in task order: deterministic counter totals and
        # one modeled span per task on its worker's lane
        for index, task in enumerate(tasks):
            result = reported[index]
            for name, delta in sorted(result.counters.items()):
                registry.counter(name).inc(delta)
            tracer.record_span(
                "exec.task", result.seconds, category="exec",
                lane=f"worker:{index % jobs}", task=task.label, index=index,
            )
            registry.counter("executor.pool_tasks").inc()

        return [
            {name: view.copy() for name, view in task_views.items()}
            for task_views in views
        ]
    finally:
        for shm in segments:
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass


def _resolved_backend() -> str:
    from .executor import get_default_backend

    return get_default_backend()


# -- the execution-heavy sweep driver ----------------------------------------


def sweep_digest(results: list[dict[str, np.ndarray]]) -> str:
    """Order-sensitive SHA-256 over every result buffer (byte-identity
    across ``jobs`` settings is asserted on this digest)."""
    digest = hashlib.sha256()
    for buffers in results:
        for name in sorted(buffers):
            digest.update(name.encode())
            digest.update(buffers[name].tobytes())
    return digest.hexdigest()


def _sweep_tasks(service, sizes: dict[str, int], repeats: int) -> list[ExecTask]:
    """The execution-heavy LUD/GE/Hydro task list (paper Fig. 4 hot
    kernels), compiled through *service* so resilience policies (faults,
    retries, breakers) apply to the compile side of the sweep."""
    from ..ir.visitors import clone_kernel
    from ..kernels import get_benchmark

    stages = {
        "ge": ("reorganized", ("ge_fan1", "ge_fan2")),
        "lud": ("tile", ("lud_row", "lud_column")),
        "hydro": ("optimized", ("hydro_boundary_x", "hydro_boundary_y")),
    }
    tasks: list[ExecTask] = []
    for bench, (stage, kernels) in stages.items():
        n = sizes[bench]
        pool = get_benchmark(bench).inputs(n)
        if bench == "ge":
            pool["t"] = 0
        elif bench == "lud":
            pool["i"] = 3 * n // 4  # mid-factorization: real reduction depth
        module = get_benchmark(bench).stages()[stage]
        compiled = service.compile(module, "caps", "cuda",
                                   label=f"exec-sweep:{bench}")
        for name in kernels:
            ck = compiled.kernel(name)
            semantics = {} if ck.elided else ck.executor_semantics("gpu")
            kernel = clone_kernel(ck.ir)
            args = {p.name: pool[p.name] for p in kernel.params}
            for repeat in range(repeats):
                tasks.append(
                    ExecTask(f"{name}#{repeat}", kernel, args, semantics)
                )
    return tasks


def run_exec_sweep(
    service=None,
    jobs: int = 1,
    backend: str = "vector",
    sizes: dict[str, int] | None = None,
    repeats: int = 1,
) -> dict:
    """Compile and execute the LUD/GE/Hydro hot-kernel sweep.

    Returns a summary with a deterministic ``digest`` over all result
    buffers — the determinism suite asserts digest equality across
    ``jobs`` values, cold and warm-persistent, with and without injected
    compile faults.
    """
    if service is None:
        from ..service.scheduler import CompileService

        service = CompileService()
    sizes = dict(sizes or {"ge": 96, "lud": 128, "hydro": 96})
    with get_tracer().span("exec.sweep", category="exec", jobs=jobs,
                           backend=backend):
        tasks = _sweep_tasks(service, sizes, repeats)
        start = time.perf_counter()
        results = run_tasks(tasks, jobs=jobs, backend=backend)
        seconds = time.perf_counter() - start
    return {
        "tasks": [task.label for task in tasks],
        "jobs": jobs,
        "backend": backend,
        "sizes": sizes,
        "seconds": seconds,
        "digest": sweep_digest(results),
    }
