"""repro.service — content-addressed compilation cache + sweep scheduler.

The paper's methodology is sweep-shaped: the Fig. 4 heat maps, the PPR
table, and the auto-tuner all push the *same* kernels through the same
compiler models at dozens of (compiler, flags, target, distribution)
points.  This package turns those repeated compiles into a service:

* :mod:`.fingerprint` — stable content addresses of compile requests;
* :mod:`.cache` — two-tier (LRU memory + optional on-disk) artifact cache;
* :mod:`.scheduler` — :class:`CompileService`: dedup, worker pool,
  deterministic batch results, structured per-point errors;
* :mod:`.metrics` — request/hit/latency counters, surfaced through
  :meth:`repro.runtime.profiler.Profiler.report`;
* :mod:`.resilience` — retry policies with deterministic backoff,
  simulated clocks, per-target circuit breakers, and the sweep
  checkpoint journal (pairs with :mod:`repro.faults`).

See ``docs/SERVICE.md`` for the architecture and ``docs/FAULTS.md``
for the fault-injection + resilience story.
"""

from .cache import (
    MISS,
    ArtifactCache,
    CacheDirError,
    CacheStats,
    ShardedArtifactCache,
    ensure_writable_dir,
    shard_prefix,
)
from .fingerprint import (
    COMPILER_VERSIONS,
    CompileRequest,
    canonical_flags,
    fingerprint_parts,
    fingerprint_request,
)
from .metrics import ServiceMetrics, percentile
from .resilience import (
    DEFAULT_FALLBACKS,
    CircuitBreaker,
    Clock,
    RetryPolicy,
    SimClock,
    SweepJournal,
    SystemClock,
)
from .scheduler import (
    CompileService,
    JobError,
    configure_default_service,
    get_default_service,
    reset_default_service,
)

__all__ = [
    "ArtifactCache",
    "COMPILER_VERSIONS",
    "CacheDirError",
    "CacheStats",
    "ShardedArtifactCache",
    "ensure_writable_dir",
    "shard_prefix",
    "CircuitBreaker",
    "Clock",
    "CompileRequest",
    "CompileService",
    "DEFAULT_FALLBACKS",
    "JobError",
    "MISS",
    "RetryPolicy",
    "ServiceMetrics",
    "SimClock",
    "SweepJournal",
    "SystemClock",
    "canonical_flags",
    "configure_default_service",
    "fingerprint_parts",
    "fingerprint_request",
    "get_default_service",
    "percentile",
    "reset_default_service",
]
