"""Two-tier content-addressed artifact cache.

Tier 1 is an in-process LRU bounded by ``max_entries``; tier 2 is an
optional on-disk store (one pickle per fingerprint under ``cache_dir``)
that survives the process and is shared between runs — the warm-sweep
path of the Fig. 4 heat maps and the auto-tuner.

The cache must be an *invisible* optimization: ``get`` and ``put`` both
deep-copy, so no two callers ever alias the same artifact object, and a
cache hit is observationally identical to a fresh compile (byte-identical
PTX, identical instruction counters).  Failures are cacheable too — the
compiler models are deterministic, so a module PGI rejects today it will
reject tomorrow; the scheduler stores a marker and replays the error.

All operations are thread-safe (the scheduler's worker pool shares one
cache).
"""

from __future__ import annotations

import copy
import os
import pickle
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

#: returned by :meth:`ArtifactCache.get` on a miss (``None`` is a valid
#: cached value in principle, so a dedicated sentinel keeps it unambiguous)
MISS = object()


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one cache instance."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    evictions: int = 0
    stores: int = 0
    disk_stores: int = 0
    #: ``put`` calls for a fingerprint that was already stored — e.g. a
    #: timed-out worker's discarded result landing after a retry or a
    #: hedge already published the artifact.  Skipped, never re-written.
    redundant_stores: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    def snapshot(self) -> dict[str, int | float]:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "stores": self.stores,
            "disk_stores": self.disk_stores,
            "redundant_stores": self.redundant_stores,
            "hit_rate": self.hit_rate,
        }

    def publish(self, registry, prefix: str = "cache") -> None:
        """Publish the tier counters into a
        :class:`repro.telemetry.MetricsRegistry` (gauges: idempotent)."""
        for name, value in self.snapshot().items():
            registry.gauge(f"{prefix}.{name}").set(float(value))


@dataclass
class ArtifactCache:
    """LRU memory tier + optional pickle-per-fingerprint disk tier."""

    max_entries: int = 512
    cache_dir: str | os.PathLike[str] | None = None
    #: deep-copy artifacts on the way in and out so cached state can never
    #: be mutated through an alias; disable only for frozen artifacts.
    copy_on_hit: bool = True
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        if self.max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self._lock = threading.RLock()
        self._entries: OrderedDict[str, Any] = OrderedDict()
        if self.cache_dir is not None:
            self.cache_dir = Path(self.cache_dir)
            try:
                self.cache_dir.mkdir(parents=True, exist_ok=True)
            except FileExistsError:
                raise NotADirectoryError(
                    f"cache dir {self.cache_dir} exists and is not a directory"
                ) from None

    # -- lookup ---------------------------------------------------------------

    def get(self, fingerprint: str) -> Any:
        """The artifact stored under *fingerprint*, or :data:`MISS`."""
        with self._lock:
            if fingerprint in self._entries:
                self._entries.move_to_end(fingerprint)
                self.stats.memory_hits += 1
                return self._out(self._entries[fingerprint])
            artifact = self._disk_load(fingerprint)
            if artifact is not MISS:
                self.stats.disk_hits += 1
                self._install(fingerprint, artifact)
                return self._out(artifact)
            self.stats.misses += 1
            return MISS

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            return (
                fingerprint in self._entries
                or self._disk_path(fingerprint) is not None
                and self._disk_path(fingerprint).exists()  # type: ignore[union-attr]
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # -- store ----------------------------------------------------------------

    def put(self, fingerprint: str, artifact: Any) -> None:
        """Store *artifact* in both tiers under *fingerprint*.

        Idempotent per fingerprint: a second ``put`` for a stored key is
        a counted no-op (``stats.redundant_stores``).  The compilers are
        content-addressed pure functions, so a repeat store can only be
        a *discarded duplicate* — a timed-out worker finishing after its
        result was abandoned, or the losing side of a hedged pair — and
        must not double-count stores or re-write the disk tier.
        """
        with self._lock:
            if fingerprint in self._entries:
                self.stats.redundant_stores += 1
                return
            self.stats.stores += 1
            self._install(fingerprint, self._in(artifact))
            disk = self._disk_path(fingerprint)
            if disk is not None and disk.exists():
                self.stats.redundant_stores += 1
                return
            self._disk_store(fingerprint, artifact)

    def clear(self, memory_only: bool = True) -> None:
        """Drop the memory tier (and the disk tier if asked)."""
        with self._lock:
            self._entries.clear()
            if not memory_only and self.cache_dir is not None:
                for path in Path(self.cache_dir).glob("*.pkl"):
                    path.unlink(missing_ok=True)

    # -- internals -------------------------------------------------------------

    def _out(self, artifact: Any) -> Any:
        return copy.deepcopy(artifact) if self.copy_on_hit else artifact

    def _in(self, artifact: Any) -> Any:
        return copy.deepcopy(artifact) if self.copy_on_hit else artifact

    def _install(self, fingerprint: str, artifact: Any) -> None:
        self._entries[fingerprint] = artifact
        self._entries.move_to_end(fingerprint)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def _disk_path(self, fingerprint: str) -> Path | None:
        if self.cache_dir is None:
            return None
        return Path(self.cache_dir) / f"{fingerprint}.pkl"

    def _disk_load(self, fingerprint: str) -> Any:
        path = self._disk_path(fingerprint)
        if path is None or not path.exists():
            return MISS
        try:
            with path.open("rb") as fh:
                return pickle.load(fh)
        except Exception:
            # a truncated/corrupt entry is a miss, not an error;
            # drop it so the fresh artifact replaces it
            path.unlink(missing_ok=True)
            return MISS

    def _disk_store(self, fingerprint: str, artifact: Any) -> None:
        path = self._disk_path(fingerprint)
        if path is None:
            return
        tmp = path.with_suffix(f".tmp.{os.getpid()}.{threading.get_ident()}")
        try:
            with tmp.open("wb") as fh:
                pickle.dump(artifact, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)  # atomic publish: readers never see partial
            self.stats.disk_stores += 1
        except Exception:
            tmp.unlink(missing_ok=True)  # disk tier is best-effort
