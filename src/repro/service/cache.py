"""Content-addressed artifact caches: two-tier, and hash-prefix sharded.

Tier 1 is an in-process LRU bounded by ``max_entries``; tier 2 is an
optional on-disk store (one pickle per fingerprint under ``cache_dir``)
that survives the process and is shared between runs — the warm-sweep
path of the Fig. 4 heat maps and the auto-tuner.

The cache must be an *invisible* optimization: ``get`` and ``put`` both
deep-copy, so no two callers ever alias the same artifact object, and a
cache hit is observationally identical to a fresh compile (byte-identical
PTX, identical instruction counters).  Failures are cacheable too — the
compiler models are deterministic, so a module PGI rejects today it will
reject tomorrow; the scheduler stores a marker and replays the error.

All operations are thread-safe (the scheduler's worker pool and the
``repro serve`` daemon's connection handlers share one cache).  The lock
guards only *index* mutation — never file I/O: a multi-megabyte pickle
landing on a slow disk must not stall every other client's lookups.
Disk publishes are atomic (``os.replace``), so lock-free readers never
observe a partial entry.

Two implementations share the contract:

* :class:`ArtifactCache` — one LRU + one flat directory; the in-process
  default.
* :class:`ShardedArtifactCache` — N independent shards selected by the
  fingerprint's hash prefix, each with its own lock, LRU slice, and
  ``cache_dir/<prefix>/`` subdirectory.  Concurrent clients touching
  different fingerprints contend on nothing; the ``repro serve`` daemon
  default.

Both accept ``peer_dirs``: read-only sibling stores (another daemon's
cache directory, a shared warm seed) consulted on a local disk miss and
copied through on a hit — the read-through peer mode of docs/SERVER.md.
"""

from __future__ import annotations

import copy
import hashlib
import os
import pickle
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

#: returned by :meth:`ArtifactCache.get` on a miss (``None`` is a valid
#: cached value in principle, so a dedicated sentinel keeps it unambiguous)
MISS = object()

#: shard prefixes are the first ``_PREFIX_LEN`` hex chars of the
#: fingerprint (fingerprints are SHA-256 hex digests)
_PREFIX_LEN = 2


class CacheDirError(NotADirectoryError):
    """A cache directory that cannot be used: the path is occupied by a
    file, cannot be created, or is not writable.  Raised *eagerly* at
    cache construction so a CLI ``--cache-dir`` mistake is one clear
    usage error (exit 2), not a traceback mid-sweep."""


def ensure_writable_dir(path: str | os.PathLike[str]) -> Path:
    """Create *path* (and parents) and prove it is a writable directory.

    The probe actually creates and removes a file: permission bits are
    not trustworthy (root ignores them; network mounts lie), so the only
    honest check is the write itself.
    """
    directory = Path(path)
    try:
        directory.mkdir(parents=True, exist_ok=True)
    except (FileExistsError, NotADirectoryError):
        raise CacheDirError(
            f"cache dir {directory} exists and is not a directory"
        ) from None
    except OSError as exc:
        raise CacheDirError(f"cannot create cache dir {directory}: {exc}") \
            from None
    probe = directory / f".probe.{os.getpid()}.{threading.get_ident()}"
    try:
        probe.touch()
        probe.unlink()
    except OSError as exc:
        raise CacheDirError(
            f"cache dir {directory} is not writable: {exc}"
        ) from None
    return directory


def shard_prefix(fingerprint: str) -> str:
    """The hash-prefix shard key of a fingerprint.

    Fingerprints are SHA-256 hex digests, so the first two characters
    *are* a uniform hash prefix; any other key (tests, ad-hoc callers)
    is first hashed to keep the distribution uniform.
    """
    prefix = fingerprint[:_PREFIX_LEN].lower()
    if len(prefix) == _PREFIX_LEN and all(c in "0123456789abcdef"
                                          for c in prefix):
        return prefix
    return hashlib.sha256(fingerprint.encode("utf-8")).hexdigest()[:_PREFIX_LEN]


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one cache instance."""

    memory_hits: int = 0
    disk_hits: int = 0
    #: read-through hits served from a peer directory (and copied into
    #: the local disk tier)
    peer_hits: int = 0
    misses: int = 0
    evictions: int = 0
    stores: int = 0
    disk_stores: int = 0
    #: ``put`` calls for a fingerprint that was already stored — e.g. a
    #: timed-out worker's discarded result landing after a retry or a
    #: hedge already published the artifact.  Skipped, never re-written.
    redundant_stores: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits + self.peer_hits

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    def snapshot(self) -> dict[str, int | float]:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "peer_hits": self.peer_hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "stores": self.stores,
            "disk_stores": self.disk_stores,
            "redundant_stores": self.redundant_stores,
            "hit_rate": self.hit_rate,
        }

    def add(self, other: "CacheStats") -> None:
        """Accumulate *other*'s counters (shard aggregation)."""
        self.memory_hits += other.memory_hits
        self.disk_hits += other.disk_hits
        self.peer_hits += other.peer_hits
        self.misses += other.misses
        self.evictions += other.evictions
        self.stores += other.stores
        self.disk_stores += other.disk_stores
        self.redundant_stores += other.redundant_stores

    def publish(self, registry, prefix: str = "cache") -> None:
        """Publish the tier counters into a
        :class:`repro.telemetry.MetricsRegistry` (gauges: idempotent)."""
        for name, value in self.snapshot().items():
            registry.gauge(f"{prefix}.{name}").set(float(value))


@dataclass
class ArtifactCache:
    """LRU memory tier + optional pickle-per-fingerprint disk tier."""

    max_entries: int = 512
    cache_dir: str | os.PathLike[str] | None = None
    #: read-only sibling stores consulted on a local disk miss; a hit is
    #: copied through into the local tiers (never written back)
    peer_dirs: tuple[str | os.PathLike[str], ...] = ()
    #: deep-copy artifacts on the way in and out so cached state can never
    #: be mutated through an alias; disable only for frozen artifacts.
    copy_on_hit: bool = True
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        if self.max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self._lock = threading.RLock()
        self._entries: OrderedDict[str, Any] = OrderedDict()
        if self.cache_dir is not None:
            self.cache_dir = ensure_writable_dir(self.cache_dir)
        self.peer_dirs = tuple(Path(p) for p in self.peer_dirs)

    # -- lookup ---------------------------------------------------------------

    def get(self, fingerprint: str) -> Any:
        """The artifact stored under *fingerprint*, or :data:`MISS`."""
        with self._lock:
            if fingerprint in self._entries:
                self._entries.move_to_end(fingerprint)
                self.stats.memory_hits += 1
                return self._out(self._entries[fingerprint])
        # the slow tiers run unlocked: unpickling a large artifact (or a
        # peer NFS read) must not stall other fingerprints' lookups
        artifact = self._disk_load(fingerprint)
        if artifact is not MISS:
            with self._lock:
                self.stats.disk_hits += 1
                self._install(fingerprint, artifact)
                return self._out(artifact)
        artifact = self._peer_load(fingerprint)
        if artifact is not MISS:
            self._disk_store(fingerprint, artifact, count=False)  # copy through
            with self._lock:
                self.stats.peer_hits += 1
                self._install(fingerprint, artifact)
                return self._out(artifact)
        with self._lock:
            self.stats.misses += 1
        return MISS

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            if fingerprint in self._entries:
                return True
        disk = self._disk_path(fingerprint)
        if disk is not None and disk.exists():
            return True
        return any(path.exists() for path in self._peer_paths(fingerprint))

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # -- store ----------------------------------------------------------------

    def put(self, fingerprint: str, artifact: Any) -> None:
        """Store *artifact* in both tiers under *fingerprint*.

        Idempotent per fingerprint: a second ``put`` for a stored key is
        a counted no-op (``stats.redundant_stores``).  The compilers are
        content-addressed pure functions, so a repeat store can only be
        a *discarded duplicate* — a timed-out worker finishing after its
        result was abandoned, or the losing side of a hedged pair — and
        must not double-count stores or re-write the disk tier.
        """
        with self._lock:
            if fingerprint in self._entries:
                self.stats.redundant_stores += 1
                return
            self.stats.stores += 1
            self._install(fingerprint, self._in(artifact))
        disk = self._disk_path(fingerprint)
        if disk is None:
            return
        if disk.exists():
            with self._lock:
                self.stats.redundant_stores += 1
            return
        self._disk_store(fingerprint, artifact)

    def clear(self, memory_only: bool = True) -> None:
        """Drop the memory tier (and the disk tier if asked)."""
        with self._lock:
            self._entries.clear()
        if not memory_only and self.cache_dir is not None:
            for path in Path(self.cache_dir).glob("*.pkl"):
                path.unlink(missing_ok=True)

    # -- internals -------------------------------------------------------------

    def _out(self, artifact: Any) -> Any:
        return copy.deepcopy(artifact) if self.copy_on_hit else artifact

    def _in(self, artifact: Any) -> Any:
        return copy.deepcopy(artifact) if self.copy_on_hit else artifact

    def _install(self, fingerprint: str, artifact: Any) -> None:
        self._entries[fingerprint] = artifact
        self._entries.move_to_end(fingerprint)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def _disk_path(self, fingerprint: str) -> Path | None:
        if self.cache_dir is None:
            return None
        return Path(self.cache_dir) / f"{fingerprint}.pkl"

    def _peer_paths(self, fingerprint: str) -> Iterable[Path]:
        for peer in self.peer_dirs:
            yield Path(peer) / f"{fingerprint}.pkl"

    def _disk_load(self, fingerprint: str) -> Any:
        path = self._disk_path(fingerprint)
        if path is None or not path.exists():
            return MISS
        try:
            with path.open("rb") as fh:
                return pickle.load(fh)
        except Exception:
            # a truncated/corrupt entry is a miss, not an error;
            # drop it so the fresh artifact replaces it
            path.unlink(missing_ok=True)
            return MISS

    def _peer_load(self, fingerprint: str) -> Any:
        for path in self._peer_paths(fingerprint):
            if not path.exists():
                continue
            try:
                with path.open("rb") as fh:
                    return pickle.load(fh)
            except Exception:
                continue  # peers are read-only: never delete their entries
        return MISS

    def _disk_store(self, fingerprint: str, artifact: Any,
                    count: bool = True) -> None:
        path = self._disk_path(fingerprint)
        if path is None:
            return
        tmp = path.with_suffix(f".tmp.{os.getpid()}.{threading.get_ident()}")
        try:
            with tmp.open("wb") as fh:
                pickle.dump(artifact, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)  # atomic publish: readers never see partial
            if count:
                with self._lock:
                    self.stats.disk_stores += 1
        except Exception:
            tmp.unlink(missing_ok=True)  # disk tier is best-effort


class ShardedArtifactCache:
    """N independent :class:`ArtifactCache` shards keyed by fingerprint
    hash prefix.

    Each shard owns its own lock, its own LRU slice
    (``max_entries / shards``, at least 1), and — with a ``cache_dir`` —
    its own ``cache_dir/<prefix>/`` subdirectory, so two clients hitting
    different fingerprints never touch the same lock and never serialize
    on each other's disk I/O.  Peer directories are expected to use the
    same sharded layout (i.e. to be another instance's ``cache_dir``).
    """

    def __init__(
        self,
        shards: int = 16,
        max_entries: int = 512,
        cache_dir: str | os.PathLike[str] | None = None,
        peer_dirs: tuple[str | os.PathLike[str], ...] = (),
        copy_on_hit: bool = True,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.shards = shards
        self.cache_dir = (
            ensure_writable_dir(cache_dir) if cache_dir is not None else None
        )
        self.peer_dirs = tuple(Path(p) for p in peer_dirs)
        per_shard = max(1, (max_entries + shards - 1) // shards)
        self._shards: list[ArtifactCache] = []
        for index in range(shards):
            self._shards.append(
                ArtifactCache(
                    max_entries=per_shard,
                    cache_dir=self._bucket_dir(self.cache_dir, index),
                    peer_dirs=tuple(
                        p for p in (self._bucket_dir(peer, index)
                                    for peer in self.peer_dirs)
                        if p is not None
                    ),
                    copy_on_hit=copy_on_hit,
                )
            )

    def _bucket_dir(self, root: Path | None, index: int) -> Path | None:
        if root is None:
            return None
        return Path(root) / f"shard-{index:02x}"

    def shard_for(self, fingerprint: str) -> ArtifactCache:
        """The shard owning *fingerprint* (hash-prefix selection)."""
        return self._shards[int(shard_prefix(fingerprint), 16) % self.shards]

    # -- the ArtifactCache contract --------------------------------------------

    def get(self, fingerprint: str) -> Any:
        return self.shard_for(fingerprint).get(fingerprint)

    def put(self, fingerprint: str, artifact: Any) -> None:
        self.shard_for(fingerprint).put(fingerprint, artifact)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self.shard_for(fingerprint)

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def clear(self, memory_only: bool = True) -> None:
        for shard in self._shards:
            shard.clear(memory_only=memory_only)

    @property
    def stats(self) -> CacheStats:
        """Aggregated counters across every shard (a fresh snapshot
        object: mutating it does not touch any shard)."""
        merged = CacheStats()
        for shard in self._shards:
            merged.add(shard.stats)
        return merged

    def shard_snapshot(self) -> list[dict[str, int | float]]:
        """Per-shard counter snapshots (the server's stats endpoint)."""
        return [shard.stats.snapshot() for shard in self._shards]
