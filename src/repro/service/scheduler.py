"""The compile service: batch scheduling over the cached compiler models.

``CompileService`` is the front door of the service layer.  One instance
owns an :class:`ArtifactCache`, a :class:`ServiceMetrics`, and (when
``jobs > 1``) a ``concurrent.futures`` thread pool:

* :meth:`compile` — synchronous single compile, cache-checked; the
  drop-in replacement for :func:`repro.core.method.compile_stage`.
* :meth:`submit` — asynchronous compile returning a ``Future``;
  identical in-flight requests (same fingerprint) are deduplicated onto
  one future.
* :meth:`compile_many` — strict batch: results in request order, the
  first failure propagates.
* :meth:`sweep` — fault-tolerant batch for parameter sweeps: a failed
  point yields a structured :class:`JobError` in its slot and the rest
  of the sweep completes.

Determinism contract: the compiler models are pure functions of the
fingerprinted inputs, requests are materialized by the *caller* in a
fixed order (IR loop ids are allocated before submission), and results
are returned in request order — so a ``jobs=4`` sweep is byte-identical
to a serial one, and a warm-cache sweep to a cold one.

Per-job timeouts are enforced at the gather point for pooled execution
(``jobs > 1``); a timed-out point becomes a ``JobError(kind="timeout")``
without killing the sweep (the worker thread is left to finish and its
result is discarded).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from ..compilers.flags import FlagSet
from ..devices.specs import DeviceSpec
from ..ir.stmt import Module
from ..telemetry.registry import MetricsRegistry
from ..telemetry.spans import get_tracer
from .cache import MISS, ArtifactCache
from .fingerprint import CompileRequest
from .metrics import ServiceMetrics


class JobError(Exception):
    """A structured per-point failure: a sweep slot, never a crash."""

    def __init__(self, label: str, fingerprint: str, kind: str,
                 message: str, seconds: float = 0.0) -> None:
        super().__init__(message)
        self.label = label
        self.fingerprint = fingerprint
        self.kind = kind  # "compile-error" | "timeout" | "error"
        self.message = message
        self.seconds = seconds

    def __str__(self) -> str:
        tag = f" [{self.label}]" if self.label else ""
        return f"{self.kind}{tag}: {self.message}"

    def __reduce__(self):
        # Exception.__reduce__ would replay only ``args`` (the message),
        # which breaks the 5-argument constructor; spell the constructor
        # arguments out so a JobError survives the disk cache tier.
        return (
            JobError,
            (self.label, self.fingerprint, self.kind, self.message,
             self.seconds),
        )


@dataclass
class _CachedFailure:
    """Marker artifact for a deterministic compile failure (so warm
    sweeps replay the error without recompiling)."""

    error: Exception


def _default_compile_fn(request: CompileRequest) -> Any:
    # imported lazily: core.method sits above the compilers but below the
    # sweep drivers, and importing it at module scope would cycle through
    # repro.core.__init__ -> search/autotune -> repro.service
    from ..core.method import compile_stage

    return compile_stage(request.module, request.compiler, request.target,
                         request.flags)


class CompileService:
    """Content-addressed, deduplicating, pool-backed compilation."""

    def __init__(
        self,
        cache: ArtifactCache | None = None,
        jobs: int = 1,
        timeout_s: float | None = None,
        metrics: ServiceMetrics | None = None,
        compile_fn: Callable[[CompileRequest], Any] | None = None,
    ) -> None:
        self.cache = cache if cache is not None else ArtifactCache()
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.jobs = max(1, int(jobs))
        self.timeout_s = timeout_s
        self._compile_fn = compile_fn or _default_compile_fn
        self._pool: ThreadPoolExecutor | None = None
        self._inflight: dict[str, Future] = {}
        self._lock = threading.Lock()

    # -- single compiles -------------------------------------------------------

    def compile(
        self,
        module: Module,
        compiler: str,
        target: str,
        flags: FlagSet | None = None,
        device: DeviceSpec | None = None,
        label: str = "",
    ) -> Any:
        """Cache-checked synchronous compile (raises on compiler error,
        exactly like :func:`repro.core.method.compile_stage`)."""
        return self.compile_request(
            CompileRequest(module, compiler, target, flags, device, label)
        )

    def compile_request(self, request: CompileRequest) -> Any:
        fingerprint = request.fingerprint
        self.metrics.record_request()
        with get_tracer().span(
            "service.compile", category="service",
            label=request.label or request.module.name,
            compiler=request.compiler, target=request.target,
            fingerprint=fingerprint[:12],
        ) as span:
            cached = self.cache.get(fingerprint)
            if cached is not MISS:
                self.metrics.record_cache_hit(fingerprint)
                span.set(cache="hit")
                if isinstance(cached, _CachedFailure):
                    raise cached.error
                return cached
            span.set(cache="miss")
            start = time.perf_counter()
            try:
                artifact = self._compile_fn(request)
            except Exception as exc:
                seconds = time.perf_counter() - start
                self.cache.put(fingerprint, _CachedFailure(exc))
                self.metrics.record_compile(fingerprint, seconds, failed=True)
                raise
            seconds = time.perf_counter() - start
            self.cache.put(fingerprint, artifact)
            self.metrics.record_compile(fingerprint, seconds)
            return artifact

    # -- batch API -------------------------------------------------------------

    def submit(self, request: CompileRequest) -> Future:
        """Schedule one request; identical in-flight requests share one
        future (and one compile)."""
        tracer = get_tracer()
        fingerprint = request.fingerprint
        with self._lock:
            existing = self._inflight.get(fingerprint)
            if existing is not None and not existing.done():
                self.metrics.record_dedup_hit()
                if tracer.enabled:
                    tracer.record_span(
                        "service.dedup", 0.0, category="service",
                        label=request.label or request.module.name,
                        fingerprint=fingerprint[:12],
                    )
                return existing
            future: Future = Future()
            self._inflight[fingerprint] = future
        # the job span must parent under the *submitting* thread's span
        # (e.g. service.sweep) even when it runs on a pool thread, where
        # contextvars do not propagate — capture the parent here
        parent = tracer.capture()
        queued_at = tracer.now_s() if tracer.enabled else 0.0
        if self.jobs == 1:
            self._run_job(request, future, parent, queued_at)
        else:
            self._ensure_pool().submit(
                self._run_job, request, future, parent, queued_at
            )
        return future

    def compile_many(self, requests: Sequence[CompileRequest]) -> list[Any]:
        """Compile a batch; results in request order; first failure raises."""
        with get_tracer().span(
            "service.batch", category="service",
            points=len(requests), jobs=self.jobs,
        ):
            futures = [self.submit(request) for request in requests]
            results: list[Any] = []
            for request, future in zip(requests, futures):
                results.append(self._gather(request, future, strict=True))
            return results

    def sweep(self, requests: Iterable[CompileRequest]
              ) -> list[Any]:
        """Fault-tolerant batch: each slot is an artifact or a
        :class:`JobError`; a bad point never kills the sweep."""
        materialized = list(requests)
        with get_tracer().span(
            "service.sweep", category="service",
            points=len(materialized), jobs=self.jobs,
        ):
            return self._sweep(materialized)

    def _sweep(self, materialized: list[CompileRequest]) -> list[Any]:
        futures = [self.submit(request) for request in materialized]
        results: list[Any] = []
        for request, future in zip(materialized, futures):
            try:
                results.append(self._gather(request, future, strict=True))
            except JobError as err:
                results.append(err)
            except Exception as exc:  # compiler error captured in-slot
                results.append(
                    JobError(
                        request.label or request.module.name,
                        request.fingerprint,
                        "compile-error",
                        str(exc),
                    )
                )
        return results

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "CompileService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def report_lines(self) -> list[str]:
        """Service metrics + cache-tier counters (profiler section)."""
        stats = self.cache.stats
        return self.metrics.report_lines() + [
            (
                f"cache: {stats.memory_hits} memory hits, "
                f"{stats.disk_hits} disk hits, {stats.misses} misses, "
                f"{stats.evictions} evictions "
                f"({len(self.cache)} resident entries)"
            ),
        ]

    def publish(self, registry: MetricsRegistry) -> None:
        """Publish service metrics and cache-tier counters into the
        unified telemetry registry (one call covers both)."""
        self.metrics.publish(registry, prefix="service")
        self.cache.stats.publish(registry, prefix="cache")

    # -- internals -------------------------------------------------------------

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.jobs, thread_name_prefix="repro-compile"
            )
        return self._pool

    def _run_job(self, request: CompileRequest, future: Future,
                 parent=None, queued_at: float = 0.0) -> None:
        tracer = get_tracer()
        with tracer.span(
            "service.job", category="service", parent=parent,
            label=request.label or request.module.name,
        ) as span:
            if tracer.enabled:
                # queue wait: submit() stamped the enqueue time
                span.set(queued_s=max(tracer.now_s() - queued_at, 0.0))
            try:
                result = self.compile_request(request)
            except Exception as exc:
                span.set(status="error")
                future.set_exception(exc)
            else:
                span.set(status="done")
                future.set_result(result)
            finally:
                with self._lock:
                    if self._inflight.get(request.fingerprint) is future:
                        del self._inflight[request.fingerprint]

    def _gather(self, request: CompileRequest, future: Future,
                strict: bool) -> Any:
        try:
            return future.result(timeout=self.timeout_s)
        except FutureTimeoutError:
            self.metrics.record_timeout()
            raise JobError(
                request.label or request.module.name,
                request.fingerprint,
                "timeout",
                f"compile exceeded {self.timeout_s:g}s",
                self.timeout_s or 0.0,
            ) from None


# -- process-wide default service ---------------------------------------------

_default_service: CompileService | None = None
_default_lock = threading.Lock()


def get_default_service() -> CompileService:
    """The process-wide service the experiment drivers share (memory-tier
    cache only, serial execution) — configurable via
    :func:`configure_default_service` (the CLI's ``--jobs/--cache-dir``)."""
    global _default_service
    with _default_lock:
        if _default_service is None:
            _default_service = CompileService()
        return _default_service


def configure_default_service(
    jobs: int = 1,
    cache_dir: str | None = None,
    max_entries: int = 512,
    timeout_s: float | None = None,
) -> CompileService:
    """Replace the process-wide default service (returns the new one)."""
    global _default_service
    with _default_lock:
        old = _default_service
        _default_service = CompileService(
            cache=ArtifactCache(max_entries=max_entries, cache_dir=cache_dir),
            jobs=jobs,
            timeout_s=timeout_s,
        )
    if old is not None:
        old.close()
    return _default_service


def reset_default_service() -> None:
    """Drop the process-wide default service (tests)."""
    global _default_service
    with _default_lock:
        old, _default_service = _default_service, None
    if old is not None:
        old.close()
