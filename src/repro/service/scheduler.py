"""The compile service: batch scheduling over the cached compiler models.

``CompileService`` is the front door of the service layer.  One instance
owns an :class:`ArtifactCache`, a :class:`ServiceMetrics`, and (when
``jobs > 1``) a ``concurrent.futures`` thread pool:

* :meth:`compile` — synchronous single compile, cache-checked; the
  drop-in replacement for :func:`repro.core.method.compile_stage`.
* :meth:`submit` — asynchronous compile returning a ``Future``;
  identical in-flight requests (same fingerprint) are deduplicated onto
  one future.
* :meth:`compile_many` — strict batch: results in request order, the
  first failure propagates.
* :meth:`sweep` — fault-tolerant batch for parameter sweeps: a failed
  point yields a structured :class:`JobError` in its slot and the rest
  of the sweep completes.

Resilience (docs/FAULTS.md): the service survives the compiler
fragility the paper documents — injected via :mod:`repro.faults` —
with four mechanisms, all off by default and all deterministic:

* **retry** (:class:`~repro.service.resilience.RetryPolicy`) —
  transient failures are re-attempted with exponential backoff and
  counter-hashed jitter, slept on an injectable
  :class:`~repro.service.resilience.Clock` (tests use ``SimClock``;
  ``time.sleep`` never runs under test);
* **circuit breaker**
  (:class:`~repro.service.resilience.CircuitBreaker`) — per
  (compiler, target) consecutive-failure breaker advanced in *gather
  order*; once open, failed sweep points degrade to the route's
  fallback (CAPS/OpenCL -> CAPS/CUDA), marked ``degraded=True`` on the
  artifact — never silent;
* **hedging** (``hedge_after_s``) — a sweep point still unfinished
  after the hedge delay is duplicated inline; first result wins (the
  compilers are pure, so either copy is byte-identical);
* **checkpoint/resume**
  (:class:`~repro.service.resilience.SweepJournal`) — completed sweep
  points append to a JSONL journal; a resumed sweep skips journaled
  fingerprints and equals an uninterrupted one byte for byte.

Determinism contract: the compiler models are pure functions of the
fingerprinted inputs, requests are materialized by the *caller* in a
fixed order (IR loop ids are allocated before submission), results are
returned in request order, and every fault/retry/breaker decision is a
counter-based hash of (seed, fingerprint, attempt) — so a ``jobs=4``
sweep is byte-identical to a serial one, a warm-cache sweep to a cold
one, and a faulted sweep to a re-run under the same plan.

Per-job timeouts are enforced at the gather point for pooled execution
(``jobs > 1``); a timed-out point becomes a ``JobError(kind="timeout")``
without killing the sweep.  The abandoned worker thread is left to
finish; its discarded result's cache write is idempotent
(:meth:`ArtifactCache.put` skips already-stored fingerprints) so a
late-landing duplicate can never double-count stores or re-write the
disk tier.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from ..compilers.flags import FlagSet
from ..devices.specs import DeviceSpec
from ..faults.adapter import FaultyCacheAdapter, FaultyCompilerAdapter
from ..faults.plan import FaultPlan, is_injected_fault, is_transient
from ..ir.stmt import Module
from ..telemetry.registry import MetricsRegistry
from ..telemetry.spans import get_tracer
from .cache import MISS, ArtifactCache
from .fingerprint import CompileRequest
from .metrics import ServiceMetrics
from .resilience import (
    CircuitBreaker,
    Clock,
    RetryPolicy,
    SweepJournal,
    SystemClock,
)

#: hedge attempts draw faults from a disjoint attempt range, so a hedge
#: is a genuinely independent replica (it does not replay the straggling
#: primary's injected fault)
_HEDGE_ATTEMPT_BASE = 1 << 20


class JobError(Exception):
    """A structured per-point failure: a sweep slot, never a crash."""

    def __init__(self, label: str, fingerprint: str, kind: str,
                 message: str, seconds: float = 0.0) -> None:
        super().__init__(message)
        self.label = label
        self.fingerprint = fingerprint
        self.kind = kind  # "compile-error" | "timeout" | "fault" | "error"
        self.message = message
        self.seconds = seconds

    def __str__(self) -> str:
        tag = f" [{self.label}]" if self.label else ""
        return f"{self.kind}{tag}: {self.message}"

    def __reduce__(self):
        # Exception.__reduce__ would replay only ``args`` (the message),
        # which breaks the 5-argument constructor; spell the constructor
        # arguments out so a JobError survives the disk cache tier.
        return (
            JobError,
            (self.label, self.fingerprint, self.kind, self.message,
             self.seconds),
        )


@dataclass
class _CachedFailure:
    """Marker artifact for a deterministic compile failure (so warm
    sweeps replay the error without recompiling).  Injected faults are
    *never* cached — they belong to a fault plan, not to the request."""

    error: Exception


def _default_compile_fn(request: CompileRequest) -> Any:
    # imported lazily: core.method sits above the compilers but below the
    # sweep drivers, and importing it at module scope would cycle through
    # repro.core.__init__ -> search/autotune -> repro.service
    from ..core.method import compile_stage

    return compile_stage(request.module, request.compiler, request.target,
                         request.flags)


class CompileService:
    """Content-addressed, deduplicating, pool-backed, fault-resilient
    compilation."""

    def __init__(
        self,
        cache: ArtifactCache | None = None,
        jobs: int = 1,
        timeout_s: float | None = None,
        metrics: ServiceMetrics | None = None,
        compile_fn: Callable[[CompileRequest], Any] | None = None,
        retry: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        hedge_after_s: float | None = None,
        fault_plan: FaultPlan | None = None,
        clock: Clock | None = None,
        journal: SweepJournal | None = None,
    ) -> None:
        self.cache: Any = cache if cache is not None else ArtifactCache()
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.jobs = max(1, int(jobs))
        self.timeout_s = timeout_s
        self.retry = retry
        self.breaker = breaker
        self.hedge_after_s = hedge_after_s
        self.fault_plan = fault_plan
        self.clock = clock if clock is not None else SystemClock()
        self.journal = journal
        self._compile_fn = compile_fn or _default_compile_fn
        self._adapter: FaultyCompilerAdapter | None = None
        if fault_plan is not None:
            self._adapter = FaultyCompilerAdapter(
                self._compile_fn, fault_plan, clock=self.clock
            )
            self.cache = FaultyCacheAdapter(self.cache, fault_plan)
        self._pool: ThreadPoolExecutor | None = None
        self._inflight: dict[str, Future] = {}
        self._lock = threading.Lock()

    # -- single compiles -------------------------------------------------------

    def compile(
        self,
        module: Module,
        compiler: str,
        target: str,
        flags: FlagSet | None = None,
        device: DeviceSpec | None = None,
        label: str = "",
    ) -> Any:
        """Cache-checked synchronous compile (raises on compiler error,
        exactly like :func:`repro.core.method.compile_stage`)."""
        return self.compile_request(
            CompileRequest(module, compiler, target, flags, device, label)
        )

    def compile_request(self, request: CompileRequest) -> Any:
        return self._compile_request(request, attempt_base=0)

    def _compile_request(self, request: CompileRequest,
                         attempt_base: int = 0) -> Any:
        fingerprint = request.fingerprint
        self.metrics.record_request()
        tracer = get_tracer()
        with tracer.span(
            "service.compile", category="service",
            label=request.label or request.module.name,
            compiler=request.compiler, target=request.target,
            fingerprint=fingerprint[:12],
        ) as span:
            cached = self._cache_get(fingerprint)
            if cached is not MISS:
                self.metrics.record_cache_hit(fingerprint)
                span.set(cache="hit")
                if isinstance(cached, _CachedFailure):
                    raise cached.error
                return cached
            span.set(cache="miss")
            attempt = 0
            while True:
                start = time.perf_counter()
                try:
                    artifact, penalty_s = self._invoke_compile(
                        request, attempt_base + attempt
                    )
                except Exception as exc:
                    seconds = time.perf_counter() - start
                    injected = is_injected_fault(exc)
                    if injected:
                        self.metrics.record_fault()
                    if (
                        self.retry is not None
                        and is_transient(exc)
                        and attempt < self.retry.max_retries
                    ):
                        backoff = self.retry.backoff_s(fingerprint, attempt)
                        self.metrics.record_retry()
                        if tracer.enabled:
                            tracer.record_span(
                                "service.retry", backoff, category="service",
                                label=request.label or request.module.name,
                                attempt=attempt + 1,
                                error=f"{type(exc).__name__}: {exc}",
                            )
                        self.clock.sleep(backoff)
                        attempt += 1
                        continue
                    if not injected:
                        # deterministic compiler behaviour: cacheable.
                        # injected faults are plan state, never cached.
                        self._cache_put(fingerprint, _CachedFailure(exc))
                    self.metrics.record_compile(fingerprint, seconds,
                                                failed=True)
                    span.set(attempts=attempt + 1)
                    raise
                seconds = time.perf_counter() - start + penalty_s
                self._cache_put(fingerprint, artifact)
                self.metrics.record_compile(fingerprint, seconds)
                if attempt:
                    span.set(attempts=attempt + 1)
                return artifact

    def _invoke_compile(self, request: CompileRequest,
                        attempt: int) -> tuple[Any, float]:
        if self._adapter is not None:
            return self._adapter.compile(request, attempt)
        return self._compile_fn(request), 0.0

    # -- fault-tolerant cache access -------------------------------------------

    def _cache_get(self, fingerprint: str) -> Any:
        """A flaky cache read degrades to a miss (counted, traced)."""
        try:
            return self.cache.get(fingerprint)
        except Exception as exc:
            if not is_injected_fault(exc):
                raise
            self.metrics.record_fault(cache_io=True)
            return MISS

    def _cache_put(self, fingerprint: str, artifact: Any) -> None:
        """A flaky cache write degrades to a skipped store (the next
        identical request simply recompiles)."""
        try:
            self.cache.put(fingerprint, artifact)
        except Exception as exc:
            if not is_injected_fault(exc):
                raise
            self.metrics.record_fault(cache_io=True)

    # -- batch API -------------------------------------------------------------

    def submit(self, request: CompileRequest) -> Future:
        """Schedule one request; identical in-flight requests share one
        future (and one compile)."""
        tracer = get_tracer()
        fingerprint = request.fingerprint
        with self._lock:
            existing = self._inflight.get(fingerprint)
            if existing is not None and not existing.done():
                self.metrics.record_dedup_hit()
                if tracer.enabled:
                    tracer.record_span(
                        "service.dedup", 0.0, category="service",
                        label=request.label or request.module.name,
                        fingerprint=fingerprint[:12],
                    )
                return existing
            future: Future = Future()
            self._inflight[fingerprint] = future
        # the job span must parent under the *submitting* thread's span
        # (e.g. service.sweep) even when it runs on a pool thread, where
        # contextvars do not propagate — capture the parent here
        parent = tracer.capture()
        queued_at = tracer.now_s() if tracer.enabled else 0.0
        if self.jobs == 1:
            self._run_job(request, future, parent, queued_at)
        else:
            self._ensure_pool().submit(
                self._run_job, request, future, parent, queued_at
            )
        return future

    def compile_many(self, requests: Sequence[CompileRequest]) -> list[Any]:
        """Compile a batch; results in request order; first failure raises."""
        with get_tracer().span(
            "service.batch", category="service",
            points=len(requests), jobs=self.jobs,
        ):
            futures = [self.submit(request) for request in requests]
            results: list[Any] = []
            for request, future in zip(requests, futures):
                results.append(self._gather(request, future, strict=True))
            return results

    def sweep(self, requests: Iterable[CompileRequest],
              journal: SweepJournal | None = None) -> list[Any]:
        """Fault-tolerant batch: each slot is an artifact or a
        :class:`JobError`; a bad point never kills the sweep.

        With a *journal* (explicit, or the service-level default),
        completed points are checkpointed as they gather and journaled
        fingerprints from a previous run are skipped — the resume path.
        """
        materialized = list(requests)
        journal = journal if journal is not None else self.journal
        with get_tracer().span(
            "service.sweep", category="service",
            points=len(materialized), jobs=self.jobs,
            resumed=len(journal) if journal is not None else 0,
        ):
            return self._sweep(materialized, journal)

    def _sweep(self, materialized: list[CompileRequest],
               journal: SweepJournal | None = None) -> list[Any]:
        pending: dict[int, Future] = {}
        for index, request in enumerate(materialized):
            if (journal is not None
                    and journal.lookup(request.fingerprint) is not None):
                continue  # checkpointed by a previous run: replay at gather
            pending[index] = self.submit(request)
        results: list[Any] = []
        for index, request in enumerate(materialized):
            if index not in pending:
                results.append(self._replay_journal_entry(
                    request, journal.lookup(request.fingerprint)  # type: ignore[union-attr,arg-type]
                ))
                continue
            try:
                result = self._gather(request, pending[index], strict=True)
            except JobError as err:
                result = err
            except Exception as exc:  # compiler error captured in-slot
                result = JobError(
                    request.label or request.module.name,
                    request.fingerprint,
                    "fault" if is_injected_fault(exc) else "compile-error",
                    str(exc),
                )
            if self.breaker is not None:
                result = self._admit(request, result)
            if journal is not None:
                journal.record(request.fingerprint,
                               self._journal_entry(result))
            results.append(result)
        return results

    # -- circuit breaker -------------------------------------------------------

    def _admit(self, request: CompileRequest, result: Any) -> Any:
        """Advance the breaker with one gathered result; degrade a
        failure to the route's fallback while the breaker is open.

        Only *infrastructure* failures count: injected faults
        (``kind="fault"``) and timeouts.  A deterministic compiler
        refusal (``kind="compile-error"``) is data — PGI rejecting
        OpenCL will reject it forever, and papering over it with a
        fallback would corrupt the sweep's error accounting (the
        difftest relies on seeing expected refusals as refusals).
        """
        breaker = self.breaker
        assert breaker is not None
        key = breaker.key_for(request.compiler, request.target)
        failed = (isinstance(result, JobError)
                  and result.kind in ("fault", "timeout"))
        transition = breaker.on_result(key, failed)
        tracer = get_tracer()
        if transition is not None and tracer.enabled:
            tracer.record_span(
                "service.breaker", 0.0, category="service",
                key="-".join(key), transition=transition,
            )
        if not (failed and breaker.is_open(key)):
            return result
        fallback = breaker.fallback_for(*key)
        if fallback is None:
            return result
        fb_compiler, fb_target = fallback
        with tracer.span(
            "service.breaker", category="service",
            label=request.label or request.module.name,
            key="-".join(key), fallback=f"{fb_compiler}-{fb_target}",
        ) as span:
            fb_request = CompileRequest(
                request.module, fb_compiler, fb_target,
                request.flags, request.device, request.label,
            )
            try:
                artifact = self.compile_request(fb_request)
            except Exception as exc:
                span.set(status="fallback-failed")
                # graceful degradation failed too: surface the original
                # error, annotated with the fallback's
                result.message += (
                    f" (breaker fallback {fb_compiler}->{fb_target} "
                    f"also failed: {exc})"
                )
                return result
            span.set(status="degraded")
        self._mark_degraded(artifact, key, (fb_compiler, fb_target))
        self.metrics.record_degraded()
        return artifact

    def _mark_degraded(self, artifact: Any, original: tuple[str, str],
                       fallback: tuple[str, str]) -> None:
        """Surface a breaker fallback on the artifact itself (results
        are deep copies, so the cached pristine artifact is untouched)."""
        try:
            artifact.degraded = True
            artifact.degraded_from = "-".join(original)
            artifact.degraded_to = "-".join(fallback)
        except AttributeError:
            # artifacts without a __dict__ (e.g. test stubs returning
            # builtins) still surface degradation via metrics + journal
            pass

    # -- journal replay --------------------------------------------------------

    def _journal_entry(self, result: Any) -> dict[str, Any]:
        if isinstance(result, JobError):
            return {
                "status": "error", "kind": result.kind,
                "message": result.message, "label": result.label,
                "seconds": result.seconds,
            }
        if getattr(result, "degraded", False):
            compiler, _, target = result.degraded_to.partition("-")
            return {"status": "degraded", "compiler": compiler,
                    "target": target, "from": result.degraded_from}
        return {"status": "ok"}

    def _replay_journal_entry(self, request: CompileRequest,
                              entry: dict[str, Any]) -> Any:
        """Materialize a checkpointed slot byte-identically: errors are
        rebuilt field-for-field; artifacts re-materialize through the
        cache (free with a disk tier, a pure recompile otherwise)."""
        status = entry.get("status")
        if status == "error":
            return JobError(
                entry.get("label", request.label or request.module.name),
                request.fingerprint,
                entry.get("kind", "error"),
                entry.get("message", ""),
                float(entry.get("seconds", 0.0)),
            )
        if status == "degraded":
            original = entry.get(
                "from",
                "-".join((request.compiler.lower(), request.target.lower())),
            )
            fb_request = CompileRequest(
                request.module, entry["compiler"], entry["target"],
                request.flags, request.device, request.label,
            )
            artifact = self.compile_request(fb_request)
            compiler, _, target = original.partition("-")
            self._mark_degraded(artifact, (compiler, target),
                                (entry["compiler"], entry["target"]))
            return artifact
        return self.compile_request(request)

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self.journal is not None:
            self.journal.close()

    def __enter__(self) -> "CompileService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def report_lines(self) -> list[str]:
        """Service metrics + cache-tier counters (profiler section)."""
        stats = self.cache.stats
        lines = self.metrics.report_lines() + [
            (
                f"cache: {stats.memory_hits} memory hits, "
                f"{stats.disk_hits} disk hits, {stats.misses} misses, "
                f"{stats.evictions} evictions "
                f"({len(self.cache)} resident entries)"
            ),
        ]
        if self.breaker is not None:
            snap = self.breaker.snapshot()
            state = ", ".join(snap["open"]) if snap["open"] else "all closed"
            lines.append(
                f"breaker: {state} "
                f"({snap['trips']} trips, {snap['closes']} closes)"
            )
        return lines

    def inflight_count(self) -> int:
        """Requests currently being compiled (the server's status view)."""
        with self._lock:
            return sum(1 for f in self._inflight.values() if not f.done())

    def stats_snapshot(self) -> dict[str, Any]:
        """One structured snapshot of everything the service counts —
        the payload of the ``repro serve`` daemon's ``stats`` endpoint
        (and of anything else that wants machine-readable state without
        scraping :meth:`report_lines`)."""
        snap: dict[str, Any] = {
            "service": self.metrics.snapshot(),
            "cache": self.cache.stats.snapshot(),
            "jobs": self.jobs,
            "inflight": self.inflight_count(),
        }
        if self.breaker is not None:
            snap["breaker"] = self.breaker.snapshot()
        return snap

    def publish(self, registry: MetricsRegistry) -> None:
        """Publish service metrics, cache-tier counters, and breaker
        state into the unified telemetry registry (one call covers
        all)."""
        self.metrics.publish(registry, prefix="service")
        self.cache.stats.publish(registry, prefix="cache")
        if self.breaker is not None:
            self.breaker.publish(registry, prefix="faults")

    # -- internals -------------------------------------------------------------

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.jobs, thread_name_prefix="repro-compile"
            )
        return self._pool

    def _run_job(self, request: CompileRequest, future: Future,
                 parent=None, queued_at: float = 0.0) -> None:
        tracer = get_tracer()
        with tracer.span(
            "service.job", category="service", parent=parent,
            label=request.label or request.module.name,
        ) as span:
            if tracer.enabled:
                # queue wait: submit() stamped the enqueue time
                span.set(queued_s=max(tracer.now_s() - queued_at, 0.0))
            try:
                result = self.compile_request(request)
            except Exception as exc:
                span.set(status="error")
                future.set_exception(exc)
            else:
                span.set(status="done")
                future.set_result(result)
            finally:
                with self._lock:
                    if self._inflight.get(request.fingerprint) is future:
                        del self._inflight[request.fingerprint]

    def _gather(self, request: CompileRequest, future: Future,
                strict: bool) -> Any:
        if self.hedge_after_s is not None and self.jobs > 1:
            try:
                return future.result(timeout=self.hedge_after_s)
            except FutureTimeoutError:
                hedged = self._hedge(request, future)
                if hedged is not _NO_HEDGE:
                    return hedged
            # the hedge failed too: fall through and wait for the primary
        try:
            return future.result(timeout=self.timeout_s)
        except FutureTimeoutError:
            self.metrics.record_timeout()
            raise JobError(
                request.label or request.module.name,
                request.fingerprint,
                "timeout",
                f"compile exceeded {self.timeout_s:g}s",
                self.timeout_s or 0.0,
            ) from None

    def _hedge(self, request: CompileRequest, future: Future) -> Any:
        """Duplicate a straggler inline; first finisher wins.  The
        compilers are pure, so both copies are byte-identical — hedging
        only changes *when* the result lands, never what it is."""
        tracer = get_tracer()
        with tracer.span(
            "service.hedge", category="service",
            label=request.label or request.module.name,
        ) as span:
            try:
                result = self._compile_request(
                    request, attempt_base=_HEDGE_ATTEMPT_BASE
                )
            except Exception:
                span.set(status="hedge-failed")
                self.metrics.record_hedge(won=False)
                return _NO_HEDGE
            won = not future.done()
            span.set(status="won" if won else "lost")
            self.metrics.record_hedge(won=won)
            return result


#: sentinel: the hedge attempt failed; wait for the primary instead
_NO_HEDGE = object()


# -- process-wide default service ---------------------------------------------

_default_service: CompileService | None = None
_default_lock = threading.Lock()


def get_default_service() -> CompileService:
    """The process-wide service the experiment drivers share (memory-tier
    cache only, serial execution) — configurable via
    :func:`configure_default_service` (the CLI's
    ``--jobs/--cache-dir/--faults/--retries/--resume``)."""
    global _default_service
    with _default_lock:
        if _default_service is None:
            _default_service = CompileService()
        return _default_service


def configure_default_service(
    jobs: int = 1,
    cache_dir: str | None = None,
    max_entries: int = 512,
    timeout_s: float | None = None,
    retry: RetryPolicy | None = None,
    breaker: CircuitBreaker | None = None,
    hedge_after_s: float | None = None,
    fault_plan: FaultPlan | None = None,
    journal: SweepJournal | None = None,
) -> CompileService:
    """Replace the process-wide default service (returns the new one)."""
    global _default_service
    with _default_lock:
        old = _default_service
        _default_service = CompileService(
            cache=ArtifactCache(max_entries=max_entries, cache_dir=cache_dir),
            jobs=jobs,
            timeout_s=timeout_s,
            retry=retry,
            breaker=breaker,
            hedge_after_s=hedge_after_s,
            fault_plan=fault_plan,
            journal=journal,
        )
    if old is not None:
        old.close()
    return _default_service


def reset_default_service() -> None:
    """Drop the process-wide default service (tests)."""
    global _default_service
    with _default_lock:
        old, _default_service = _default_service, None
    if old is not None:
        old.close()
