"""Service-level metrics: request/hit/dedup counters and compile-latency
percentiles, renderable as a section of the runtime profiler's report.

The :class:`repro.runtime.profiler.Profiler` knows nothing about the
service layer; both layers meet at the
:class:`repro.telemetry.Reportable` protocol (see
:meth:`Profiler.attach_service`), which :class:`ServiceMetrics` and
:class:`repro.service.scheduler.CompileService` satisfy.

``percentile`` is re-exported from :mod:`repro.telemetry.registry` — the
single shared implementation — for backward compatibility.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from ..telemetry.registry import MetricsRegistry, percentile

__all__ = ["ServiceMetrics", "percentile"]


@dataclass
class ServiceMetrics:
    """Thread-safe counters for one :class:`CompileService`."""

    requests: int = 0
    cache_hits: int = 0
    dedup_hits: int = 0
    compiles: int = 0
    errors: int = 0
    timeouts: int = 0
    #: resilience counters (docs/FAULTS.md): injected faults seen at the
    #: compiler/cache boundaries, retries spent healing them, hedged
    #: duplicates (and how many beat the primary), breaker fallbacks.
    faults_injected: int = 0
    retries: int = 0
    hedges: int = 0
    hedge_wins: int = 0
    degraded: int = 0
    cache_io_errors: int = 0
    #: modeled wall-clock not spent recompiling: on every hit, the recorded
    #: compile time of that fingerprint (or the running mean for artifacts
    #: inherited from a previous process via the disk tier)
    time_saved_s: float = 0.0
    _compile_seconds: list[float] = field(default_factory=list, repr=False)
    _seconds_by_fp: dict[str, float] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    # -- recording -------------------------------------------------------------

    def record_request(self) -> None:
        with self._lock:
            self.requests += 1

    def record_cache_hit(self, fingerprint: str) -> None:
        with self._lock:
            self.cache_hits += 1
            self.time_saved_s += self._seconds_by_fp.get(
                fingerprint, self._mean_compile_s()
            )

    def record_dedup_hit(self) -> None:
        with self._lock:
            self.dedup_hits += 1

    def record_compile(self, fingerprint: str, seconds: float,
                       failed: bool = False) -> None:
        with self._lock:
            self.compiles += 1
            if failed:
                self.errors += 1
            self._compile_seconds.append(seconds)
            self._seconds_by_fp[fingerprint] = seconds

    def record_timeout(self) -> None:
        with self._lock:
            self.timeouts += 1

    def record_fault(self, cache_io: bool = False) -> None:
        with self._lock:
            self.faults_injected += 1
            if cache_io:
                self.cache_io_errors += 1

    def record_retry(self) -> None:
        with self._lock:
            self.retries += 1

    def record_hedge(self, won: bool = False) -> None:
        with self._lock:
            self.hedges += 1
            if won:
                self.hedge_wins += 1

    def record_degraded(self) -> None:
        with self._lock:
            self.degraded += 1

    # -- views -----------------------------------------------------------------

    def _mean_compile_s(self) -> float:
        if not self._compile_seconds:
            return 0.0
        return sum(self._compile_seconds) / len(self._compile_seconds)

    @property
    def p50_compile_s(self) -> float:
        with self._lock:
            return percentile(self._compile_seconds, 0.50)

    @property
    def p95_compile_s(self) -> float:
        with self._lock:
            return percentile(self._compile_seconds, 0.95)

    @property
    def hit_rate(self) -> float:
        with self._lock:
            total = self.cache_hits + self.dedup_hits + self.compiles
            return (self.cache_hits + self.dedup_hits) / total if total else 0.0

    def snapshot(self) -> dict[str, int | float]:
        with self._lock:
            return {
                "requests": self.requests,
                "cache_hits": self.cache_hits,
                "dedup_hits": self.dedup_hits,
                "compiles": self.compiles,
                "errors": self.errors,
                "timeouts": self.timeouts,
                "time_saved_s": self.time_saved_s,
                "faults_injected": self.faults_injected,
                "retries": self.retries,
                "hedges": self.hedges,
                "hedge_wins": self.hedge_wins,
                "degraded": self.degraded,
                "cache_io_errors": self.cache_io_errors,
            }

    def publish(self, registry: MetricsRegistry,
                prefix: str = "service") -> None:
        """Publish counters and the compile-latency distribution into the
        unified telemetry registry (gauges, so re-publishing is
        idempotent rather than double-counting)."""
        with self._lock:
            snap = {
                "requests": self.requests,
                "cache_hits": self.cache_hits,
                "dedup_hits": self.dedup_hits,
                "compiles": self.compiles,
                "errors": self.errors,
                "timeouts": self.timeouts,
                "time_saved_s": self.time_saved_s,
            }
            # resilience counters publish under the ``faults.`` namespace
            # (docs/FAULTS.md) so dashboards see one fault-injection
            # story regardless of which service produced it
            faults = {
                "faults.injected": self.faults_injected,
                "faults.retries": self.retries,
                "faults.hedges": self.hedges,
                "faults.hedge_wins": self.hedge_wins,
                "faults.degraded": self.degraded,
                "faults.cache_io_errors": self.cache_io_errors,
            }
            seconds = list(self._compile_seconds)
        for name, value in snap.items():
            registry.gauge(f"{prefix}.{name}").set(float(value))
        for name, value in faults.items():
            registry.gauge(name).set(float(value))
        histogram = registry.histogram(f"{prefix}.compile_seconds")
        already = histogram.count
        if len(seconds) > already:
            histogram.observe_many(seconds[already:])

    def report_lines(self) -> list[str]:
        """The compile-service section of a profiler report."""
        snap = self.snapshot()
        lines = [
            "-- compile service --",
            (
                f"requests {snap['requests']}: "
                f"{snap['cache_hits']} cache hits, "
                f"{snap['dedup_hits']} dedup hits, "
                f"{snap['compiles']} compiles "
                f"({snap['errors']} errors, {snap['timeouts']} timeouts)"
            ),
            (
                f"compile latency p50 {self.p50_compile_s * 1e3:.3f} ms, "
                f"p95 {self.p95_compile_s * 1e3:.3f} ms; "
                f"~{snap['time_saved_s'] * 1e3:.3f} ms saved by caching"
            ),
        ]
        if any(snap[k] for k in ("faults_injected", "retries", "hedges",
                                 "degraded")):
            lines.append(
                f"resilience: {snap['faults_injected']} faults injected "
                f"({snap['cache_io_errors']} cache I/O), "
                f"{snap['retries']} retries, "
                f"{snap['hedges']} hedges ({snap['hedge_wins']} wins), "
                f"{snap['degraded']} degraded fallbacks"
            )
        return lines
