"""Resilience primitives for the compile service: retry policies with
deterministic backoff, simulated clocks, per-target circuit breakers,
and the sweep checkpoint journal.

Everything here obeys the same determinism discipline as
:mod:`repro.faults`: no global random state, no wall-clock dependence in
decisions.  Backoff jitter is a counter-based hash of (seed,
fingerprint, attempt); the breaker's state advances in *gather order*
(request order), never in thread-completion order, so a ``--jobs 4``
sweep trips and recovers at exactly the same points as a serial one;
and sleeping goes through a :class:`Clock` so tests substitute
:class:`SimClock` and never call ``time.sleep``.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

__all__ = [
    "Clock",
    "SystemClock",
    "SimClock",
    "RetryPolicy",
    "CircuitBreaker",
    "DEFAULT_FALLBACKS",
    "SweepJournal",
]


class Clock:
    """The time source the service sleeps and measures on."""

    def now(self) -> float:  # pragma: no cover - interface
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class SystemClock(Clock):
    """Real monotonic time + real sleeping (the production default)."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


class SimClock(Clock):
    """A simulated clock: ``sleep`` advances time instantly and records
    the request.  Tests assert on ``sleeps`` instead of waiting —
    ``time.sleep`` never runs under a SimClock."""

    def __init__(self, start_s: float = 0.0) -> None:
        self._now = start_s
        self._lock = threading.Lock()
        self.sleeps: list[float] = []

    def now(self) -> float:
        with self._lock:
            return self._now

    def sleep(self, seconds: float) -> None:
        with self._lock:
            self._now += max(seconds, 0.0)
            self.sleeps.append(seconds)


def _jitter01(seed: int, fingerprint: str, attempt: int) -> float:
    """Deterministic uniform [0, 1) for backoff jitter (same hashing
    discipline as :func:`repro.faults.plan._hash01`)."""
    digest = hashlib.sha256(
        f"repro-backoff-v1|{seed}|{fingerprint}|{attempt}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic jitter.

    ``max_retries`` counts *re*-attempts: a job runs at most
    ``max_retries + 1`` times.  The backoff before retry *k* (0-based)
    is ``min(base_s * multiplier**k, max_backoff_s)`` scaled by a
    jitter factor in ``[1 - jitter, 1 + jitter)`` hashed from (seed,
    fingerprint, k) — reproducible, but de-synchronized across
    fingerprints so a burst of transient failures does not retry in
    lock-step.
    """

    max_retries: int = 3
    base_s: float = 0.02
    multiplier: float = 2.0
    max_backoff_s: float = 1.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def backoff_s(self, fingerprint: str, attempt: int) -> float:
        base = min(self.base_s * self.multiplier ** attempt,
                   self.max_backoff_s)
        scale = 1.0 + self.jitter * (
            2.0 * _jitter01(self.seed, fingerprint, attempt) - 1.0
        )
        return base * scale


#: graceful-degradation routes: when the breaker for a (compiler,
#: target) opens, failed points are re-routed here.  The paper's own
#: fallback is the model: when CAPS's OpenCL backend misbehaved the
#: authors fell back to its CUDA backend (and PGI never had a non-NVIDIA
#: backend to begin with).
DEFAULT_FALLBACKS: dict[tuple[str, str], tuple[str, str]] = {
    ("caps", "opencl"): ("caps", "cuda"),
    ("pgi", "opencl"): ("pgi", "cuda"),
}


@dataclass
class CircuitBreaker:
    """A per-(compiler, target) failure breaker, advanced in gather
    order.

    After ``failure_threshold`` *consecutive* failures for one key the
    breaker opens; while open, failed points are degraded to the key's
    fallback route (recorded as ``degraded=True`` on the artifact —
    never silent).  Because every primary result is computed anyway
    (results gather in request order), any primary success while open
    acts as the half-open probe and closes the breaker immediately.
    """

    failure_threshold: int = 3
    fallbacks: dict[tuple[str, str], tuple[str, str]] = field(
        default_factory=lambda: dict(DEFAULT_FALLBACKS)
    )
    _consecutive: dict[tuple[str, str], int] = field(
        default_factory=dict, repr=False
    )
    _open: set = field(default_factory=set, repr=False)
    trips: int = 0
    closes: int = 0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self._lock = threading.Lock()

    @staticmethod
    def key_for(compiler: str, target: str) -> tuple[str, str]:
        return (compiler.lower(), target.lower())

    def on_result(self, key: tuple[str, str], failed: bool) -> str | None:
        """Advance the breaker; returns ``"tripped"``/``"closed"`` on a
        state transition, else ``None``."""
        with self._lock:
            if failed:
                count = self._consecutive.get(key, 0) + 1
                self._consecutive[key] = count
                if count >= self.failure_threshold and key not in self._open:
                    self._open.add(key)
                    self.trips += 1
                    return "tripped"
                return None
            self._consecutive[key] = 0
            if key in self._open:
                self._open.discard(key)
                self.closes += 1
                return "closed"
            return None

    def is_open(self, key: tuple[str, str]) -> bool:
        with self._lock:
            return key in self._open

    def fallback_for(self, compiler: str,
                     target: str) -> tuple[str, str] | None:
        return self.fallbacks.get(self.key_for(compiler, target))

    # -- views -----------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            return {
                "open": sorted("-".join(k) for k in self._open),
                "trips": self.trips,
                "closes": self.closes,
            }

    def publish(self, registry, prefix: str = "faults") -> None:
        """Publish per-key open/closed state and transition counts as
        gauges (idempotent) into a
        :class:`repro.telemetry.MetricsRegistry`."""
        with self._lock:
            keys = set(self._consecutive) | self._open
            open_keys = set(self._open)
            trips, closes = self.trips, self.closes
        for key in keys:
            registry.gauge(f"{prefix}.breaker_state.{key[0]}-{key[1]}").set(
                1.0 if key in open_keys else 0.0
            )
        registry.gauge(f"{prefix}.breaker_trips").set(float(trips))
        registry.gauge(f"{prefix}.breaker_closes").set(float(closes))


class SweepJournal:
    """A JSONL checkpoint of completed sweep points.

    Each completed slot appends one line — ``{"fp": ..., "status":
    "ok" | "degraded" | "error", ...}`` — flushed immediately, so a
    killed sweep leaves a valid prefix.  On resume the journal is
    loaded first; journaled fingerprints are *not* resubmitted:

    * ``ok`` — the artifact is re-materialized through the service's
      cache (free with a ``--cache-dir`` disk tier; recompiled
      otherwise — byte-identical either way, the compilers are pure);
    * ``degraded`` — the recorded fallback route is recompiled and
      re-marked;
    * ``error`` — the :class:`~repro.service.scheduler.JobError` is
      reconstructed field-for-field from the journal line.

    A resumed sweep therefore equals an uninterrupted one byte for
    byte (test-enforced in ``tests/test_service_resilience.py``).
    """

    def __init__(self, path: str | Path, resume: bool = True) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()
        self._entries: dict[str, dict[str, Any]] = {}
        if resume and self.path.exists():
            for line in self.path.read_text(encoding="utf-8").splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    continue  # a torn final line from a killed run
                if isinstance(entry, dict) and "fp" in entry:
                    self._entries[entry["fp"]] = entry
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("a", encoding="utf-8")

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def lookup(self, fingerprint: str) -> dict[str, Any] | None:
        with self._lock:
            return self._entries.get(fingerprint)

    def record(self, fingerprint: str, entry: dict[str, Any]) -> None:
        """Append one completed point (idempotent per fingerprint)."""
        entry = {"fp": fingerprint, **entry}
        with self._lock:
            if fingerprint in self._entries:
                return
            self._entries[fingerprint] = entry
            self._fh.write(json.dumps(entry, sort_keys=True) + "\n")
            self._fh.flush()

    def fingerprints(self) -> Iterable[str]:
        with self._lock:
            return list(self._entries)

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.close()

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
