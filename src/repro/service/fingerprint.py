"""Content-addressed fingerprints of compilation requests.

A fingerprint is a stable SHA-256 digest of everything that determines a
compiler model's output:

* the kernel **source** — the module's canonical mini-C rendering (the
  :mod:`repro.ir.printer` round-trip form), which captures every pragma
  the transforms attach (``gang(n)``, ``worker(n)``, blocksize, unroll,
  tile), so two IR instances that print identically compile identically;
* the **compiler** identity and its modeled version (CAPS 3.4.1,
  PGI 14.9 — the paper's tool-chain);
* the **target** (``cuda`` / ``opencl``);
* the **flag set**, canonicalized so semantically-insignificant flag
  *order* does not perturb the digest (``-O4 -fast`` == ``-fast -O4``)
  while any flag *change* does;
* optionally the **device spec**, for callers whose artifacts are
  device-scoped (compilation itself is device-independent in this
  tool-chain, so most callers leave it unset).

Fingerprints are the keys of :class:`repro.service.cache.ArtifactCache`
and the dedup identity of :class:`repro.service.scheduler.CompileService`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from ..compilers.flags import FlagSet
from ..devices.specs import DeviceSpec
from ..ir.printer import print_kernel, print_module
from ..ir.stmt import KernelFunction, Module

#: modeled tool-chain versions (paper section IV-A); part of every
#: fingerprint so a future version bump invalidates stale artifacts.
COMPILER_VERSIONS: dict[str, str] = {
    "caps": "3.4.1",
    "pgi": "14.9",
    "opencl": "1.2",
}

#: fingerprint schema version — bump when the canonical form changes.
SCHEMA = "repro-fp-v1"

_GRID_BLOCK_PREFIX = "-Xhmppcg"


def canonical_flags(flags: FlagSet | None) -> tuple[str, ...]:
    """A canonical, order-insensitive rendering of a flag set.

    The ``-Xhmppcg -grid-block-size,WxH`` spelling and an explicit
    ``gridify_blocksize=(W, H)`` are the same request, so both collapse
    to one ``grid-block-size=WxH`` token; the remaining flags are
    deduplicated and sorted (every modeled flag is a predicate the
    compilers query with :meth:`FlagSet.has`, so order carries no
    semantics).
    """
    if flags is None:
        return ("<default-flags>",)
    semantic = sorted(
        {f for f in flags.flags if not f.startswith(_GRID_BLOCK_PREFIX)}
    )
    parts = [f"compiler={flags.compiler}", *semantic]
    if flags.gridify_blocksize is not None:
        x, y = flags.gridify_blocksize
        parts.append(f"grid-block-size={x}x{y}")
    return tuple(parts)


def canonical_device(device: DeviceSpec | None) -> str:
    """The device identity a fingerprint sees (name + kind is enough:
    specs are frozen constants keyed by name)."""
    if device is None:
        return "<any-device>"
    return f"{device.name}|{device.kind.value}"


def fingerprint_parts(
    module: Module,
    compiler: str,
    target: str,
    flags: FlagSet | None = None,
    device: DeviceSpec | None = None,
) -> tuple[str, ...]:
    """The ordered canonical fields the digest is computed over."""
    compiler_key = compiler.lower()
    version = COMPILER_VERSIONS.get(compiler_key, "unversioned")
    return (
        SCHEMA,
        f"module={module.name}",
        print_module(module),
        f"compiler={compiler_key}:{version}",
        f"target={target.lower()}",
        "\x1f".join(canonical_flags(flags)),
        canonical_device(device),
    )


def fingerprint_kernel(kernel: KernelFunction) -> str:
    """SHA-256 hex digest content-addressing one kernel function.

    Computed over the canonical mini-C print, so two IR instances that
    print identically share a digest regardless of object identity or
    ``loop_id`` assignment — the key space of the executor's
    compiled-kernel cache (:mod:`repro.runtime.executor`).
    """
    digest = hashlib.sha256()
    for part in (SCHEMA, "kernel", print_kernel(kernel)):
        digest.update(part.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


def fingerprint_request(
    module: Module,
    compiler: str,
    target: str,
    flags: FlagSet | None = None,
    device: DeviceSpec | None = None,
) -> str:
    """SHA-256 hex digest content-addressing one compilation request."""
    digest = hashlib.sha256()
    for part in fingerprint_parts(module, compiler, target, flags, device):
        digest.update(part.encode("utf-8"))
        digest.update(b"\x00")  # unambiguous field separator
    return digest.hexdigest()


@dataclass(frozen=True, eq=False)
class CompileRequest:
    """One point of a sweep: a module + the tool-chain to push it through.

    Identity (for caching and in-flight dedup) is the :attr:`fingerprint`,
    not Python object identity; ``label`` is a human-readable tag carried
    into error reports and metrics.
    """

    module: Module
    compiler: str
    target: str
    flags: FlagSet | None = None
    device: DeviceSpec | None = None
    label: str = ""
    _fingerprint: str | None = field(default=None, repr=False, compare=False)

    @property
    def fingerprint(self) -> str:
        """Content address of this request (computed once, then memoized)."""
        if self._fingerprint is None:
            object.__setattr__(
                self,
                "_fingerprint",
                fingerprint_request(
                    self.module, self.compiler, self.target,
                    self.flags, self.device,
                ),
            )
        assert self._fingerprint is not None
        return self._fingerprint

    def describe(self) -> str:
        tag = self.label or self.module.name
        return f"{tag} [{self.compiler}->{self.target}] {self.fingerprint[:12]}"
