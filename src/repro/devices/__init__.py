"""Device models of the paper's test bed: K40 GPU, Xeon Phi 5110P, host."""

from .specs import (
    E5_2670,
    GCC,
    ICC,
    K40,
    PCIE,
    PHI_5110P,
    DeviceKind,
    DeviceSpec,
    HostToolchain,
    PcieLink,
    device_by_name,
)

__all__ = [
    "E5_2670",
    "GCC",
    "ICC",
    "K40",
    "PCIE",
    "PHI_5110P",
    "DeviceKind",
    "DeviceSpec",
    "HostToolchain",
    "PcieLink",
    "device_by_name",
]
