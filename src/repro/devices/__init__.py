"""Device models: K40 GPU, Xeon Phi 5110P, host — and the N-accelerator
node topology (links, switches, halo contention) the portability matrix
sweeps."""

from .specs import (
    E5_2670,
    GCC,
    ICC,
    K40,
    PCIE,
    PHI_5110P,
    DeviceKind,
    DeviceSpec,
    HostToolchain,
    PcieLink,
    device_by_name,
)
from .topology import (
    NVLINK_LINK,
    PCIE2_LINK,
    PCIE3_LINK,
    DeviceTopology,
    LinkSpec,
)

__all__ = [
    "E5_2670",
    "GCC",
    "ICC",
    "K40",
    "NVLINK_LINK",
    "PCIE",
    "PCIE2_LINK",
    "PCIE3_LINK",
    "PHI_5110P",
    "DeviceKind",
    "DeviceSpec",
    "DeviceTopology",
    "HostToolchain",
    "LinkSpec",
    "PcieLink",
    "device_by_name",
]
