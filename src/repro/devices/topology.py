"""N-accelerator node topology: links, switches, and halo contention.

The paper's test bed drives **one** accelerator per run, but each π node
physically carries two (2× K40 / 2× 5110P behind one PCIe root).  The
multi-device portability matrix (``repro.core.matrix``) models nodes of
1/2/4 accelerators arranged as a **chain decomposition**: device *k*
exchanges halos with *k−1* and *k+1* every step.

Links
-----
A :class:`LinkSpec` is a point-to-point transfer channel.  Two kinds
matter for a 2014-era node:

* the **host link** — the PCIe root complex every device shares.  When
  several neighbor exchanges cross it in the same step they divide its
  bandwidth (:meth:`LinkSpec.transfer_seconds` with ``sharers > 1``);
* an optional **peer link** — a direct device-to-device channel
  (NVLink-style, or PCIe peer-to-peer under a common switch) available
  only to neighbor pairs sitting under the same switch
  (``devices_per_switch``).  Peer transfers bypass the root complex and
  never contend with each other.

Contention model
----------------
:meth:`DeviceTopology.exchange_seconds` answers: *how long does the
per-step halo exchange of the busiest device take?*  Every neighbor
pair moves ``nbytes`` each way; pairs under one switch ride the peer
link when there is one, the rest cross the shared host link whose
bandwidth is divided by the number of simultaneous crossing pairs.
With no peer link every pair crosses the root: a 4-device chain has 3
pairs sharing one link — the bandwidth cliff the matrix makes visible.

Determinism: everything here is closed-form arithmetic on frozen
dataclasses — byte-identical across processes and job counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from .specs import DeviceSpec, K40, PCIE


@dataclass(frozen=True)
class LinkSpec:
    """A point-to-point transfer channel (host PCIe or a peer link)."""

    name: str
    bandwidth_gbps: float     # effective, not theoretical
    latency_us: float         # per-transfer setup cost

    def transfer_seconds(self, nbytes: float, sharers: int = 1) -> float:
        """Seconds to move *nbytes* when *sharers* transfers divide the
        channel.  Latency is paid once per transfer (setup is per-DMA,
        not per-byte) and does not contend."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        sharers = max(1, int(sharers))
        return (self.latency_us * 1e-6
                + nbytes * sharers / (self.bandwidth_gbps * 1e9))


#: the 2014-era host link (mirrors :data:`repro.devices.specs.PCIE`)
PCIE2_LINK = LinkSpec("pcie2-x16", PCIE.bandwidth_gbps, PCIE.latency_us)
#: a generation newer root complex (for what-if sweeps)
PCIE3_LINK = LinkSpec("pcie3-x16", 10.0, 6.0)
#: a direct device-to-device channel (NVLink-class)
NVLINK_LINK = LinkSpec("nvlink", 20.0, 1.3)


@dataclass(frozen=True)
class DeviceTopology:
    """*count* identical accelerators on one node, chained for halos."""

    device: DeviceSpec = K40
    count: int = 1
    link: LinkSpec = PCIE2_LINK           # the shared host link
    peer: LinkSpec | None = None          # same-switch direct channel
    devices_per_switch: int = 2

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError("device count must be >= 1")
        if self.devices_per_switch < 1:
            raise ValueError("devices_per_switch must be >= 1")

    # -- structure -------------------------------------------------------------

    def neighbor_pairs(self) -> tuple[tuple[int, int], ...]:
        """The chain's exchanging pairs: (0,1), (1,2), ..."""
        return tuple((k, k + 1) for k in range(self.count - 1))

    def switch_of(self, device_index: int) -> int:
        return device_index // self.devices_per_switch

    def pair_uses_peer(self, pair: tuple[int, int]) -> bool:
        """A pair rides the peer link iff one exists and both endpoints
        sit under the same switch."""
        return (self.peer is not None
                and self.switch_of(pair[0]) == self.switch_of(pair[1]))

    def host_link_sharers(self) -> int:
        """Neighbor pairs whose exchange crosses the shared host link in
        one step (each divides the root-complex bandwidth)."""
        return sum(
            1 for pair in self.neighbor_pairs()
            if not self.pair_uses_peer(pair)
        )

    # -- cost ------------------------------------------------------------------

    def pair_transfer_seconds(
        self, pair: tuple[int, int], nbytes: float
    ) -> float:
        """One pair's halo transfer (both directions ride the duplex
        channel as one scheduled DMA of *nbytes* per direction; the
        slower direction bounds the pair, so one *nbytes* transfer at
        the contended bandwidth models the step)."""
        if self.pair_uses_peer(pair):
            assert self.peer is not None
            return self.peer.transfer_seconds(nbytes, sharers=1)
        return self.link.transfer_seconds(
            nbytes, sharers=self.host_link_sharers()
        )

    def exchange_seconds(self, nbytes: float) -> float:
        """Per-step halo-exchange time of the **busiest** device: the
        slowest of its (at most two) neighbor transfers.  Zero for a
        single device — there is nobody to exchange with."""
        if self.count == 1:
            return 0.0
        return max(
            self.pair_transfer_seconds(pair, nbytes)
            for pair in self.neighbor_pairs()
        )

    def describe(self) -> str:
        parts = [f"{self.count}x {self.device.name} via {self.link.name}"]
        if self.peer is not None:
            parts.append(
                f"peer {self.peer.name} ({self.devices_per_switch}/switch)"
            )
        return ", ".join(parts)


__all__ = [
    "DeviceTopology",
    "LinkSpec",
    "NVLINK_LINK",
    "PCIE2_LINK",
    "PCIE3_LINK",
]
