"""Hardware specifications of the paper's test bed (section IV-A).

One GPU node of the π supercomputer: 2× NVIDIA Kepler K40 + 2× Intel Sandy
Bridge E5-2670; one MIC node: 2× Intel Xeon Phi 5110P + the same CPUs.
The paper's benchmarks drive a single accelerator; the multi-device
portability matrix chains 1/2/4 of them per node through
:mod:`repro.devices.topology` (per-link bandwidth + halo contention).

Datasheet-derived values are marked [datasheet]; values calibrated so the
model reproduces a paper observation are marked [calibrated] with the
observation they anchor.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class DeviceKind(enum.Enum):
    GPU = "gpu"
    MIC = "mic"
    CPU = "cpu"


@dataclass(frozen=True)
class DeviceSpec:
    """An accelerator (or host CPU) performance description."""

    name: str
    kind: DeviceKind
    clock_ghz: float          # core clock [datasheet]
    num_units: int            # SMX count / core count [datasheet]
    lanes_per_unit: int       # CUDA cores per SMX / SIMD f32 lanes per core
    warp_width: int           # SIMT warp / SIMD vector granularity
    threads_per_unit: int     # max resident threads per SMX / SMT per core
    peak_bw_gbps: float       # peak memory bandwidth [datasheet]
    mem_latency_ns: float     # uncontended global/DRAM latency
    llc_bytes: int            # last-level cache
    # -- execution-model coefficients --
    scalar_cpi: float         # cycles per instruction of ONE thread running
    #   alone (no latency hiding).  GPU lanes are in-order,
    #   high-latency: ~8 [calibrated: the ~1000x serial
    #   LUD gap of Fig. 3].  MIC/CPU cores are far better.
    warps_to_hide_latency: int  # resident warps/unit needed for full issue
    launch_overhead_us: float   # per kernel launch
    mlp_per_thread: float       # outstanding memory requests per thread
    uncoalesced_waste: float    # sector bytes fetched per useful byte when
    #   strided (128B line / 4B element capped by 32B sectors => ~8)

    @property
    def total_lanes(self) -> int:
        return self.num_units * self.lanes_per_unit

    @property
    def max_resident_threads(self) -> int:
        return self.num_units * self.threads_per_unit


#: NVIDIA Tesla K40 ("Kepler K40" in the paper).
K40 = DeviceSpec(
    name="NVIDIA Tesla K40",
    kind=DeviceKind.GPU,
    clock_ghz=0.745,          # [datasheet] base clock
    num_units=15,             # [datasheet] SMX count
    lanes_per_unit=192,       # [datasheet] CUDA cores per SMX
    warp_width=32,            # [datasheet]
    threads_per_unit=2048,    # [datasheet] max resident threads/SMX
    peak_bw_gbps=288.0,       # [datasheet] GDDR5
    mem_latency_ns=540.0,     # ~400 cycles [datasheet-order]
    llc_bytes=1_536_000,      # [datasheet] 1.5 MB L2
    scalar_cpi=8.0,           # [calibrated] in-order lane, no latency hiding
    warps_to_hide_latency=8,  # [calibrated] ILP/latency hiding threshold
    launch_overhead_us=8.0,
    mlp_per_thread=2.0,       # [calibrated] pushes the Fig. 4 gang knee to
    #   >= 128 gangs, matching "gang more than 256"

    uncoalesced_waste=8.0,    # 32B sector per 4B element
)

#: Intel Xeon Phi 5110P ("Intel MIC" in the paper).
PHI_5110P = DeviceSpec(
    name="Intel Xeon Phi 5110P",
    kind=DeviceKind.MIC,
    clock_ghz=1.053,          # [datasheet]
    num_units=60,             # [datasheet] cores
    lanes_per_unit=16,        # [datasheet] 512-bit SIMD = 16 f32 lanes
    warp_width=16,
    threads_per_unit=4,       # [datasheet] 4 SMT threads per core
    peak_bw_gbps=320.0,       # [datasheet] theoretical; ~170 sustained
    mem_latency_ns=300.0,
    llc_bytes=30_000_000,     # [datasheet] 30 MB aggregate L2
    scalar_cpi=2.0,           # [calibrated] in-order P54C-derived core, but a
    #   real scalar pipeline: "the MIC has a higher single
    #   thread performance than the GPU" (paper V-C/V-D)
    warps_to_hide_latency=2,  # 2 SMT threads hide most stalls
    launch_overhead_us=40.0,  # offload launch is much heavier than CUDA
    mlp_per_thread=8.0,
    uncoalesced_waste=4.0,    # 64B line per 4-16B element, HW prefetchers
)

#: Intel Xeon E5-2670 (Sandy Bridge) — the host CPU of both nodes.
E5_2670 = DeviceSpec(
    name="Intel Xeon E5-2670",
    kind=DeviceKind.CPU,
    clock_ghz=3.3,            # [datasheet] max turbo; host fallbacks are
    #   single-threaded and run at the turbo bin
    num_units=8,              # [datasheet] cores
    lanes_per_unit=8,         # AVX 8 f32 lanes
    warp_width=8,
    threads_per_unit=2,
    peak_bw_gbps=51.2,        # [datasheet]
    mem_latency_ns=90.0,
    llc_bytes=20_000_000,
    scalar_cpi=0.7,           # out-of-order core
    warps_to_hide_latency=1,
    launch_overhead_us=0.0,
    mlp_per_thread=10.0,
    uncoalesced_waste=2.0,
)


@dataclass(frozen=True)
class PcieLink:
    """Host <-> accelerator transfer channel."""

    bandwidth_gbps: float = 3.0   # effective PCIe gen2 x16 (the 2014-era
    # pi nodes) [calibrated: makes BFS's per-iteration transfers dominate,
    # the mechanism behind Table VII / Fig. 10]
    latency_us: float = 10.0      # per-transfer setup cost

    def transfer_seconds(self, nbytes: float) -> float:
        return self.latency_us * 1e-6 + nbytes / (self.bandwidth_gbps * 1e9)


PCIE = PcieLink()


@dataclass(frozen=True)
class HostToolchain:
    """Host-side compiler (paper V-E: GCC vs the Intel compiler for Hydro).

    ``host_speed_factor`` multiplies host-side elapsed time; the Intel
    compiler "decreases the elapsed time on CPU".
    """

    name: str
    host_speed_factor: float


GCC = HostToolchain("gcc", 1.0)
ICC = HostToolchain("icc", 0.62)  # [calibrated] Fig. 15 host-time reduction


def device_by_name(name: str) -> DeviceSpec:
    """Look up a device by its short or full name."""
    table = {
        "k40": K40,
        "gpu": K40,
        "kepler": K40,
        "5110p": PHI_5110P,
        "mic": PHI_5110P,
        "phi": PHI_5110P,
        "cpu": E5_2670,
        "e5-2670": E5_2670,
    }
    key = name.lower()
    if key in table:
        return table[key]
    for spec in (K40, PHI_5110P, E5_2670):
        if spec.name.lower() == key:
            return spec
    raise KeyError(f"unknown device {name!r}")
