"""Deprecated shim — the implementation moved to
:mod:`repro.passes.library.data` (registered as passes there).

Importing from here keeps working: functions are the same objects behind
a :class:`DeprecationWarning` wrapper, error classes are re-exported
identically.  New code should import from ``repro.passes.library.data``
or run the registered passes through a pipeline.
"""

from ..passes.library import data as _impl
from ._shim import deprecated_alias as _alias

DataRegionError = _impl.DataRegionError

add_data_region = _alias(_impl.add_data_region, "repro.transforms.data.add_data_region")
add_data_regions = _alias(_impl.add_data_regions, "repro.transforms.data.add_data_regions")
has_data_region = _alias(_impl.has_data_region, "repro.transforms.data.has_data_region")
infer_data_region = _alias(_impl.infer_data_region, "repro.transforms.data.infer_data_region")
