"""Deprecated shim — the implementation moved to
:mod:`repro.passes.library.tile` (registered as passes there).

Importing from here keeps working: functions are the same objects behind
a :class:`DeprecationWarning` wrapper, error classes are re-exported
identically.  New code should import from ``repro.passes.library.tile``
or run the registered passes through a pipeline.
"""

from ..passes.library import tile as _impl
from ._shim import deprecated_alias as _alias

TileError = _impl.TileError

nest_is_tileable = _alias(_impl.nest_is_tileable, "repro.transforms.tile.nest_is_tileable")
tile_in_kernel = _alias(_impl.tile_in_kernel, "repro.transforms.tile.tile_in_kernel")
tile_loop = _alias(_impl.tile_loop, "repro.transforms.tile.tile_loop")
tile_nest = _alias(_impl.tile_nest, "repro.transforms.tile.tile_nest")
