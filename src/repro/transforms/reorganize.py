"""Deprecated shim — the implementation moved to
:mod:`repro.passes.library.reorganize` (registered as passes there).

Importing from here keeps working: functions are the same objects behind
a :class:`DeprecationWarning` wrapper, error classes are re-exported
identically.  New code should import from ``repro.passes.library.reorganize``
or run the registered passes through a pipeline.
"""

from ..passes.library import reorganize as _impl
from ._shim import deprecated_alias as _alias

ReorganizeError = _impl.ReorganizeError

fuse_adjacent_loops = _alias(_impl.fuse_adjacent_loops, "repro.transforms.reorganize.fuse_adjacent_loops")
fuse_kernels = _alias(_impl.fuse_kernels, "repro.transforms.reorganize.fuse_kernels")
split_loop = _alias(_impl.split_loop, "repro.transforms.reorganize.split_loop")
