"""Loop reorganization — the auxiliary optimization used for GE and BFS.

The paper (section V-B1) reorganizes the Gaussian Elimination OpenACC
version "which can turn three kernel loops into two", and (V-C2) regroups
the BFS loops "to make the OpenACC versions have the same structure as the
OpenCL version".  Mechanically these are *loop fusion* (merging adjacent
compatible loops) and *kernel fusion* (merging adjacent kernels of a
module).
"""

from __future__ import annotations

from ..ir.stmt import Block, For, KernelFunction, Module, Param, Stmt
from ..ir.visitors import clone_kernel, clone_stmt


class ReorganizeError(ValueError):
    """Raised when a requested fusion is not structurally possible."""


def _fusable(a: For, b: For) -> bool:
    return (
        a.var == b.var
        and a.step == b.step
        and a.lower == b.lower
        and a.upper == b.upper
    )


def fuse_adjacent_loops(kernel: KernelFunction) -> KernelFunction:
    """Fuse every run of adjacent top-level loops with identical headers.

    The caller is responsible for legality (the paper's reorganizations are
    hand-verified); directives of the *first* loop of each run are kept.
    """
    out = clone_kernel(kernel)
    out.body = _fuse_block(out.body)
    return out


def _fuse_block(block: Block) -> Block:
    """Fuse runs of top-level loops with identical headers.

    Initializer-less declarations (loop-index ``int i;`` lines) are
    transparent: they are hoisted (deduplicated by name) so they never
    break a fusable run.
    """
    from ..ir.stmt import Decl

    decls: list[Decl] = []
    seen_decls: set[str] = set()
    fused: list[Stmt] = []
    for stmt in block.stmts:
        if isinstance(stmt, Decl) and stmt.init is None:
            if stmt.name not in seen_decls:
                seen_decls.add(stmt.name)
                decls.append(stmt)
            continue
        if (
            isinstance(stmt, For)
            and fused
            and isinstance(fused[-1], For)
            and _fusable(fused[-1], stmt)
        ):
            prev = fused[-1]
            assert isinstance(prev, For)
            prev.body.stmts.extend(clone_stmt(stmt.body).stmts)  # type: ignore[attr-defined]
        else:
            fused.append(stmt)
    return Block([*decls, *fused])


def fuse_kernels(
    module: Module, names: list[str], fused_name: str | None = None
) -> Module:
    """Merge the named kernels of *module* into one kernel (in order).

    Parameters are united by name; a parameter appearing in several kernels
    must have a consistent type.  The fused kernel replaces the first named
    kernel in the module order; the others are removed.
    """
    if len(names) < 2:
        raise ReorganizeError("fusing requires at least two kernel names")
    kernels = [module.kernel(name) for name in names]

    params: list[Param] = []
    seen: dict[str, Param] = {}
    for kernel in kernels:
        for param in kernel.params:
            if param.name in seen:
                if seen[param.name].type != param.type:
                    raise ReorganizeError(
                        f"parameter {param.name!r} has conflicting types across kernels"
                    )
            else:
                new_param = Param(param.name, param.type, param.intent)
                seen[param.name] = new_param
                params.append(new_param)

    body = Block()
    for kernel in kernels:
        body.stmts.extend(clone_stmt(kernel.body).stmts)  # type: ignore[attr-defined]

    fused = KernelFunction(
        fused_name or names[0],
        params,
        _fuse_block(body),
        kernels[0].directives,
    )

    remaining: list[KernelFunction] = []
    inserted = False
    for kernel in module.kernels:
        if kernel.name == names[0]:
            remaining.append(fused)
            inserted = True
        elif kernel.name in names:
            continue
        else:
            remaining.append(clone_kernel(kernel))
    if not inserted:  # pragma: no cover - kernel() above already raised
        raise ReorganizeError(f"kernel {names[0]!r} not found")
    return Module(module.name, remaining)


def split_loop(kernel: KernelFunction, loop_id: int) -> KernelFunction:
    """Loop fission: split a top-level loop with a multi-statement body into
    one loop per statement (the inverse of fusion, used in ablations)."""
    out = clone_kernel(kernel)
    new_stmts: list[Stmt] = []
    for stmt in out.body.stmts:
        if isinstance(stmt, For) and stmt.loop_id == loop_id and len(stmt.body) > 1:
            for sub in stmt.body.stmts:
                new_stmts.append(
                    For(
                        var=stmt.var,
                        lower=stmt.lower,
                        upper=stmt.upper,
                        body=Block([clone_stmt(sub)]),
                        step=stmt.step,
                        directives=stmt.directives,
                    )
                )
        else:
            new_stmts.append(stmt)
    out.body = Block(new_stmts)
    return out
