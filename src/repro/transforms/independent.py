"""Deprecated shim — the implementation moved to
:mod:`repro.passes.library.independent` (registered as passes there).

Importing from here keeps working: functions are the same objects behind
a :class:`DeprecationWarning` wrapper, error classes are re-exported
identically.  New code should import from ``repro.passes.library.independent``
or run the registered passes through a pipeline.
"""

from ..passes.library import independent as _impl
from ._shim import deprecated_alias as _alias

IndependentResult = _impl.IndependentResult

add_independent = _alias(_impl.add_independent, "repro.transforms.independent.add_independent")
is_independent = _alias(_impl.is_independent, "repro.transforms.independent.is_independent")
