"""Deprecation machinery for the ``repro.transforms`` shims.

The transform implementations moved into :mod:`repro.passes.library`,
where each is also registered as a pass (and thereby enrolled in the
conformance battery of ``tests/passes/``).  The ``repro.transforms``
modules remain as thin shims: every public function is the *same*
implementation wrapped to emit a :class:`DeprecationWarning`, and every
error class is re-exported identically, so old call sites keep working
byte-for-byte (``tests/passes/test_transform_shims.py`` checks the
equivalence).

Each deprecated alias warns **once per process**: the first call
through a given alias names the new import path; later calls (a sweep
visiting a legacy helper thousands of times) stay silent instead of
flooding stderr.  :func:`reset_deprecation_warnings` re-arms them
(tests).
"""

from __future__ import annotations

import functools
import threading
import warnings

#: aliases that already warned this process, keyed by old import path
_warned: set[str] = set()
_warned_lock = threading.Lock()


def reset_deprecation_warnings() -> None:
    """Re-arm every deprecated alias to warn again (test isolation)."""
    with _warned_lock:
        _warned.clear()


def deprecated_alias(fn, old: str):
    """Wrap *fn* to warn — once per process — that *old* is a deprecated
    import path."""
    new = f"{fn.__module__}.{fn.__name__}"

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        with _warned_lock:
            first = old not in _warned
            _warned.add(old)
        if first:
            warnings.warn(
                f"{old} is deprecated; import {new} instead",
                DeprecationWarning,
                stacklevel=2,
            )
        return fn(*args, **kwargs)

    wrapper.__wrapped_pass_fn__ = fn
    return wrapper
