"""Deprecation machinery for the ``repro.transforms`` shims.

The transform implementations moved into :mod:`repro.passes.library`,
where each is also registered as a pass (and thereby enrolled in the
conformance battery of ``tests/passes/``).  The ``repro.transforms``
modules remain as thin shims: every public function is the *same*
implementation wrapped to emit a :class:`DeprecationWarning`, and every
error class is re-exported identically, so old call sites keep working
byte-for-byte (``tests/passes/test_transform_shims.py`` checks the
equivalence).
"""

from __future__ import annotations

import functools
import warnings


def deprecated_alias(fn, old: str):
    """Wrap *fn* to warn that *old* is a deprecated import path."""
    new = f"{fn.__module__}.{fn.__name__}"

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        warnings.warn(
            f"{old} is deprecated; import {new} instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return fn(*args, **kwargs)

    wrapper.__wrapped_pass_fn__ = fn
    return wrapper
