"""Deprecated shim — the implementation moved to
:mod:`repro.passes.library.reduction` (registered as passes there).

Importing from here keeps working: functions are the same objects behind
a :class:`DeprecationWarning` wrapper, error classes are re-exported
identically.  New code should import from ``repro.passes.library.reduction``
or run the registered passes through a pipeline.
"""

from ..passes.library import reduction as _impl
from ._shim import deprecated_alias as _alias

ReductionError = _impl.ReductionError

add_reduction = _alias(_impl.add_reduction, "repro.transforms.reduction.add_reduction")
