"""Source-level optimization passes — the paper's systematic method.

Step 1  :func:`add_independent`      — ``#pragma acc loop independent``
Step 2  :func:`set_gang_worker` / :func:`set_gridify_blocksize`
Step 3  :func:`unroll_in_kernel`     — unroll(-and-jam)
Step 4  :func:`tile_in_kernel`       — strip-mine / 2-D tiling
Aux     :func:`fuse_adjacent_loops`, :func:`fuse_kernels`, :func:`add_reduction`
"""

from .data import (
    DataRegionError,
    add_data_region,
    add_data_regions,
    has_data_region,
    infer_data_region,
)
from .distribute import (
    DistributionError,
    clear_distribution,
    set_gang_worker,
    set_gridify_blocksize,
)
from .independent import IndependentResult, add_independent, is_independent
from .reduction import ReductionError, add_reduction
from .reorganize import (
    ReorganizeError,
    fuse_adjacent_loops,
    fuse_kernels,
    split_loop,
)
from .tile import TileError, nest_is_tileable, tile_in_kernel, tile_loop, tile_nest
from .unroll import UnrollError, unroll_in_kernel, unroll_loop

__all__ = [
    "DataRegionError",
    "DistributionError",
    "IndependentResult",
    "ReductionError",
    "ReorganizeError",
    "TileError",
    "UnrollError",
    "add_data_region",
    "add_data_regions",
    "add_independent",
    "add_reduction",
    "clear_distribution",
    "fuse_adjacent_loops",
    "fuse_kernels",
    "has_data_region",
    "infer_data_region",
    "is_independent",
    "nest_is_tileable",
    "set_gang_worker",
    "set_gridify_blocksize",
    "split_loop",
    "tile_in_kernel",
    "tile_loop",
    "tile_nest",
    "unroll_in_kernel",
    "unroll_loop",
]
