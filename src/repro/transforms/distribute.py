"""Deprecated shim — the implementation moved to
:mod:`repro.passes.library.distribute` (registered as passes there).

Importing from here keeps working: functions are the same objects behind
a :class:`DeprecationWarning` wrapper, error classes are re-exported
identically.  New code should import from ``repro.passes.library.distribute``
or run the registered passes through a pipeline.
"""

from ..passes.library import distribute as _impl
from ._shim import deprecated_alias as _alias

DistributionError = _impl.DistributionError

clear_distribution = _alias(_impl.clear_distribution, "repro.transforms.distribute.clear_distribution")
set_gang_worker = _alias(_impl.set_gang_worker, "repro.transforms.distribute.set_gang_worker")
set_gridify_blocksize = _alias(_impl.set_gridify_blocksize, "repro.transforms.distribute.set_gridify_blocksize")
