"""Deprecated shim — the implementation moved to
:mod:`repro.passes.library.unroll` (registered as passes there).

Importing from here keeps working: functions are the same objects behind
a :class:`DeprecationWarning` wrapper, error classes are re-exported
identically.  New code should import from ``repro.passes.library.unroll``
or run the registered passes through a pipeline.
"""

from ..passes.library import unroll as _impl
from ._shim import deprecated_alias as _alias

UnrollError = _impl.UnrollError

unroll_in_kernel = _alias(_impl.unroll_in_kernel, "repro.transforms.unroll.unroll_in_kernel")
unroll_loop = _alias(_impl.unroll_loop, "repro.transforms.unroll.unroll_loop")
