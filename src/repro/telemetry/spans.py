"""Hierarchical tracing spans — the tool-chain's nvprof-style timeline.

A :class:`Tracer` records :class:`Span` objects: named, nested intervals
with attributes and point-in-time events.  Parent/child nesting is
propagated through a :mod:`contextvars` variable, so the *active* span
follows the call stack without any explicit plumbing — and, because the
sweep scheduler hands work to pool threads (where context vars do not
flow automatically), a span captured with :meth:`Tracer.capture` can be
re-established as the explicit ``parent=`` of a span opened on another
thread.  This is how a ``service.sweep`` span on the caller thread
becomes the parent of ``service.job`` spans on ``repro-compile-N``
workers.

Two kinds of spans coexist on one timeline:

* **wall-clock spans** — opened with :meth:`Tracer.span` (a context
  manager) or :func:`traced` (a decorator); start/end are read from the
  tracer's monotonic clock.
* **modeled spans** — added whole with :meth:`Tracer.record_span`; the
  duration is the *modeled* seconds of a simulated transfer or kernel
  launch (the :class:`repro.runtime.profiler.Profiler` bridge), placed
  at the current clock position.

Disabled path: the process-wide tracer starts **disabled**, and a
disabled tracer returns one shared no-op context manager from every
``span()`` call — no ``Span`` allocation, no contextvar write, no lock.
Instrumented code therefore costs one attribute check per call site when
tracing is off.
"""

from __future__ import annotations

import contextvars
import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, TypeVar

__all__ = [
    "Span",
    "SpanEvent",
    "Tracer",
    "configure_tracer",
    "get_tracer",
    "reset_tracer",
    "traced",
]

F = TypeVar("F", bound=Callable[..., Any])

#: sentinel distinguishing "no parent passed" from "explicitly rootless"
_UNSET = object()


@dataclass(frozen=True)
class SpanEvent:
    """A point-in-time marker inside a span (e.g. ``cache-hit``)."""

    name: str
    at_s: float
    attributes: dict[str, Any] = field(default_factory=dict)


@dataclass
class Span:
    """One named interval on the timeline."""

    name: str
    span_id: int
    parent_id: int | None
    start_s: float                       # seconds since the tracer epoch
    end_s: float | None = None
    category: str = ""
    attributes: dict[str, Any] = field(default_factory=dict)
    events: list[SpanEvent] = field(default_factory=list)
    thread_id: int = 0
    thread_name: str = ""
    error: str | None = None

    @property
    def duration_s(self) -> float:
        return (self.end_s - self.start_s) if self.end_s is not None else 0.0

    @property
    def finished(self) -> bool:
        return self.end_s is not None

    def set(self, **attributes: Any) -> "Span":
        """Attach/overwrite attributes; returns self for chaining."""
        self.attributes.update(attributes)
        return self


class _NoopSpan:
    """The span handle instrumentation sees when tracing is disabled.

    One shared instance; every method is a no-op returning self, so
    ``with tracer.span(...) as s: s.set(...)`` costs nothing measurable.
    """

    __slots__ = ()

    def set(self, **attributes: Any) -> "_NoopSpan":
        return self

    def event(self, name: str, **attributes: Any) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


#: the module-wide no-op singleton (identity-testable: a disabled tracer
#: returns exactly this object from every ``span()`` call)
NOOP_SPAN = _NoopSpan()


class _ActiveSpan:
    """Context manager tying one :class:`Span` to the context variable."""

    __slots__ = ("_tracer", "span", "_token")

    def __init__(self, tracer: "Tracer", span: Span,
                 token: contextvars.Token | None) -> None:
        self._tracer = tracer
        self.span = span
        self._token = token

    def set(self, **attributes: Any) -> "_ActiveSpan":
        self.span.set(**attributes)
        return self

    def event(self, name: str, **attributes: Any) -> None:
        self._tracer.add_event(self.span, name, **attributes)

    def __enter__(self) -> "_ActiveSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc is not None and self.span.error is None:
            self.span.error = f"{type(exc).__name__}: {exc}"
        self._tracer.finish(self.span, token=self._token)


class Tracer:
    """Collects spans for one process (or one test)."""

    def __init__(self, enabled: bool = True,
                 clock: Callable[[], float] = time.perf_counter) -> None:
        self.enabled = enabled
        self._clock = clock
        self._epoch = clock()
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self._ids = itertools.count(1)
        self._current: contextvars.ContextVar[Span | None] = \
            contextvars.ContextVar("repro_active_span", default=None)

    # -- clock -----------------------------------------------------------------

    def now_s(self) -> float:
        """Seconds since this tracer was created (monotonic)."""
        return self._clock() - self._epoch

    # -- span lifecycle --------------------------------------------------------

    def span(self, name: str, category: str = "", parent: Any = _UNSET,
             **attributes: Any):
        """Open a span as a context manager.

        Without ``parent=`` the ambient span (contextvar) is the parent
        and the new span becomes ambient for the dynamic extent of the
        ``with`` block.  With an explicit ``parent=`` (a :class:`Span`
        from :meth:`capture`, or ``None`` for a root) the contextvar is
        *also* set, so children opened inside still nest — this is the
        cross-thread re-parenting path.
        """
        if not self.enabled:
            return NOOP_SPAN
        if parent is _UNSET:
            parent_span = self._current.get()
        else:
            parent_span = parent
        span = self._make_span(name, category, parent_span, attributes)
        token = self._current.set(span)
        return _ActiveSpan(self, span, token)

    def capture(self) -> Span | None:
        """The ambient span of the calling thread (hand this to worker
        threads as ``span(..., parent=captured)``)."""
        if not self.enabled:
            return None
        return self._current.get()

    def record_span(self, name: str, seconds: float, category: str = "",
                    parent: Any = _UNSET, **attributes: Any) -> Span | None:
        """Add a completed span of modeled duration *seconds* starting at
        the current clock position (the Profiler bridge)."""
        if not self.enabled:
            return None
        if parent is _UNSET:
            parent_span = self._current.get()
        else:
            parent_span = parent
        span = self._make_span(name, category, parent_span, attributes)
        span.end_s = span.start_s + max(seconds, 0.0)
        with self._lock:
            self._spans.append(span)
        return span

    def add_event(self, span: Span, name: str, **attributes: Any) -> None:
        if not self.enabled:
            return
        span.events.append(SpanEvent(name, self.now_s(), dict(attributes)))

    def finish(self, span: Span,
               token: contextvars.Token | None = None) -> None:
        span.end_s = self.now_s()
        if token is not None:
            try:
                self._current.reset(token)
            except ValueError:
                # token created in another context (cross-thread reuse);
                # fall back to clearing the slot
                self._current.set(None)
        with self._lock:
            self._spans.append(span)

    # -- views -----------------------------------------------------------------

    def spans(self) -> list[Span]:
        """Snapshot of all finished spans, in completion order."""
        with self._lock:
            return list(self._spans)

    def spans_named(self, name: str) -> list[Span]:
        return [s for s in self.spans() if s.name == name]

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    # -- internals -------------------------------------------------------------

    def _make_span(self, name: str, category: str, parent: Span | None,
                   attributes: dict[str, Any]) -> Span:
        thread = threading.current_thread()
        return Span(
            name=name,
            span_id=next(self._ids),
            parent_id=parent.span_id if parent is not None else None,
            start_s=self.now_s(),
            category=category,
            attributes=dict(attributes),
            thread_id=thread.ident or 0,
            thread_name=thread.name,
        )


# -- process-wide tracer -------------------------------------------------------

_global_tracer = Tracer(enabled=False)
_global_lock = threading.Lock()


def get_tracer() -> Tracer:
    """The process-wide tracer (disabled until configured — the
    ``--trace`` CLI flag calls :func:`configure_tracer`)."""
    return _global_tracer


def configure_tracer(enabled: bool = True) -> Tracer:
    """Replace the process-wide tracer with a fresh one."""
    global _global_tracer
    with _global_lock:
        _global_tracer = Tracer(enabled=enabled)
        return _global_tracer


def reset_tracer() -> None:
    """Back to the disabled default (tests)."""
    configure_tracer(enabled=False)


def traced(name: str, category: str = "", **attributes: Any):
    """Decorator: run the function inside a span on the *current*
    process-wide tracer (looked up per call, so reconfiguration after
    import is honored)."""

    def decorate(fn: F) -> F:
        def wrapper(*args: Any, **kwargs: Any):
            tracer = get_tracer()
            if not tracer.enabled:
                return fn(*args, **kwargs)
            with tracer.span(name, category=category, **attributes):
                return fn(*args, **kwargs)

        wrapper.__name__ = getattr(fn, "__name__", name)
        wrapper.__doc__ = fn.__doc__
        wrapper.__wrapped__ = fn  # type: ignore[attr-defined]
        return wrapper  # type: ignore[return-value]

    return decorate
