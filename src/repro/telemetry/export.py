"""Trace sinks: JSON-lines, Chrome trace-event format, and a text report.

Three consumers of one span stream:

* :func:`write_jsonl` — one JSON object per line (``{"type": "span"}``
  records plus one trailing ``{"type": "metrics"}`` record when a
  registry is passed); grep-able, diff-able, streaming-friendly.
* :func:`write_chrome_trace` — the Chrome/Perfetto trace-event format
  (open ``chrome://tracing`` or https://ui.perfetto.dev and load the
  file).  Spans become ``"ph": "X"`` complete events; each recording
  thread becomes its own lane (``tid``) labeled with thread-name
  metadata, so a ``--jobs 4`` sweep shows four ``repro-compile-N`` lanes
  of compile spans under the caller's sweep span.  A span carrying a
  ``lane`` attribute (the daemon tags every ``server.request`` with
  ``lane=client:<id>``) is pulled out of its recording thread into a
  synthetic lane named after the attribute — a multi-client daemon
  trace reads as one swimlane per client, regardless of which handler
  thread happened to serve each request.
* :func:`text_report` — the plain-text hierarchical view (what the
  ``repro telemetry`` subcommand prints); subsumes the flat event dump
  of ``Profiler.report()``.

:func:`load_trace` reads either file format back into :class:`Span`
objects, so a saved trace can be re-rendered offline.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

from .registry import MetricsRegistry
from .spans import Span, SpanEvent, Tracer

__all__ = [
    "load_trace",
    "span_record",
    "text_report",
    "timeline_coverage",
    "write_chrome_trace",
    "write_jsonl",
    "write_trace",
]

#: synthetic pid for the single simulated process
_PID = 1


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def span_record(span: Span) -> dict[str, Any]:
    """One span as a JSON-safe dict (the JSONL schema)."""
    return {
        "type": "span",
        "name": span.name,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "start_s": span.start_s,
        "end_s": span.end_s,
        "category": span.category,
        "thread_id": span.thread_id,
        "thread_name": span.thread_name,
        "error": span.error,
        "attributes": {k: _jsonable(v) for k, v in span.attributes.items()},
        "events": [
            {
                "name": event.name,
                "at_s": event.at_s,
                "attributes": {
                    k: _jsonable(v) for k, v in event.attributes.items()
                },
            }
            for event in span.events
        ],
    }


def _spans_of(source: "Tracer | Iterable[Span]") -> list[Span]:
    if isinstance(source, Tracer):
        return source.spans()
    return list(source)


def write_jsonl(path: str, source: "Tracer | Iterable[Span]",
                registry: MetricsRegistry | None = None) -> int:
    """Write spans (and an optional metrics snapshot) as JSON lines;
    returns the number of span records written."""
    spans = sorted(_spans_of(source), key=lambda s: (s.start_s, s.span_id))
    with open(path, "w", encoding="utf-8") as fh:
        for span in spans:
            fh.write(json.dumps(span_record(span), sort_keys=True) + "\n")
        if registry is not None:
            fh.write(
                json.dumps(
                    {"type": "metrics", "snapshot": registry.snapshot()},
                    sort_keys=True,
                )
                + "\n"
            )
    return len(spans)


def chrome_trace_events(spans: Iterable[Span],
                        registry: MetricsRegistry | None = None
                        ) -> list[dict[str, Any]]:
    """The ``traceEvents`` list for one span stream (ts-sorted)."""
    spans = list(spans)
    events: list[dict[str, Any]] = []
    lanes: dict[int, str] = {}
    for span in spans:
        lanes.setdefault(span.thread_id, span.thread_name)
    # named lanes: spans tagged with a `lane` attribute (e.g. the daemon's
    # lane=client:<id>) get synthetic tids so each named lane renders as
    # one swimlane independent of the serving thread
    named = sorted(
        {str(s.attributes["lane"]) for s in spans if s.attributes.get("lane")}
    )
    base_tid = max(lanes, default=0) + 1
    lane_tids = {name: base_tid + i for i, name in enumerate(named)}
    for span in spans:
        if not span.finished:
            continue
        lane = span.attributes.get("lane")
        tid = lane_tids[str(lane)] if lane else span.thread_id
        args = {k: _jsonable(v) for k, v in span.attributes.items()}
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        if span.error:
            args["error"] = span.error
        events.append(
            {
                "name": span.name,
                "cat": span.category or "span",
                "ph": "X",
                "ts": span.start_s * 1e6,
                "dur": span.duration_s * 1e6,
                "pid": _PID,
                "tid": tid,
                "args": args,
            }
        )
        for event in span.events:
            events.append(
                {
                    "name": event.name,
                    "cat": "event",
                    "ph": "i",
                    "s": "t",
                    "ts": event.at_s * 1e6,
                    "pid": _PID,
                    "tid": tid,
                    "args": {
                        k: _jsonable(v) for k, v in event.attributes.items()
                    },
                }
            )
    events.sort(key=lambda e: (e["ts"], e.get("dur", 0.0)))
    meta: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID,
            "tid": 0,
            "args": {"name": "repro tool-chain"},
        }
    ]
    for tid in sorted(lanes):
        meta.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _PID,
                "tid": tid,
                "args": {"name": lanes[tid] or f"thread-{tid}"},
            }
        )
    for name, tid in lane_tids.items():
        meta.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _PID,
                "tid": tid,
                "args": {"name": name},
            }
        )
    if registry is not None:
        meta.append(
            {
                "name": "metrics_snapshot",
                "ph": "M",
                "pid": _PID,
                "tid": 0,
                "args": registry.snapshot(),
            }
        )
    return meta + events


def write_chrome_trace(path: str, source: "Tracer | Iterable[Span]",
                       registry: MetricsRegistry | None = None) -> int:
    """Write the Chrome trace-event JSON; returns the span count."""
    spans = _spans_of(source)
    payload = {
        "traceEvents": chrome_trace_events(spans, registry),
        "displayTimeUnit": "ms",
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, sort_keys=True)
    return sum(1 for s in spans if s.finished)


def write_trace(path: str, fmt: str, source: "Tracer | Iterable[Span]",
                registry: MetricsRegistry | None = None) -> int:
    """Dispatch on ``fmt`` in {"jsonl", "chrome"}."""
    if fmt == "chrome":
        return write_chrome_trace(path, source, registry)
    if fmt == "jsonl":
        return write_jsonl(path, source, registry)
    raise ValueError(f"unknown trace format {fmt!r}")


# -- loading -------------------------------------------------------------------

def _span_from_record(record: dict[str, Any]) -> Span:
    span = Span(
        name=record["name"],
        span_id=record["span_id"],
        parent_id=record.get("parent_id"),
        start_s=record["start_s"],
        end_s=record.get("end_s"),
        category=record.get("category", ""),
        attributes=dict(record.get("attributes", {})),
        thread_id=record.get("thread_id", 0),
        thread_name=record.get("thread_name", ""),
        error=record.get("error"),
    )
    for event in record.get("events", ()):
        span.events.append(
            SpanEvent(event["name"], event["at_s"],
                      dict(event.get("attributes", {})))
        )
    return span


def _span_from_chrome(event: dict[str, Any]) -> Span:
    args = dict(event.get("args", {}))
    span_id = args.pop("span_id", 0)
    parent_id = args.pop("parent_id", None)
    error = args.pop("error", None)
    start_s = event["ts"] / 1e6
    return Span(
        name=event["name"],
        span_id=span_id,
        parent_id=parent_id,
        start_s=start_s,
        end_s=start_s + event.get("dur", 0.0) / 1e6,
        category=event.get("cat", ""),
        attributes=args,
        thread_id=event.get("tid", 0),
        error=error,
    )


def load_trace(path: str) -> tuple[list[Span], dict[str, Any] | None]:
    """Read a saved trace in either format; returns (spans, metrics)."""
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    stripped = text.lstrip()
    if stripped.startswith("{") and '"traceEvents"' in stripped[:200]:
        payload = json.loads(text)
        names: dict[int, str] = {}
        metrics: dict[str, Any] | None = None
        spans = []
        for event in payload["traceEvents"]:
            if event.get("ph") == "M":
                if event.get("name") == "thread_name":
                    names[event.get("tid", 0)] = event["args"]["name"]
                elif event.get("name") == "metrics_snapshot":
                    metrics = event.get("args")
                continue
            if event.get("ph") != "X":
                continue
            spans.append(_span_from_chrome(event))
        for span in spans:
            span.thread_name = names.get(span.thread_id, "")
        return spans, metrics
    spans = []
    metrics = None
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        if record.get("type") == "metrics":
            metrics = record.get("snapshot")
        elif record.get("type") == "span":
            spans.append(_span_from_record(record))
    return spans, metrics


# -- text report ---------------------------------------------------------------

def _aggregate(spans: list[Span]) -> list[tuple[str, int, float, float]]:
    """(name, count, total_s, max_s) per span name, sorted by total."""
    totals: dict[str, list[float]] = {}
    for span in spans:
        totals.setdefault(span.name, []).append(span.duration_s)
    rows = [
        (name, len(values), sum(values), max(values))
        for name, values in totals.items()
    ]
    rows.sort(key=lambda row: (-row[2], row[0]))
    return rows


def timeline_coverage(spans: list[Span]) -> float:
    """Fraction of the trace's wall-clock covered by root spans (the
    acceptance check: lanes should account for ~all modeled time).

    Spans in the ``modeled`` category carry *simulated* durations (the
    performance model's seconds, not elapsed host time), so they are
    excluded from the wall-clock extent — only their placement is real.
    """
    finished = [s for s in spans if s.finished and s.category != "modeled"]
    if not finished:
        return 0.0
    lo = min(s.start_s for s in finished)
    hi = max(s.end_s for s in finished)  # type: ignore[arg-type]
    if hi <= lo:
        return 1.0
    roots = [s for s in finished if s.parent_id is None]
    intervals = sorted((s.start_s, s.end_s) for s in roots)
    covered = 0.0
    cursor = lo
    for start, end in intervals:
        start = max(start, cursor)
        if end > start:
            covered += end - start
            cursor = end
    return covered / (hi - lo)


def text_report(spans: list[Span],
                metrics: dict[str, Any] | None = None,
                max_tree_lines: int = 400) -> str:
    """The hierarchical plain-text view of a trace."""
    finished = sorted(
        (s for s in spans if s.finished),
        key=lambda s: (s.start_s, s.span_id),
    )
    lines: list[str] = []
    if not finished:
        return "(empty trace)"

    total = max(s.end_s for s in finished) - min(s.start_s for s in finished)  # type: ignore[arg-type]
    lines.append(
        f"telemetry: {len(finished)} spans over {total * 1e3:.3f} ms "
        f"({timeline_coverage(finished) * 100:.1f}% covered by root spans)"
    )

    lines.append("")
    lines.append("-- where the time went (by span name) --")
    name_width = max(len(row[0]) for row in _aggregate(finished))
    for name, count, total_s, max_s in _aggregate(finished):
        lines.append(
            f"{name:<{name_width}}  n={count:<5d} total {total_s * 1e3:>10.3f} ms"
            f"  max {max_s * 1e3:>9.3f} ms"
        )

    lines.append("")
    lines.append("-- timeline (hierarchical) --")
    children: dict[int | None, list[Span]] = {}
    for span in finished:
        children.setdefault(span.parent_id, []).append(span)
    known = {span.span_id for span in finished}
    roots = list(children.get(None, []))
    # spans whose parent never finished (or was trimmed) render as roots
    for parent_id, orphans in children.items():
        if parent_id is not None and parent_id not in known:
            roots.extend(orphans)
    roots.sort(key=lambda s: (s.start_s, s.span_id))

    tree: list[str] = []
    truncated = False

    def render(span: Span, depth: int) -> None:
        nonlocal truncated
        if truncated:
            return
        if len(tree) >= max_tree_lines:
            truncated = True
            return
        detail = ""
        interesting = {
            k: v
            for k, v in span.attributes.items()
            if k in ("label", "compiler", "target", "seed", "cache", "device",
                     "kernel", "status", "nbytes", "lane", "op")
        }
        if interesting:
            detail = "  " + " ".join(
                f"{k}={v}" for k, v in sorted(interesting.items())
            )
        error = f"  ERROR {span.error}" if span.error else ""
        tree.append(
            f"{'  ' * depth}{span.name:<{max(4, 32 - 2 * depth)}} "
            f"{span.duration_s * 1e3:>10.3f} ms{detail}{error}"
        )
        for child in children.get(span.span_id, ()):
            render(child, depth + 1)

    for root in roots:
        render(root, 0)
    lines.extend(tree)
    if truncated:
        lines.append(f"... ({len(finished)} spans total; tree truncated at "
                     f"{max_tree_lines} lines)")

    if metrics:
        lines.append("")
        lines.append("-- metrics --")
        for name, value in metrics.get("counters", {}).items():
            lines.append(f"{name} = {value}")
        for name, value in metrics.get("gauges", {}).items():
            lines.append(f"{name} = {value:.6g}")
        for name, summary in metrics.get("histograms", {}).items():
            lines.append(
                f"{name}: n={int(summary['count'])} sum={summary['sum']:.6g} "
                f"p50={summary['p50']:.6g} p95={summary['p95']:.6g}"
            )
    return "\n".join(lines)
