"""repro.telemetry — end-to-end observability for the whole tool-chain.

The paper's explanation apparatus is *observation*: nvprof/PGI_ACC_TIME
timelines expose the BFS fallback-to-host discovery (V-C1) and the
Table VII transfer counts.  This package is that apparatus for the
simulated tool-chain, process-wide:

* :mod:`.spans` — hierarchical tracing spans (context-manager /
  decorator API, contextvars parent propagation that survives the sweep
  scheduler's worker threads, near-zero-cost no-op path when disabled);
* :mod:`.registry` — the unified counter/gauge/histogram metrics
  registry that ``ServiceMetrics``, ``CacheStats``, and the runtime
  ``Profiler`` publish into, plus the shared :func:`percentile` and the
  :class:`Reportable` protocol;
* :mod:`.export` — JSON-lines and Chrome trace-event sinks (load the
  latter in Perfetto / ``chrome://tracing``; one lane per scheduler
  worker) and the hierarchical text report behind ``repro telemetry``.

Tracing is **off** by default: the process-wide tracer starts disabled
and every instrumentation site costs one ``enabled`` check.  The CLI's
``--trace FILE`` flag turns it on for a run; see docs/TELEMETRY.md.
"""

from .export import (
    load_trace,
    span_record,
    text_report,
    timeline_coverage,
    write_chrome_trace,
    write_jsonl,
    write_trace,
)
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Reportable,
    get_registry,
    percentile,
    reset_registry,
)
from .spans import (
    NOOP_SPAN,
    Span,
    SpanEvent,
    Tracer,
    configure_tracer,
    get_tracer,
    reset_tracer,
    traced,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NOOP_SPAN",
    "Reportable",
    "Span",
    "SpanEvent",
    "Tracer",
    "configure_tracer",
    "get_registry",
    "get_tracer",
    "load_trace",
    "percentile",
    "reset_registry",
    "reset_tracer",
    "span_record",
    "text_report",
    "timeline_coverage",
    "traced",
    "write_chrome_trace",
    "write_jsonl",
    "write_trace",
]
