"""Unified metrics registry: named counters, gauges, and histograms.

One :class:`MetricsRegistry` replaces the ad-hoc snapshot dicts that
``service.ServiceMetrics``, ``cache.CacheStats``, and the runtime
``Profiler`` each invented: those components *publish* their counters
into a registry (``publish(registry)``), and every consumer — the text
report, the JSON-lines export, the CI artifact — reads one deterministic
:meth:`MetricsRegistry.snapshot`.

:func:`percentile` lives here as the single shared implementation (it
was lifted out of ``repro.service.metrics``, which now re-exports it).

The :class:`Reportable` protocol is the explicit, typed version of the
old ``hasattr(obj, "report_lines")`` contract between the profiler and
the service layer.
"""

from __future__ import annotations

import threading
from typing import Iterable, Protocol, runtime_checkable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Reportable",
    "get_registry",
    "percentile",
    "reset_registry",
]


@runtime_checkable
class Reportable(Protocol):
    """Anything that can render itself as report lines — the contract
    :meth:`repro.runtime.profiler.Profiler.attach_service` requires, and
    which :class:`repro.service.metrics.ServiceMetrics`,
    :class:`repro.service.scheduler.CompileService`, and
    :class:`MetricsRegistry` all satisfy."""

    def report_lines(self) -> list[str]:
        ...


def percentile(values: list[float], frac: float) -> float:
    """Linear-interpolated percentile of *values* (``frac`` in [0, 1])."""
    if not values:
        return 0.0
    if not 0.0 <= frac <= 1.0:
        raise ValueError(f"percentile fraction must be in [0, 1], got {frac}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    pos = frac * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    weight = pos - lo
    return ordered[lo] * (1.0 - weight) + ordered[hi] * weight


class Counter:
    """A monotonically increasing named count (thread-safe)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A named value that can move both ways (thread-safe)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """A named sample distribution with percentile views (thread-safe)."""

    __slots__ = ("name", "_values", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._values: list[float] = []
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self._values.append(float(value))

    def observe_many(self, values: Iterable[float]) -> None:
        with self._lock:
            self._values.extend(float(v) for v in values)

    @property
    def count(self) -> int:
        with self._lock:
            return len(self._values)

    @property
    def sum(self) -> float:
        with self._lock:
            return sum(self._values)

    def quantile(self, frac: float) -> float:
        with self._lock:
            return percentile(self._values, frac)

    def values(self) -> list[float]:
        with self._lock:
            return list(self._values)

    def summary(self) -> dict[str, float]:
        with self._lock:
            values = list(self._values)
        return {
            "count": float(len(values)),
            "sum": sum(values),
            "min": min(values) if values else 0.0,
            "max": max(values) if values else 0.0,
            "p50": percentile(values, 0.50),
            "p95": percentile(values, 0.95),
        }


class MetricsRegistry:
    """Named metric instruments, created on first use, snapshot-stable.

    Instrument names are dotted (``service.requests``,
    ``runtime.h2d.seconds``); :meth:`snapshot` returns them sorted so two
    registries fed the same increments — in any thread interleaving —
    serialize identically.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- instrument accessors (get-or-create) ----------------------------------

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                self._check_unique(name, self._counters)
                instrument = self._counters[name] = Counter(name)
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                self._check_unique(name, self._gauges)
                instrument = self._gauges[name] = Gauge(name)
            return instrument

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                self._check_unique(name, self._histograms)
                instrument = self._histograms[name] = Histogram(name)
            return instrument

    def _check_unique(self, name: str, own: dict) -> None:
        for family in (self._counters, self._gauges, self._histograms):
            if family is not own and name in family:
                raise ValueError(
                    f"metric name {name!r} already registered as a different "
                    "instrument kind"
                )

    # -- views -----------------------------------------------------------------

    def snapshot(self) -> dict[str, dict]:
        """Deterministic (name-sorted) view of every instrument."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {n: counters[n].value for n in sorted(counters)},
            "gauges": {n: gauges[n].value for n in sorted(gauges)},
            "histograms": {
                n: histograms[n].summary() for n in sorted(histograms)
            },
        }

    def report_lines(self) -> list[str]:
        """The metrics section of a telemetry text report."""
        snap = self.snapshot()
        lines = ["-- metrics --"]
        for name, value in snap["counters"].items():
            lines.append(f"{name} = {value}")
        for name, value in snap["gauges"].items():
            lines.append(f"{name} = {value:.6g}")
        for name, summary in snap["histograms"].items():
            lines.append(
                f"{name}: n={int(summary['count'])} sum={summary['sum']:.6g} "
                f"p50={summary['p50']:.6g} p95={summary['p95']:.6g} "
                f"max={summary['max']:.6g}"
            )
        return lines

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


# -- process-wide registry -----------------------------------------------------

_global_registry = MetricsRegistry()
_global_lock = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-wide registry components publish into."""
    return _global_registry


def reset_registry() -> MetricsRegistry:
    """Fresh process-wide registry (tests, CLI run boundaries)."""
    global _global_registry
    with _global_lock:
        _global_registry = MetricsRegistry()
        return _global_registry
