"""The server's end-to-end self-test: the acceptance gate as a function.

``run_server_smoke`` is what ``repro serve --self-test`` (and the CI
server-smoke step, and the server benchmark) runs:

1. materialize P points of the Fig. 4 LUD thread-distribution grid;
2. sweep them through a plain in-process
   :class:`~repro.service.scheduler.CompileService` — the ground truth;
3. start a real daemon on an ephemeral port and drive the *same* sweep
   from C concurrent clients over real sockets;
4. assert every client's every slot is **byte-identical** to the
   in-process result (canonical artifact signature: compiler log + PTX
   rendering — the same identity the difftest and resilience gates use);
5. assert cross-client **coalescing** actually fired and **no** request
   was rejected;
6. probe **admission control** against a deliberately tiny daemon and
   assert the oversized sweep is *rejected* (429), not queued or hung.

The determinism contract makes (4) a strict equality, not a tolerance:
the daemon path re-parses each module from its canonical print, and
print → parse → compile is fingerprint-stable.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any

from ..core.search import DEFAULT_GANGS, DEFAULT_WORKERS, distribution_requests
from ..kernels import get_benchmark
from ..service.scheduler import CompileService, JobError
from ..telemetry.spans import get_tracer
from .client import ServerClient
from .daemon import ReproServer, ServerConfig
from .protocol import ServerRejected

__all__ = ["SmokeReport", "artifact_signature", "fig4_requests",
           "run_server_smoke"]


def artifact_signature(result: Any) -> str:
    """The canonical byte-identity of one sweep slot: every observable
    the experiments read (log, per-kernel PTX, distribution), or the
    structured error fields for a :class:`JobError` slot."""
    if isinstance(result, JobError):
        return f"error|{result.kind}|{result.label}|{result.message}"
    parts = [result.compiler, result.target, *result.log]
    for kernel in result.kernels:
        parts.append(kernel.name)
        parts.append(kernel.distribution.strategy.value)
        parts.append(kernel.ptx.render() if kernel.ptx is not None else "")
    return "\x1e".join(parts)


def fig4_requests(points: int | None = None, compiler: str = "caps",
                  target: str = "cuda"):
    """The 72-point Fig. 4 LUD grid (or its first *points* entries)."""
    requests = distribution_requests(
        get_benchmark("lud"), compiler, target, DEFAULT_GANGS, DEFAULT_WORKERS
    )
    return requests if points is None else requests[:points]


@dataclass
class SmokeReport:
    """What the self-test measured (``lines()`` is the CLI rendering)."""

    points: int = 0
    clients: int = 0
    identical: bool = False
    mismatches: int = 0
    coalesced: int = 0
    batches: int = 0
    compiles: int = 0
    rejected: int = 0
    rejection_probe_ok: bool = False
    client_errors: list[str] = field(default_factory=list)
    stats: dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return (self.identical and self.coalesced > 0 and self.rejected == 0
                and self.rejection_probe_ok and not self.client_errors)

    def lines(self) -> list[str]:
        verdict = "PASS" if self.ok else "FAIL"
        lines = [
            f"server self-test: {verdict}",
            (
                f"  {self.clients} clients x {self.points} points: "
                f"byte-identical={'yes' if self.identical else 'no'} "
                f"({self.mismatches} mismatching slots)"
            ),
            (
                f"  coalesced={self.coalesced} batches={self.batches} "
                f"compiles={self.compiles} rejected={self.rejected}"
            ),
            (
                f"  admission probe: oversized sweep "
                f"{'rejected with 429' if self.rejection_probe_ok else 'NOT rejected'}"
            ),
        ]
        lines.extend(f"  client error: {err}" for err in self.client_errors)
        return lines


def _probe_admission() -> bool:
    """A 4-deep daemon must *reject* an 8-point sweep — immediately,
    explicitly, with a 429 — never hang it or silently queue it."""
    config = ServerConfig(port=0, jobs=1, max_queue_depth=4,
                          batch_window_s=0.0)
    with ReproServer(config) as server:
        host, port = server.address
        with ServerClient(host, port, client_id="probe") as client:
            try:
                client.sweep(fig4_requests(8))
            except ServerRejected as exc:
                return exc.code == 429 and exc.kind == "queue-full"
    return False


def run_server_smoke(
    clients: int = 4,
    points: int = 72,
    jobs: int = 4,
    config: ServerConfig | None = None,
) -> SmokeReport:
    """Run the full self-test; see the module docstring for the steps."""
    report = SmokeReport(points=points, clients=clients)
    requests = fig4_requests(points)
    report.points = len(requests)

    with get_tracer().span("server.smoke", category="server",
                           clients=clients, points=len(requests)):
        baseline = CompileService().sweep(requests)
        expected = [artifact_signature(slot) for slot in baseline]

        if config is None:
            config = ServerConfig(port=0, jobs=jobs)
        else:
            config.port = 0
        # the self-test's own load must be admissible in full: C clients
        # each admit P points concurrently.  Rejection behaviour is
        # covered by the dedicated tiny-daemon probe below.
        config.max_queue_depth = max(config.max_queue_depth,
                                     clients * len(requests))
        server = ReproServer(config).start()
        try:
            host, port = server.address
            got: dict[str, list[str] | None] = {}
            errors: list[str] = []

            def drive(client_id: str) -> None:
                try:
                    with ServerClient(host, port,
                                      client_id=client_id) as client:
                        slots = client.sweep(requests)
                    got[client_id] = [artifact_signature(s) for s in slots]
                except Exception as exc:
                    errors.append(f"{client_id}: {type(exc).__name__}: {exc}")
                    got[client_id] = None

            threads = [
                threading.Thread(target=drive, args=(f"client-{i}",),
                                 name=f"smoke-client-{i}")
                for i in range(clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            report.client_errors = errors
            report.mismatches = sum(
                signature != want
                for signatures in got.values() if signatures is not None
                for signature, want in zip(signatures, expected)
            )
            complete = all(
                signatures is not None and len(signatures) == len(expected)
                for signatures in got.values()
            ) and len(got) == clients
            report.identical = complete and report.mismatches == 0

            batch = server.batcher.snapshot()
            admission = server.admission.snapshot()
            report.coalesced = int(batch["coalesced"])
            report.batches = int(batch["batches"])
            report.compiles = int(
                server.service.metrics.snapshot()["compiles"])
            report.rejected = (
                int(admission["rejected_queue"])
                + int(admission["rejected_quota"])
                + int(admission["rejected_draining"])
            )
            report.stats = server.stats()
        finally:
            server.drain()

        report.rejection_probe_ok = _probe_admission()
    return report
