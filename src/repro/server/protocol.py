"""The wire protocol of the compile daemon: newline-delimited JSON frames.

One frame is one JSON object on one line (UTF-8, ``\\n``-terminated) —
grep-able, implementable from any language with a socket and a JSON
library, and streaming-friendly (the same framing as the telemetry JSONL
sink and the sweep journal).

Requests carry ``{"id": <int>, "op": <str>, "client": <str>, ...}``;
responses echo the ``id`` with either ``"ok": true`` and an op-specific
body, or ``"ok": false`` and a structured error
``{"code": <int>, "kind": <str>, "message": <str>}``.  The codes follow
HTTP where HTTP has the right word for it: 400 for a malformed frame,
404 for an unknown op, **429 for an admission-control rejection** (queue
full or quota exhausted — the explicit-rejection contract of
docs/SERVER.md), 503 while draining, 500 for a server bug.

Modules travel as their canonical mini-C rendering
(:func:`repro.ir.printer.print_module`) and are re-parsed server-side;
the round trip is print-stable, so the server-side fingerprint equals
the client-side one and the determinism contract holds across the wire.
Artifacts travel as base64-encoded pickles (the same serialization the
disk cache tier already trusts — the daemon is an *intra-trust-domain*
service; see the deployment notes in docs/SERVER.md).
"""

from __future__ import annotations

import base64
import json
import pickle
from dataclasses import dataclass
from typing import Any

from ..compilers.flags import FlagSet
from ..devices import device_by_name
from ..frontend import parse_module
from ..ir.printer import print_module
from ..service.fingerprint import CompileRequest

PROTOCOL = "repro-server-v1"

#: request ops a server must answer
OPS = ("hello", "compile", "sweep", "status", "stats", "shutdown")

# -- error codes ---------------------------------------------------------------

BAD_REQUEST = 400
UNKNOWN_OP = 404
REJECTED = 429
INTERNAL = 500
DRAINING = 503


class ProtocolError(ValueError):
    """A frame that does not parse or does not validate."""


class ServerError(RuntimeError):
    """Client-side view of an ``"ok": false`` response."""

    def __init__(self, code: int, kind: str, message: str) -> None:
        super().__init__(f"[{code} {kind}] {message}")
        self.code = code
        self.kind = kind
        self.message = message


class ServerRejected(ServerError):
    """An admission-control rejection (429/503): the request was refused
    *before* any compile work — retry later or against another daemon."""


# -- framing -------------------------------------------------------------------

def encode_frame(message: dict[str, Any]) -> bytes:
    """One message as one newline-terminated JSON line."""
    return (json.dumps(message, sort_keys=True) + "\n").encode("utf-8")


def decode_frame(line: bytes | str) -> dict[str, Any]:
    """Parse one frame; raises :class:`ProtocolError` on garbage (the
    server answers 400 and *keeps the connection alive*)."""
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"frame is not UTF-8: {exc}") from None
    line = line.strip()
    if not line:
        raise ProtocolError("empty frame")
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"frame is not JSON: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(message).__name__}"
        )
    return message


def validate_request(message: dict[str, Any]) -> tuple[str, str]:
    """Check the request envelope; returns ``(op, client)``."""
    op = message.get("op")
    if not isinstance(op, str):
        raise ProtocolError("request has no 'op' string")
    if "id" in message and not isinstance(message["id"], (int, str)):
        raise ProtocolError("'id' must be an int or string")
    client = message.get("client", "anonymous")
    if not isinstance(client, str) or not client:
        raise ProtocolError("'client' must be a non-empty string")
    return op, client


# -- responses -----------------------------------------------------------------

def ok_response(request_id: Any, **body: Any) -> dict[str, Any]:
    return {"id": request_id, "ok": True, **body}


def error_response(request_id: Any, code: int, kind: str,
                   message: str) -> dict[str, Any]:
    return {
        "id": request_id,
        "ok": False,
        "error": {"code": code, "kind": kind, "message": message},
    }


def raise_for_error(response: dict[str, Any]) -> dict[str, Any]:
    """Client side: pass an ok response through, raise a typed error
    otherwise."""
    if response.get("ok"):
        return response
    error = response.get("error") or {}
    code = int(error.get("code", INTERNAL))
    kind = str(error.get("kind", "error"))
    message = str(error.get("message", "unknown server error"))
    if code in (REJECTED, DRAINING):
        raise ServerRejected(code, kind, message)
    raise ServerError(code, kind, message)


# -- compile points on the wire ------------------------------------------------

@dataclass(frozen=True)
class WirePoint:
    """One compile point as it crosses the wire (pre-parse form)."""

    source: str
    name: str
    compiler: str
    target: str
    flags: dict[str, Any] | None = None
    device: str | None = None
    label: str = ""


def flags_to_wire(flags: FlagSet | None) -> dict[str, Any] | None:
    if flags is None:
        return None
    return {
        "compiler": flags.compiler,
        "flags": list(flags.flags),
        "gridify_blocksize": (
            list(flags.gridify_blocksize)
            if flags.gridify_blocksize is not None else None
        ),
    }


def flags_from_wire(payload: dict[str, Any] | None) -> FlagSet | None:
    if payload is None:
        return None
    if not isinstance(payload, dict) or "compiler" not in payload:
        raise ProtocolError(f"bad flags payload: {payload!r}")
    blocksize = payload.get("gridify_blocksize")
    return FlagSet(
        compiler=payload["compiler"],
        flags=tuple(payload.get("flags", ())),
        gridify_blocksize=tuple(blocksize) if blocksize else None,
    )


def point_to_wire(request: CompileRequest) -> dict[str, Any]:
    """A :class:`CompileRequest` as a JSON-safe dict.  The module goes
    out as its canonical print — the exact text the fingerprint is
    computed over, so re-parsing it server-side reproduces the
    fingerprint bit for bit."""
    return {
        "source": print_module(request.module),
        "name": request.module.name,
        "compiler": request.compiler,
        "target": request.target,
        "flags": flags_to_wire(request.flags),
        "device": request.device.name if request.device is not None else None,
        "label": request.label,
    }


def point_from_wire(payload: dict[str, Any]) -> CompileRequest:
    """Rebuild a :class:`CompileRequest` from its wire form (parses the
    canonical source).  Raises :class:`ProtocolError` on a malformed
    payload — including source that does not parse."""
    if not isinstance(payload, dict):
        raise ProtocolError(f"compile point must be an object, "
                            f"got {type(payload).__name__}")
    for key in ("source", "compiler", "target"):
        if not isinstance(payload.get(key), str) or not payload[key]:
            raise ProtocolError(f"compile point needs a non-empty {key!r}")
    name = payload.get("name") or "module"
    if not isinstance(name, str):
        raise ProtocolError("'name' must be a string")
    try:
        module = parse_module(payload["source"], name)
    except Exception as exc:
        raise ProtocolError(f"source does not parse: {exc}") from None
    device = None
    if payload.get("device") is not None:
        try:
            device = device_by_name(payload["device"])
        except Exception as exc:
            raise ProtocolError(f"unknown device {payload['device']!r}: "
                                f"{exc}") from None
    return CompileRequest(
        module,
        payload["compiler"],
        payload["target"],
        flags_from_wire(payload.get("flags")),
        device,
        str(payload.get("label", "")),
    )


# -- artifacts on the wire -----------------------------------------------------

def pack_artifact(artifact: Any) -> str:
    """Base64 text of the pickled artifact (JSON-safe)."""
    return base64.b64encode(
        pickle.dumps(artifact, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def unpack_artifact(packed: str) -> Any:
    try:
        return pickle.loads(base64.b64decode(packed.encode("ascii")))
    except Exception as exc:
        raise ProtocolError(f"artifact payload does not decode: {exc}") \
            from None


def slot_to_wire(result: Any) -> dict[str, Any]:
    """One sweep slot (artifact or JobError) as a wire dict."""
    from ..service.scheduler import JobError

    if isinstance(result, JobError):
        return {
            "status": "error",
            "kind": result.kind,
            "message": result.message,
            "label": result.label,
            "fingerprint": result.fingerprint,
            "seconds": result.seconds,
        }
    return {"status": "ok", "artifact": pack_artifact(result)}


def slot_from_wire(payload: dict[str, Any]) -> Any:
    """Rebuild a sweep slot: the artifact, or a :class:`JobError` with
    its structured fields — byte-compatible with the in-process path."""
    from ..service.scheduler import JobError

    if not isinstance(payload, dict) or "status" not in payload:
        raise ProtocolError(f"bad sweep slot: {payload!r}")
    if payload["status"] == "error":
        return JobError(
            str(payload.get("label", "")),
            str(payload.get("fingerprint", "")),
            str(payload.get("kind", "error")),
            str(payload.get("message", "")),
            float(payload.get("seconds", 0.0)),
        )
    if payload["status"] != "ok" or "artifact" not in payload:
        raise ProtocolError(f"bad sweep slot: {payload!r}")
    return unpack_artifact(payload["artifact"])
