"""Client library for the compile daemon (and the ``repro client`` CLI).

:class:`ServerClient` is a thin, synchronous, thread-unsafe handle on
one TCP connection — open one per worker thread (connections are cheap;
the daemon is built for many).  It speaks :mod:`.protocol` frames and
gives back the same Python objects the in-process
:class:`~repro.service.scheduler.CompileService` would return:
``compile_module`` returns the artifact (or raises the replayed compiler
error), ``sweep`` returns artifact-or-:class:`JobError` slots in request
order.  An admission refusal raises
:class:`~repro.server.protocol.ServerRejected` — the caller decides
whether to back off, retry, or fail.

``spawn_local()`` starts an in-process daemon on an ephemeral port and
returns a connected client — the zero-setup path the docs examples and
``--spawn`` CLI flag use, and exactly the stack a remote deployment
runs, minus the network distance.
"""

from __future__ import annotations

import socket
from contextlib import contextmanager
from typing import Any, Iterator, Sequence

from ..service.fingerprint import CompileRequest
from ..telemetry.spans import get_tracer
from . import protocol
from .daemon import ReproServer, ServerConfig

__all__ = ["ServerClient", "spawn_local"]


class ServerClient:
    """One connection to a ``repro serve`` daemon."""

    def __init__(self, host: str = "127.0.0.1", port: int = 7453,
                 client_id: str = "anonymous",
                 timeout_s: float | None = 120.0) -> None:
        self.host = host
        self.port = port
        self.client_id = client_id
        self._ids = 0
        self._sock = socket.create_connection((host, port), timeout=timeout_s)
        self._rfile = self._sock.makefile("rb")

    # -- plumbing --------------------------------------------------------------

    def _call(self, op: str, **payload: Any) -> dict[str, Any]:
        self._ids += 1
        frame = {"id": self._ids, "op": op, "client": self.client_id,
                 **payload}
        with get_tracer().span("client.request", category="server",
                               label=self.client_id, op=op):
            self._sock.sendall(protocol.encode_frame(frame))
            line = self._rfile.readline()
        if not line:
            raise ConnectionError(
                f"server {self.host}:{self.port} closed the connection"
            )
        response = protocol.decode_frame(line)
        if response.get("id") not in (self._ids, None):
            raise protocol.ProtocolError(
                f"response id {response.get('id')!r} does not match "
                f"request id {self._ids}"
            )
        return protocol.raise_for_error(response)

    def close(self) -> None:
        try:
            self._rfile.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- endpoints -------------------------------------------------------------

    def hello(self) -> dict[str, Any]:
        response = self._call("hello")
        return {k: v for k, v in response.items() if k not in ("id", "ok")}

    def status(self) -> dict[str, Any]:
        return self._call("status")["status"]

    def stats(self) -> dict[str, Any]:
        return self._call("stats")["stats"]

    def shutdown(self) -> dict[str, Any]:
        """Ask the daemon to drain and exit (answers before it goes)."""
        return self._call("shutdown")

    def compile_request(self, request: CompileRequest) -> Any:
        """One compile through the daemon; same contract as
        :meth:`CompileService.compile_request` (raises the replayed
        compiler error on a deterministic refusal)."""
        response = self._call("compile", point=protocol.point_to_wire(request))
        result = protocol.slot_from_wire(response["result"])
        from ..service.scheduler import JobError

        if isinstance(result, JobError):
            raise result
        return result

    def compile_source(self, source: str, compiler: str, target: str,
                       name: str = "module", **kwargs: Any) -> Any:
        """Compile mini-C source text without building IR client-side."""
        from ..frontend import parse_module

        return self.compile_request(
            CompileRequest(parse_module(source, name), compiler, target,
                           **kwargs)
        )

    def sweep(self, requests: Sequence[CompileRequest]) -> list[Any]:
        """A fault-tolerant batch, same contract as
        :meth:`CompileService.sweep`: one slot per request, in request
        order, each an artifact or a :class:`JobError`."""
        response = self._call(
            "sweep", points=[protocol.point_to_wire(r) for r in requests]
        )
        return [protocol.slot_from_wire(slot) for slot in response["results"]]


@contextmanager
def spawn_local(
    config: ServerConfig | None = None,
    client_id: str = "local",
) -> Iterator[tuple[ReproServer, ServerClient]]:
    """Start an in-process daemon on an ephemeral port, yield
    ``(server, client)``, drain on exit."""
    config = config or ServerConfig()
    config.port = 0  # always ephemeral: never collide with a real daemon
    server = ReproServer(config).start()
    try:
        host, port = server.address
        with ServerClient(host, port, client_id=client_id) as client:
            yield server, client
    finally:
        server.drain()
