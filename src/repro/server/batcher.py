"""Request batching and coalescing over one shared :class:`CompileService`.

The daemon's workload is many small requests from many clients, and the
compilers are pure — so the batcher applies two collapses before any
compile runs:

* **coalescing** — while a fingerprint is in flight, every further
  request for it (from *any* client) joins the same ticket and receives
  the same result; N concurrent identical requests cost exactly one
  compile.  This is the server-side twin of the scheduler's in-flight
  dedup, but it spans *connections*, not just threads, and it counts
  (``coalesced``) so the savings are visible in ``server.*`` gauges.
* **micro-batching** — admitted points are collected for up to
  ``window_s`` (or ``max_batch`` points, whichever first) and submitted
  as one :meth:`CompileService.sweep`, so a burst of single compiles
  from independent clients rides one scheduler batch (one journal pass,
  one breaker advance, pooled workers kept busy).

Determinism: batching changes *when* a compile runs and *which* sweep it
shares, never its inputs — fingerprints are content addresses and the
service's cache/dedup guarantee byte-identical artifacts regardless of
batch composition.  A sweep request's slots come back in *its* request
order even when its points were interleaved with other clients'.

The batcher owns one dispatch thread; ``close()`` drains the queue,
finishes in-flight sweeps, and only then stops — the graceful-shutdown
path of the daemon.
"""

from __future__ import annotations

import threading
import time
from typing import Any

from ..service.fingerprint import CompileRequest
from ..service.scheduler import CompileService, JobError
from ..telemetry.spans import get_tracer

__all__ = ["BatchTicket", "CoalescingBatcher"]


class BatchTicket:
    """One fingerprint's pending result; shared by every coalesced
    waiter.  ``wait()`` returns the artifact or the :class:`JobError`
    (never raises — slots are data, exactly like ``sweep`` slots)."""

    __slots__ = ("fingerprint", "request", "waiters", "_done", "_result")

    def __init__(self, request: CompileRequest) -> None:
        self.fingerprint = request.fingerprint
        self.request = request
        self.waiters = 1
        self._done = threading.Event()
        self._result: Any = None

    def resolve(self, result: Any) -> None:
        self._result = result
        self._done.set()

    def wait(self, timeout_s: float | None = None) -> Any:
        if not self._done.wait(timeout_s):
            return JobError(
                self.request.label or self.request.module.name,
                self.fingerprint, "timeout",
                f"server result not ready within {timeout_s:g}s",
                timeout_s or 0.0,
            )
        return self._result


class CoalescingBatcher:
    """Fingerprint-coalescing micro-batcher in front of a
    :class:`CompileService`."""

    def __init__(
        self,
        service: CompileService,
        window_s: float = 0.005,
        max_batch: int = 32,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.service = service
        self.window_s = max(0.0, window_s)
        self.max_batch = max_batch
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._queue: list[BatchTicket] = []
        #: every undone ticket (queued or mid-sweep), by fingerprint —
        #: the coalescing index
        self._pending: dict[str, BatchTicket] = {}
        self._closed = False
        # counters (server stats)
        self.submitted = 0
        self.coalesced = 0
        self.batches = 0
        self.batched_points = 0
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-server-batcher",
            daemon=True,
        )
        self._dispatcher.start()

    # -- producer side ---------------------------------------------------------

    def submit(self, request: CompileRequest) -> BatchTicket:
        """Enqueue one point; identical in-flight fingerprints coalesce
        onto the existing ticket (no new queue entry, no new compile)."""
        with self._lock:
            if self._closed:
                raise RuntimeError("batcher is closed")
            self.submitted += 1
            ticket = self._pending.get(request.fingerprint)
            if ticket is not None:
                ticket.waiters += 1
                self.coalesced += 1
                tracer = get_tracer()
                if tracer.enabled:
                    tracer.record_span(
                        "server.coalesce", 0.0, category="server",
                        label=request.label or request.module.name,
                        fingerprint=request.fingerprint[:12],
                        waiters=ticket.waiters,
                    )
                return ticket
            ticket = BatchTicket(request)
            self._pending[request.fingerprint] = ticket
            self._queue.append(ticket)
            self._wakeup.notify()
            return ticket

    def submit_many(self, requests: list[CompileRequest]) -> list[BatchTicket]:
        return [self.submit(request) for request in requests]

    # -- dispatch side ---------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            batch = self._collect_batch()
            if batch is None:
                return
            self._run_batch(batch)

    def _collect_batch(self) -> list[BatchTicket] | None:
        """Block for the first ticket, then keep the window open until it
        expires or the batch is full.  Returns None when closed and
        drained."""
        with self._lock:
            while not self._queue and not self._closed:
                self._wakeup.wait()
            if not self._queue:
                return None  # closed and drained
        deadline = None
        while True:
            with self._lock:
                if len(self._queue) >= self.max_batch or self._closed:
                    break
                if deadline is None:
                    deadline = time.monotonic() + self.window_s
                    remaining = self.window_s
                else:
                    remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._wakeup.wait(timeout=remaining)
        with self._lock:
            batch, self._queue = (self._queue[: self.max_batch],
                                  self._queue[self.max_batch:])
            return batch

    def _run_batch(self, batch: list[BatchTicket]) -> None:
        tracer = get_tracer()
        with tracer.span(
            "server.batch", category="server",
            points=len(batch),
            coalesced_waiters=sum(t.waiters for t in batch) - len(batch),
        ):
            try:
                results = self.service.sweep([t.request for t in batch])
            except Exception as exc:  # defensive: sweep slots errors itself
                results = [
                    JobError(t.request.label or t.request.module.name,
                             t.fingerprint, "error", str(exc))
                    for t in batch
                ]
        with self._lock:
            self.batches += 1
            self.batched_points += len(batch)
        for ticket, result in zip(batch, results):
            # unindex *before* resolving: a new identical request after
            # resolution must get a fresh compile ticket (which the
            # service cache will answer instantly) rather than a stale one
            with self._lock:
                if self._pending.get(ticket.fingerprint) is ticket:
                    del self._pending[ticket.fingerprint]
            ticket.resolve(result)

    # -- lifecycle -------------------------------------------------------------

    def close(self, timeout_s: float | None = 30.0) -> bool:
        """Stop accepting work, flush the queue, join the dispatcher.
        Returns False if the dispatcher did not finish in time."""
        with self._lock:
            if self._closed:
                return True
            self._closed = True
            self._wakeup.notify_all()
        self._dispatcher.join(timeout=timeout_s)
        return not self._dispatcher.is_alive()

    def snapshot(self) -> dict[str, int | float]:
        with self._lock:
            return {
                "submitted": self.submitted,
                "coalesced": self.coalesced,
                "batches": self.batches,
                "batched_points": self.batched_points,
                "queued": len(self._queue),
                "pending": len(self._pending),
                "window_s": self.window_s,
                "max_batch": self.max_batch,
            }
