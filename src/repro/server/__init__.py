"""repro.server — compile-as-a-service: the daemon over the service layer.

The paper's methodology is a large sweep of (kernel x compiler x target)
compilations — exactly the workload shape of a shared build farm — and
ROADMAP item 1 asks for the service layer to stop being per-process.
This package is that server boundary: one long-lived daemon, many
concurrent clients, one shared verified compile pipeline:

* :mod:`.protocol` — newline-delimited JSON frames over TCP; modules
  travel as their canonical mini-C print (fingerprint-stable round
  trip), artifacts as pickles; 429-style structured refusals;
* :mod:`.daemon` — :class:`ReproServer`: threaded TCP server exposing
  ``compile`` / ``sweep`` / ``status`` / ``stats`` / ``shutdown`` over
  one :class:`~repro.service.scheduler.CompileService` with a
  hash-prefix-sharded artifact store;
* :mod:`.batcher` — cross-client request coalescing (N identical
  in-flight requests, one compile) and micro-batching into scheduler
  sweeps;
* :mod:`.quotas` — admission control: bounded queue depth, per-client
  token buckets, graceful drain (429 busy / 503 draining — reject,
  never hang);
* :mod:`.client` — :class:`ServerClient` + ``spawn_local`` (the
  ``repro client`` CLI rides on these);
* :mod:`.smoke` — the end-to-end self-test behind
  ``repro serve --self-test`` and the CI server-smoke gate.

Determinism contract: a sweep through the daemon is **byte-identical**
to the in-process path — the wire form is the canonical print the
fingerprint is computed over, and the compilers are pure functions of
the fingerprint.  See docs/SERVER.md.
"""

from .batcher import BatchTicket, CoalescingBatcher
from .client import ServerClient, spawn_local
from .daemon import ReproServer, ServerConfig
from .protocol import (
    PROTOCOL,
    ProtocolError,
    ServerError,
    ServerRejected,
    decode_frame,
    encode_frame,
    point_from_wire,
    point_to_wire,
    slot_from_wire,
    slot_to_wire,
)
from .quotas import Admission, AdmissionController, TokenBucket
from .smoke import SmokeReport, artifact_signature, fig4_requests, run_server_smoke

__all__ = [
    "Admission",
    "AdmissionController",
    "BatchTicket",
    "CoalescingBatcher",
    "PROTOCOL",
    "ProtocolError",
    "ReproServer",
    "ServerClient",
    "ServerConfig",
    "ServerError",
    "ServerRejected",
    "SmokeReport",
    "TokenBucket",
    "artifact_signature",
    "decode_frame",
    "encode_frame",
    "fig4_requests",
    "point_from_wire",
    "point_to_wire",
    "run_server_smoke",
    "slot_from_wire",
    "slot_to_wire",
    "spawn_local",
]
