"""Admission control for the compile daemon: queue bounds + token buckets.

Two independent gates run *before* any compile work is queued, so an
overloaded daemon fails fast with an explicit 429-style rejection
instead of letting latency grow without bound:

* :class:`AdmissionController` — a global bound on admitted-but-
  unfinished work (queue depth).  Depth is counted in *points* (a sweep
  of 72 points costs 72), matching the unit the scheduler actually
  queues.
* :class:`TokenBucket` per client — sustained-rate + burst quotas.
  Buckets refill continuously on an injectable
  :class:`~repro.service.resilience.Clock`, so tests drive them on a
  :class:`~repro.service.resilience.SimClock` and never sleep.

Draining is a third, terminal state: a daemon that received ``shutdown``
finishes everything already admitted and answers 503 to everything new —
clients distinguish "busy, retry" (429) from "going away, go elsewhere"
(503) by code.

Every decision is returned as an :class:`Admission` value, never an
exception: the daemon turns refusals into protocol error frames, and the
counters (admitted / rejected per reason) publish as ``server.*`` gauges.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from ..service.resilience import Clock, SystemClock

__all__ = ["Admission", "AdmissionController", "TokenBucket"]


@dataclass(frozen=True)
class Admission:
    """One admission decision.  ``allowed`` or a refusal with a machine-
    readable ``reason`` in {"queue-full", "quota", "draining"} and a
    human-readable ``detail``."""

    allowed: bool
    reason: str = ""
    detail: str = ""

    @classmethod
    def ok(cls) -> "Admission":
        return cls(True)

    @classmethod
    def refuse(cls, reason: str, detail: str) -> "Admission":
        return cls(False, reason, detail)


class TokenBucket:
    """A continuously-refilling token bucket (one per client).

    ``rate`` tokens accrue per second up to ``burst``; admitting a
    request spends its point count.  A fresh bucket starts full, so a
    new client can always burst before settling to the sustained rate.
    """

    def __init__(self, rate: float, burst: float,
                 clock: Clock | None = None) -> None:
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be > 0")
        self.rate = rate
        self.burst = burst
        self._clock = clock if clock is not None else SystemClock()
        self._tokens = burst
        self._stamp = self._clock.now()
        self._lock = threading.Lock()

    def _refill(self) -> None:
        now = self._clock.now()
        elapsed = max(now - self._stamp, 0.0)
        self._stamp = now
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)

    def try_spend(self, cost: float) -> bool:
        """Spend *cost* tokens if available; never blocks."""
        with self._lock:
            self._refill()
            if self._tokens + 1e-9 < cost:
                return False
            self._tokens -= cost
            return True

    def available(self) -> float:
        with self._lock:
            self._refill()
            return self._tokens


class AdmissionController:
    """The daemon's front gate: queue depth, per-client quotas, drain.

    ``admit(client, points)`` is the only entry point; a refusal names
    its reason so the protocol layer can answer 429 (load) or 503
    (draining) precisely.  ``release(points)`` is called as work
    finishes — depth counts admitted-but-unfinished points.
    """

    def __init__(
        self,
        max_queue_depth: int = 256,
        quota_rate: float | None = None,
        quota_burst: float | None = None,
        clock: Clock | None = None,
    ) -> None:
        if max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        self.max_queue_depth = max_queue_depth
        self.quota_rate = quota_rate
        self.quota_burst = (
            quota_burst if quota_burst is not None
            else (quota_rate * 2 if quota_rate is not None else None)
        )
        self._clock = clock if clock is not None else SystemClock()
        self._lock = threading.Lock()
        self._depth = 0
        self._draining = False
        self._idle = threading.Condition(self._lock)
        self._buckets: dict[str, TokenBucket] = {}
        # counters (read by the server's stats endpoint / gauges)
        self.admitted = 0
        self.rejected_queue = 0
        self.rejected_quota = 0
        self.rejected_draining = 0

    # -- the gate --------------------------------------------------------------

    def admit(self, client: str, points: int = 1) -> Admission:
        """Decide one request of *points* compile points for *client*."""
        points = max(1, int(points))
        with self._lock:
            if self._draining:
                self.rejected_draining += 1
                return Admission.refuse(
                    "draining", "server is draining; no new work accepted"
                )
            if self._depth + points > self.max_queue_depth:
                self.rejected_queue += 1
                return Admission.refuse(
                    "queue-full",
                    f"queue depth {self._depth} + {points} would exceed "
                    f"{self.max_queue_depth}",
                )
            bucket = self._bucket(client)
            if bucket is not None and not bucket.try_spend(float(points)):
                self.rejected_quota += 1
                return Admission.refuse(
                    "quota",
                    f"client {client!r} is over its rate quota "
                    f"({bucket.available():.1f} of {points} tokens "
                    f"available)",
                )
            self._depth += points
            self.admitted += points
            return Admission.ok()

    def release(self, points: int = 1) -> None:
        """Return *points* of finished (or failed) work to the budget."""
        with self._lock:
            self._depth = max(0, self._depth - max(1, int(points)))
            if self._depth == 0:
                self._idle.notify_all()

    # -- drain -----------------------------------------------------------------

    def start_draining(self) -> None:
        with self._lock:
            self._draining = True

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    def wait_idle(self, timeout_s: float | None = None) -> bool:
        """Block until every admitted point has been released (graceful
        drain); returns False on timeout."""
        with self._lock:
            return self._idle.wait_for(lambda: self._depth == 0,
                                       timeout=timeout_s)

    # -- views -----------------------------------------------------------------

    @property
    def depth(self) -> int:
        with self._lock:
            return self._depth

    def _bucket(self, client: str) -> TokenBucket | None:
        if self.quota_rate is None:
            return None
        bucket = self._buckets.get(client)
        if bucket is None:
            bucket = TokenBucket(self.quota_rate,
                                 self.quota_burst or self.quota_rate * 2,
                                 clock=self._clock)
            self._buckets[client] = bucket
        return bucket

    def snapshot(self) -> dict[str, object]:
        with self._lock:
            clients = {
                name: round(bucket.available(), 3)
                for name, bucket in sorted(self._buckets.items())
            }
            return {
                "depth": self._depth,
                "max_queue_depth": self.max_queue_depth,
                "draining": self._draining,
                "admitted": self.admitted,
                "rejected_queue": self.rejected_queue,
                "rejected_quota": self.rejected_quota,
                "rejected_draining": self.rejected_draining,
                "quota_rate": self.quota_rate,
                "quota_burst": self.quota_burst,
                "client_tokens": clients,
            }
