"""The compile daemon: a threaded JSON-over-TCP server over
:class:`CompileService`.

One :class:`ReproServer` owns the whole server stack:

* a shared :class:`~repro.service.scheduler.CompileService` (worker
  pool, retries/breaker/hedging when configured, fault injection via
  ``--faults`` — the server path is inside the same resilience envelope
  as the library path);
* a :class:`~repro.service.cache.ShardedArtifactCache` disk tier
  (hash-prefix shards, per-shard locks, optional read-through peers);
* a :class:`~repro.server.batcher.CoalescingBatcher` (cross-client
  coalescing + micro-batching);
* an :class:`~repro.server.quotas.AdmissionController` (queue bound,
  per-client token buckets, drain state).

Each TCP connection is handled on its own thread
(``socketserver.ThreadingMixIn``) and may carry any number of
newline-delimited JSON frames (see :mod:`.protocol`).  A malformed frame
answers 400 *on the same connection* and the connection stays up; an
admission refusal answers 429/503 without queueing anything.

Telemetry: every request runs inside a ``server.request`` span tagged
``client=<id>`` and ``lane=client:<id>`` — the Chrome/Perfetto export
groups ``lane``-tagged spans into one synthetic timeline lane per
client, so a daemon trace reads as per-client swimlanes no matter which
connection threads served them.  Counters publish as ``server.*``
gauges next to the existing ``service.*`` / ``cache.*`` families.

Shutdown is graceful by contract: ``drain()`` flips admission to
503-everything-new, waits for admitted work to finish, flushes the
batcher, then closes the listener.  ``repro serve`` wires SIGINT to it.
"""

from __future__ import annotations

import socket
import socketserver
import threading
import time
from dataclasses import dataclass, field
from typing import Any

from ..service.cache import ShardedArtifactCache
from ..service.scheduler import CompileService
from ..telemetry.registry import MetricsRegistry
from ..telemetry.spans import get_tracer
from . import protocol
from .batcher import CoalescingBatcher
from .quotas import AdmissionController

__all__ = ["ServerConfig", "ReproServer"]

#: server identity in `hello` responses
SERVER_NAME = "repro.server"


@dataclass
class ServerConfig:
    """Everything ``repro serve`` can set, in one place."""

    host: str = "127.0.0.1"
    port: int = 7453
    jobs: int = 4
    cache_dir: str | None = None
    shards: int = 16
    max_entries: int = 2048
    peer_dirs: tuple[str, ...] = ()
    max_queue_depth: int = 256
    quota_rate: float | None = None
    quota_burst: float | None = None
    batch_window_s: float = 0.005
    max_batch: int = 32
    #: per-request result timeout at the connection handler (safety net;
    #: None waits forever)
    result_timeout_s: float | None = 120.0
    #: extra CompileService kwargs (retry/breaker/hedge/fault_plan/...)
    service_kwargs: dict[str, Any] = field(default_factory=dict)


class _Handler(socketserver.StreamRequestHandler):
    """One connection: read frames, answer frames, never crash the
    connection on bad input."""

    server: "_TcpServer"

    def handle(self) -> None:
        daemon = self.server.daemon
        daemon.connections_total += 1
        while True:
            try:
                line = self.rfile.readline()
            except (ConnectionError, OSError):
                return
            if not line:
                return  # client closed
            try:
                response = daemon.handle_frame(line)
            except Exception as exc:  # a handler bug must not kill the daemon
                response = protocol.error_response(
                    None, protocol.INTERNAL, "internal",
                    f"{type(exc).__name__}: {exc}",
                )
            try:
                self.wfile.write(protocol.encode_frame(response))
                self.wfile.flush()
            except (ConnectionError, OSError):
                return
            if response.get("closing"):
                return


class _TcpServer(socketserver.ThreadingMixIn, socketserver.TCPServer):
    allow_reuse_address = True
    daemon_threads = True
    daemon: "ReproServer"


class ReproServer:
    """The compile-as-a-service daemon (see docs/SERVER.md)."""

    def __init__(self, config: ServerConfig | None = None) -> None:
        self.config = config or ServerConfig()
        cache = ShardedArtifactCache(
            shards=self.config.shards,
            max_entries=self.config.max_entries,
            cache_dir=self.config.cache_dir,
            peer_dirs=self.config.peer_dirs,
        )
        self.service = CompileService(
            cache=cache, jobs=self.config.jobs,
            **self.config.service_kwargs,
        )
        self.batcher = CoalescingBatcher(
            self.service,
            window_s=self.config.batch_window_s,
            max_batch=self.config.max_batch,
        )
        self.admission = AdmissionController(
            max_queue_depth=self.config.max_queue_depth,
            quota_rate=self.config.quota_rate,
            quota_burst=self.config.quota_burst,
        )
        self.started_at = time.monotonic()
        self.requests_total = 0
        self.connections_total = 0
        self.protocol_errors = 0
        self._tcp: _TcpServer | None = None
        self._thread: threading.Thread | None = None
        self._stopped = threading.Event()
        self._drain_lock = threading.Lock()

    # -- lifecycle -------------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — resolve after :meth:`start` when the
        configured port is 0 (ephemeral)."""
        if self._tcp is not None:
            return self._tcp.server_address[:2]
        return (self.config.host, self.config.port)

    def start(self) -> "ReproServer":
        """Bind and serve on a background thread; returns self."""
        if self._tcp is not None:
            raise RuntimeError("server already started")
        self._tcp = _TcpServer((self.config.host, self.config.port), _Handler,
                               bind_and_activate=True)
        self._tcp.daemon = self
        self._thread = threading.Thread(
            target=self._tcp.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-server-accept", daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Foreground mode (the CLI): start, then block until drained."""
        if self._tcp is None:
            self.start()
        self._stopped.wait()

    def drain(self, timeout_s: float | None = 30.0) -> bool:
        """Graceful shutdown: refuse new work (503), finish admitted
        work, flush the batcher, stop the listener.  Idempotent."""
        self.admission.start_draining()
        drained = self.admission.wait_idle(timeout_s)
        with self._drain_lock:
            self.batcher.close(timeout_s)
            if self._tcp is not None:
                self._tcp.shutdown()
                self._tcp.server_close()
                self._tcp = None
            self.service.close()
            self._stopped.set()
        return drained

    def __enter__(self) -> "ReproServer":
        return self.start() if self._tcp is None else self

    def __exit__(self, *exc_info: object) -> None:
        self.drain()

    # -- the protocol surface --------------------------------------------------

    def handle_frame(self, line: bytes) -> dict[str, Any]:
        """Decode, admit, dispatch one frame; always returns a response
        frame (protocol errors included — the connection survives)."""
        try:
            message = protocol.decode_frame(line)
            op, client = protocol.validate_request(message)
        except protocol.ProtocolError as exc:
            self.protocol_errors += 1
            return protocol.error_response(None, protocol.BAD_REQUEST,
                                           "bad-request", str(exc))
        request_id = message.get("id")
        self.requests_total += 1
        tracer = get_tracer()
        with tracer.span(
            "server.request", category="server",
            label=client, client=client, lane=f"client:{client}", op=op,
        ) as span:
            try:
                if op == "hello":
                    return protocol.ok_response(request_id, **self._hello())
                if op == "status":
                    return protocol.ok_response(request_id,
                                                status=self.status())
                if op == "stats":
                    return protocol.ok_response(request_id, stats=self.stats())
                if op == "shutdown":
                    # flip to draining *now*; finish the drain off-thread so
                    # this response still reaches the client
                    self.admission.start_draining()
                    threading.Thread(target=self.drain, daemon=True,
                                     name="repro-server-drain").start()
                    return {
                        **protocol.ok_response(request_id, draining=True),
                        "closing": True,
                    }
                if op == "compile":
                    return self._handle_compile(request_id, client, message,
                                                span)
                if op == "sweep":
                    return self._handle_sweep(request_id, client, message,
                                              span)
            except protocol.ProtocolError as exc:
                self.protocol_errors += 1
                span.set(status="bad-request")
                return protocol.error_response(request_id,
                                               protocol.BAD_REQUEST,
                                               "bad-request", str(exc))
            span.set(status="unknown-op")
            return protocol.error_response(
                request_id, protocol.UNKNOWN_OP, "unknown-op",
                f"unknown op {op!r} (expected one of {', '.join(protocol.OPS)})",
            )

    # -- op handlers -----------------------------------------------------------

    def _handle_compile(self, request_id: Any, client: str,
                        message: dict[str, Any], span: Any) -> dict[str, Any]:
        request = protocol.point_from_wire(message.get("point"))
        admission = self.admission.admit(client, 1)
        if not admission.allowed:
            span.set(status=f"rejected-{admission.reason}")
            return self._refusal(request_id, admission)
        try:
            ticket = self.batcher.submit(request)
            result = ticket.wait(self.config.result_timeout_s)
        finally:
            self.admission.release(1)
        slot = protocol.slot_to_wire(result)
        span.set(status=slot["status"],
                 fingerprint=request.fingerprint[:12])
        return protocol.ok_response(
            request_id,
            fingerprint=request.fingerprint,
            result=slot,
        )

    def _handle_sweep(self, request_id: Any, client: str,
                      message: dict[str, Any], span: Any) -> dict[str, Any]:
        points = message.get("points")
        if not isinstance(points, list) or not points:
            raise protocol.ProtocolError("'points' must be a non-empty list")
        requests = [protocol.point_from_wire(p) for p in points]
        admission = self.admission.admit(client, len(requests))
        if not admission.allowed:
            span.set(status=f"rejected-{admission.reason}")
            return self._refusal(request_id, admission)
        try:
            tickets = self.batcher.submit_many(requests)
            results = [t.wait(self.config.result_timeout_s) for t in tickets]
        finally:
            self.admission.release(len(requests))
        slots = [protocol.slot_to_wire(r) for r in results]
        errors = sum(1 for s in slots if s["status"] != "ok")
        span.set(points=len(slots), errors=errors, status="done")
        return protocol.ok_response(request_id, results=slots)

    def _refusal(self, request_id: Any, admission) -> dict[str, Any]:
        code = (protocol.DRAINING if admission.reason == "draining"
                else protocol.REJECTED)
        return protocol.error_response(request_id, code, admission.reason,
                                       admission.detail)

    # -- views -----------------------------------------------------------------

    def _hello(self) -> dict[str, Any]:
        return {
            "server": SERVER_NAME,
            "protocol": protocol.PROTOCOL,
            "jobs": self.config.jobs,
            "shards": self.config.shards,
            "max_queue_depth": self.config.max_queue_depth,
        }

    def status(self) -> dict[str, Any]:
        """The cheap liveness view (queue, drain, uptime)."""
        return {
            "uptime_s": round(time.monotonic() - self.started_at, 3),
            "draining": self.admission.draining,
            "queue": self.admission.snapshot(),
            "batcher": self.batcher.snapshot(),
            "inflight": self.service.inflight_count(),
            "connections_total": self.connections_total,
            "requests_total": self.requests_total,
            "protocol_errors": self.protocol_errors,
        }

    def stats(self) -> dict[str, Any]:
        """The full counter dump: service + cache (+ per shard) + server."""
        snap = self.service.stats_snapshot()
        snap["server"] = self.status()
        cache = self.service.cache
        shard_fn = getattr(cache, "shard_snapshot", None)
        if shard_fn is not None:
            snap["cache_shards"] = shard_fn()
        return snap

    def publish(self, registry: MetricsRegistry) -> None:
        """Publish ``server.*`` gauges (plus the service/cache families)
        into the unified telemetry registry."""
        self.service.publish(registry)
        for name, value in self.batcher.snapshot().items():
            if isinstance(value, (int, float)):
                registry.gauge(f"server.{name}").set(float(value))
        admission = self.admission.snapshot()
        for name in ("depth", "admitted", "rejected_queue", "rejected_quota",
                     "rejected_draining"):
            registry.gauge(f"server.{name}").set(float(admission[name]))
        registry.gauge("server.requests").set(float(self.requests_total))
        registry.gauge("server.connections").set(float(self.connections_total))
        registry.gauge("server.protocol_errors").set(
            float(self.protocol_errors))

    def report_lines(self) -> list[str]:
        """Human summary (the CLI prints this on drain)."""
        batch = self.batcher.snapshot()
        admission = self.admission.snapshot()
        lines = [
            "-- compile server --",
            (
                f"requests {self.requests_total} over "
                f"{self.connections_total} connections "
                f"({self.protocol_errors} protocol errors)"
            ),
            (
                f"batching: {batch['batches']} batches / "
                f"{batch['batched_points']} points, "
                f"{batch['coalesced']} coalesced"
            ),
            (
                f"admission: {admission['admitted']} admitted, "
                f"{admission['rejected_queue']} queue-full, "
                f"{admission['rejected_quota']} over-quota, "
                f"{admission['rejected_draining']} while draining"
            ),
        ]
        return lines + self.service.report_lines()


def free_port(host: str = "127.0.0.1") -> int:
    """An OS-assigned free TCP port (tests and ``--port 0`` helpers)."""
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
        sock.bind((host, 0))
        return sock.getsockname()[1]
