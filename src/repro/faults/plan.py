"""Deterministic, seeded fault plans for the compile-service boundary.

The paper's portability story is dominated by *compiler fragility*: CAPS
3.4.1 shipped with a documented bug list, silently wrong codegen, and
target-specific refusals (PAPER.md sections III-IV), and modern OpenACC
compiler-validation studies find the same flakiness.  The simulated
compiler models, by contrast, never crash — so the service layer's
resilience (retry, breakers, hedging, resume) would be untestable
without *injected* failures.

``FaultPlan`` is that injector, built on one rule: **no global random
state**.  Every decision is a pure function of the plan seed, an
injection *site* (``compile``, ``compile.slow``, ``cache.read``,
``cache.write``, ``compile.persistent``), the request **fingerprint**,
and an **attempt counter** — a counter-based SHA-256 hash, exactly like
the service's content addresses.  Two sweeps with the same seed and the
same fingerprints see the same faults in the same places, regardless of
thread interleaving, ``--jobs``, warm caches, or resume — which is what
lets the determinism contract ("same seed + same fault plan => byte
identical results") be test-enforced.

Fault kinds (see :func:`parse_fault_spec` for the CLI grammar):

``transient``
    a compile attempt crashes with probability *p*, independently per
    ``(fingerprint, attempt)`` — the retryable kind; a retry is a fresh
    attempt with a fresh hash draw.
``persistent``
    a *fingerprint* is broken with probability *p* — every attempt
    fails, modeling the CAPS bug list (a kernel the compiler cannot
    build today will not build on retry either).
``slow``
    a compile attempt is inflated by ``s`` seconds with probability *p*
    (modeled latency — stragglers for the hedging path).
``cache-read`` / ``cache-write`` (or ``cache`` for both)
    an :class:`~repro.service.cache.ArtifactCache` access raises a
    flaky I/O error, keyed on the per-fingerprint access counter.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field

__all__ = [
    "FaultSpecError",
    "InjectedFault",
    "TransientCompileFault",
    "PersistentCompileFault",
    "FlakyIOError",
    "FaultRule",
    "FaultPlan",
    "parse_fault_spec",
    "is_injected_fault",
    "is_transient",
]


class FaultSpecError(ValueError):
    """A ``--faults`` spec string that does not parse."""


class InjectedFault(Exception):
    """Base class of every injected failure.

    ``transient`` is the retry contract: the service retries transient
    faults (a fresh attempt re-draws the hash) and treats non-transient
    ones as deterministic compiler behaviour.  Injected faults are never
    written to the artifact cache — they belong to a *plan*, not to the
    fingerprinted request, and a different plan must not replay them.
    """

    transient: bool = False

    def __init__(self, message: str, site: str = "", fingerprint: str = "",
                 attempt: int = 0) -> None:
        super().__init__(message)
        self.site = site
        self.fingerprint = fingerprint
        self.attempt = attempt


class TransientCompileFault(InjectedFault):
    """A one-attempt compiler crash (heals on retry by definition of the
    hash: the next attempt is a fresh draw)."""

    transient = True


class PersistentCompileFault(InjectedFault):
    """A per-fingerprint failure that every attempt replays — the CAPS
    bug-list model.  Not retryable; the breaker's food."""

    transient = False


class FlakyIOError(InjectedFault, OSError):
    """An injected ArtifactCache read/write failure (transient: the
    service degrades the access to a miss / skipped store)."""

    transient = True


def is_injected_fault(exc: BaseException) -> bool:
    return isinstance(exc, InjectedFault)


def is_transient(exc: BaseException) -> bool:
    """True for errors the retry policy may heal (injected transients
    and anything else flagging itself with a truthy ``transient``)."""
    return bool(getattr(exc, "transient", False))


_KINDS = ("transient", "persistent", "slow", "cache", "cache-read",
          "cache-write")


@dataclass(frozen=True)
class FaultRule:
    """One clause of a fault plan: a kind, a probability, parameters."""

    kind: str
    probability: float
    #: modeled latency added by a firing ``slow`` rule
    seconds: float = 0.05

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise FaultSpecError(
                f"unknown fault kind {self.kind!r}; choose from {_KINDS}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise FaultSpecError(
                f"fault probability must be in [0, 1], got {self.probability}"
            )
        if self.seconds < 0:
            raise FaultSpecError("slow-fault seconds must be >= 0")


def _hash01(seed: int, site: str, key: str, attempt: int) -> float:
    """Uniform [0, 1) from a counter-based SHA-256 — the only source of
    "randomness" in the subsystem (no ``random`` module, no state)."""
    digest = hashlib.sha256(
        f"repro-fault-v1|{seed}|{site}|{key}|{attempt}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass
class FaultPlan:
    """A seeded set of :class:`FaultRule` clauses plus the per-site
    access counters for cache faults.

    The only mutable state is the cache-access counter map (how many
    times each fingerprint has been read/written), which is itself
    deterministic for a deterministic workload — counters are keyed
    per fingerprint, so thread interleaving across *different* requests
    cannot perturb them.
    """

    seed: int = 0
    rules: tuple[FaultRule, ...] = ()
    _counters: dict[str, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    def rule(self, kind: str) -> FaultRule | None:
        for r in self.rules:
            if r.kind == kind:
                return r
        return None

    # -- decisions -------------------------------------------------------------

    def compile_fault(self, fingerprint: str,
                      attempt: int) -> InjectedFault | None:
        """The injected failure (if any) for one compile attempt.

        Persistent faults are keyed on the fingerprint alone, so every
        attempt — retry or hedge — replays them; transients re-draw per
        attempt.
        """
        persistent = self.rule("persistent")
        if persistent is not None and _hash01(
            self.seed, "compile.persistent", fingerprint, 0
        ) < persistent.probability:
            return PersistentCompileFault(
                f"injected persistent compiler failure "
                f"(plan seed {self.seed}, fp {fingerprint[:12]})",
                site="compile.persistent", fingerprint=fingerprint,
                attempt=attempt,
            )
        transient = self.rule("transient")
        if transient is not None and _hash01(
            self.seed, "compile", fingerprint, attempt
        ) < transient.probability:
            return TransientCompileFault(
                f"injected transient compiler crash "
                f"(plan seed {self.seed}, attempt {attempt})",
                site="compile", fingerprint=fingerprint, attempt=attempt,
            )
        return None

    def slow_penalty_s(self, fingerprint: str, attempt: int) -> float:
        """Modeled extra latency for one compile attempt (0.0 = none)."""
        slow = self.rule("slow")
        if slow is not None and _hash01(
            self.seed, "compile.slow", fingerprint, attempt
        ) < slow.probability:
            return slow.seconds
        return 0.0

    def cache_fault(self, op: str, fingerprint: str) -> FlakyIOError | None:
        """The injected I/O error (if any) for one cache access.

        ``op`` is ``"read"`` or ``"write"``; the attempt dimension is a
        per-``(op, fingerprint)`` access counter, so the *n*-th read of a
        fingerprint flakes identically whatever order sweeps interleave.
        """
        rule = self.rule(f"cache-{op}") or self.rule("cache")
        if rule is None:
            return None
        counter_key = f"{op}|{fingerprint}"
        with self._lock:
            access = self._counters.get(counter_key, 0)
            self._counters[counter_key] = access + 1
        if _hash01(self.seed, f"cache.{op}", fingerprint,
                   access) < rule.probability:
            return FlakyIOError(
                f"injected flaky cache {op} (access {access})",
                site=f"cache.{op}", fingerprint=fingerprint, attempt=access,
            )
        return None

    # -- views -----------------------------------------------------------------

    def reset_counters(self) -> None:
        """Zero the cache-access counters (a fresh run of the same
        workload replays identical cache faults)."""
        with self._lock:
            self._counters.clear()

    def describe(self) -> str:
        clauses = ",".join(
            f"{r.kind}:p={r.probability:g}"
            + (f",s={r.seconds:g}" if r.kind == "slow" else "")
            for r in self.rules
        )
        return f"seed={self.seed} {clauses or '<empty>'}"


def parse_fault_spec(spec: str) -> FaultPlan:
    """Parse a ``--faults`` spec into a :class:`FaultPlan`.

    Grammar: semicolon-separated clauses, each
    ``kind:key=value[,key=value...]``::

        transient:p=0.3,seed=7
        transient:p=0.2;slow:p=0.1,s=0.05;cache:p=0.05
        persistent:p=0.02;transient:p=0.25

    Keys: ``p`` (probability, required), ``s``/``seconds`` (slow-fault
    modeled latency), ``seed`` (plan seed; may appear in any clause,
    last one wins, default 0).
    """
    rules: list[FaultRule] = []
    seed = 0
    text = spec.strip()
    if not text:
        raise FaultSpecError("empty --faults spec")
    for clause in text.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        kind, _, body = clause.partition(":")
        kind = kind.strip().lower()
        params: dict[str, str] = {}
        if body:
            for pair in body.split(","):
                key, eq, value = pair.partition("=")
                if not eq:
                    raise FaultSpecError(
                        f"bad fault parameter {pair!r} in {clause!r} "
                        "(expected key=value)"
                    )
                params[key.strip().lower()] = value.strip()
        if "seed" in params:
            try:
                seed = int(params.pop("seed"))
            except ValueError as exc:
                raise FaultSpecError(f"bad seed in {clause!r}") from exc
        try:
            probability = float(params.pop("p"))
        except KeyError:
            raise FaultSpecError(
                f"fault clause {clause!r} needs p=<probability>"
            ) from None
        except ValueError as exc:
            raise FaultSpecError(f"bad probability in {clause!r}") from exc
        seconds = 0.05
        if "s" in params or "seconds" in params:
            try:
                seconds = float(params.pop("s", params.pop("seconds", "")))
            except ValueError as exc:
                raise FaultSpecError(f"bad seconds in {clause!r}") from exc
            params.pop("seconds", None)
        if params:
            raise FaultSpecError(
                f"unknown fault parameter(s) {sorted(params)} in {clause!r}"
            )
        rules.append(FaultRule(kind, probability, seconds))
    if not rules:
        raise FaultSpecError(f"no fault clauses in {spec!r}")
    return FaultPlan(seed=seed, rules=tuple(rules))
