"""repro.faults — deterministic fault injection for the service layer.

The paper's central finding is that performance portability dies on
compiler fragility (CAPS 3.4.1's bug list, silently wrong codegen,
target-specific refusals).  This package injects exactly that fragility
into the simulated tool-chain — seeded, counter-hashed, byte-for-byte
reproducible — so the compile service's resilience machinery (retry
with backoff, circuit breakers, hedging, checkpoint/resume; see
:mod:`repro.service.resilience`) has something real to survive:

* :mod:`.plan` — :class:`FaultPlan`: seeded fault decisions keyed on
  (site, fingerprint, attempt) via SHA-256 counter hashing; the
  ``--faults`` spec grammar (:func:`parse_fault_spec`);
* :mod:`.adapter` — :class:`FaultyCompilerAdapter` /
  :class:`FaultyCacheAdapter`: the injection seams at the compiler and
  cache boundaries (the compiler models themselves stay pure).

See ``docs/FAULTS.md`` for the architecture and the determinism
contract.
"""

from .adapter import FaultyCacheAdapter, FaultyCompilerAdapter
from .plan import (
    FaultPlan,
    FaultRule,
    FaultSpecError,
    FlakyIOError,
    InjectedFault,
    PersistentCompileFault,
    TransientCompileFault,
    is_injected_fault,
    is_transient,
    parse_fault_spec,
)

__all__ = [
    "FaultPlan",
    "FaultRule",
    "FaultSpecError",
    "FaultyCacheAdapter",
    "FaultyCompilerAdapter",
    "FlakyIOError",
    "InjectedFault",
    "PersistentCompileFault",
    "TransientCompileFault",
    "is_injected_fault",
    "is_transient",
    "parse_fault_spec",
]
