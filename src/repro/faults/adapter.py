"""Fault-injection adapters: the seam between a :class:`FaultPlan` and
the compile service.

The compiler models stay *pure* — faults are injected by wrapping the
two boundaries the service already owns:

* :class:`FaultyCompilerAdapter` wraps the service's ``compile_fn``; a
  compile attempt first consults the plan (persistent, then transient,
  then slow), so an injected crash never even reaches the model.
* :class:`FaultyCacheAdapter` wraps an
  :class:`~repro.service.cache.ArtifactCache`; reads and writes raise
  :class:`~repro.faults.plan.FlakyIOError` per the plan.  The service
  degrades a flaky read to a miss and a flaky write to a skipped store,
  so cache I/O faults never surface to callers.

Both adapters are transparent when the plan has no matching rules.
"""

from __future__ import annotations

from typing import Any, Callable

from .plan import FaultPlan

__all__ = ["FaultyCompilerAdapter", "FaultyCacheAdapter"]


class FaultyCompilerAdapter:
    """Wraps a ``compile_fn`` with plan-driven failures and stragglers.

    ``compile(request, attempt)`` returns ``(artifact, penalty_s)``:
    the artifact plus any injected slow-job latency (already slept on
    the adapter's clock, so a simulated clock makes slow faults free in
    tests while a real clock produces genuine stragglers for hedging).
    """

    def __init__(
        self,
        compile_fn: Callable[[Any], Any],
        plan: FaultPlan,
        clock=None,
    ) -> None:
        self._compile_fn = compile_fn
        self.plan = plan
        self._clock = clock

    def compile(self, request: Any, attempt: int = 0) -> tuple[Any, float]:
        fingerprint = request.fingerprint
        fault = self.plan.compile_fault(fingerprint, attempt)
        if fault is not None:
            raise fault
        penalty_s = self.plan.slow_penalty_s(fingerprint, attempt)
        artifact = self._compile_fn(request)
        if penalty_s and self._clock is not None:
            self._clock.sleep(penalty_s)
        return artifact, penalty_s


class FaultyCacheAdapter:
    """An :class:`ArtifactCache` proxy whose ``get``/``put`` flake per
    the plan; everything else (``stats``, ``clear``, ``__len__``, …)
    delegates to the wrapped cache."""

    def __init__(self, cache: Any, plan: FaultPlan) -> None:
        self._inner = cache
        self.plan = plan

    def get(self, fingerprint: str) -> Any:
        fault = self.plan.cache_fault("read", fingerprint)
        if fault is not None:
            raise fault
        return self._inner.get(fingerprint)

    def put(self, fingerprint: str, artifact: Any) -> None:
        fault = self.plan.cache_fault("write", fingerprint)
        if fault is not None:
            raise fault
        self._inner.put(fingerprint, artifact)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._inner

    def __len__(self) -> int:
        return len(self._inner)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)
