"""Common benchmark interface.

A benchmark bundles:

* the OpenACC mini-C source (per optimization *stage* of the systematic
  method — stages are produced by applying :mod:`repro.transforms` passes
  to the baseline, exactly like editing the source),
* an optional hand-written OpenCL program,
* input generators and a NumPy reference implementation,
* a *driver*: the host program (transfer + launch sequence + host loops)
  for a compiled version on one accelerator.

Table IV of the paper is the metadata registry of the four Rodinia
kernels; Hydro is the mini-application.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from ..compilers.framework import CompilationResult
from ..ir.stmt import Module
from ..runtime.launcher import Accelerator


@dataclass(frozen=True)
class BenchmarkMeta:
    """One row of paper Table IV."""

    name: str
    short: str
    dwarf: str
    domain: str
    input_size: str       # as printed in Table IV
    paper_size: int       # the paper-scale problem size parameter
    test_size: int        # a small size for functional validation


@dataclass
class RunResult:
    """One driven benchmark run."""

    elapsed_s: float
    accelerator: Accelerator
    outputs: dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def profiler(self):
        return self.accelerator.profiler


class Benchmark(abc.ABC):
    """Abstract benchmark: source, reference, and host driver."""

    meta: BenchmarkMeta

    @abc.abstractmethod
    def module(self) -> Module:
        """The baseline OpenACC module (parsed mini-C)."""

    @abc.abstractmethod
    def stages(self) -> dict[str, Module]:
        """Optimization stages, in paper order: 'base' first, then the
        method's steps as applied to this benchmark."""

    def opencl_program(self):
        """The hand-written OpenCL version, or None (LUD has no comparable
        one — "different algorithms", paper V-A1)."""
        return None

    @abc.abstractmethod
    def inputs(self, n: int, seed: int = 0) -> dict[str, object]:
        """Generate inputs for problem size *n* (arrays + scalars)."""

    @abc.abstractmethod
    def reference(self, inputs: dict[str, object]) -> dict[str, np.ndarray]:
        """Expected outputs, computed with vectorized NumPy."""

    @abc.abstractmethod
    def run(
        self,
        accelerator: Accelerator,
        compiled: CompilationResult,
        n: int,
        inputs: dict[str, object] | None = None,
    ) -> RunResult:
        """Drive the host program for a compiled version.

        With ``inputs`` the run is functional (arrays move and kernels
        execute); without, it is modeled-only at size *n*.
        """

    def validate(
        self,
        outputs: dict[str, np.ndarray],
        expected: dict[str, np.ndarray],
        rtol: float = 1e-4,
        atol: float = 1e-5,
    ) -> bool:
        """Whether a run's outputs match the reference."""
        for name, want in expected.items():
            got = outputs.get(name)
            if got is None:
                return False
            if not np.allclose(got, want, rtol=rtol, atol=atol):
                return False
        return True
