"""The five evaluated workloads: four Rodinia kernels + Hydro (Table IV)."""

from .base import Benchmark, BenchmarkMeta, RunResult
from .bfs import BfsBenchmark
from .bp import BpBenchmark
from .ge import GeBenchmark
from .hydro import HydroBenchmark
from .lud import LudBenchmark
from .micro import MICRO_KERNELS, MicroKernel, run_micro, validate_micro

#: Table IV registry (Hydro is the mini-application of section V-E)
BENCHMARKS: dict[str, type[Benchmark]] = {
    "lud": LudBenchmark,
    "ge": GeBenchmark,
    "bfs": BfsBenchmark,
    "bp": BpBenchmark,
    "hydro": HydroBenchmark,
}

#: the four Rodinia kernels as printed in Table IV
TABLE_IV_ROWS = [
    {
        "kernel": "LU Decomposition",
        "dwarf": "Dense Linear Algebra",
        "domain": "Linear Algebra",
        "input_size": "4K matrix",
    },
    {
        "kernel": "Gaussian Elimination",
        "dwarf": "Dense Linear Algebra",
        "domain": "Linear Algebra",
        "input_size": "8K matrix",
    },
    {
        "kernel": "Breadth First Search",
        "dwarf": "Graph Traversal",
        "domain": "Graph Algorithms",
        "input_size": "32M nodes",
    },
    {
        "kernel": "Back Propagation",
        "dwarf": "Unstructured Grid",
        "domain": "Pattern Recognition",
        "input_size": "20M layers",
    },
]


def get_benchmark(name: str) -> Benchmark:
    """Instantiate a benchmark by its short name."""
    try:
        return BENCHMARKS[name.lower()]()
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; choose from {sorted(BENCHMARKS)}"
        ) from None


__all__ = [
    "BENCHMARKS",
    "TABLE_IV_ROWS",
    "Benchmark",
    "BenchmarkMeta",
    "BfsBenchmark",
    "BpBenchmark",
    "GeBenchmark",
    "HydroBenchmark",
    "LudBenchmark",
    "MICRO_KERNELS",
    "MicroKernel",
    "RunResult",
    "get_benchmark",
    "run_micro",
    "validate_micro",
]
