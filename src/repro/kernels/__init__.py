"""The evaluated workloads: the paper's Table IV set (four Rodinia
kernels + Hydro) plus the multi-device families (stencil, LBM, PIC)
the portability matrix sweeps — see docs/WORKLOADS.md."""

from .base import Benchmark, BenchmarkMeta, RunResult
from .bfs import BfsBenchmark
from .bp import BpBenchmark
from .ge import GeBenchmark
from .hydro import HydroBenchmark
from .lbm import LbmBenchmark
from .lud import LudBenchmark
from .micro import MICRO_KERNELS, MicroKernel, run_micro, validate_micro
from .pic import PicBenchmark
from .stencil import StencilBenchmark

#: full registry: Table IV workloads (Hydro is the mini-application of
#: section V-E) plus the multi-device families
BENCHMARKS: dict[str, type[Benchmark]] = {
    "lud": LudBenchmark,
    "ge": GeBenchmark,
    "bfs": BfsBenchmark,
    "bp": BpBenchmark,
    "hydro": HydroBenchmark,
    "stencil": StencilBenchmark,
    "lbm": LbmBenchmark,
    "pic": PicBenchmark,
}

#: the families the multi-device portability matrix sweeps
MATRIX_FAMILIES = ("stencil", "lbm", "pic")

#: the four Rodinia kernels as printed in Table IV
TABLE_IV_ROWS = [
    {
        "kernel": "LU Decomposition",
        "dwarf": "Dense Linear Algebra",
        "domain": "Linear Algebra",
        "input_size": "4K matrix",
    },
    {
        "kernel": "Gaussian Elimination",
        "dwarf": "Dense Linear Algebra",
        "domain": "Linear Algebra",
        "input_size": "8K matrix",
    },
    {
        "kernel": "Breadth First Search",
        "dwarf": "Graph Traversal",
        "domain": "Graph Algorithms",
        "input_size": "32M nodes",
    },
    {
        "kernel": "Back Propagation",
        "dwarf": "Unstructured Grid",
        "domain": "Pattern Recognition",
        "input_size": "20M layers",
    },
]


def get_benchmark(name: str) -> Benchmark:
    """Instantiate a benchmark by its short name."""
    try:
        return BENCHMARKS[name.lower()]()
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; choose from {sorted(BENCHMARKS)}"
        ) from None


__all__ = [
    "BENCHMARKS",
    "MATRIX_FAMILIES",
    "TABLE_IV_ROWS",
    "Benchmark",
    "BenchmarkMeta",
    "BfsBenchmark",
    "BpBenchmark",
    "GeBenchmark",
    "HydroBenchmark",
    "LbmBenchmark",
    "LudBenchmark",
    "MICRO_KERNELS",
    "MicroKernel",
    "PicBenchmark",
    "RunResult",
    "StencilBenchmark",
    "get_benchmark",
    "run_micro",
    "validate_micro",
]
