"""D2Q9 streaming-collide lattice Boltzmann (Calore et al., PAPERS.md).

The canonical multi-GPU OpenACC workload: nine distribution functions
``f[q]`` on an ``nx x ny`` lattice, relaxed toward the weighted local
density (BGK collide) and propagated along the discrete velocities
``(cx[q], cy[q])`` (stream).  The two kernels are the two memory-traffic
regimes of every LBM paper:

* **collide** — pointwise, 9 loads + 9 stores per site, per-site
  sequential reduction over ``q`` (the density sum);
* **stream** — shifted reads ``f[q, i - cy[q], j - cx[q]]`` through an
  indirect per-direction offset table, writing a disjoint array: the
  halo-read pattern a domain decomposition has to exchange.

Collide conserves site density exactly (the weights sum to 1), which the
family's reference test asserts.  Boundary sites are frozen (the
propagation updates interior sites only), so a multi-device split along
``y`` needs one ghost row of all 9 populations per neighbor per step.
"""

from __future__ import annotations

import numpy as np

from ..compilers.framework import CompilationResult
from ..compilers.opencl import OpenCLKernelSpec, OpenCLProgram
from ..frontend.parser import parse_module
from ..ir.stmt import For, Module
from ..ir.visitors import clone_module
from ..runtime.launcher import Accelerator
from ..passes.library.distribute import set_gang_worker
from .base import Benchmark, BenchmarkMeta, RunResult

#: BGK relaxation rate (0 < omega < 1 keeps the collide a contraction)
OMEGA = 0.6

#: D2Q9 stencil: rest, axis, diagonal velocities + their weights
CX = (0, 1, 0, -1, 0, 1, -1, -1, 1)
CY = (0, 0, 1, 0, -1, 1, 1, -1, -1)
WEIGHTS = (4 / 9, 1 / 9, 1 / 9, 1 / 9, 1 / 9,
           1 / 36, 1 / 36, 1 / 36, 1 / 36)

SOURCE = """
#pragma acc kernels
void lbm_collide(double *f, const double *wq, int ncells, double omega) {
  int c, q;
  #pragma acc loop independent
  for (c = 0; c < ncells; c++) {
    double rho = 0.0;
    for (q = 0; q < 9; q++) {
      rho += f[q * ncells + c];
    }
    for (q = 0; q < 9; q++) {
      f[q * ncells + c] += omega * (wq[q] * rho - f[q * ncells + c]);
    }
  }
}

#pragma acc kernels
void lbm_stream(double *fnew, const double *f, const int *cx, const int *cy,
                int nx, int ny) {
  int q, i, j;
  for (q = 0; q < 9; q++) {
    #pragma acc loop independent
    for (i = 1; i < ny - 1; i++) {
      #pragma acc loop independent
      for (j = 1; j < nx - 1; j++) {
        fnew[q * nx * ny + i * nx + j] = f[q * nx * ny + (i - cy[q]) * nx + (j - cx[q])];
      }
    }
  }
}

#pragma acc kernels
void lbm_copy(double *f, const double *fnew, int nx, int ny) {
  int q, i, j;
  for (q = 0; q < 9; q++) {
    #pragma acc loop independent
    for (i = 1; i < ny - 1; i++) {
      #pragma acc loop independent
      for (j = 1; j < nx - 1; j++) {
        f[q * nx * ny + i * nx + j] = fnew[q * nx * ny + i * nx + j];
      }
    }
  }
}
"""

BEST_GANG = 192
BEST_WORKER = 16


class LbmBenchmark(Benchmark):
    meta = BenchmarkMeta(
        name="Lattice Boltzmann D2Q9",
        short="lbm",
        dwarf="Structured Grid",
        domain="Computational Fluid Dynamics",
        input_size="2K x 2K lattice, 9 populations",
        paper_size=2048,
        test_size=12,
    )

    #: one ghost row of all nine populations per neighbor per step
    halo_width = 1
    steps = 2

    # -- sources ---------------------------------------------------------------

    def module(self) -> Module:
        return parse_module(SOURCE, "lbm")

    def _with_distribution(self, module: Module) -> Module:
        out = clone_module(module)
        kernels = []
        for kernel in out.kernels:
            if kernel.name == "lbm_collide":
                target = kernel.top_level_loops()[0]
            else:
                target = kernel.loop_by_var("i")
            kernels.append(
                set_gang_worker(kernel, target.loop_id, BEST_GANG, BEST_WORKER)
            )
        out.kernels = kernels
        return out

    def stages(self) -> dict[str, Module]:
        base = self.module()
        return {"base": base, "threaddist": self._with_distribution(base)}

    # -- OpenCL ---------------------------------------------------------------

    def opencl_program(self) -> OpenCLProgram:
        module = parse_module(SOURCE.replace("lbm_", "ocl_lbm_"), "lbm-opencl")
        specs = []
        for kernel in module.kernels:
            if kernel.name != "ocl_lbm_collide":
                # NDRange over the lattice; the q loop stays in-kernel
                ids = [kernel.loop_by_var("i").loop_id,
                       kernel.loop_by_var("j").loop_id]
                specs.append(
                    OpenCLKernelSpec(
                        kernel=kernel, parallel_loop_ids=ids,
                        local_size=(32, 4),
                    )
                )
            else:
                outer = kernel.top_level_loops()[0]
                specs.append(
                    OpenCLKernelSpec(
                        kernel=kernel, parallel_loop_ids=[outer.loop_id],
                        local_size=(128, 1),
                    )
                )
        return OpenCLProgram("lbm-opencl", specs)

    # -- data -----------------------------------------------------------------

    def inputs(self, n: int, seed: int = 0) -> dict[str, object]:
        rng = np.random.default_rng(seed + 2)
        nx = ny = n
        ncells = nx * ny
        f = np.empty(9 * ncells)
        for q in range(9):
            f[q * ncells:(q + 1) * ncells] = WEIGHTS[q] * rng.uniform(
                0.8, 1.2, ncells
            )
        return {
            "f": f,
            "wq": np.array(WEIGHTS, dtype=np.float64),
            "cx": np.array(CX, dtype=np.int32),
            "cy": np.array(CY, dtype=np.int32),
            "nx": nx,
            "ny": ny,
        }

    def reference(
        self, inputs: dict[str, object], steps: int | None = None
    ) -> dict[str, np.ndarray]:
        steps = self.steps if steps is None else steps
        nx = int(inputs["nx"])  # type: ignore[arg-type]
        ny = int(inputs["ny"])  # type: ignore[arg-type]
        f = np.asarray(inputs["f"], dtype=np.float64).reshape(9, ny, nx).copy()
        wq = np.asarray(inputs["wq"], dtype=np.float64)
        for _ in range(steps):
            rho = f.sum(axis=0)
            f += OMEGA * (wq[:, None, None] * rho[None, :, :] - f)
            fnew = f.copy()
            for q in range(9):
                src = f[q]
                # interior sites pull from (i - cy, j - cx)
                fnew[q, 1:-1, 1:-1] = src[
                    1 - CY[q]:ny - 1 - CY[q], 1 - CX[q]:nx - 1 - CX[q]
                ]
            f = fnew
        return {"f": f.reshape(-1)}

    # -- driver ---------------------------------------------------------------

    def exchange_bytes(self, n: int) -> int:
        """One ghost row of all nine populations, 8 bytes per site."""
        return 8 * 9 * n * self.halo_width

    def run(
        self,
        accelerator: Accelerator,
        compiled: CompilationResult,
        n: int,
        inputs: dict[str, object] | None = None,
        steps: int | None = None,
    ) -> RunResult:
        steps = self.steps if steps is None else steps
        functional = inputs is not None
        prefix = (
            "ocl_" if any(k.name.startswith("ocl_") for k in compiled.kernels)
            else ""
        )

        def kern(name: str):
            return compiled.kernel(prefix + name)

        nx = ny = n
        ncells = nx * ny

        if functional:
            f = np.asarray(inputs["f"], dtype=np.float64)
            accelerator.to_device(
                f=f.copy(),
                fnew=f.copy(),
                wq=np.asarray(inputs["wq"], dtype=np.float64),
                cx=np.asarray(inputs["cx"], dtype=np.int32),
                cy=np.asarray(inputs["cy"], dtype=np.int32),
            )
        else:
            f8 = 8
            accelerator.declare(
                f=9 * ncells * f8, fnew=9 * ncells * f8, wq=9 * f8,
                cx=9 * 4, cy=9 * 4,
            )
            accelerator.upload_declared("f", "wq", "cx", "cy")

        for _ in range(steps):
            accelerator.launch(kern("lbm_collide"), ncells=ncells, omega=OMEGA)
            accelerator.launch(kern("lbm_stream"), nx=nx, ny=ny)
            accelerator.launch(kern("lbm_copy"), nx=nx, ny=ny)

        outputs: dict[str, np.ndarray] = {}
        if functional:
            outputs = accelerator.from_device("f")
        else:
            accelerator.download_declared("f")
        return RunResult(accelerator.elapsed_s, accelerator, outputs)
