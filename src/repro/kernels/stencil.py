"""Structured stencil with explicit halo regions (2-D and 3-D sweeps).

The workload family the multi-device literature is built on (Calore et
al., PAPERS.md): a Jacobi relaxation over an ``nx x ny`` grid plus a
7-point sweep over an ``m^3`` brick, with the halo cells updated by a
*separate* boundary kernel — exactly the interior/boundary split that
lets a multi-device schedule overlap interior compute with halo
transfer (the interior sweep never reads the cells in flight).

IR shape: disjoint read/write arrays (``u`` -> ``unew``), affine
offset subscripts (``i - 1``, ``i + 1``, ``i*nx + j - 1``), a copy-back
kernel per grid.  Every parallel loop is provably ``INDEPENDENT``, so
the schedule-independence proof in :mod:`repro.perf.halo` accepts the
family for transfer-compute overlap.
"""

from __future__ import annotations

import numpy as np

from ..compilers.framework import CompilationResult
from ..compilers.opencl import OpenCLKernelSpec, OpenCLProgram
from ..frontend.parser import parse_module
from ..ir.stmt import For, Module
from ..ir.visitors import clone_module
from ..runtime.launcher import Accelerator
from ..passes.library.distribute import set_gang_worker
from .base import Benchmark, BenchmarkMeta, RunResult

#: Jacobi damping factor; < 1/4 keeps the 2-D sweep a contraction
ALPHA = 0.2

SOURCE = """
#pragma acc kernels
void stencil2d_sweep(double *unew, const double *u, int nx, int ny) {
  int i, j;
  #pragma acc loop independent
  for (i = 1; i < ny - 1; i++) {
    #pragma acc loop independent
    for (j = 1; j < nx - 1; j++) {
      unew[i * nx + j] = 0.2 * (u[i * nx + j] + u[i * nx + j - 1] + u[i * nx + j + 1] + u[(i - 1) * nx + j] + u[(i + 1) * nx + j]);
    }
  }
}

#pragma acc kernels
void stencil2d_halo(double *unew, const double *u, int nx, int ny) {
  int i, j;
  #pragma acc loop independent
  for (j = 0; j < nx; j++) {
    unew[j] = u[j];
    unew[(ny - 1) * nx + j] = u[(ny - 1) * nx + j];
  }
  #pragma acc loop independent
  for (i = 1; i < ny - 1; i++) {
    unew[i * nx] = u[i * nx];
    unew[i * nx + nx - 1] = u[i * nx + nx - 1];
  }
}

#pragma acc kernels
void stencil2d_copy(double *u, const double *unew, int n) {
  int c;
  #pragma acc loop independent
  for (c = 0; c < n; c++) {
    u[c] = unew[c];
  }
}

#pragma acc kernels
void stencil3d_sweep(double *wnew, const double *w, int m) {
  int k, i, j;
  #pragma acc loop independent
  for (k = 1; k < m - 1; k++) {
    #pragma acc loop independent
    for (i = 1; i < m - 1; i++) {
      for (j = 1; j < m - 1; j++) {
        wnew[(k * m + i) * m + j] = w[(k * m + i) * m + j] + 0.125 * (w[(k * m + i) * m + j - 1] + w[(k * m + i) * m + j + 1] + w[(k * m + i - 1) * m + j] + w[(k * m + i + 1) * m + j] + w[((k - 1) * m + i) * m + j] + w[((k + 1) * m + i) * m + j] - 6.0 * w[(k * m + i) * m + j]);
      }
    }
  }
}

#pragma acc kernels
void stencil3d_copy(double *w, const double *wnew, int m) {
  int k, i, j;
  #pragma acc loop independent
  for (k = 1; k < m - 1; k++) {
    #pragma acc loop independent
    for (i = 1; i < m - 1; i++) {
      for (j = 1; j < m - 1; j++) {
        w[(k * m + i) * m + j] = wnew[(k * m + i) * m + j];
      }
    }
  }
}
"""

#: best portable thread distribution for the 2-D sweeps (heat-map style)
BEST_GANG = 128
BEST_WORKER = 16

#: kernels whose outer loop takes the explicit distribution stage
_DISTRIBUTED = ("stencil2d_sweep", "stencil2d_halo", "stencil2d_copy",
                "stencil3d_sweep", "stencil3d_copy")


class StencilBenchmark(Benchmark):
    meta = BenchmarkMeta(
        name="Halo Stencil",
        short="stencil",
        dwarf="Structured Grid",
        domain="PDE solvers (Jacobi relaxation)",
        input_size="4K x 4K grid + 256^3 brick",
        paper_size=4096,
        test_size=16,
    )

    #: halo width in grid cells (one ghost row per neighbor per sweep)
    halo_width = 1
    #: device steps per driven run
    steps = 2

    # -- sources ---------------------------------------------------------------

    def module(self) -> Module:
        return parse_module(SOURCE, "stencil")

    def _with_distribution(self, module: Module) -> Module:
        out = clone_module(module)
        kernels = []
        for kernel in out.kernels:
            if kernel.name in _DISTRIBUTED:
                outer = kernel.top_level_loops()[0]
                kernel = set_gang_worker(
                    kernel, outer.loop_id, BEST_GANG, BEST_WORKER
                )
            kernels.append(kernel)
        out.kernels = kernels
        return out

    def stages(self) -> dict[str, Module]:
        base = self.module()
        return {"base": base, "threaddist": self._with_distribution(base)}

    # -- OpenCL ---------------------------------------------------------------

    def opencl_program(self) -> OpenCLProgram:
        module = parse_module(
            SOURCE.replace("stencil", "ocl_stencil"), "stencil-opencl"
        )
        specs = []
        for kernel in module.kernels:
            loops = kernel.top_level_loops()
            outer = loops[0]
            ids = [outer.loop_id]
            inner = outer.body.stmts[0] if outer.body.stmts else None
            if len(outer.body.stmts) == 1 and isinstance(inner, For):
                ids.append(inner.loop_id)
            specs.append(
                OpenCLKernelSpec(
                    kernel=kernel,
                    parallel_loop_ids=ids,
                    local_size=(32, 4) if len(ids) > 1 else (128, 1),
                )
            )
        return OpenCLProgram("stencil-opencl", specs)

    # -- data -----------------------------------------------------------------

    @staticmethod
    def _brick_side(n: int) -> int:
        return max(4, n // 2)

    def inputs(self, n: int, seed: int = 0) -> dict[str, object]:
        rng = np.random.default_rng(seed + 1)
        nx = ny = n
        m = self._brick_side(n)
        return {
            "u": rng.uniform(0.5, 1.5, nx * ny),
            "w": rng.uniform(0.5, 1.5, m * m * m),
            "nx": nx,
            "ny": ny,
            "m": m,
        }

    def reference(
        self, inputs: dict[str, object], steps: int | None = None
    ) -> dict[str, np.ndarray]:
        steps = self.steps if steps is None else steps
        nx = int(inputs["nx"])  # type: ignore[arg-type]
        ny = int(inputs["ny"])  # type: ignore[arg-type]
        m = int(inputs["m"])  # type: ignore[arg-type]
        u = np.asarray(inputs["u"], dtype=np.float64).reshape(ny, nx).copy()
        w = np.asarray(inputs["w"], dtype=np.float64).reshape(m, m, m).copy()
        for _ in range(steps):
            nxt = u.copy()
            nxt[1:-1, 1:-1] = ALPHA * (
                u[1:-1, 1:-1] + u[1:-1, :-2] + u[1:-1, 2:]
                + u[:-2, 1:-1] + u[2:, 1:-1]
            )
            u = nxt
            wn = w.copy()
            wn[1:-1, 1:-1, 1:-1] = w[1:-1, 1:-1, 1:-1] + 0.125 * (
                w[1:-1, 1:-1, :-2] + w[1:-1, 1:-1, 2:]
                + w[1:-1, :-2, 1:-1] + w[1:-1, 2:, 1:-1]
                + w[:-2, 1:-1, 1:-1] + w[2:, 1:-1, 1:-1]
                - 6.0 * w[1:-1, 1:-1, 1:-1]
            )
            w = wn
        return {"u": u.flatten(), "w": w.flatten()}

    # -- driver ---------------------------------------------------------------

    def exchange_bytes(self, n: int) -> int:
        """Halo bytes one device sends a neighbor per step: one ghost row
        of the 2-D grid plus one ghost plane of the 3-D brick."""
        m = self._brick_side(n)
        return 8 * (n * self.halo_width + m * m * self.halo_width)

    def run(
        self,
        accelerator: Accelerator,
        compiled: CompilationResult,
        n: int,
        inputs: dict[str, object] | None = None,
        steps: int | None = None,
    ) -> RunResult:
        steps = self.steps if steps is None else steps
        functional = inputs is not None
        prefix = (
            "ocl_" if any(k.name.startswith("ocl_") for k in compiled.kernels)
            else ""
        )

        def kern(name: str):
            return compiled.kernel(prefix + name)

        nx = ny = n
        m = self._brick_side(n)
        cells = nx * ny
        brick = m * m * m

        if functional:
            u = np.asarray(inputs["u"], dtype=np.float64)
            w = np.asarray(inputs["w"], dtype=np.float64)
            accelerator.to_device(
                u=u.copy(), unew=u.copy(), w=w.copy(), wnew=w.copy()
            )
        else:
            f8 = 8
            accelerator.declare(
                u=cells * f8, unew=cells * f8, w=brick * f8, wnew=brick * f8
            )
            accelerator.upload_declared("u", "w")

        for _ in range(steps):
            accelerator.launch(kern("stencil2d_sweep"), nx=nx, ny=ny)
            accelerator.launch(kern("stencil2d_halo"), nx=nx, ny=ny)
            accelerator.launch(kern("stencil2d_copy"), n=cells)
            accelerator.launch(kern("stencil3d_sweep"), m=m)
            accelerator.launch(kern("stencil3d_copy"), m=m)

        outputs: dict[str, np.ndarray] = {}
        if functional:
            outputs = accelerator.from_device("u", "w")
        else:
            accelerator.download_declared("u", "w")
        return RunResult(accelerator.elapsed_s, accelerator, outputs)
