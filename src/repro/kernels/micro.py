"""Microbenchmarks from the authors' previous study (paper section VI).

"The authors' previous work [11] evaluated the OpenACC kernels from SHOC,
STREAM, and EPCC benchmark suites by using the CAPS compiler.  This work
extends the previous work..."  These small kernels are the natural smoke
tests of the simulated tool-chain and the calibration probes of the
performance model:

* ``stream_triad``   — STREAM: bandwidth-bound a[i] = b[i] + s*c[i]
* ``shoc_reduction`` — SHOC: a sum reduction (the Fig. 13 pattern)
* ``epcc_stencil``   — EPCC-style 1-D three-point stencil
* ``shoc_md_gather`` — an indirect-gather kernel (the BFS access class)

Each provides the same interface pieces as the full benchmarks: a mini-C
source, a NumPy reference, and input generation.  They are not part of the
paper's evaluation matrix (Table IV), so they carry no ``stages()``
pipeline; :func:`run_micro` drives one kernel through one tool-chain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..compilers.framework import CompilationResult
from ..frontend.parser import parse_module
from ..ir.stmt import Module
from ..runtime.launcher import Accelerator

STREAM_TRIAD = """
#pragma acc kernels
void stream_triad(float *a, const float *b, const float *c, float s, int n) {
  int i;
  #pragma acc loop independent
  for (i = 0; i < n; i++) {
    a[i] = b[i] + s * c[i];
  }
}
"""

SHOC_REDUCTION = """
#pragma acc kernels
void shoc_reduction(const float *in, float *out, int n) {
  int i;
  float sum = 0.0f;
  #pragma acc loop reduction(+:sum)
  for (i = 0; i < n; i++) {
    sum += in[i];
  }
  out[0] = sum;
}
"""

EPCC_STENCIL = """
#pragma acc kernels
void epcc_stencil(float *out, const float *in, int n) {
  int i;
  #pragma acc loop independent
  for (i = 1; i < n - 1; i++) {
    out[i] = 0.25f * in[i - 1] + 0.5f * in[i] + 0.25f * in[i + 1];
  }
}
"""

SHOC_MD_GATHER = """
#pragma acc kernels
void shoc_md_gather(float *force, const float *pos, const int *neighbors,
                    int degree, int n) {
  int i, j;
  for (i = 0; i < n; i++) {
    float acc = 0.0f;
    for (j = 0; j < degree; j++) {
      acc += pos[neighbors[i * degree + j]];
    }
    force[i] = acc;
  }
}
"""


@dataclass(frozen=True)
class MicroKernel:
    """One microbenchmark: source + data + reference."""

    name: str
    source: str
    make_inputs: Callable[[int, int], dict[str, object]]
    reference: Callable[[dict[str, object]], dict[str, np.ndarray]]
    output_names: tuple[str, ...]

    def module(self) -> Module:
        return parse_module(self.source, self.name)


def _triad_inputs(n: int, seed: int = 0) -> dict[str, object]:
    rng = np.random.default_rng(seed)
    return {
        "a": np.zeros(n), "b": rng.random(n), "c": rng.random(n),
        "s": 2.5, "n": n,
    }


def _triad_reference(inputs: dict[str, object]) -> dict[str, np.ndarray]:
    return {"a": np.asarray(inputs["b"]) + 2.5 * np.asarray(inputs["c"])}


def _reduction_inputs(n: int, seed: int = 0) -> dict[str, object]:
    rng = np.random.default_rng(seed)
    return {"in": rng.random(n), "out": np.zeros(1), "n": n}


def _reduction_reference(inputs: dict[str, object]) -> dict[str, np.ndarray]:
    return {"out": np.array([np.asarray(inputs["in"]).sum()])}


def _stencil_inputs(n: int, seed: int = 0) -> dict[str, object]:
    rng = np.random.default_rng(seed)
    data = rng.random(n)
    return {"out": data.copy(), "in": data, "n": n}


def _stencil_reference(inputs: dict[str, object]) -> dict[str, np.ndarray]:
    data = np.asarray(inputs["in"])
    out = data.copy()
    out[1:-1] = 0.25 * data[:-2] + 0.5 * data[1:-1] + 0.25 * data[2:]
    return {"out": out}


DEGREE = 8


def _gather_inputs(n: int, seed: int = 0) -> dict[str, object]:
    rng = np.random.default_rng(seed)
    return {
        "force": np.zeros(n),
        "pos": rng.random(n),
        "neighbors": rng.integers(0, n, size=n * DEGREE),
        "degree": DEGREE,
        "n": n,
    }


def _gather_reference(inputs: dict[str, object]) -> dict[str, np.ndarray]:
    pos = np.asarray(inputs["pos"])
    neighbors = np.asarray(inputs["neighbors"]).reshape(-1, DEGREE)
    return {"force": pos[neighbors].sum(axis=1)}


MICRO_KERNELS: dict[str, MicroKernel] = {
    "stream_triad": MicroKernel(
        "stream_triad", STREAM_TRIAD, _triad_inputs, _triad_reference, ("a",)
    ),
    "shoc_reduction": MicroKernel(
        "shoc_reduction", SHOC_REDUCTION, _reduction_inputs,
        _reduction_reference, ("out",),
    ),
    "epcc_stencil": MicroKernel(
        "epcc_stencil", EPCC_STENCIL, _stencil_inputs, _stencil_reference,
        ("out",),
    ),
    "shoc_md_gather": MicroKernel(
        "shoc_md_gather", SHOC_MD_GATHER, _gather_inputs, _gather_reference,
        ("force",),
    ),
}


def run_micro(
    name: str,
    compiled: CompilationResult,
    accelerator: Accelerator,
    n: int,
    seed: int = 0,
) -> tuple[dict[str, np.ndarray], float]:
    """Drive one compiled microbenchmark functionally; returns (outputs,
    modeled elapsed seconds)."""
    micro = MICRO_KERNELS[name]
    inputs = micro.make_inputs(n, seed)
    arrays = {k: np.asarray(v) for k, v in inputs.items()
              if isinstance(v, np.ndarray)}
    scalars = {k: v for k, v in inputs.items()
               if not isinstance(v, np.ndarray)}
    accelerator.to_device(**arrays)
    for kernel in compiled.kernels:
        accelerator.launch(kernel, **scalars)
    outputs = accelerator.from_device(*micro.output_names)
    return outputs, accelerator.elapsed_s


def validate_micro(name: str, outputs: dict[str, np.ndarray], n: int,
                   seed: int = 0) -> bool:
    """Check a micro run's outputs against the NumPy reference."""
    micro = MICRO_KERNELS[name]
    expected = micro.reference(micro.make_inputs(n, seed))
    return all(
        np.allclose(outputs[key], expected[key], rtol=1e-5, atol=1e-7)
        for key in expected
    )
