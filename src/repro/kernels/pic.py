"""Particle-in-cell scatter/gather (Hariri et al., PAPERS.md).

One cloud-in-cell PIC cycle on a 1-D grid: **deposit** scatters each
particle's weighted charge into its cell and the next one through
``#pragma acc atomic`` compound updates (the data race every PIC port
has to tame), **gather** interpolates the grid field back to the
particle, and **push** advances the particle coordinate — three kernels
spanning the scatter, gather, and pointwise regimes.

IR shape: indirect writes ``rho[cell[p]] += ...`` behind
``#pragma acc atomic`` (the atomic is what keeps the loop out of PGI's
"complex loop" refusal, paper V-C1 — strip it and both compilers race),
indirect reads in gather, affine pointwise in push.  Particles never
migrate between cells inside a driven run (the cell table is fixed), so a
multi-device decomposition partitions particles and needs no halo —
only the per-step grid reduction the matrix models as its exchange.
"""

from __future__ import annotations

import numpy as np

from ..compilers.framework import CompilationResult
from ..compilers.opencl import OpenCLKernelSpec, OpenCLProgram
from ..frontend.parser import parse_module
from ..ir.stmt import Module
from ..ir.visitors import clone_module
from ..runtime.launcher import Accelerator
from ..passes.library.distribute import set_gang_worker
from .base import Benchmark, BenchmarkMeta, RunResult

#: particles per grid cell
PPC = 4
#: pseudo time step of the push
DT = 0.1

SOURCE = """
#pragma acc kernels
void pic_zero(double *rho, int ng) {
  int g;
  #pragma acc loop independent
  for (g = 0; g < ng; g++) {
    rho[g] = 0.0;
  }
}

#pragma acc kernels
void pic_deposit(double *rho, const int *cell, const double *qw,
                 const double *frac, int np) {
  int p;
  #pragma acc loop independent
  for (p = 0; p < np; p++) {
    #pragma acc atomic
    rho[cell[p]] += qw[p] * (1.0 - frac[p]);
    #pragma acc atomic
    rho[cell[p] + 1] += qw[p] * frac[p];
  }
}

#pragma acc kernels
void pic_gather(double *ax, const double *rho, const int *cell,
                const double *frac, int np) {
  int p;
  #pragma acc loop independent
  for (p = 0; p < np; p++) {
    ax[p] = rho[cell[p]] * (1.0 - frac[p]) + rho[cell[p] + 1] * frac[p];
  }
}

#pragma acc kernels
void pic_push(double *x, const double *ax, double dt, int np) {
  int p;
  #pragma acc loop independent
  for (p = 0; p < np; p++) {
    x[p] += ax[p] * dt * dt;
  }
}
"""

BEST_GANG = 256
BEST_WORKER = 16


class PicBenchmark(Benchmark):
    meta = BenchmarkMeta(
        name="Particle-in-Cell",
        short="pic",
        dwarf="N-Body / Particle Methods",
        domain="Plasma Physics",
        input_size="8M particles on a 2M grid",
        paper_size=2 * 1024 * 1024,
        test_size=32,
    )

    #: particles are decomposition-local; the exchange is the grid
    #: all-reduce, not a spatial halo
    halo_width = 0
    steps = 2

    # -- sources ---------------------------------------------------------------

    def module(self) -> Module:
        return parse_module(SOURCE, "pic")

    def _with_distribution(self, module: Module) -> Module:
        out = clone_module(module)
        kernels = []
        for kernel in out.kernels:
            outer = kernel.top_level_loops()[0]
            kernels.append(
                set_gang_worker(kernel, outer.loop_id, BEST_GANG, BEST_WORKER)
            )
        out.kernels = kernels
        return out

    def stages(self) -> dict[str, Module]:
        base = self.module()
        return {"base": base, "threaddist": self._with_distribution(base)}

    # -- OpenCL ---------------------------------------------------------------

    def opencl_program(self) -> OpenCLProgram:
        module = parse_module(SOURCE.replace("pic_", "ocl_pic_"), "pic-opencl")
        specs = [
            OpenCLKernelSpec(
                kernel=kernel,
                parallel_loop_ids=[kernel.top_level_loops()[0].loop_id],
                local_size=(128, 1),
            )
            for kernel in module.kernels
        ]
        return OpenCLProgram("pic-opencl", specs)

    # -- data -----------------------------------------------------------------

    def inputs(self, n: int, seed: int = 0) -> dict[str, object]:
        rng = np.random.default_rng(seed + 3)
        ng = n
        nparticles = PPC * n
        x = rng.uniform(0.0, float(ng - 1) - 1e-6, nparticles)
        cell = np.floor(x).astype(np.int32)
        return {
            "x": x,
            "cell": cell,
            "frac": x - cell,
            "qw": rng.uniform(0.5, 1.5, nparticles),
            "ng": ng,
            "np": nparticles,
        }

    def reference(
        self, inputs: dict[str, object], steps: int | None = None
    ) -> dict[str, np.ndarray]:
        steps = self.steps if steps is None else steps
        ng = int(inputs["ng"])  # type: ignore[arg-type]
        x = np.asarray(inputs["x"], dtype=np.float64).copy()
        cell = np.asarray(inputs["cell"], dtype=np.int64)
        frac = np.asarray(inputs["frac"], dtype=np.float64)
        qw = np.asarray(inputs["qw"], dtype=np.float64)
        rho = np.zeros(ng)
        ax = np.zeros_like(x)
        for _ in range(steps):
            rho = np.zeros(ng)
            np.add.at(rho, cell, qw * (1.0 - frac))
            np.add.at(rho, cell + 1, qw * frac)
            ax = rho[cell] * (1.0 - frac) + rho[cell + 1] * frac
            x = x + ax * DT * DT
        return {"rho": rho, "ax": ax, "x": x}

    # -- driver ---------------------------------------------------------------

    def exchange_bytes(self, n: int) -> int:
        """Per-step grid charge all-reduce: the full rho array."""
        return 8 * n

    def run(
        self,
        accelerator: Accelerator,
        compiled: CompilationResult,
        n: int,
        inputs: dict[str, object] | None = None,
        steps: int | None = None,
    ) -> RunResult:
        steps = self.steps if steps is None else steps
        functional = inputs is not None
        prefix = (
            "ocl_" if any(k.name.startswith("ocl_") for k in compiled.kernels)
            else ""
        )

        def kern(name: str):
            return compiled.kernel(prefix + name)

        ng = n
        nparticles = PPC * n

        if functional:
            accelerator.to_device(
                rho=np.zeros(ng),
                x=np.asarray(inputs["x"], dtype=np.float64).copy(),
                cell=np.asarray(inputs["cell"], dtype=np.int32),
                frac=np.asarray(inputs["frac"], dtype=np.float64),
                qw=np.asarray(inputs["qw"], dtype=np.float64),
                ax=np.zeros(nparticles),
            )
        else:
            f8 = 8
            accelerator.declare(
                rho=ng * f8, x=nparticles * f8, cell=nparticles * 4,
                frac=nparticles * f8, qw=nparticles * f8, ax=nparticles * f8,
            )
            accelerator.upload_declared("x", "cell", "frac", "qw")

        for _ in range(steps):
            accelerator.launch(kern("pic_zero"), ng=ng)
            accelerator.launch(kern("pic_deposit"), np=nparticles)
            accelerator.launch(kern("pic_gather"), np=nparticles)
            accelerator.launch(kern("pic_push"), dt=DT, np=nparticles)

        outputs: dict[str, np.ndarray] = {}
        if functional:
            outputs = accelerator.from_device("rho", "ax", "x")
        else:
            accelerator.download_declared("rho", "x")
        return RunResult(accelerator.elapsed_s, accelerator, outputs)
