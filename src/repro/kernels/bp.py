"""Back Propagation (BP) — Rodinia, pattern recognition (paper V-D).

A two-layer neural network training step (Table IV: 20M-unit input
layer).  The paper ported ``bpnn_layer_forward`` and
``bpnn_adjust_weights`` from the OpenMP version to OpenACC:

* ``bp_layer_forward`` — for every hidden unit, a dot product over the
  input layer followed by the logistic squash.  The inner loop is a
  scalar reduction.
* ``bp_adjust_weights`` — the weight/momentum update, a doubly-nested
  fully parallel loop pair.

Stage behaviours reproduced: CAPS runs the baseline sequentially (faster
on MIC than GPU — "the MIC has a higher single thread performance"),
``independent`` gives CAPS ~9x on GPU and ~2x on MIC; PGI's PTX is
identical for Base and Indep (its own analysis already parallelizes the
outer loops, so the clauses change nothing); the ``reduction`` directive
makes PGI run the forward pass fully parallel while CAPS fails: no
speedup on GPU and *wrong results* on MIC (lost updates).  The
hand-written OpenCL version stages the input layer through local memory
(Fig. 1a) and wins overall.
"""

from __future__ import annotations

import numpy as np

from ..compilers.framework import CompilationResult
from ..compilers.opencl import OpenCLKernelSpec, OpenCLProgram
from ..frontend.parser import parse_kernel, parse_module
from ..ir.directives import HmppUnroll
from ..ir.stmt import Module
from ..ir.visitors import clone_module
from ..runtime.launcher import Accelerator
from ..passes.library.independent import add_independent
from ..passes.library.reduction import add_reduction
from .base import Benchmark, BenchmarkMeta, RunResult

ETA = 0.3
MOMENTUM = 0.3

SOURCE = """
#pragma acc kernels
void bp_layer_forward(const float *l1, float *l2, const float *w,
                      int n1, int n2) {
  int j, k;
  for (j = 1; j <= n2; j++) {
    float sum = 0.0f;
    for (k = 0; k <= n1; k++) {
      sum += w[k * (n2 + 1) + j] * l1[k];
    }
    l2[j] = 1.0f / (1.0f + exp(-sum));
  }
}

#pragma acc kernels
void bp_adjust_weights(const float *delta, int ndelta, const float *ly,
                       int nly, float *w, float *oldw) {
  int j, k;
  for (j = 1; j <= ndelta; j++) {
    for (k = 0; k <= nly; k++) {
      float new_dw = 0.3f * delta[j] * ly[k] + 0.3f * oldw[k * (ndelta + 1) + j];
      w[k * (ndelta + 1) + j] += new_dw;
      oldw[k * (ndelta + 1) + j] = new_dw;
    }
  }
}
"""

#: hand-written OpenCL: the forward kernel tiles the input layer through
#: __local memory (paper Fig. 1a / V-D1: "it can use the shared memory
#: effectively for the bpnn_layer_forward function"), cutting its global
#: traffic; the OpenACC versions cannot express this.
OPENCL_FORWARD = """
void ocl_layer_forward(const float *l1, float *l2, const float *w,
                       int n1, int n2) {
  int j, k;
  for (j = 1; j <= n2; j++) {
    float sum = 0.0f;
    for (k = 0; k <= n1; k++) {
      sum += w[k * (n2 + 1) + j] * l1[k];
    }
    l2[j] = 1.0f / (1.0f + exp(-sum));
  }
}
"""

OPENCL_ADJUST = """
void ocl_adjust_weights(const float *delta, int ndelta, const float *ly,
                        int nly, float *w, float *oldw) {
  int j, k;
  for (j = 1; j <= ndelta; j++) {
    for (k = 0; k <= nly; k++) {
      float new_dw = 0.3f * delta[j] * ly[k] + 0.3f * oldw[k * (ndelta + 1) + j];
      w[k * (ndelta + 1) + j] += new_dw;
      oldw[k * (ndelta + 1) + j] = new_dw;
    }
  }
}
"""

HIDDEN_UNITS = 16
UNROLL_FACTOR = 8


class BpBenchmark(Benchmark):
    meta = BenchmarkMeta(
        name="Back Propagation",
        short="bp",
        dwarf="Unstructured Grid",
        domain="Pattern Recognition",
        input_size="20M layers",
        paper_size=20 * 1024 * 1024,
        test_size=64,
    )

    def module(self) -> Module:
        return parse_module(SOURCE, "bp")

    # -- stages ---------------------------------------------------------------

    def _with_independent(self, module: Module) -> Module:
        """Force ``independent``: the forward pass only on its outer loop
        (the inner loop is a reduction), the weight update on both loops
        (every (j, k) pair is independent) — the 2-D parallelism the
        Rodinia port exposes."""
        out = clone_module(module)
        kernels = []
        for kernel in out.kernels:
            if kernel.name == "bp_layer_forward":
                kernels.append(
                    add_independent(kernel, force_vars={"j"},
                                    only_top_level=True).kernel
                )
            else:
                kernels.append(
                    add_independent(kernel, force_vars={"j", "k"}).kernel
                )
        out.kernels = kernels
        return out

    def _with_unroll(self, module: Module) -> Module:
        """``#pragma hmppcg unroll(8), jam`` on the weight-update outer
        loop: the CAPS CUDA backend fails silently (nested bodies need a
        real jam) while the OpenCL backend applies it, sharing the
        ``ly[k]`` operand across the jammed copies — "the OpenCL codes
        generated by the unroll-and-jam version runs faster than the
        generated CUDA codes" (V-D1)."""
        out = self._with_independent(module)
        adjust = out.kernel("bp_adjust_weights")
        outer = adjust.loop_by_var("j")
        outer.directives = outer.directives.with_added(
            HmppUnroll(UNROLL_FACTOR, jam=True)
        )
        return out

    def _with_reduction(self, module: Module) -> Module:
        out = self._with_independent(module)
        forward = out.kernel("bp_layer_forward")
        k_loop = forward.loop_by_var("k")
        out.kernels = [
            add_reduction(forward, k_loop.loop_id, "sum"),
            out.kernel("bp_adjust_weights"),
        ]
        return out

    def stages(self) -> dict[str, Module]:
        base = self.module()
        return {
            "base": base,
            "indep": self._with_independent(base),
            "unroll": self._with_unroll(base),
            "reduction": self._with_reduction(base),
        }

    # -- OpenCL ---------------------------------------------------------------

    def opencl_program(self) -> OpenCLProgram:
        forward = parse_kernel(OPENCL_FORWARD)
        adjust = parse_kernel(OPENCL_ADJUST)
        return OpenCLProgram(
            "bp-opencl",
            [
                OpenCLKernelSpec(
                    kernel=forward,
                    # the hand kernel blocks the dot product: work-items
                    # cover (hidden unit, input chunk) pairs and combine
                    # partials with a local-memory tree — the Fig. 1a
                    # pattern OpenACC cannot express
                    parallel_loop_ids=[
                        forward.loop_by_var("j").loop_id,
                        forward.loop_by_var("k").loop_id,
                    ],
                    local_size=(16, 16),
                    shared_staged=("l1",),
                    traffic_reuse=0.55,
                ),
                OpenCLKernelSpec(
                    kernel=adjust,
                    parallel_loop_ids=[
                        adjust.loop_by_var("j").loop_id,
                        adjust.loop_by_var("k").loop_id,
                    ],
                    local_size=(16, 16),
                ),
            ],
        )

    # -- data ---------------------------------------------------------------------

    def inputs(self, n: int, seed: int = 0) -> dict[str, object]:
        rng = np.random.default_rng(seed)
        hid = HIDDEN_UNITS
        l1 = rng.random(n + 1)
        l1[0] = 1.0
        w = rng.random((n + 1) * (hid + 1)) * 0.1
        delta = rng.random(hid + 1) * 0.1
        oldw = rng.random((n + 1) * (hid + 1)) * 0.01
        return {
            "l1": l1,
            "l2": np.zeros(hid + 1),
            "w": w,
            "delta": delta,
            "oldw": oldw,
            "n1": n,
            "n2": hid,
        }

    def reference(self, inputs: dict[str, object]) -> dict[str, np.ndarray]:
        n = int(inputs["n1"])  # type: ignore[arg-type]
        hid = int(inputs["n2"])  # type: ignore[arg-type]
        l1 = np.asarray(inputs["l1"], dtype=np.float64)
        w = np.asarray(inputs["w"], dtype=np.float64).reshape(n + 1, hid + 1).copy()
        delta = np.asarray(inputs["delta"], dtype=np.float64)
        oldw = np.asarray(inputs["oldw"], dtype=np.float64).reshape(
            n + 1, hid + 1
        ).copy()

        # forward
        sums = l1 @ w  # (hid+1,)
        l2 = np.zeros(hid + 1)
        l2[1:] = 1.0 / (1.0 + np.exp(-sums[1:]))

        # adjust weights (uses the *original* oldw, like the kernels)
        new_dw = ETA * np.outer(l1, delta) + MOMENTUM * oldw
        w2 = w + new_dw
        w2[:, 0] = w[:, 0]
        new_dw[:, 0] = oldw[:, 0]
        return {"l2": l2, "w": w2.flatten(), "oldw": new_dw.flatten()}

    # -- driver ---------------------------------------------------------------------

    def run(
        self,
        accelerator: Accelerator,
        compiled: CompilationResult,
        n: int,
        inputs: dict[str, object] | None = None,
    ) -> RunResult:
        functional = inputs is not None
        names = {k.name for k in compiled.kernels}
        prefix = "ocl_" if "ocl_layer_forward" in names else "bp_"
        forward = compiled.kernel(
            prefix + ("layer_forward" if prefix == "ocl_" else "layer_forward")
        )
        adjust = compiled.kernel(prefix + "adjust_weights")
        hid = HIDDEN_UNITS

        if functional:
            accelerator.to_device(
                l1=np.asarray(inputs["l1"], dtype=np.float64),
                l2=np.asarray(inputs["l2"], dtype=np.float64),
                w=np.asarray(inputs["w"], dtype=np.float64),
                delta=np.asarray(inputs["delta"], dtype=np.float64),
                ly=np.asarray(inputs["l1"], dtype=np.float64),
                oldw=np.asarray(inputs["oldw"], dtype=np.float64),
            )
        else:
            f4 = 4
            accelerator.declare(
                l1=(n + 1) * f4,
                l2=(hid + 1) * f4,
                w=(n + 1) * (hid + 1) * f4,
                delta=(hid + 1) * f4,
                ly=(n + 1) * f4,
                oldw=(n + 1) * (hid + 1) * f4,
            )
            accelerator.upload_declared("l1", "w", "delta", "ly", "oldw")

        accelerator.launch(forward, n1=n, n2=hid)
        accelerator.launch(adjust, ndelta=hid, nly=n)

        outputs: dict[str, np.ndarray] = {}
        if functional:
            outputs = accelerator.from_device("l2", "w", "oldw")
        else:
            accelerator.download_declared("l2", "w")
        return RunResult(accelerator.elapsed_s, accelerator, outputs)
