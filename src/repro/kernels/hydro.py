"""Hydro — the RAMSES-derived hydrodynamics mini-application (paper V-E).

A 2-D dimensional-split Godunov solver on an ``nx x ny`` grid with a
Rusanov (local Lax-Friedrichs) flux: per time step the host computes a
CFL time step from a device reduction, then runs an x sweep and a y sweep
(primitives -> sound speed -> interface fluxes -> conservative update ->
reflective boundaries).  Conserved fields are SoA arrays (``rho``,
``momx``, ``momy``, ``ener``); the primitive scratch ``q`` is a rank-2
array (``q[IV][cell]``, as in the real Hydro code) — exactly the pointer
shape PGI 14.9 chokes on: "we cannot compile Hydro with the PGI compiler
because PGI is sensitive with pointer allocations and pointer
conversions" (V-E).

The shipped OpenACC port carries explicit ``gang(192) worker(256)``
clauses (the Gang-mode tuning of its CAPS-era authors); the paper's
optimization replaces them with forced ``independent`` + Gridify, which
barely moves the GPU (~1.3x) but transforms the MIC ("200 times"),
because explicit Gang-mode work-item indexing defeats the Intel OpenCL
vectorizer.
"""

from __future__ import annotations

import numpy as np

from ..compilers.framework import CompilationResult
from ..compilers.opencl import OpenCLKernelSpec, OpenCLProgram
from ..frontend.parser import parse_kernel, parse_module
from ..ir.stmt import Module
from ..ir.visitors import clone_module
from ..runtime.launcher import Accelerator
from ..passes.library.distribute import clear_distribution, set_gang_worker
from ..passes.library.independent import add_independent
from .base import Benchmark, BenchmarkMeta, RunResult

GAMMA = 1.4
CFL = 0.4
SMALLR = 1e-10
#: chunks of the two-stage courant (dt) reduction; the host reduces the
#: per-chunk partial maxima
NCHUNKS = 3840

SOURCE = """
#pragma acc kernels
void hydro_primitives(const double *rho, const double *momx, const double *momy,
                      const double *ener, double **q, int n, double gamma) {
  int i;
  for (i = 0; i < n; i++) {
    double r = fmax(rho[i], 0.0000000001);
    q[0][i] = r;
    q[1][i] = momx[i] / r;
    q[2][i] = momy[i] / r;
    double ek = 0.5 * r * (q[1][i] * q[1][i] + q[2][i] * q[2][i]);
    q[3][i] = fmax((gamma - 1.0) * (ener[i] - ek), 0.0000000001);
  }
}

#pragma acc kernels
void hydro_soundspeed(double **q, double *c, int n, double gamma) {
  int i;
  for (i = 0; i < n; i++) {
    c[i] = sqrt(gamma * q[3][i] / q[0][i]);
  }
}

#pragma acc kernels
void hydro_courant(double **q, const double *c, double *partial,
                   int nchunks, int chunk, int n) {
  int b, i;
  for (b = 0; b < nchunks; b++) {
    double cmax = 0.0;
    for (i = b * chunk; i < (b + 1) * chunk; i++) {
      if (i < n) {
        cmax = fmax(cmax, fabs(q[1][i]) + c[i]);
        cmax = fmax(cmax, fabs(q[2][i]) + c[i]);
      }
    }
    partial[b] = cmax;
  }
}

#pragma acc kernels
void hydro_flux_x(const double *rho, const double *momx, const double *momy,
                  const double *ener, double **q, const double *c,
                  double *frho, double *fmx, double *fmy, double *fe,
                  int nx, int ny) {
  int jy, ix;
  for (jy = 0; jy < ny; jy++) {
    for (ix = 0; ix < nx - 1; ix++) {
      int il = jy * nx + ix;
      int ir = il + 1;
      double ul = q[1][il];
      double ur = q[1][ir];
      double pl = q[3][il];
      double pr = q[3][ir];
      double smax = fmax(fabs(ul) + c[il], fabs(ur) + c[ir]);
      frho[il] = 0.5 * (rho[il] * ul + rho[ir] * ur) - 0.5 * smax * (rho[ir] - rho[il]);
      fmx[il] = 0.5 * (momx[il] * ul + pl + momx[ir] * ur + pr) - 0.5 * smax * (momx[ir] - momx[il]);
      fmy[il] = 0.5 * (momy[il] * ul + momy[ir] * ur) - 0.5 * smax * (momy[ir] - momy[il]);
      fe[il] = 0.5 * ((ener[il] + pl) * ul + (ener[ir] + pr) * ur) - 0.5 * smax * (ener[ir] - ener[il]);
    }
  }
}

#pragma acc kernels
void hydro_update_x(double *rho, double *momx, double *momy, double *ener,
                    const double *frho, const double *fmx, const double *fmy,
                    const double *fe, double dtdx, int nx, int ny) {
  int jy, ix;
  for (jy = 0; jy < ny; jy++) {
    for (ix = 1; ix < nx - 1; ix++) {
      int ic = jy * nx + ix;
      rho[ic] -= dtdx * (frho[ic] - frho[ic - 1]);
      momx[ic] -= dtdx * (fmx[ic] - fmx[ic - 1]);
      momy[ic] -= dtdx * (fmy[ic] - fmy[ic - 1]);
      ener[ic] -= dtdx * (fe[ic] - fe[ic - 1]);
    }
  }
}

#pragma acc kernels
void hydro_boundary_x(double *rho, double *momx, double *momy, double *ener,
                      int nx, int ny) {
  int jy;
  for (jy = 0; jy < ny; jy++) {
    rho[jy * nx] = rho[jy * nx + 1];
    momx[jy * nx] = -momx[jy * nx + 1];
    momy[jy * nx] = momy[jy * nx + 1];
    ener[jy * nx] = ener[jy * nx + 1];
    rho[jy * nx + nx - 1] = rho[jy * nx + nx - 2];
    momx[jy * nx + nx - 1] = -momx[jy * nx + nx - 2];
    momy[jy * nx + nx - 1] = momy[jy * nx + nx - 2];
    ener[jy * nx + nx - 1] = ener[jy * nx + nx - 2];
  }
}

#pragma acc kernels
void hydro_flux_y(const double *rho, const double *momx, const double *momy,
                  const double *ener, double **q, const double *c,
                  double *frho, double *fmx, double *fmy, double *fe,
                  int nx, int ny) {
  int jy, ix;
  for (jy = 0; jy < ny - 1; jy++) {
    for (ix = 0; ix < nx; ix++) {
      int il = jy * nx + ix;
      int ir = il + nx;
      double vl = q[2][il];
      double vr = q[2][ir];
      double pl = q[3][il];
      double pr = q[3][ir];
      double smax = fmax(fabs(vl) + c[il], fabs(vr) + c[ir]);
      frho[il] = 0.5 * (rho[il] * vl + rho[ir] * vr) - 0.5 * smax * (rho[ir] - rho[il]);
      fmx[il] = 0.5 * (momx[il] * vl + momx[ir] * vr) - 0.5 * smax * (momx[ir] - momx[il]);
      fmy[il] = 0.5 * (momy[il] * vl + pl + momy[ir] * vr + pr) - 0.5 * smax * (momy[ir] - momy[il]);
      fe[il] = 0.5 * ((ener[il] + pl) * vl + (ener[ir] + pr) * vr) - 0.5 * smax * (ener[ir] - ener[il]);
    }
  }
}

#pragma acc kernels
void hydro_update_y(double *rho, double *momx, double *momy, double *ener,
                    const double *frho, const double *fmx, const double *fmy,
                    const double *fe, double dtdx, int nx, int ny) {
  int jy, ix;
  for (jy = 1; jy < ny - 1; jy++) {
    for (ix = 0; ix < nx; ix++) {
      int ic = jy * nx + ix;
      rho[ic] -= dtdx * (frho[ic] - frho[ic - nx]);
      momx[ic] -= dtdx * (fmx[ic] - fmx[ic - nx]);
      momy[ic] -= dtdx * (fmy[ic] - fmy[ic - nx]);
      ener[ic] -= dtdx * (fe[ic] - fe[ic - nx]);
    }
  }
}

#pragma acc kernels
void hydro_boundary_y(double *rho, double *momx, double *momy, double *ener,
                      int nx, int ny) {
  int ix;
  for (ix = 0; ix < nx; ix++) {
    rho[ix] = rho[nx + ix];
    momx[ix] = momx[nx + ix];
    momy[ix] = -momy[nx + ix];
    ener[ix] = ener[nx + ix];
    rho[(ny - 1) * nx + ix] = rho[(ny - 2) * nx + ix];
    momx[(ny - 1) * nx + ix] = momx[(ny - 2) * nx + ix];
    momy[(ny - 1) * nx + ix] = -momy[(ny - 2) * nx + ix];
    ener[(ny - 1) * nx + ix] = ener[(ny - 2) * nx + ix];
  }
}
"""

#: kernels whose loops get Gang-mode clauses in the shipped port and
#: forced `independent` in the optimized version (the courant kernel
#: computes per-chunk partial maxima; the host finishes the reduction)
PARALLEL_KERNELS = (
    "hydro_primitives",
    "hydro_soundspeed",
    "hydro_courant",
    "hydro_flux_x",
    "hydro_update_x",
    "hydro_boundary_x",
    "hydro_flux_y",
    "hydro_update_y",
    "hydro_boundary_y",
)

PORT_GANG = 192
PORT_WORKER = 256


class HydroBenchmark(Benchmark):
    meta = BenchmarkMeta(
        name="Hydro",
        short="hydro",
        dwarf="Structured Grid",
        domain="Astrophysics (galaxy formation)",
        input_size="2K x 2K grid",
        paper_size=2048,
        test_size=24,
    )

    def module(self) -> Module:
        """The shipped OpenACC port: Gang-mode clauses on the outer loops."""
        module = parse_module(SOURCE, "hydro")
        kernels = []
        for kernel in module.kernels:
            if kernel.name in PARALLEL_KERNELS:
                outer = kernel.top_level_loops()[0]
                kernel = set_gang_worker(
                    kernel, outer.loop_id, PORT_GANG, PORT_WORKER
                )
            kernels.append(kernel)
        module.kernels = kernels
        return module

    def _optimized(self, module: Module) -> Module:
        """Forced ``independent`` + Gridify (drop the Gang clauses)."""
        out = clone_module(module)
        kernels = []
        for kernel in out.kernels:
            if kernel.name in PARALLEL_KERNELS:
                for loop in kernel.loops():
                    kernel = clear_distribution(kernel, loop.loop_id)
                if kernel.name == "hydro_courant":
                    # only the chunk loop is independent; the inner loop
                    # accumulates the chunk maximum sequentially
                    kernel = add_independent(
                        kernel, force_vars={"b"}, only_top_level=True
                    ).kernel
                else:
                    kernel = add_independent(
                        kernel, force_vars={"jy", "ix", "i"}
                    ).kernel
            kernels.append(kernel)
        out.kernels = kernels
        return out

    def stages(self) -> dict[str, Module]:
        base = self.module()
        return {"base": base, "optimized": self._optimized(base)}

    # -- OpenCL ---------------------------------------------------------------

    def opencl_program(self) -> OpenCLProgram:
        """The hand-written OpenCL port: one NDRange kernel per loop nest."""
        module = parse_module(SOURCE.replace("hydro_", "ocl_hydro_"), "hydro-opencl")
        specs = []
        for kernel in module.kernels:
            name = kernel.name.replace("ocl_", "")
            if name in PARALLEL_KERNELS:
                loops = kernel.top_level_loops()
                outer = loops[0]
                ids = [outer.loop_id]
                inner = outer.body.stmts[0] if outer.body.stmts else None
                from ..ir.stmt import For

                if len(outer.body.stmts) == 1 and isinstance(inner, For):
                    ids.append(inner.loop_id)
                specs.append(
                    OpenCLKernelSpec(
                        kernel=kernel,
                        parallel_loop_ids=ids,
                        local_size=(32, 4) if len(ids) > 1 else (128, 1),
                    )
                )
            else:
                specs.append(OpenCLKernelSpec(kernel=kernel, parallel_loop_ids=[]))
        return OpenCLProgram("hydro-opencl", specs)

    # -- data ---------------------------------------------------------------------

    def inputs(self, n: int, seed: int = 0) -> dict[str, object]:
        nx = ny = n
        rho = np.full(nx * ny, 0.125)
        pressure = np.full(nx * ny, 0.1)
        half = (np.arange(nx * ny) % nx) < nx // 2
        rho[half] = 1.0
        pressure[half] = 1.0
        return {
            "rho": rho,
            "momx": np.zeros(nx * ny),
            "momy": np.zeros(nx * ny),
            "ener": pressure / (GAMMA - 1.0),
            "nx": nx,
            "ny": ny,
        }

    def reference(
        self, inputs: dict[str, object], steps: int = 2
    ) -> dict[str, np.ndarray]:
        nx = int(inputs["nx"])  # type: ignore[arg-type]
        ny = int(inputs["ny"])  # type: ignore[arg-type]
        rho = np.asarray(inputs["rho"], dtype=np.float64).reshape(ny, nx).copy()
        momx = np.asarray(inputs["momx"], dtype=np.float64).reshape(ny, nx).copy()
        momy = np.asarray(inputs["momy"], dtype=np.float64).reshape(ny, nx).copy()
        ener = np.asarray(inputs["ener"], dtype=np.float64).reshape(ny, nx).copy()

        def primitives():
            r = np.maximum(rho, SMALLR)
            u = momx / r
            v = momy / r
            p = np.maximum((GAMMA - 1.0) * (ener - 0.5 * r * (u * u + v * v)),
                           SMALLR)
            c = np.sqrt(GAMMA * p / r)
            return r, u, v, p, c

        for _ in range(steps):
            r, u, v, p, c = primitives()
            cmax = max(
                float(np.max(np.abs(u) + c)), float(np.max(np.abs(v) + c))
            )
            dtdx = CFL / cmax

            # x sweep
            def rusanov_x(fl_u, fl_p):
                smax = np.maximum(
                    np.abs(fl_u[:, :-1]) + c[:, :-1], np.abs(fl_u[:, 1:]) + c[:, 1:]
                )
                return smax

            smax = rusanov_x(u, p)
            frho = 0.5 * (rho[:, :-1] * u[:, :-1] + rho[:, 1:] * u[:, 1:]) \
                - 0.5 * smax * (rho[:, 1:] - rho[:, :-1])
            fmx = 0.5 * (momx[:, :-1] * u[:, :-1] + p[:, :-1]
                         + momx[:, 1:] * u[:, 1:] + p[:, 1:]) \
                - 0.5 * smax * (momx[:, 1:] - momx[:, :-1])
            fmy = 0.5 * (momy[:, :-1] * u[:, :-1] + momy[:, 1:] * u[:, 1:]) \
                - 0.5 * smax * (momy[:, 1:] - momy[:, :-1])
            fe = 0.5 * ((ener[:, :-1] + p[:, :-1]) * u[:, :-1]
                        + (ener[:, 1:] + p[:, 1:]) * u[:, 1:]) \
                - 0.5 * smax * (ener[:, 1:] - ener[:, :-1])
            rho[:, 1:-1] -= dtdx * (frho[:, 1:] - frho[:, :-1])
            momx[:, 1:-1] -= dtdx * (fmx[:, 1:] - fmx[:, :-1])
            momy[:, 1:-1] -= dtdx * (fmy[:, 1:] - fmy[:, :-1])
            ener[:, 1:-1] -= dtdx * (fe[:, 1:] - fe[:, :-1])
            # reflective boundary x
            rho[:, 0] = rho[:, 1]
            momx[:, 0] = -momx[:, 1]
            momy[:, 0] = momy[:, 1]
            ener[:, 0] = ener[:, 1]
            rho[:, -1] = rho[:, -2]
            momx[:, -1] = -momx[:, -2]
            momy[:, -1] = momy[:, -2]
            ener[:, -1] = ener[:, -2]

            # y sweep (fresh primitives)
            r, u, v, p, c = primitives()
            smax = np.maximum(
                np.abs(v[:-1, :]) + c[:-1, :], np.abs(v[1:, :]) + c[1:, :]
            )
            frho = 0.5 * (rho[:-1, :] * v[:-1, :] + rho[1:, :] * v[1:, :]) \
                - 0.5 * smax * (rho[1:, :] - rho[:-1, :])
            fmx = 0.5 * (momx[:-1, :] * v[:-1, :] + momx[1:, :] * v[1:, :]) \
                - 0.5 * smax * (momx[1:, :] - momx[:-1, :])
            fmy = 0.5 * (momy[:-1, :] * v[:-1, :] + p[:-1, :]
                         + momy[1:, :] * v[1:, :] + p[1:, :]) \
                - 0.5 * smax * (momy[1:, :] - momy[:-1, :])
            fe = 0.5 * ((ener[:-1, :] + p[:-1, :]) * v[:-1, :]
                        + (ener[1:, :] + p[1:, :]) * v[1:, :]) \
                - 0.5 * smax * (ener[1:, :] - ener[:-1, :])
            rho[1:-1, :] -= dtdx * (frho[1:, :] - frho[:-1, :])
            momx[1:-1, :] -= dtdx * (fmx[1:, :] - fmx[:-1, :])
            momy[1:-1, :] -= dtdx * (fmy[1:, :] - fmy[:-1, :])
            ener[1:-1, :] -= dtdx * (fe[1:, :] - fe[:-1, :])
            # reflective boundary y
            rho[0, :] = rho[1, :]
            momx[0, :] = momx[1, :]
            momy[0, :] = -momy[1, :]
            ener[0, :] = ener[1, :]
            rho[-1, :] = rho[-2, :]
            momx[-1, :] = momx[-2, :]
            momy[-1, :] = -momy[-2, :]
            ener[-1, :] = ener[-2, :]

        return {
            "rho": rho.flatten(),
            "momx": momx.flatten(),
            "momy": momy.flatten(),
            "ener": ener.flatten(),
        }

    # -- driver ---------------------------------------------------------------------

    #: estimated host-side seconds per step per cell with GCC (I/O,
    #: orchestration, dt finalization) [calibrated: Fig. 15 GCC-vs-Intel gap]
    HOST_SECONDS_PER_CELL = 5e-9

    def run(
        self,
        accelerator: Accelerator,
        compiled: CompilationResult,
        n: int,
        inputs: dict[str, object] | None = None,
        steps: int = 2,
    ) -> RunResult:
        functional = inputs is not None
        prefix = (
            "ocl_" if any(k.name.startswith("ocl_") for k in compiled.kernels)
            else ""
        )

        def kern(name: str):
            return compiled.kernel(prefix + name)

        nx = ny = n
        cells = nx * ny

        if functional:
            accelerator.to_device(
                rho=np.asarray(inputs["rho"], dtype=np.float64),
                momx=np.asarray(inputs["momx"], dtype=np.float64),
                momy=np.asarray(inputs["momy"], dtype=np.float64),
                ener=np.asarray(inputs["ener"], dtype=np.float64),
                q=np.zeros((4, cells)),
                c=np.zeros(cells),
                partial=np.zeros(NCHUNKS),
                frho=np.zeros(cells),
                fmx=np.zeros(cells),
                fmy=np.zeros(cells),
                fe=np.zeros(cells),
                courant=np.zeros(1),
            )
        else:
            f8 = 8
            accelerator.declare(
                rho=cells * f8, momx=cells * f8, momy=cells * f8,
                ener=cells * f8, q=4 * cells * f8, c=cells * f8,
                frho=cells * f8, fmx=cells * f8, fmy=cells * f8,
                fe=cells * f8, partial=NCHUNKS * f8,
            )
            accelerator.upload_declared("rho", "momx", "momy", "ener")

        for _ in range(steps):
            chunk = max(1, -(-cells // NCHUNKS))
            accelerator.launch(kern("hydro_primitives"), n=cells, gamma=GAMMA)
            accelerator.launch(kern("hydro_soundspeed"), n=cells, gamma=GAMMA)
            accelerator.launch(kern("hydro_courant"), nchunks=NCHUNKS,
                               chunk=chunk, n=cells)
            if functional:
                cmax = float(accelerator.from_device("partial")["partial"].max())
            else:
                accelerator.download_declared("partial")
                cmax = 2.0
            dtdx = CFL / max(cmax, 1e-10)
            accelerator.host_compute(
                "hydro step bookkeeping", self.HOST_SECONDS_PER_CELL * cells
            )

            accelerator.launch(kern("hydro_flux_x"), nx=nx, ny=ny)
            accelerator.launch(kern("hydro_update_x"), dtdx=dtdx, nx=nx, ny=ny)
            accelerator.launch(kern("hydro_boundary_x"), nx=nx, ny=ny)

            accelerator.launch(kern("hydro_primitives"), n=cells, gamma=GAMMA)
            accelerator.launch(kern("hydro_soundspeed"), n=cells, gamma=GAMMA)
            accelerator.launch(kern("hydro_flux_y"), nx=nx, ny=ny)
            accelerator.launch(kern("hydro_update_y"), dtdx=dtdx, nx=nx, ny=ny)
            accelerator.launch(kern("hydro_boundary_y"), nx=nx, ny=ny)

        outputs: dict[str, np.ndarray] = {}
        if functional:
            outputs = accelerator.from_device("rho", "momx", "momy", "ener")
        else:
            accelerator.download_declared("rho", "momx", "momy", "ener")
        return RunResult(accelerator.elapsed_s, accelerator, outputs)
