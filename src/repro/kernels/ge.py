"""Gaussian Elimination (GE) — Rodinia "gaussian" (paper V-B).

Solves ``A x = b`` by forward elimination.  The host iterates over pivot
columns ``t``; per iteration the baseline launches three kernels:
``ge_fan1`` (multiplier column), ``ge_fan2`` (trailing-matrix update,
a nested loop pair), and ``ge_fan3`` (right-hand-side update).  "It must
synchronize between iterations, but the values calculated in each
iteration can be computed in parallel" (Table IV: 8K matrix).

Optimization stages (V-B1):

* ``indep`` — forced ``independent`` on every fan loop: "Adding
  independent directives makes the CAPS and PGI compilers automatically
  apply the thread distribution optimization"; CAPS gridifies 2-D
  ([32,4]), PGI goes 1-D ([128,1]) with the inner loop sequential.
* ``unroll`` — ``#pragma hmppcg unroll(8), jam`` on the fan2 outer loop
  (CAPS: fake success, PTX unchanged) and ``-Munroll`` for PGI (real,
  PTX arithmetic/data movement ~doubles, no speedup).
* ``tile`` — ``#pragma acc tile`` on fan1: real strip-mine, no shared
  memory, performance unchanged.
* ``reorganized`` — fan2+fan3 fused: "turn three kernel loops into two",
  matching the 2-kernel OpenCL version (kernel launches drop 3N -> 2N).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..compilers.framework import CompilationResult
from ..compilers.opencl import OpenCLKernelSpec, OpenCLProgram
from ..frontend.parser import parse_kernel, parse_module
from ..ir.directives import AccLoop, HmppUnroll
from ..ir.stmt import Module
from ..ir.visitors import clone_module
from ..runtime.launcher import Accelerator
from ..passes.library.independent import add_independent
from .base import Benchmark, BenchmarkMeta, RunResult

SOURCE = """
#pragma acc kernels
void ge_fan1(float *a, float *m, int size, int t) {
  int i;
  for (i = 0; i < size - 1 - t; i++) {
    m[size * (i + t + 1) + t] = a[size * (i + t + 1) + t] / a[size * t + t];
  }
}

#pragma acc kernels
void ge_fan2(float *a, float *m, int size, int t) {
  int i, j;
  for (i = 0; i < size - 1 - t; i++) {
    for (j = 0; j < size - t; j++) {
      a[size * (i + 1 + t) + (j + t)] -= m[size * (i + 1 + t) + t] * a[size * t + (j + t)];
    }
  }
}

#pragma acc kernels
void ge_fan3(float *m, float *b, int size, int t) {
  int i;
  for (i = 0; i < size - 1 - t; i++) {
    b[i + 1 + t] -= m[size * (i + 1 + t) + t] * b[t];
  }
}
"""

#: hand-written OpenCL: two kernels, full-range loops with interior guards
#: and CONSTANT work sizes — "the OpenCL version usually only sets global
#: work size to constant input numbers" (V-B1)
OPENCL_FAN1 = """
void ocl_fan1(float *a, float *m, int size, int t) {
  int i;
  for (i = 0; i < size; i++) {
    if (i < size - 1 - t) {
      m[size * (i + t + 1) + t] = a[size * (i + t + 1) + t] / a[size * t + t];
    }
  }
}
"""

OPENCL_FAN2 = """
void ocl_fan2(float *a, float *m, float *b, int size, int t) {
  int i, j;
  for (i = 0; i < size; i++) {
    for (j = 0; j < size; j++) {
      if (i < size - 1 - t) {
        if (j < size - t) {
          a[size * (i + 1 + t) + (j + t)] -= m[size * (i + 1 + t) + t] * a[size * t + (j + t)];
          if (j == 0) {
            b[i + 1 + t] -= m[size * (i + 1 + t) + t] * b[t];
          }
        }
      }
    }
  }
}
"""

#: advanced variant: exact sub-ranges, sized per launch like the CAPS
#: codelet (paper Fig. 8)
OPENCL_FAN1_ADV = """
void ocl_fan1(float *a, float *m, int size, int t) {
  int i;
  for (i = 0; i < size - 1 - t; i++) {
    m[size * (i + t + 1) + t] = a[size * (i + t + 1) + t] / a[size * t + t];
  }
}
"""

OPENCL_FAN2_ADV = """
void ocl_fan2(float *a, float *m, float *b, int size, int t) {
  int i, j;
  for (i = 0; i < size - 1 - t; i++) {
    for (j = 0; j < size - t; j++) {
      a[size * (i + 1 + t) + (j + t)] -= m[size * (i + 1 + t) + t] * a[size * t + (j + t)];
      if (j == 0) {
        b[i + 1 + t] -= m[size * (i + 1 + t) + t] * b[t];
      }
    }
  }
}
"""

#: the reorganized fan2 (paper V-B1: "turn three kernel loops into two"):
#: the right-hand-side update folds into the trailing-matrix nest behind a
#: j == 0 guard, keeping the perfect nest CAPS gridifies 2-D — the same
#: structure as the hand-written OpenCL kernel
SOURCE_FAN2_REORGANIZED = """
#pragma acc kernels
void ge_fan2(float *a, float *m, float *b, int size, int t) {
  int i, j;
  for (i = 0; i < size - 1 - t; i++) {
    for (j = 0; j < size - t; j++) {
      a[size * (i + 1 + t) + (j + t)] -= m[size * (i + 1 + t) + t] * a[size * t + (j + t)];
      if (j == 0) {
        b[i + 1 + t] -= m[size * (i + 1 + t) + t] * b[t];
      }
    }
  }
}
"""

UNROLL_FACTOR = 8
TILE_SIZE = 16


class GeBenchmark(Benchmark):
    meta = BenchmarkMeta(
        name="Gaussian Elimination",
        short="ge",
        dwarf="Dense Linear Algebra",
        domain="Linear Algebra",
        input_size="8K matrix",
        paper_size=8192,
        test_size=20,
    )

    def module(self) -> Module:
        return parse_module(SOURCE, "ge")

    # -- stages ---------------------------------------------------------------

    def _with_independent(self, module: Module) -> Module:
        out = clone_module(module)
        out.kernels = [
            add_independent(kernel, force_vars={"i", "j"}).kernel
            for kernel in out.kernels
        ]
        return out

    def _with_unroll(self, module: Module) -> Module:
        out = self._with_independent(module)
        fan2 = out.kernel("ge_fan2")
        outer = fan2.loop_by_var("i")
        outer.directives = outer.directives.with_added(
            HmppUnroll(UNROLL_FACTOR, jam=True)
        )
        return out

    def _with_tile(self, module: Module) -> Module:
        out = self._with_independent(module)
        fan1 = out.kernel("ge_fan1")
        loop = fan1.loop_by_var("i")
        acc = loop.directives.first(AccLoop)
        loop.directives = loop.directives.with_replaced(
            AccLoop, dataclasses.replace(acc, tile=(TILE_SIZE,))  # type: ignore[arg-type]
        )
        return out

    def _reorganized(self, module: Module) -> Module:
        """Two kernels instead of three: fan1 plus the hand-reorganized
        fan2 (with the guarded right-hand-side update)."""
        out = self._with_independent(module)
        fan2 = add_independent(
            parse_kernel(SOURCE_FAN2_REORGANIZED), force_vars={"i", "j"}
        ).kernel
        return Module("ge-reorganized", [out.kernel("ge_fan1"), fan2])

    def stages(self) -> dict[str, Module]:
        base = self.module()
        return {
            "base": base,
            "indep": self._with_independent(base),
            "unroll": self._with_unroll(base),
            "tile": self._with_tile(base),
            "reorganized": self._reorganized(base),
        }

    # -- OpenCL ---------------------------------------------------------------

    def opencl_program(self, advanced: bool = False) -> OpenCLProgram:
        fan1_src = OPENCL_FAN1_ADV if advanced else OPENCL_FAN1
        fan2_src = OPENCL_FAN2_ADV if advanced else OPENCL_FAN2
        fan1 = parse_kernel(fan1_src)
        fan2 = parse_kernel(fan2_src)
        # the baseline host code sizes every launch to the full matrix (the
        # loops run 0..size with interior guards), so the work size is a
        # "constant input number" per V-B1; the advanced variant derives
        # exact per-iteration sizes like the CAPS codelet (Fig. 8)
        specs = [
            OpenCLKernelSpec(
                kernel=fan1,
                parallel_loop_ids=[fan1.loop_by_var("i").loop_id],
                local_size=(128, 1),
                advanced_distribution=advanced,
            ),
            OpenCLKernelSpec(
                kernel=fan2,
                parallel_loop_ids=[
                    fan2.loop_by_var("i").loop_id,
                    fan2.loop_by_var("j").loop_id,
                ],
                local_size=(32, 4),
                advanced_distribution=advanced,
            ),
        ]
        return OpenCLProgram("ge-opencl", specs)

    # -- data ---------------------------------------------------------------------

    def inputs(self, n: int, seed: int = 0) -> dict[str, object]:
        rng = np.random.default_rng(seed)
        a = rng.random((n, n)) + n * np.eye(n)
        b = rng.random(n)
        m = np.zeros((n, n))
        return {"a": a.flatten(), "b": b, "m": m.flatten(), "size": n}

    def reference(self, inputs: dict[str, object]) -> dict[str, np.ndarray]:
        n = int(inputs["size"])  # type: ignore[arg-type]
        a = np.array(inputs["a"], dtype=np.float64).reshape(n, n).copy()
        b = np.array(inputs["b"], dtype=np.float64).copy()
        for t in range(n - 1):
            mult = a[t + 1:, t] / a[t, t]
            a[t + 1:, t:] -= np.outer(mult, a[t, t:])
            b[t + 1:] -= mult * b[t]
        return {"a": a.flatten(), "b": b}

    # -- driver ---------------------------------------------------------------------

    def run(
        self,
        accelerator: Accelerator,
        compiled: CompilationResult,
        n: int,
        inputs: dict[str, object] | None = None,
    ) -> RunResult:
        functional = inputs is not None
        names = {k.name for k in compiled.kernels}
        is_opencl = "ocl_fan1" in names
        reorganized = "ge_fan3" not in names and not is_opencl

        if functional:
            accelerator.to_device(
                a=np.asarray(inputs["a"], dtype=np.float64),
                b=np.asarray(inputs["b"], dtype=np.float64),
                m=np.asarray(inputs["m"], dtype=np.float64),
            )
        else:
            accelerator.declare(a=n * n * 4, b=n * 4, m=n * n * 4)
            accelerator.upload_declared("a", "b", "m")

        for t in range(n - 1):
            if is_opencl:
                accelerator.launch(compiled.kernel("ocl_fan1"), size=n, t=t)
                accelerator.launch(compiled.kernel("ocl_fan2"), size=n, t=t)
            else:
                accelerator.launch(compiled.kernel("ge_fan1"), size=n, t=t)
                accelerator.launch(compiled.kernel("ge_fan2"), size=n, t=t)
                if not reorganized:
                    accelerator.launch(compiled.kernel("ge_fan3"), size=n, t=t)

        outputs: dict[str, np.ndarray] = {}
        if functional:
            outputs = accelerator.from_device("a", "b")
        else:
            accelerator.download_declared("a", "b")
        return RunResult(accelerator.elapsed_s, accelerator, outputs)
