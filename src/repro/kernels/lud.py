"""LU Decomposition (LUD) — Rodinia, dense linear algebra (paper V-A).

In-place Doolittle factorization of an ``size x size`` matrix: the host
iterates over pivot rows; two device kernels per iteration update the
pivot row and the pivot column.  "LUD is a compute-intensive kernel and
can be seen as a matrix form of GE" (Table IV: 4K matrix).

Every loop carries (or appears to carry) dependences, so Step 1 of the
method does not apply: "the independent directives cannot be added due to
the dependencies found in the loops" (V-A1).  The optimization stages are
thread distribution (Gang mode), unrolling, and tiling.
"""

from __future__ import annotations

import numpy as np

from ..compilers.framework import CompilationResult
from ..frontend.parser import parse_module
from ..ir.directives import AccLoop, HmppUnroll
from ..ir.stmt import Module
from ..ir.visitors import clone_module
from ..runtime.launcher import Accelerator
from ..passes.library.distribute import set_gang_worker
from .base import Benchmark, BenchmarkMeta, RunResult

SOURCE = """
#pragma acc kernels
void lud_row(float *a, int size, int i) {
  int j, k;
  for (j = i; j < size; j++) {
    float sum = a[i * size + j];
    for (k = 0; k < i; k++) {
      sum -= a[i * size + k] * a[k * size + j];
    }
    a[i * size + j] = sum;
  }
}

#pragma acc kernels
void lud_column(float *a, int size, int i) {
  int j, k;
  for (j = i + 1; j < size; j++) {
    float sum = a[j * size + i];
    for (k = 0; k < i; k++) {
      sum -= a[j * size + k] * a[k * size + i];
    }
    a[j * size + i] = sum / a[i * size + i];
  }
}
"""

#: the portable-best thread distribution found in the heat maps (Fig. 4):
#: "the gang and worker for the best performance of LUD on GPU K40 are
#: (>256, 16) ... the thread distribution for the best performance
#: portability across GPU and MIC can be found in (>256, 16)"
BEST_GANG = 256
BEST_WORKER = 16
UNROLL_FACTOR = 8
TILE_SIZE = 16


class LudBenchmark(Benchmark):
    meta = BenchmarkMeta(
        name="LU Decomposition",
        short="lud",
        dwarf="Dense Linear Algebra",
        domain="Linear Algebra",
        input_size="4K matrix",
        paper_size=4096,
        test_size=24,
    )

    # -- sources ---------------------------------------------------------------

    def module(self) -> Module:
        return parse_module(SOURCE, "lud")

    def _with_distribution(self, module: Module) -> Module:
        out = clone_module(module)
        kernels = []
        for kernel in out.kernels:
            j_loop = kernel.loop_by_var("j")
            kernels.append(
                set_gang_worker(kernel, j_loop.loop_id, BEST_GANG, BEST_WORKER)
            )
        out.kernels = kernels
        return out

    def _with_unroll(self, module: Module) -> Module:
        """Attach ``#pragma hmppcg unroll(8)`` to the inner k loops.

        The directive is plain unrolling of an innermost loop, which the
        CAPS CUDA backend applies for real (Fig. 6: CAPS unroll PTX grows);
        PGI's unroll comes from -Munroll at compile time and skips this
        reduction-carried loop (Fig. 6: PGI unroll PTX unchanged).
        """
        out = self._with_distribution(module)
        for kernel in out.kernels:
            k_loop = kernel.loop_by_var("k")
            k_loop.directives = k_loop.directives.with_added(
                HmppUnroll(UNROLL_FACTOR, jam=False)
            )
        return out

    def _with_tile(self, module: Module) -> Module:
        """Attach ``#pragma acc tile(16)`` to the j loops.

        These loops are not independent, so CAPS accepts the directive but
        generates nothing (Fig. 6: tile PTX identical to thread-dist).
        """
        out = self._with_distribution(module)
        for kernel in out.kernels:
            j_loop = kernel.loop_by_var("j")
            acc = j_loop.directives.first(AccLoop)
            import dataclasses

            new_acc = dataclasses.replace(acc, tile=(TILE_SIZE,))  # type: ignore[arg-type]
            j_loop.directives = j_loop.directives.with_replaced(AccLoop, new_acc)
        return out

    def stages(self) -> dict[str, Module]:
        base = self.module()
        return {
            "base": base,
            "threaddist": self._with_distribution(base),
            "unroll": self._with_unroll(base),
            "tile": self._with_tile(base),
        }

    # -- data ---------------------------------------------------------------------

    def inputs(self, n: int, seed: int = 0) -> dict[str, object]:
        rng = np.random.default_rng(seed)
        matrix = rng.random((n, n)) + n * np.eye(n)  # diagonally dominant
        return {"a": matrix.flatten(), "size": n}

    def reference(self, inputs: dict[str, object]) -> dict[str, np.ndarray]:
        n = int(inputs["size"])  # type: ignore[arg-type]
        a = np.array(inputs["a"], dtype=np.float64).reshape(n, n).copy()
        for i in range(n):
            a[i, i:] -= a[i, :i] @ a[:i, i:]
            a[i + 1:, i] = (a[i + 1:, i] - a[i + 1:, :i] @ a[:i, i]) / a[i, i]
        return {"a": a.flatten()}

    # -- driver ---------------------------------------------------------------------

    def run(
        self,
        accelerator: Accelerator,
        compiled: CompilationResult,
        n: int,
        inputs: dict[str, object] | None = None,
    ) -> RunResult:
        functional = inputs is not None
        row = compiled.kernel("lud_row")
        column = compiled.kernel("lud_column")

        if functional:
            accelerator.to_device(a=np.asarray(inputs["a"], dtype=np.float64))
        else:
            accelerator.declare(a=n * n * 4)
            accelerator.upload_declared("a")

        for i in range(n):
            accelerator.launch(row, size=n, i=i)
            accelerator.launch(column, size=n, i=i)

        outputs: dict[str, np.ndarray] = {}
        if functional:
            outputs = accelerator.from_device("a")
        else:
            accelerator.download_declared("a")
        return RunResult(accelerator.elapsed_s, accelerator, outputs)
