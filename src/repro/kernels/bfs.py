"""Breadth First Search (BFS) — Rodinia, graph traversal (paper V-C).

Level-synchronous frontier expansion over a CSR-ish graph (Table IV: 32M
nodes).  Two kernels per level: ``bfs_kernel1`` expands the current
frontier through the (indirect) edge list; ``bfs_kernel2`` commits the
next frontier and raises the host continuation flag.

The indirect subscripts (``cost[edges[e]]``) defeat every static
analysis, so the ``independent`` directives must be *forced* by the
programmer.  CAPS obeys and runs Gridify-parallel (~400x on GPU / ~30x
on MIC); PGI "adopts a more conservative strategy" and keeps the loops
sequential even with the directives — yet still wins, because its data
regions hoist the transfers out of the level loop (Table VII: CAPS moves
data 3 times per iteration, PGI 4 times in total).  The PGI *baseline*
does not offload at all: the kernels run on the host and the PTX is
nearly empty (Fig. 11).
"""

from __future__ import annotations

import numpy as np

from ..compilers.framework import CompilationResult
from ..compilers.opencl import OpenCLKernelSpec, OpenCLProgram
from ..frontend.parser import parse_kernel, parse_module
from ..ir.stmt import Module
from ..ir.visitors import clone_module
from ..runtime.launcher import Accelerator
from ..passes.library.data import add_data_regions
from ..passes.library.independent import add_independent
from .base import Benchmark, BenchmarkMeta, RunResult

SOURCE = """
#pragma acc kernels
void bfs_kernel1(const int *starting, const int *no_of_edges, const int *edges,
                 int *mask, int *updating_mask, const int *visited,
                 int *cost, int num_nodes) {
  int tid, e;
  for (tid = 0; tid < num_nodes; tid++) {
    if (mask[tid] == 1) {
      mask[tid] = 0;
      for (e = starting[tid]; e < starting[tid] + no_of_edges[tid]; e++) {
        int id = edges[e];
        if (visited[id] == 0) {
          cost[id] = cost[tid] + 1;
          updating_mask[id] = 1;
        }
      }
    }
  }
}

#pragma acc kernels
void bfs_kernel2(int *mask, int *updating_mask, int *visited, int *stop,
                 int num_nodes) {
  int tid;
  for (tid = 0; tid < num_nodes; tid++) {
    if (updating_mask[tid] == 1) {
      mask[tid] = 1;
      visited[tid] = 1;
      stop[0] = 1;
      updating_mask[tid] = 0;
    }
  }
}
"""

#: hand-written OpenCL: the Rodinia kernel re-reads the graph structure
#: arrays instead of caching them in registers, so it issues more global
#: loads than the CAPS-generated code ("the CAPS compiler generates fewer
#: data movement instructions, especially the expensive global memory
#: access instructions", Fig. 11)
OPENCL_K1 = """
void ocl_bfs_kernel1(const int *starting, const int *no_of_edges, const int *edges,
                     int *mask, int *updating_mask, const int *visited,
                     int *cost, int num_nodes) {
  int tid, e;
  for (tid = 0; tid < num_nodes; tid++) {
    if (mask[tid] == 1) {
      mask[tid] = 0;
      for (e = starting[tid]; e < starting[tid] + no_of_edges[tid]; e++) {
        if (visited[edges[e]] == 0) {
          cost[edges[e]] = cost[tid] + 1;
          updating_mask[edges[e]] = 1;
          mask[edges[e]] = mask[edges[e]];
        }
      }
    }
  }
}
"""

OPENCL_K2 = """
void ocl_bfs_kernel2(int *mask, int *updating_mask, int *visited, int *stop,
                     int num_nodes) {
  int tid;
  for (tid = 0; tid < num_nodes; tid++) {
    if (updating_mask[tid] == 1) {
      mask[tid] = 1;
      visited[tid] = 1;
      stop[0] = 1;
      updating_mask[tid] = 0;
    }
  }
}
"""

#: regrouped ("pull"-style) version: writes are tid-indexed, so only the
#: *reads* are indirect — the structure the paper reorganizes to ("We
#: regroup the loops to make the OpenACC versions have the same structure
#: as the OpenCL version as possible", V-C2); with `independent` PGI can
#: now place the writes and accepts the clause (the 128x1 columns of
#: Fig. 11)
SOURCE_REGROUPED = """
#pragma acc kernels
void bfs_kernel1(const int *starting, const int *no_of_edges, const int *edges,
                 const int *mask, int *updating_mask, const int *visited,
                 int *cost, int num_nodes) {
  int tid, e;
  for (tid = 0; tid < num_nodes; tid++) {
    if (visited[tid] == 0) {
      for (e = starting[tid]; e < starting[tid] + no_of_edges[tid]; e++) {
        if (mask[edges[e]] == 1) {
          cost[tid] = cost[edges[e]] + 1;
          updating_mask[tid] = 1;
        }
      }
    }
  }
}

#pragma acc kernels
void bfs_kernel2(int *mask, int *updating_mask, int *visited, int num_nodes) {
  int tid;
  for (tid = 0; tid < num_nodes; tid++) {
    if (updating_mask[tid] == 1) {
      mask[tid] = 1;
      visited[tid] = 1;
      updating_mask[tid] = 0;
    } else {
      mask[tid] = 0;
    }
  }
}
"""

#: per-node average out-degree of the generated graphs
AVG_DEGREE = 4


class BfsBenchmark(Benchmark):
    meta = BenchmarkMeta(
        name="Breadth First Search",
        short="bfs",
        dwarf="Graph Traversal",
        domain="Graph Algorithms",
        input_size="32M nodes",
        paper_size=32 * 1024 * 1024,
        test_size=256,
    )

    def module(self) -> Module:
        return parse_module(SOURCE, "bfs")

    def _with_independent(self, module: Module) -> Module:
        """Force ``independent`` on the tid loops — programmer knowledge the
        analysis cannot have (distinct frontier nodes may write the same
        ``cost[id]``, but with the same value)."""
        out = clone_module(module)
        out.kernels = [
            add_independent(kernel, force_vars={"tid"}, only_top_level=True).kernel
            for kernel in out.kernels
        ]
        return out

    def stages(self) -> dict[str, Module]:
        base = self.module()
        regrouped = self._with_independent(
            parse_module(SOURCE_REGROUPED, "bfs-regrouped")
        )
        return {
            "base": base,
            "indep": self._with_independent(base),
            "regrouped": regrouped,
            # the paper's future work (VII): data-region directives hoist
            # CAPS's per-iteration transfers out of the level loop
            "dataregion": add_data_regions(self._with_independent(base)),
        }

    def opencl_program(self) -> OpenCLProgram:
        k1 = parse_kernel(OPENCL_K1)
        k2 = parse_kernel(OPENCL_K2)
        return OpenCLProgram(
            "bfs-opencl",
            [
                OpenCLKernelSpec(
                    kernel=k1,
                    parallel_loop_ids=[k1.loop_by_var("tid").loop_id],
                    local_size=(128, 1),
                ),
                OpenCLKernelSpec(
                    kernel=k2,
                    parallel_loop_ids=[k2.loop_by_var("tid").loop_id],
                    local_size=(128, 1),
                ),
            ],
        )

    # -- data -----------------------------------------------------------------

    def inputs(self, n: int, seed: int = 0) -> dict[str, object]:
        """A random *undirected* graph in CSR form (as Rodinia's graph
        generator produces): required so the push (base/indep) and pull
        (regrouped) kernels traverse the same reachability."""
        rng = np.random.default_rng(seed)
        half = rng.integers(0, n, size=(n * AVG_DEGREE // 2, 2))
        src = np.concatenate([half[:, 0], half[:, 1]])
        dst = np.concatenate([half[:, 1], half[:, 0]])
        order = np.argsort(src, kind="stable")
        src, dst = src[order], dst[order]
        degrees = np.bincount(src, minlength=n).astype(np.int64)
        starting = np.zeros(n, dtype=np.int64)
        starting[1:] = np.cumsum(degrees)[:-1]
        edges = dst.astype(np.int64)
        mask = np.zeros(n, dtype=np.int64)
        visited = np.zeros(n, dtype=np.int64)
        cost = np.full(n, -1, dtype=np.int64)
        mask[0] = 1
        visited[0] = 1
        cost[0] = 0
        return {
            "starting": starting,
            "no_of_edges": degrees.astype(np.int64),
            "edges": edges,
            "mask": mask,
            "updating_mask": np.zeros(n, dtype=np.int64),
            "visited": visited,
            "cost": cost,
            "num_nodes": n,
        }

    def reference(self, inputs: dict[str, object]) -> dict[str, np.ndarray]:
        n = int(inputs["num_nodes"])  # type: ignore[arg-type]
        starting = np.asarray(inputs["starting"])
        degrees = np.asarray(inputs["no_of_edges"])
        edges = np.asarray(inputs["edges"])
        cost = np.full(n, -1, dtype=np.int64)
        cost[0] = 0
        frontier = [0]
        level = 0
        visited = np.zeros(n, dtype=bool)
        visited[0] = True
        while frontier:
            next_frontier = []
            for node in frontier:
                lo = int(starting[node])
                hi = lo + int(degrees[node])
                for nb in edges[lo:hi]:
                    if not visited[nb]:
                        visited[nb] = True
                        cost[nb] = level + 1
                        next_frontier.append(int(nb))
            frontier = next_frontier
            level += 1
        return {"cost": cost}

    # -- driver -----------------------------------------------------------------

    ARRAY_NAMES = (
        "starting", "no_of_edges", "edges", "mask", "updating_mask",
        "visited", "cost",
    )

    def run(
        self,
        accelerator: Accelerator,
        compiled: CompilationResult,
        n: int,
        inputs: dict[str, object] | None = None,
        levels: int = 12,
    ) -> RunResult:
        functional = inputs is not None
        names = {k.name for k in compiled.kernels}
        prefix = "ocl_" if "ocl_bfs_kernel1" in names else ""
        k1 = compiled.kernel(prefix + "bfs_kernel1")
        k2 = compiled.kernel(prefix + "bfs_kernel2")
        regrouped = all(p.name != "stop" for p in k2.ir.params)

        # data-region behaviour: CAPS re-transfers the frontier arrays for
        # every kernels region inside the level loop; PGI and the
        # hand-written OpenCL host hoist the data ("3 times in each
        # iteration" vs "4 times in total", Table VII).  Explicit acc data
        # directives (the paper's future work) also hoist.
        hoists = (
            compiled.compiler in ("PGI", "OpenCL", "Intel OpenCL")
            or all(k.has_data_region for k in compiled.kernels)
        )

        # Transfer plan (Table VII): the hoisting hosts (PGI data regions /
        # the OpenCL host code) move the four big arrays once up front; the
        # CAPS data regions inside the level loop re-move mask + cost on
        # entry and copy cost back on exit — "3 times in each iteration".
        # The 8-byte stop-flag sync each level is an `update` both ways and
        # is not counted as a data transfer by the paper (nor by the
        # Table VII experiment, which ignores sub-64-byte events).
        if functional:
            arrays = {
                name: np.asarray(inputs[name]).copy() for name in self.ARRAY_NAMES
            }
            accelerator.to_device(stop=np.zeros(1, dtype=np.int64), **arrays)
            iteration = 0
            while True:
                iteration += 1
                if not hoists and iteration > 1:
                    accelerator.touch_h2d("edges", "cost")
                accelerator.buffer("stop")[0] = 0
                accelerator.launch(k1, num_nodes=n, _default_trip=AVG_DEGREE)
                if regrouped:
                    accelerator.launch(k2, num_nodes=n)
                    keep_going = bool(accelerator.from_device("mask")["mask"].any())
                else:
                    accelerator.launch(k2, num_nodes=n)
                    accelerator.touch_d2h("stop")
                    keep_going = accelerator.buffer("stop")[0] != 0
                if not hoists and iteration > 1:
                    accelerator.touch_d2h("cost")
                if not keep_going or iteration > n:
                    break
            outputs = accelerator.from_device("cost")
            return RunResult(accelerator.elapsed_s, accelerator, outputs)

        # modeled-only
        int_bytes = 4
        accelerator.declare(
            starting=n * int_bytes,
            no_of_edges=n * int_bytes,
            edges=n * AVG_DEGREE * int_bytes,
            mask=n * int_bytes,
            updating_mask=n * int_bytes,
            visited=n * int_bytes,
            cost=n * int_bytes,
            stop=8,
        )
        if hoists:
            accelerator.upload_declared(
                "starting", "no_of_edges", "edges", "cost"
            )
        else:
            accelerator.upload_declared("starting", "no_of_edges", "edges")
        for level in range(levels):
            if not hoists:
                accelerator.touch_h2d("edges", "cost")
            accelerator.launch(k1, num_nodes=n, _default_trip=AVG_DEGREE)
            accelerator.launch(k2, num_nodes=n)
            if not hoists:
                accelerator.touch_d2h("cost")
            if regrouped:
                accelerator.touch_d2h("mask")
            else:
                accelerator.touch_d2h("stop")
        accelerator.download_declared("cost")
        return RunResult(accelerator.elapsed_s, accelerator, {})
