"""Optimization ladders: registered-pass rungs the searches can climb.

PR 7 added two semantics-checked passes the paper's 4-step method does
not cover — ``fuse-reuse`` (loop fusion + liveness-minimized data
regions) and ``shared-tile`` (permutable-nest tiling with ``acc cache``
staging).  A **ladder** is an ordered selection of those rungs applied
on top of a benchmark module *before* the thread-distribution machinery
runs, so the Fig. 4 heat-map search and the auto-tuners explore the
(schedule x rung) product instead of schedules alone.

Rungs run as a verified :class:`~repro.passes.Pipeline`: a rung with no
applicable site (``PassNotApplicable``) is a no-op for that kernel, so
one ladder spec is safe across every benchmark.  Artifacts produced
under a ladder are pinned in ``tests/passes/golden_fingerprints.json``
next to the stage artifacts.
"""

from __future__ import annotations

from typing import Iterable

from ..ir.stmt import Module
from ..passes import PassContext, Pipeline

#: the rungs the searches may request, in canonical climb order
AVAILABLE_RUNGS: tuple[str, ...] = ("fuse-reuse", "shared-tile")


class LadderError(ValueError):
    """An unknown rung name in a ladder spec."""


def normalize_ladder(spec: "str | Iterable[str] | None") -> tuple[str, ...]:
    """Canonicalize a ladder spec (CLI string or iterable of rung names).

    Accepts ``"fuse-reuse,shared-tile"``, ``"full"`` (every rung), or any
    iterable of rung names; preserves canonical climb order and rejects
    unknown rungs.
    """
    if spec is None:
        return ()
    if isinstance(spec, str):
        text = spec.strip()
        if not text or text == "none":
            return ()
        if text == "full":
            return AVAILABLE_RUNGS
        names = [part.strip() for part in text.split(",") if part.strip()]
    else:
        names = list(spec)
    unknown = sorted(set(names) - set(AVAILABLE_RUNGS))
    if unknown:
        raise LadderError(
            f"unknown ladder rung(s) {', '.join(unknown)} "
            f"(available: {', '.join(AVAILABLE_RUNGS)}, or 'full')"
        )
    return tuple(rung for rung in AVAILABLE_RUNGS if rung in names)


def ladder_pipeline(rungs: tuple[str, ...]) -> Pipeline:
    """A verified pipeline over the selected rungs."""
    return Pipeline("ladder:" + "+".join(rungs), tuple(rungs))


def apply_ladder(
    module: Module,
    rungs: tuple[str, ...],
    compiler: str = "",
    target: str = "",
) -> Module:
    """Run the selected rungs over every kernel of *module*."""
    if not rungs:
        return module
    ctx = PassContext(compiler=compiler, target=target)
    return ladder_pipeline(rungs).run_module(module, ctx)


def ladder_label(rungs: tuple[str, ...]) -> str:
    """The label suffix search requests carry (empty for the bare ladder)."""
    return "".join(f"+{rung}" for rung in rungs)


def ladder_stages(module: Module, compiler: str = "", target: str = ""
                  ) -> dict[str, Module]:
    """Each single rung plus the full ladder, applied to *module*.

    The golden-fingerprint battery pins these next to the method stages
    so a rung's lowering can never drift silently.
    """
    out: dict[str, Module] = {}
    for rung in AVAILABLE_RUNGS:
        out[f"ladder:{rung}"] = apply_ladder(module, (rung,), compiler, target)
    out["ladder:full"] = apply_ladder(module, AVAILABLE_RUNGS, compiler, target)
    return out
