"""The paper's primary contribution: the systematic optimization method,
thread-distribution search, and the Performance Portability Ratio."""

from .autotune import (
    TuneResult,
    exhaustive_tune,
    hill_climb_tune,
    make_lud_evaluator,
    portable_tune,
    prewarm_lud_grid,
)
from .ladder import (
    AVAILABLE_RUNGS,
    LadderError,
    apply_ladder,
    ladder_label,
    ladder_pipeline,
    ladder_stages,
    normalize_ladder,
)
from .method import (
    MethodEvaluation,
    StageResult,
    compile_stage,
    format_rows,
    ptx_profile,
    run_opencl,
    run_stage,
)
from .ppr import PprEntry, format_ppr_table, ppr
from .search import (
    DEFAULT_GANGS,
    DEFAULT_WORKERS,
    HeatMap,
    distribution_requests,
    lud_heatmap,
)

__all__ = [
    "AVAILABLE_RUNGS",
    "DEFAULT_GANGS",
    "DEFAULT_WORKERS",
    "HeatMap",
    "LadderError",
    "MethodEvaluation",
    "PprEntry",
    "StageResult",
    "TuneResult",
    "apply_ladder",
    "compile_stage",
    "distribution_requests",
    "exhaustive_tune",
    "format_ppr_table",
    "format_rows",
    "hill_climb_tune",
    "ladder_label",
    "ladder_pipeline",
    "ladder_stages",
    "make_lud_evaluator",
    "lud_heatmap",
    "normalize_ladder",
    "portable_tune",
    "ppr",
    "prewarm_lud_grid",
    "ptx_profile",
    "run_opencl",
    "run_stage",
]
