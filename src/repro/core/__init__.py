"""The paper's primary contribution: the systematic optimization method,
thread-distribution search, and the Performance Portability Ratio."""

from .autotune import (
    TuneResult,
    exhaustive_tune,
    hill_climb_tune,
    make_lud_evaluator,
    portable_tune,
    prewarm_lud_grid,
)
from .method import (
    MethodEvaluation,
    StageResult,
    compile_stage,
    format_rows,
    ptx_profile,
    run_opencl,
    run_stage,
)
from .ppr import PprEntry, format_ppr_table, ppr
from .search import (
    DEFAULT_GANGS,
    DEFAULT_WORKERS,
    HeatMap,
    distribution_requests,
    lud_heatmap,
)

__all__ = [
    "DEFAULT_GANGS",
    "DEFAULT_WORKERS",
    "HeatMap",
    "MethodEvaluation",
    "PprEntry",
    "StageResult",
    "TuneResult",
    "compile_stage",
    "distribution_requests",
    "exhaustive_tune",
    "format_ppr_table",
    "format_rows",
    "hill_climb_tune",
    "make_lud_evaluator",
    "lud_heatmap",
    "portable_tune",
    "ppr",
    "prewarm_lud_grid",
    "ptx_profile",
    "run_opencl",
    "run_stage",
]
