"""The Performance Portability Ratio (PPR) of paper section V-F.

    PPR = MIC_elapsed_time / GPU_elapsed_time          (Equation 1)

"to qualitatively measure the performance difference of a single source
code base application across GPU and MIC" — lower is better (closer to
identical performance on both devices); PPR > 1 means the code runs
faster on the K40 than on the 5110P.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class PprEntry:
    """One bar of Figure 16."""

    label: str            # e.g. "GE OAC-OCL/OAC-CUDA", "BFS OpenCL"
    benchmark: str
    version: str          # "openacc" | "opencl"
    mic_elapsed_s: float
    gpu_elapsed_s: float

    @property
    def ppr(self) -> float:
        if self.gpu_elapsed_s <= 0:
            return math.inf
        return self.mic_elapsed_s / self.gpu_elapsed_s


def ppr(mic_elapsed_s: float, gpu_elapsed_s: float) -> float:
    """Equation 1."""
    if mic_elapsed_s < 0 or gpu_elapsed_s < 0:
        raise ValueError("elapsed times must be non-negative")
    if gpu_elapsed_s == 0:
        return math.inf
    return mic_elapsed_s / gpu_elapsed_s


def format_ppr_table(entries: list[PprEntry]) -> str:
    """Figure 16 as text: per benchmark, the OpenACC and OpenCL PPR."""
    lines = [f"{'benchmark':10s} {'version':10s} {'MIC s':>12s} "
             f"{'GPU s':>12s} {'PPR':>8s}"]
    lines.append("-" * len(lines[0]))
    for entry in entries:
        lines.append(
            f"{entry.benchmark:10s} {entry.version:10s} "
            f"{entry.mic_elapsed_s:12.4g} {entry.gpu_elapsed_s:12.4g} "
            f"{entry.ppr:8.2f}"
        )
    return "\n".join(lines)
