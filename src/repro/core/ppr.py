"""The Performance Portability Ratio (PPR) of paper section V-F.

    PPR = MIC_elapsed_time / GPU_elapsed_time          (Equation 1)

"to qualitatively measure the performance difference of a single source
code base application across GPU and MIC" — lower is better (closer to
identical performance on both devices); PPR > 1 means the code runs
faster on the K40 than on the 5110P.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class PprEntry:
    """One bar of Figure 16."""

    label: str            # e.g. "GE OAC-OCL/OAC-CUDA", "BFS OpenCL"
    benchmark: str
    version: str          # "openacc" | "opencl"
    mic_elapsed_s: float
    gpu_elapsed_s: float

    @property
    def ppr(self) -> float:
        if self.gpu_elapsed_s <= 0:
            return math.inf
        return self.mic_elapsed_s / self.gpu_elapsed_s


def ppr(mic_elapsed_s: float, gpu_elapsed_s: float) -> float:
    """Equation 1."""
    if mic_elapsed_s < 0 or gpu_elapsed_s < 0:
        raise ValueError("elapsed times must be non-negative")
    if gpu_elapsed_s == 0:
        return math.inf
    return mic_elapsed_s / gpu_elapsed_s


@dataclass(frozen=True)
class MatrixPprEntry:
    """Equation 1 at one (family, device count) of the portability
    matrix: CAPS-OpenCL on a 5110P chain over CAPS-CUDA on a K40 chain,
    same source, same width."""

    family: str
    devices: int
    mic_elapsed_s: float
    gpu_elapsed_s: float

    @property
    def ppr(self) -> float:
        if self.gpu_elapsed_s <= 0:
            return math.inf
        return self.mic_elapsed_s / self.gpu_elapsed_s


def format_ppr_matrix(entries: list[MatrixPprEntry]) -> str:
    """The PPR surface as a family × device-count grid (Fig. 16, but a
    plane instead of a bar row: portability can *flip* with width when
    halo contention bites one node type harder than the other)."""
    counts = sorted({entry.devices for entry in entries})
    families = sorted({entry.family for entry in entries})
    by_key = {(e.family, e.devices): e for e in entries}
    header = f"{'PPR':10s}" + "".join(f"{'x' + str(c):>10s}" for c in counts)
    lines = [header, "-" * len(header)]
    for family in families:
        row = [f"{family:10s}"]
        for count in counts:
            entry = by_key.get((family, count))
            row.append(f"{entry.ppr:10.2f}" if entry else f"{'-':>10s}")
        lines.append("".join(row))
    return "\n".join(lines)


def format_ppr_table(entries: list[PprEntry]) -> str:
    """Figure 16 as text: per benchmark, the OpenACC and OpenCL PPR."""
    lines = [f"{'benchmark':10s} {'version':10s} {'MIC s':>12s} "
             f"{'GPU s':>12s} {'PPR':>8s}"]
    lines.append("-" * len(lines[0]))
    for entry in entries:
        lines.append(
            f"{entry.benchmark:10s} {entry.version:10s} "
            f"{entry.mic_elapsed_s:12.4g} {entry.gpu_elapsed_s:12.4g} "
            f"{entry.ppr:8.2f}"
        )
    return "\n".join(lines)
